"""Table II: native runtime statistics (miss ratios, instruction mix).

Paper shape: histogram the most load/store-heavy; blackscholes the
least memory-bound; matrix_multiply the worst L1 miss ratio;
fluidanimate/ferret the worst branch predictability.
"""

from repro.harness import table2_native_stats

from conftest import SCALE, run_once, show


def test_table2_native_stats(benchmark, exp_session, capsys):
    exp = run_once(benchmark, lambda: table2_native_stats(exp_session))
    show(capsys, exp)
    rows = {r[0]: r for r in exp.rows}
    mem = {k: r[3] + r[4] for k, r in rows.items()}
    assert mem["hist"] == max(mem.values())
    # blackscholes among the least memory-bound (swaptions' register-
    # resident Monte Carlo can rank below it).
    assert "black" in sorted(mem, key=mem.get)[:3]
    if SCALE == "perf":
        # At test scale mmul's 10x10 matrices fit even the scaled L1;
        # the 62%-L1-miss regime needs the perf-scale 36x36 walk.
        assert rows["mmul"][1] == max(r[1] for r in rows.values())
    assert rows["fluid"][2] > 5.0
