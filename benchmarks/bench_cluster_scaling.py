#!/usr/bin/env python
"""Cluster fabric scaling: campaign throughput at 1/2/4 local worker
agents against the forked-scheduler baseline.

Not a paper figure — this measures the distribution machinery itself.
Every configuration runs the identical campaign (same seed, same
pre-drawn shard plans) against its own fresh store, so each one really
executes all its injections; the outcome counts must be bit-identical
across every fabric and worker count (that is the determinism
invariant docs/CLUSTER.md is built on, asserted here).

Writes ``BENCH_cluster.json`` with per-configuration wall times,
injections/second, and the speedup of each cluster width over the
1-worker cluster run (the fabric's own scaling) alongside the forked
baseline.

Run:  PYTHONPATH=src python benchmarks/bench_cluster_scaling.py
Env:  REPRO_SCALE ("perf" default -> fi-scale inputs, "test" for smoke)
"""

import json
import os
import sys
import tempfile
import time

from repro.cluster.cli import reap_workers, spawn_local_workers
from repro.cluster.coordinator import (
    ClusterCoordinator,
    run_distributed_campaign,
)
from repro.cluster.lease import LeasePolicy
from repro.faults.campaign import CampaignConfig
from repro.lab.durable import run_durable_campaign
from repro.lab.store import ResultStore
from repro.passes.elzar import elzar_transform
from repro.passes.mem2reg import mem2reg
from repro.workloads import get

_SCALES = {
    # build scale, injections, shard size
    "perf": ("fi", 200, 10),
    "test": ("test", 40, 5),
}

_CLUSTER_WIDTHS = (1, 2, 4)


def main() -> int:
    scale = os.environ.get("REPRO_SCALE", "perf")
    build_scale, injections, shard_size = _SCALES[scale]

    built = get("histogram").build_at(build_scale)
    module = elzar_transform(mem2reg(built.module))
    config = CampaignConfig(injections=injections, seed=2016)

    runs = []
    reference_counts = None

    def record(label, seconds, counts):
        nonlocal reference_counts
        wire = {o.value: int(n) for o, n in sorted(
            counts.items(), key=lambda kv: kv[0].value)}
        if reference_counts is None:
            reference_counts = wire
        assert wire == reference_counts, \
            f"{label}: counts diverged from baseline — {wire}"
        runs.append({
            "fabric": label,
            "seconds": round(seconds, 4),
            "injections_per_second": round(injections / max(seconds, 1e-9),
                                           1),
        })
        print(f"{label:>14}: {seconds:6.2f}s "
              f"({runs[-1]['injections_per_second']} inj/s)")

    with tempfile.TemporaryDirectory() as tmp:
        store = ResultStore(os.path.join(tmp, "forked.sqlite"))
        start = time.perf_counter()
        forked = run_durable_campaign(
            module, built.entry, built.args, "histogram", "elzar", config,
            store=store, shard_size=shard_size,
        )
        record("forked-1", time.perf_counter() - start,
               forked.result.counts)
        store.close()

        for width in _CLUSTER_WIDTHS:
            store = ResultStore(os.path.join(tmp, f"cluster{width}.sqlite"))
            coordinator = ClusterCoordinator(
                store_path=store.path, policy=LeasePolicy(),
                host="127.0.0.1", port=0,
            )
            _, port = coordinator.start()
            procs = spawn_local_workers("127.0.0.1", port, width)
            try:
                start = time.perf_counter()
                outcome = run_distributed_campaign(
                    module, built.entry, built.args, "histogram", "elzar",
                    config, coordinator=coordinator, build_scale=build_scale,
                    store=store, shard_size=shard_size,
                )
                record(f"cluster-{width}", time.perf_counter() - start,
                       outcome.result.counts)
            finally:
                coordinator.stop()
                reap_workers(procs)
                store.close()

    base = next(r for r in runs if r["fabric"] == "cluster-1")["seconds"]
    for run in runs:
        run["speedup_vs_cluster_1"] = round(base / max(run["seconds"], 1e-9),
                                            2)

    report = {
        "benchmark": "cluster_scaling",
        "scale": scale,
        "injections": injections,
        "shard_size": shard_size,
        "counts": reference_counts,
        "runs": runs,
    }
    out = os.path.normpath(os.path.join(os.path.dirname(__file__), os.pardir,
                                        "BENCH_cluster.json"))
    with open(out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"-- all fabrics bit-identical: {json.dumps(reference_counts)}")
    print(f"-- wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
