"""§V-B: float-only protection overhead.

Paper shape: blackscholes 9-35%, fluidanimate 10-18%, swaptions
40-60% — far below full protection.
"""

from repro.harness import fp_only_overhead

from conftest import run_once, show


def test_fp_only_overhead(benchmark, exp_session, capsys):
    exp = run_once(benchmark, lambda: fp_only_overhead(exp_session))
    show(capsys, exp)
    for row in exp.rows:
        full = (exp_session.overhead(
            {"black": "blackscholes", "fluid": "fluidanimate",
             "swap": "swaptions"}[row[0]], "elzar") - 1) * 100
        # blackscholes' bit-trick libm pays protected-domain crossings
        # in float-only mode; allow a small margin there.
        assert row[1] < full * 1.3
