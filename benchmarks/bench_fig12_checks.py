"""Figure 12: overhead breakdown by disabling checks (16 threads).

Paper shape: disabling load+store checks takes the mean from 4.2x to
2.7x; disabling branch checks saves only ~4% (the ptest is needed for
branching anyway).
"""

from repro.harness import fig12_checks_breakdown

from conftest import run_once, show


def test_fig12_checks_breakdown(benchmark, exp_session, capsys):
    exp = run_once(benchmark, lambda: fig12_checks_breakdown(exp_session))
    show(capsys, exp)
    mean = exp.row_by_label("mean")
    assert mean[1] >= mean[2] >= mean[3] >= mean[4] >= mean[5]
    branch_saving = (mean[3] - mean[4]) / mean[3]
    assert branch_saving < 0.10
