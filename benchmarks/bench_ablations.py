"""Ablations beyond the paper (DESIGN.md design choices):

- scheme ablation: native / SWIFT / SWIFT-R / ELZAR-failstop / ELZAR,
  overhead + fault outcomes on one memory-bound and one FP-bound
  benchmark;
- lane-count ablation: 2 (detection-only), 4 (YMM), 8 (ZMM) lanes.
"""

from repro.harness import lane_ablation, scheme_ablation

from conftest import FI_INJECTIONS, SCALE, run_once, show


def test_scheme_ablation(benchmark, capsys):
    scale = "fi" if SCALE == "perf" else "test"
    exp = run_once(
        benchmark,
        lambda: scheme_ablation(scale=scale, injections=min(FI_INJECTIONS, 100)),
    )
    show(capsys, exp)
    rows = {(r[0], r[1]): r for r in exp.rows}
    for bench in ("hist", "black"):
        native = rows[(bench, "native")]
        elzar = rows[(bench, "elzar")]
        failstop = rows[(bench, "elzar-failstop")]
        swiftr = rows[(bench, "swiftr")]
        # Every scheme beats native on SDC.
        for scheme in ("swift", "swiftr", "elzar-failstop", "elzar"):
            assert rows[(bench, scheme)][3] <= native[3]
        # Only the TMR schemes correct; fail-stop and SWIFT detect.
        assert elzar[5] > 0 and swiftr[5] > 0
        assert failstop[5] == 0 and failstop[6] > 0


def test_lane_ablation(benchmark, capsys):
    exp = run_once(benchmark, lambda: lane_ablation(scale="test"))
    show(capsys, exp)
    for row in exp.rows:
        # Lane count is performance-neutral under the AVX cost model —
        # the paper's argument for filling the register (§III-D).
        assert abs(row[1] - row[2]) / row[2] < 0.05
        assert abs(row[3] - row[2]) / row[2] < 0.05
