"""Figure 15: case-study throughput (Memcached, SQLite3, Apache).

Paper shape: ELZAR reaches 72-85% of native Memcached throughput
(workload D above A), only 20-30% for SQLite3 (which also shows its
reverse scalability curve), and ~85% for Apache (third-party code
unhardened).
"""

from repro.harness import fig15_case_studies, relative_throughput

from conftest import run_once, show


def test_fig15_case_studies(benchmark, app_session, capsys):
    exp = run_once(benchmark, lambda: fig15_case_studies(app_session))
    show(capsys, exp)
    kv_a = relative_throughput(exp, "memcached", "A")
    kv_d = relative_throughput(exp, "memcached", "D")
    sql = relative_throughput(exp, "sqlite3", "A")
    web = relative_throughput(exp, "apache", "-")
    with capsys.disabled():
        print(f"\nrelative throughput: memcached A={kv_a:.2f} D={kv_d:.2f} "
              f"sqlite3 A={sql:.2f} apache={web:.2f}")
    assert sql < kv_a and sql < web
    # sqlite reverse scalability
    for row in exp.rows:
        if row[0] == "sqlite3" and row[2] == "native":
            assert row[3] > row[-1]
