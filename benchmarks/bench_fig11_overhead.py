"""Figure 11: ELZAR normalized runtime vs native, 1-16 threads.

Paper shape: mean 4.1-5.6x; string_match worst (15-20x vs AVX-enabled
native); matrix_multiply best (~10% overhead, hidden behind cache
misses); dedup/streamcluster amortized at high thread counts.
"""

from repro.harness import fig11_overhead

from conftest import run_once, show


def test_fig11_overhead(benchmark, exp_session, capsys):
    exp = run_once(benchmark, lambda: fig11_overhead(exp_session))
    show(capsys, exp)
    overheads = {row[0]: row[1] for row in exp.rows}
    assert overheads["smatch"] == max(
        v for k, v in overheads.items() if k != "mean"
    )
    mean = exp.row_by_label("mean")
    assert mean[1] > 2.0
    dedup = exp.row_by_label("dedup")
    assert dedup[-1] < dedup[1]  # amortization at 16 threads
