"""Figure 14: ELZAR vs SWIFT-R (16 threads).

Paper shape: SWIFT-R cheaper on average (2.5x vs 3.7x; ELZAR +46%),
but ELZAR wins on the FP-heavy trio kmeans / blackscholes /
fluidanimate and loses badly on memory-dominated histogram /
string_match / word_count.
"""

from repro.harness import fig14_swiftr_comparison

from conftest import run_once, show


def test_fig14_swiftr_comparison(benchmark, exp_session, capsys):
    exp = run_once(benchmark, lambda: fig14_swiftr_comparison(exp_session))
    show(capsys, exp)
    mean = exp.row_by_label("mean")
    assert mean[2] > mean[1]  # ELZAR worse on average
    wins = {r[0] for r in exp.rows if r[0] != "mean" and r[3] < 0}
    assert "black" in wins
    losses = {r[0] for r in exp.rows if r[0] != "mean" and r[3] > 0}
    assert "hist" in losses
