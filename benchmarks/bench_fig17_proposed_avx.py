"""Figure 17: estimated ELZAR with the proposed AVX changes.

Paper shape: the mean overhead drops to ~1.48x (an improvement of
~150% over current ELZAR), with many benchmarks at 10-20%.
"""

from repro.harness import fig17_proposed_avx

from conftest import run_once, show


def test_fig17_proposed_avx(benchmark, exp_session, capsys):
    exp = run_once(benchmark, lambda: fig17_proposed_avx(exp_session))
    show(capsys, exp)
    mean = exp.row_by_label("mean")
    assert mean[2] < 0.75 * mean[1]  # a large estimated improvement
    assert mean[2] < 2.0             # lands near the paper's 1.48x
