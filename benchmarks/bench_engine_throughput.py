#!/usr/bin/env python
"""Engine throughput: compiled and decoded engines vs reference.

Not a paper figure — this measures the simulator itself: simulated
instructions per wall-clock second for each kernel under all three
engines (``MachineConfig.engine``), asserting bit-identical outputs,
counters, and cycles along the way, and writes the numbers to
``BENCH_engine.json``. Targets: decoded >=3x, compiled >=10x geomean.

Run:  PYTHONPATH=src python benchmarks/bench_engine_throughput.py
Env:  REPRO_SCALE ("perf" default -> fi-scale inputs, "test" for smoke)
"""

import os
import sys

from repro.bench import bench_engine_throughput, write_report


def main() -> int:
    scale = os.environ.get("REPRO_SCALE", "perf")
    rows = bench_engine_throughput(scale="fi" if scale == "perf" else "test")
    out = os.path.join(os.path.dirname(__file__), os.pardir,
                       "BENCH_engine.json")
    out = os.path.normpath(out)
    write_report(rows, out)
    print(f"-- wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
