"""Table IV / §VII-A: wrapper-only microbenchmark overheads.

Paper shape: loads ~2x, stores ~1x (the store port is the bottleneck
either way), branches ~1.9x, truncation ~8x.
"""

from repro.harness import table4_micro

from conftest import run_once, show


def test_table4_micro(benchmark, exp_session, capsys):
    exp = run_once(benchmark, lambda: table4_micro(exp_session))
    show(capsys, exp)
    rows = {r[0]: r for r in exp.rows}
    assert rows["stores"][1] < rows["loads"][1]
    assert rows["truncation"][1] > max(rows["loads"][1], rows["stores"][1])
    assert rows["branches"][1] > 1.1
