#!/usr/bin/env python
"""Lab store effectiveness: cold campaign vs warm replay vs resume.

Not a paper figure — this measures the durable-campaign machinery
itself. Three timed phases against one fresh store:

1. *cold*: every shard executed, results persisted;
2. *warm*: the identical campaign again — must execute zero new
   injections (the store serves every shard);
3. *resume*: a campaign interrupted after one shard, then resumed —
   the resumed counts must be bit-identical to the cold run's.

Writes ``BENCH_lab.json`` with the timings, the warm/cold speedup,
and the store hit statistics.

Run:  PYTHONPATH=src python benchmarks/bench_lab_resume.py
Env:  REPRO_SCALE ("perf" default -> fi-scale inputs, "test" for smoke)
"""

import json
import os
import sys
import tempfile
import time

from repro.faults.campaign import CampaignConfig
from repro.lab.durable import run_durable_campaign
from repro.lab.events import CampaignInterrupted, EventBus, interrupt_after
from repro.lab.store import ResultStore
from repro.passes.elzar import elzar_transform
from repro.passes.mem2reg import mem2reg
from repro.workloads import get

_SCALES = {
    # build scale, injections, shard size
    "perf": ("fi", 150, 25),
    "test": ("test", 40, 10),
}


def main() -> int:
    scale = os.environ.get("REPRO_SCALE", "perf")
    build_scale, injections, shard_size = _SCALES[scale]

    built = get("histogram").build_at(build_scale)
    module = elzar_transform(mem2reg(built.module))
    config = CampaignConfig(injections=injections, seed=2016)

    def campaign(store, events=None):
        return run_durable_campaign(
            module, built.entry, built.args, "histogram", "elzar", config,
            store=store, events=events, shard_size=shard_size,
        )

    with tempfile.TemporaryDirectory() as tmp:
        store = ResultStore(os.path.join(tmp, "store.sqlite"))

        start = time.perf_counter()
        cold = campaign(store)
        cold_seconds = time.perf_counter() - start
        assert cold.info.injections_executed == injections

        start = time.perf_counter()
        warm = campaign(store)
        warm_seconds = time.perf_counter() - start
        assert warm.info.injections_executed == 0, \
            "warm replay executed injections — store keys are unstable"
        assert warm.result.counts == cold.result.counts

        resume_store = ResultStore(os.path.join(tmp, "resume.sqlite"))
        events = EventBus()
        events.subscribe(interrupt_after(1))
        start = time.perf_counter()
        try:
            campaign(resume_store, events)
        except CampaignInterrupted:
            pass
        resumed = campaign(resume_store)
        resume_seconds = time.perf_counter() - start
        assert resumed.result.counts == cold.result.counts, \
            "resumed counts differ from the uninterrupted run"
        assert resumed.info.shards_from_store == 1

    report = {
        "benchmark": "lab_resume",
        "scale": scale,
        "injections": injections,
        "shard_size": shard_size,
        "cold_seconds": round(cold_seconds, 4),
        "warm_seconds": round(warm_seconds, 4),
        "warm_speedup": round(cold_seconds / max(warm_seconds, 1e-9), 1),
        "resume_total_seconds": round(resume_seconds, 4),
        "warm_shards_from_store": warm.info.shards_from_store,
        "warm_injections_executed": warm.info.injections_executed,
        "resume_shards_from_store": resumed.info.shards_from_store,
    }
    out = os.path.normpath(os.path.join(os.path.dirname(__file__), os.pardir,
                                        "BENCH_lab.json"))
    with open(out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"cold {cold_seconds:.2f}s, warm replay {warm_seconds:.2f}s "
          f"({report['warm_speedup']}x), resume cycle {resume_seconds:.2f}s")
    print(f"-- wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
