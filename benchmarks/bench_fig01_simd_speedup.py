"""Figure 1: native SIMD speedup over the no-SIMD build.

Paper shape: most applications gain <10%; string_match stands out
(+60% in the paper); kmeans/swaptions may even regress slightly.
"""

from repro.harness import fig01_simd_speedup

from conftest import run_once, show


def test_fig01_simd_speedup(benchmark, exp_session, app_session, capsys):
    exp = run_once(
        benchmark, lambda: fig01_simd_speedup(exp_session, app_session)
    )
    show(capsys, exp)
    speedups = {row[0]: row[1] for row in exp.rows}
    kernels = {k: v for k, v in speedups.items()
               if k not in ("memcached", "sqlite3", "apache")}
    assert speedups["smatch"] == max(kernels.values())
    assert sum(1 for v in kernels.values() if v < 10.0) >= 10
