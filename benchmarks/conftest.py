"""Shared fixtures for the benchmark suite.

The benchmarks regenerate every table and figure of the paper; they
share one measurement session so workloads are simulated once per
variant. Environment knobs:

- ``REPRO_SCALE``  ("perf" default, "test" for a fast smoke pass);
- ``REPRO_FI_INJECTIONS`` (SEUs per program in the Figure 13 campaign,
  default 150; the paper used 2500).
"""

import os

import pytest

from repro.harness import AppSession, Session

SCALE = os.environ.get("REPRO_SCALE", "perf")
FI_INJECTIONS = int(os.environ.get("REPRO_FI_INJECTIONS", "150"))


@pytest.fixture(scope="session")
def exp_session() -> Session:
    return Session(SCALE)


@pytest.fixture(scope="session")
def app_session() -> AppSession:
    return AppSession(SCALE)


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def show(capsys, experiment):
    with capsys.disabled():
        print("\n" + experiment.render())
