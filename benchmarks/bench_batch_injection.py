#!/usr/bin/env python
"""Batched fault injection (``--batch K``) vs scalar ``inject_once``.

Not a paper figure — this measures the simulator itself: per-injection
throughput of the SIMD-of-simulations engine (shared golden prefix,
forked lanes, digest reconvergence) over the Figure-13 benchmark grid,
sweeping batch size K in {1, 4, 16}. Outcome lists are asserted
bit-identical to the scalar baseline for every cell and every K; the
numbers land in ``BENCH_batch.json``. The K=16 geomean target is >=5x.

Run:  PYTHONPATH=src python benchmarks/bench_batch_injection.py
Env:  REPRO_SCALE ("perf" default -> fi-scale inputs, "test" for smoke)
      REPRO_BATCH_INJECTIONS (injections per cell, default 64)
"""

import os
import sys

from repro.bench_batch import (DEFAULT_INJECTIONS, bench_batch_injection,
                               write_report)


def main() -> int:
    scale = "fi" if os.environ.get("REPRO_SCALE", "perf") == "perf" else "test"
    injections = int(os.environ.get("REPRO_BATCH_INJECTIONS",
                                    str(DEFAULT_INJECTIONS)))
    rows = bench_batch_injection(scale=scale, injections=injections)
    out = os.path.normpath(os.path.join(os.path.dirname(__file__), os.pardir,
                                        "BENCH_batch.json"))
    write_report(rows, out)
    print(f"-- wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
