"""Table III: ILP and instruction-increase factors.

Paper shape: ELZAR increases executed instructions less than SWIFT-R
on FP benchmarks (blackscholes 1.7x vs 5.2x) but catastrophically more
on string_match (32.7x); ELZAR's ILP sits below SWIFT-R's.
"""

import statistics

from repro.harness import table3_ilp

from conftest import run_once, show


def test_table3_ilp(benchmark, exp_session, capsys):
    exp = run_once(benchmark, lambda: table3_ilp(exp_session))
    show(capsys, exp)
    rows = {r[0]: r for r in exp.rows}
    assert rows["black"][4] < rows["black"][5]  # ELZAR fewer instrs on FP
    assert rows["smatch"][4] == max(r[4] for r in rows.values())
    mean_ilp_e = statistics.mean(r[2] for r in exp.rows)
    mean_ilp_s = statistics.mean(r[3] for r in exp.rows)
    assert mean_ilp_e < mean_ilp_s
