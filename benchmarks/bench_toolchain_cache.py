#!/usr/bin/env python
"""Toolchain artifact-cache effectiveness: cold build vs warm rehydrate.

Not a paper figure — this measures the content-addressed build cache
itself, on the exact cell set Figure 11 needs (every paper benchmark
as ``native`` and ``elzar``, plus the ``noavx`` string_match row).
Two timed phases against one fresh cache directory:

1. *cold*: every cell built through the full pipeline (build_at ->
   mem2reg -> inline -> mem2reg -> harden -> verify), artifacts stored;
2. *warm*: a fresh ``Toolchain`` rebuilds the identical cell set —
   every cell must be a pure artifact-cache hit (zero pipeline work)
   and every rehydrated module must reach a bit-identical IR digest.

Writes ``BENCH_toolchain.json`` with the timings, the warm/cold
speedup, and the cache hit statistics.

Run:  PYTHONPATH=src python benchmarks/bench_toolchain_cache.py
Env:  REPRO_SCALE ("perf" default -> perf-scale builds, "test" smoke)
"""

import json
import os
import sys
import tempfile
import time

from repro.toolchain import Toolchain, toolchain_digest
from repro.workloads.registry import BENCHMARKS


def fig11_cells(scale: str):
    """The (workload, scale, variant) cells Figure 11 builds."""
    cells = []
    for wl in BENCHMARKS:
        cells.append((wl.name, scale, "native"))
        cells.append((wl.name, scale, "elzar"))
        if wl.name == "string_match":
            cells.append((wl.name, scale, "noavx"))
    return cells


def main() -> int:
    scale = os.environ.get("REPRO_SCALE", "perf")
    build_scale = "test" if scale == "test" else "perf"
    cells = fig11_cells(build_scale)

    with tempfile.TemporaryDirectory() as tmp:
        os.environ["REPRO_TOOLCHAIN_CACHE"] = tmp

        cold = Toolchain()
        start = time.perf_counter()
        digests = {cell: cold.build(*cell).ir_digest for cell in cells}
        cold_seconds = time.perf_counter() - start
        assert cold.cache.stats.hits == 0
        assert cold.cache.stats.stores >= len(cells)

        warm = Toolchain()
        start = time.perf_counter()
        for cell in cells:
            built = warm.build(*cell)
            assert built.from_cache, \
                f"warm rebuild of {cell} missed the artifact cache"
            assert built.ir_digest == digests[cell], \
                f"warm rebuild of {cell} is not bit-identical"
        warm_seconds = time.perf_counter() - start
        assert warm.cache.stats.misses == 0, \
            "warm rebuild did pipeline work — cache keys are unstable"
        assert warm.cache.stats.hits == len(cells)

        del os.environ["REPRO_TOOLCHAIN_CACHE"]

    report = {
        "benchmark": "toolchain_cache",
        "scale": scale,
        "toolchain_digest": toolchain_digest(),
        "cells": len(cells),
        "cold_seconds": round(cold_seconds, 4),
        "warm_seconds": round(warm_seconds, 4),
        "warm_speedup": round(cold_seconds / max(warm_seconds, 1e-9), 1),
        "warm_hits": warm.cache.stats.hits,
        "warm_misses": warm.cache.stats.misses,
    }
    out = os.path.normpath(os.path.join(os.path.dirname(__file__), os.pardir,
                                        "BENCH_toolchain.json"))
    with open(out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"{len(cells)} cells: cold {cold_seconds:.2f}s, warm rehydrate "
          f"{warm_seconds:.2f}s ({report['warm_speedup']}x), "
          f"{warm.cache.stats.hits}/{len(cells)} artifact hits")
    print(f"-- wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
