#!/usr/bin/env python
"""Service throughput: submission-to-completion latency through the
campaign service's HTTP API, cold versus store-hit.

Not a paper figure — this measures the service machinery itself
(docs/SERVICE.md). An in-process ``ReproService`` on the local forked
fabric takes a batch of campaign cells submitted concurrently by two
tenants; once the batch settles, every spec is resubmitted verbatim.
The warm pass must execute zero injections (every shard served from
the content-addressed store) and return counts bit-identical to the
cold pass — asserted here before any latency is reported.

Writes ``BENCH_service.json`` with per-campaign cold/warm latencies,
batch wall times, and the warm-over-cold speedup (the value of the
spec-digest cache to a duplicate submitter).

Run:  PYTHONPATH=src python benchmarks/bench_service_throughput.py
Env:  REPRO_SCALE ("perf" default, "test" for smoke)
"""

import json
import os
import sys
import tempfile
import time

from repro.service import ReproService, ServiceClient

_SCALES = {
    # service spec scale, expected injections per cell
    "perf": ("perf", 150),
    "test": ("test", 40),
}

_CELLS = [
    ("alice", {"workload": "histogram", "version": "native"}),
    ("alice", {"workload": "histogram", "version": "elzar"}),
    ("bob", {"workload": "blackscholes", "version": "native"}),
]


def _run_batch(host, port, spec_scale, label):
    """Submit every cell concurrently; wait; return per-campaign rows."""
    submitted = []
    batch_start = time.perf_counter()
    for tenant, cell in _CELLS:
        client = ServiceClient(host, port, tenant=tenant)
        spec = dict(cell, scale=spec_scale)
        submitted.append((client, cell, time.perf_counter(),
                          client.submit(spec)["id"]))
    rows = []
    for client, cell, t0, campaign_id in submitted:
        record = client.wait(campaign_id, timeout=1800.0)
        latency = time.perf_counter() - t0
        assert record["status"] == "succeeded", record.get("error")
        rows.append({
            "workload": cell["workload"],
            "version": cell["version"],
            "seconds": round(latency, 4),
            "counts": record["result"]["counts"],
            "injections_executed": record["result"]["injections_executed"],
        })
        print(f"{label} {cell['workload']}/{cell['version']:>6}: "
              f"{latency:6.2f}s "
              f"({record['result']['injections_executed']} executed)")
    return rows, time.perf_counter() - batch_start


def main() -> int:
    scale = os.environ.get("REPRO_SCALE", "perf")
    spec_scale, injections = _SCALES[scale]

    with tempfile.TemporaryDirectory() as tmp:
        service = ReproService(os.path.join(tmp, "store.sqlite"),
                               port=0, max_running=len(_CELLS))
        host, port = service.start()
        try:
            cold, cold_wall = _run_batch(host, port, spec_scale, "cold")
            warm, warm_wall = _run_batch(host, port, spec_scale, "warm")
        finally:
            service.stop()

    for before, after in zip(cold, warm):
        cell = (before["workload"], before["version"])
        assert after["counts"] == before["counts"], \
            f"{cell}: warm counts diverged from cold"
        assert after["injections_executed"] == 0, \
            f"{cell}: warm pass executed injections"
        after["speedup_vs_cold"] = round(
            before["seconds"] / max(after["seconds"], 1e-9), 2)

    report = {
        "benchmark": "service_throughput",
        "scale": scale,
        "injections_per_cell": injections,
        "cells": len(_CELLS),
        "cold": {"wall_seconds": round(cold_wall, 4), "campaigns": cold},
        "warm": {"wall_seconds": round(warm_wall, 4), "campaigns": warm},
        "warm_speedup": round(cold_wall / max(warm_wall, 1e-9), 2),
    }
    out = os.path.normpath(os.path.join(os.path.dirname(__file__), os.pardir,
                                        "BENCH_service.json"))
    with open(out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"-- warm batch {report['warm_speedup']}x faster than cold "
          "(0 injections executed, counts bit-identical)")
    print(f"-- wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
