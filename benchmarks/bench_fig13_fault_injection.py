"""Figure 13: fault-injection outcomes, native vs ELZAR.

Paper shape: mean SDC falls 27% -> 5%, crashes 18% -> 6%; histogram is
ELZAR's worst SDC case (extracted-address window, §V-C), blackscholes
its best (1%).
"""

from repro.harness import fig13_fault_injection

from conftest import FI_INJECTIONS, SCALE, run_once, show


def test_fig13_fault_injection(benchmark, capsys):
    scale = "fi" if SCALE == "perf" else "test"
    exp = run_once(
        benchmark,
        lambda: fig13_fault_injection(injections=FI_INJECTIONS, scale=scale),
    )
    show(capsys, exp)
    rows = {(r[0], r[1]): r for r in exp.rows}
    mean_nat = rows[("mean", "native")]
    mean_elz = rows[("mean", "elzar")]
    assert mean_elz[4] < mean_nat[4] / 2   # SDC cut
    assert mean_elz[3] > mean_nat[3]       # correct rate up
