#!/usr/bin/env python
"""Checkpointed fault injection (``repro.snap``) vs from-scratch.

Not a paper figure — this measures the simulator itself: per-injection
throughput with mid-run checkpoint resumption against the sequential
from-scratch session loop, over the Figure-13 benchmark grid, with
every fault site drawn from the last quartile of the eligible stream
(the late-site regime checkpointing exists for). Outcome lists are
asserted bit-identical to the from-scratch baseline for every cell;
the numbers land in ``BENCH_snap.json``. The warm geomean target
is >= 3x.

Run:  PYTHONPATH=src python benchmarks/bench_checkpoint_injection.py
Env:  REPRO_SCALE ("perf" default -> fi-scale inputs, "test" for smoke)
      REPRO_SNAP_INJECTIONS (injections per cell, default 64)
"""

import os
import sys

from repro.bench_snap import (DEFAULT_INJECTIONS, bench_checkpoint_injection,
                              write_report)


def main() -> int:
    scale = "fi" if os.environ.get("REPRO_SCALE", "perf") == "perf" else "test"
    injections = int(os.environ.get("REPRO_SNAP_INJECTIONS",
                                    str(DEFAULT_INJECTIONS)))
    rows = bench_checkpoint_injection(scale=scale, injections=injections)
    out = os.path.normpath(os.path.join(os.path.dirname(__file__), os.pardir,
                                        "BENCH_snap.json"))
    write_report(rows, out)
    print(f"-- wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
