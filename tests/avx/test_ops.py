"""Tests for AVX lane semantics: ptest, shuffle-xor check, majority."""

import math

import pytest

from repro.avx import (
    NoMajorityError,
    bits_to_float,
    flip_bit_float,
    flip_bit_int,
    float_to_bits,
    lanes_all_equal,
    majority_value,
    ptest_all_zero,
    ptest_classify,
    recover,
    shuffle_pairwise,
)


class TestPtest:
    def test_all_zero(self):
        assert ptest_all_zero((0, 0, 0, 0))
        assert not ptest_all_zero((0, 1, 0, 0))

    def test_classify_matches_figure9(self):
        assert ptest_classify((0, 0, 0, 0)) == 0  # false branch
        assert ptest_classify((1, 1, 1, 1)) == 1  # true branch
        assert ptest_classify((1, 0, 1, 1)) == 2  # fault -> recover
        assert ptest_classify((0, 0, 1, 0)) == 2


class TestShuffleXorCheck:
    """The Figure 8 check: shuffle, xor, ptest."""

    def test_equal_lanes_give_all_zero_xor(self):
        lanes = (7, 7, 7, 7)
        shuffled = shuffle_pairwise(lanes)
        x = tuple(a ^ b for a, b in zip(lanes, shuffled))
        assert ptest_all_zero(x)

    def test_one_corrupt_lane_detected(self):
        lanes = (7, 7, 9, 7)
        shuffled = shuffle_pairwise(lanes)
        x = tuple(a ^ b for a, b in zip(lanes, shuffled))
        assert not ptest_all_zero(x)

    def test_rotation_shape(self):
        assert shuffle_pairwise((1, 2, 3, 4)) == (2, 3, 4, 1)


class TestMajority:
    def test_all_equal(self):
        assert majority_value((5, 5, 5, 5)) == 5

    def test_single_fault_recovered(self):
        """§III-C scenario 1: three identical lanes outvote one."""
        assert majority_value((5, 9, 5, 5)) == 5
        assert recover((5, 9, 5, 5)) == (5, 5, 5, 5)

    def test_two_distinct_faults_recovered(self):
        """§III-C scenario 2: 2 agree, other two differ from each other."""
        assert majority_value((5, 9, 5, 11)) == 5

    def test_two_two_split_stops(self):
        """§III-C scenario 3: no majority -> program must stop."""
        with pytest.raises(NoMajorityError):
            majority_value((5, 5, 9, 9))

    def test_all_different_stops(self):
        with pytest.raises(NoMajorityError):
            majority_value((1, 2, 3, 4))

    def test_lanes_all_equal(self):
        assert lanes_all_equal((3, 3, 3, 3))
        assert not lanes_all_equal((3, 3, 3, 4))


class TestBitViews:
    def test_float_bits_roundtrip(self):
        for v in (0.0, 1.0, -2.5, 1e300, 1e-300):
            assert bits_to_float(float_to_bits(v, 64), 64) == v
        assert bits_to_float(float_to_bits(1.5, 32), 32) == 1.5

    def test_flip_bit_int(self):
        assert flip_bit_int(0, 3, 64) == 8
        assert flip_bit_int(8, 3, 64) == 0
        assert flip_bit_int(0, 63, 64) == 1 << 63
        assert flip_bit_int(0, 7, 8) == 128

    def test_flip_bit_float_sign(self):
        assert flip_bit_float(1.0, 63, 64) == -1.0

    def test_flip_bit_float_changes_value(self):
        v = flip_bit_float(1.0, 0, 64)
        assert v != 1.0
        # flipping the same bit twice restores
        assert flip_bit_float(v, 0, 64) == 1.0

    def test_nan_bits_stable(self):
        bits = float_to_bits(math.nan, 64)
        assert math.isnan(bits_to_float(bits, 64))


class TestCostModels:
    def test_profiles_differ_where_claimed(self):
        from repro.avx import HASWELL, PROPOSED_AVX

        assert PROPOSED_AVX.vector["extractelement"] < HASWELL.vector["extractelement"]
        assert (
            PROPOSED_AVX.intrinsic_latency("elzar.check.v4i64")
            < HASWELL.intrinsic_latency("elzar.check.v4i64")
        )
        # Scalar costs identical: native baselines must agree.
        assert PROPOSED_AVX.scalar == HASWELL.scalar

    def test_intrinsic_prefix_matching(self):
        from repro.avx import HASWELL

        lat_c, uops_c = HASWELL.intrinsic_cost("elzar.branch_cond.v4i1")
        lat_n, uops_n = HASWELL.intrinsic_cost("elzar.branch_cond_nocheck.v4i1")
        # The checked variant adds the `ja` fault check (Figure 9) on
        # top of the ptest both variants need.
        assert uops_c > uops_n
        assert lat_c >= lat_n

    def test_unknown_intrinsic_gets_default(self):
        from repro.avx import HASWELL

        assert HASWELL.intrinsic_cost("mystery.op") == (2.0, 1)

    def test_lookup_by_name(self):
        from repro.avx import HASWELL, cost_model_by_name

        assert cost_model_by_name("haswell-avx2") is HASWELL
        with pytest.raises(KeyError):
            cost_model_by_name("skylake")

    def test_fp_latency_dispatch(self):
        from repro.avx import HASWELL
        from repro.ir import types as T

        assert HASWELL.scalar_latency("add", T.F64) == HASWELL.scalar["fadd"]
        assert HASWELL.scalar_latency("add", T.I64) == HASWELL.scalar["add"]
