"""Cluster-fabric chaos scenarios: coordinator + subprocess worker
agents under injected infrastructure faults. The expensive full sweep
is CI's ``chaos matrix``; here one crash-shaped and one
duplicate-delivery scenario pin the fabric's recovery guarantees as
ordinary tests, including the satellite case of a lease expiring while
its late commit is already on the wire."""

from collections import Counter

import pytest

from repro.chaos.runner import run_chaotic, run_reference
from repro.chaos.scenarios import get_scenario
from repro.chaos.verify import verify


@pytest.fixture(scope="module")
def reference(tmp_path_factory):
    path = tmp_path_factory.mktemp("chaos-ref") / "reference.sqlite"
    return run_reference(str(path))


def _run(name, seed, tmp_path, reference):
    scenario = get_scenario(name)
    report = run_chaotic(scenario, seed,
                         str(tmp_path / f"{name}-s{seed}.sqlite"))
    return report, verify(scenario, report, reference)


class TestClusterScenarios:
    def test_agent_crash_between_execute_and_commit(self, tmp_path,
                                                    reference):
        report, verdict = _run("agent-crash", 1, tmp_path, reference)
        assert verdict.ok, verdict.problems
        kinds = {e["kind"] for e in report["events"]}
        # The dying agent disconnected (or its lease was requeued) and
        # the shard re-executed elsewhere — one re-execution, never a
        # double count.
        assert kinds & {"worker-disconnected", "lease-requeued"}
        assert report["counts"] == reference["counts"]

    def test_frame_dup_discarded_at_most_once(self, tmp_path, reference):
        report, verdict = _run("frame-dup", 1, tmp_path, reference)
        assert verdict.ok, verdict.problems
        events = report["events"]
        # Within each phase no shard committed twice, duplicate frame
        # notwithstanding.
        commits = Counter((e["phase"], e.get("index")) for e in events
                          if e["kind"] == "shard-completed")
        assert all(n == 1 for n in commits.values())
        assert report["rows"] == reference["rows"]

    def test_agent_stall_lease_expiry_races_late_commit(self, tmp_path,
                                                        reference):
        # The satellite race, pinned by a deterministic scenario: the
        # agent goes silent past the lease timeout with its shard
        # finished, the lease expires and is re-granted, then the
        # stalled agent's commit lands late. At-most-once must hold:
        # one commit per shard per phase, counts bit-identical.
        report, verdict = _run("agent-stall", 1, tmp_path, reference)
        assert verdict.ok, verdict.problems
        events = report["events"]
        kinds = {e["kind"] for e in events}
        assert "lease-expired" in kinds
        commits = Counter((e["phase"], e.get("index")) for e in events
                          if e["kind"] == "shard-completed")
        assert all(n == 1 for n in commits.values())
        assert report["counts"] == reference["counts"]
