"""Forked-fabric chaos scenarios end to end: run the real campaign
stack under an injected fault and hold it to the verifier's standard —
bit-identical recovery, provable firing.

Only the cheapest representatives run here (the full scenario matrix is
CI's ``python -m repro chaos matrix``); what this suite pins is that
the runner/verifier machinery itself works as a pytest citizen."""

import pytest

from repro.chaos.cli import main as chaos_main
from repro.chaos.runner import SHARD_COUNT, run_chaotic, run_reference
from repro.chaos.scenarios import SCENARIOS, get_scenario
from repro.chaos.verify import verify


@pytest.fixture(scope="module")
def reference(tmp_path_factory):
    path = tmp_path_factory.mktemp("chaos-ref") / "reference.sqlite"
    return run_reference(str(path))


def _run(name, seed, tmp_path, reference):
    scenario = get_scenario(name)
    report = run_chaotic(scenario, seed,
                         str(tmp_path / f"{name}-s{seed}.sqlite"))
    return report, verify(scenario, report, reference)


class TestScenarios:
    def test_worker_kill_recovers_bit_identical(self, tmp_path, reference):
        report, verdict = _run("worker-kill", 1, tmp_path, reference)
        assert verdict.ok, verdict.problems
        assert report["counts"] == reference["counts"]
        assert "shard-retry" in {e["kind"] for e in report["events"]}

    def test_store_lost_write_costs_one_rerun(self, tmp_path, reference):
        report, verdict = _run("store-lost-write", 1, tmp_path, reference)
        assert verdict.ok, verdict.problems
        # The driver died mid-campaign: recovery took a second phase,
        # and the store ended bit-identical anyway.
        assert report["phases"] == 2
        assert report["rows"] == reference["rows"]

    def test_golden_corrupt_purges_instead_of_replaying(self, tmp_path,
                                                        reference):
        report, verdict = _run("golden-corrupt", 1, tmp_path, reference)
        assert verdict.ok, verdict.problems
        assert "store-stale" in {e["kind"] for e in report["events"]}


class TestDeterminism:
    def test_same_seed_same_rule_schedule(self):
        for name, scenario in SCENARIOS.items():
            once = scenario.spec(7, SHARD_COUNT).to_wire()
            again = scenario.spec(7, SHARD_COUNT).to_wire()
            assert once == again, name

    def test_different_seed_moves_the_fault(self):
        scenario = get_scenario("worker-kill")
        schedules = {
            str(scenario.spec(seed, SHARD_COUNT).to_wire())
            for seed in range(10)
        }
        assert len(schedules) > 1

    def test_every_scenario_declares_falsifiability(self):
        for name, scenario in SCENARIOS.items():
            assert scenario.evidence or scenario.needs_rerun, (
                f"{name} has no way to prove its fault fired")

    def test_unknown_scenario_is_a_loud_error(self):
        with pytest.raises(ValueError, match="unknown chaos scenario"):
            get_scenario("nope")


class TestCli:
    def test_list_names_every_scenario(self, capsys):
        assert chaos_main(["list"]) == 0
        out = capsys.readouterr().out
        for name in SCENARIOS:
            assert name in out

    def test_run_single_scenario_exits_zero(self, tmp_path, capsys):
        assert chaos_main(["run", "--scenario", "worker-kill", "--seed", "1",
                           "--store", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "worker-kill seed=1: ok" in out
