"""RetryPolicy: one backoff vocabulary for leases, shard retries, and
worker connects. The delay math must exactly reproduce what the lease
table and scheduler did before unification — exact-instant fake-clock
tests elsewhere depend on it."""

import random

from repro.chaos.policy import (
    RESULT_RESEND,
    SERVICE_POLL,
    WORKER_CONNECT,
    RetryPolicy,
)
from repro.cluster.lease import LeasePolicy
from repro.lab.scheduler import SchedulerPolicy


class TestDelay:
    def test_exponential_growth(self):
        policy = RetryPolicy(backoff=1.0, backoff_factor=2.0, jitter=0.0)
        assert [policy.delay(a) for a in range(4)] == [1.0, 2.0, 4.0, 8.0]

    def test_zero_jitter_never_draws(self):
        class Explodes:
            def random(self):
                raise AssertionError("rng consulted with jitter off")

        policy = RetryPolicy(backoff=1.0, jitter=0.0)
        assert policy.delay(0, Explodes()) == 1.0

    def test_no_rng_means_deterministic_even_with_jitter(self):
        policy = RetryPolicy(backoff=1.0, backoff_factor=2.0, jitter=0.25)
        assert policy.delay(1) == 2.0

    def test_jitter_bounded(self):
        policy = RetryPolicy(backoff=1.0, backoff_factor=2.0, jitter=0.25)
        for seed in range(20):
            delay = policy.delay(0, random.Random(seed))
            assert 1.0 <= delay <= 1.25

    def test_jitter_varies(self):
        policy = RetryPolicy(backoff=1.0, jitter=0.25)
        delays = {policy.delay(0, random.Random(seed)) for seed in range(8)}
        assert len(delays) > 1

    def test_attempts_iterates_zero_based(self):
        assert list(RetryPolicy(max_attempts=3).attempts()) == [0, 1, 2]


class TestUnification:
    def test_lease_policy_retry_matches_its_own_fields(self):
        lease = LeasePolicy(lease_timeout=7.0, max_attempts=4, backoff=0.5,
                            backoff_factor=3.0, backoff_jitter=0.1)
        retry = lease.retry
        assert retry.max_attempts == 4
        assert retry.backoff == 0.5
        assert retry.backoff_factor == 3.0
        assert retry.jitter == 0.1
        assert retry.timeout == 7.0

    def test_lease_requeue_delay_is_policy_delay(self):
        # Jitter off: the table's requeue instant must be exactly
        # backoff * factor ** attempt after expiry.
        from repro.cluster.lease import LeaseTable

        policy = LeasePolicy(lease_timeout=10.0, backoff=1.0,
                             backoff_factor=2.0, backoff_jitter=0.0)
        table = LeaseTable([0], policy)
        table.grant("a", now=0.0)
        table.expire(now=10.0)
        expected = policy.retry.delay(0)
        assert table.grant("b", now=10.0 + expected - 1e-9) is None
        assert table.grant("b", now=10.0 + expected) is not None

    def test_scheduler_policy_retry_matches_its_own_fields(self):
        sched = SchedulerPolicy(max_retries=2, backoff=0.25, timeout=3.0)
        retry = sched.retry
        assert retry.max_attempts == 3  # retries + the first attempt
        assert retry.backoff == 0.25
        assert retry.timeout == 3.0
        assert retry.jitter == 0.0  # scheduler keeps exact instants

    def test_named_policies_are_bounded(self):
        # The worker must fail fast when the coordinator is gone: the
        # whole connect budget (sans jitter) stays under a second so
        # test_worker_fails_fast_when_unreachable stays fast.
        total = sum(WORKER_CONNECT.delay(a)
                    for a in range(WORKER_CONNECT.max_attempts - 1))
        assert total <= 1.0
        assert WORKER_CONNECT.timeout is not None
        assert RESULT_RESEND.max_attempts >= 2
        assert SERVICE_POLL.backoff <= 0.1
