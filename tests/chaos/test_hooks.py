"""Hook-point semantics: rule matching, firing budgets, env transport,
and the generic actions — the contract every instrumented call site
relies on."""

import pytest

from repro.chaos.hooks import (
    CHAOS_ENV,
    ChaosController,
    ChaosRule,
    ChaosSpec,
    activate_from_env,
    active,
    chaos_active,
    chaos_point,
    deactivate,
)


def _spec(*rules):
    return ChaosSpec(scenario="test", seed=0, rules=list(rules))


@pytest.fixture(autouse=True)
def _disarm():
    yield
    deactivate()


class TestConsult:
    def test_inactive_point_is_none(self):
        deactivate()
        assert chaos_point("anywhere", index=1) is None

    def test_match_requires_every_key(self):
        c = ChaosController(_spec(
            ChaosRule(point="p", action="x", match={"index": 2, "attempt": 0})
        ))
        assert c.consult("p", {"index": 2, "attempt": 1}) is None
        assert c.consult("p", {"index": 1, "attempt": 0}) is None
        assert c.consult("p", {"index": 2, "attempt": 0}) is not None

    def test_missing_ctx_key_never_matches(self):
        c = ChaosController(_spec(ChaosRule(point="p", action="x",
                                            match={"index": 2})))
        assert c.consult("p", {}) is None

    def test_point_name_must_match(self):
        c = ChaosController(_spec(ChaosRule(point="p", action="x")))
        assert c.consult("q", {}) is None
        assert c.consult("p", {}) is not None

    def test_count_bounds_firings(self):
        c = ChaosController(_spec(ChaosRule(point="p", action="x", count=2)))
        assert c.consult("p", {}) is not None
        assert c.consult("p", {}) is not None
        assert c.consult("p", {}) is None
        assert c.fired() == 2

    def test_after_skips_matching_occurrences(self):
        c = ChaosController(_spec(ChaosRule(point="p", action="x", after=2)))
        assert c.consult("p", {}) is None
        assert c.consult("p", {}) is None
        assert c.consult("p", {}) is not None

    def test_after_only_counts_matches(self):
        c = ChaosController(_spec(
            ChaosRule(point="p", action="x", match={"k": 1}, after=1)
        ))
        assert c.consult("p", {"k": 2}) is None  # non-match: no skip spent
        assert c.consult("p", {"k": 1}) is None  # the one skip
        assert c.consult("p", {"k": 1}) is not None

    def test_trace_records_scalar_ctx(self):
        c = ChaosController(_spec(ChaosRule(point="p", action="x")))
        c.consult("p", {"index": 3, "blob": object()})
        assert c.trace == [{"point": "p", "action": "x", "index": 3}]


class TestTransport:
    def test_rule_wire_round_trip(self):
        rule = ChaosRule(point="p", action="stall", match={"index": 1},
                         count=3, after=2, seconds=1.5)
        assert ChaosRule.from_wire(rule.to_wire()) == rule

    def test_spec_env_round_trip(self):
        spec = _spec(ChaosRule(point="p", action="drop",
                               match={"kind": "result", "index": 2}))
        back = ChaosSpec.from_env(spec.to_env())
        assert back == spec

    def test_activate_from_env(self):
        spec = _spec(ChaosRule(point="p", action="x"))
        c = activate_from_env({CHAOS_ENV: spec.to_env()})
        assert c is not None and c.spec == spec
        assert active() is c

    def test_activate_from_env_unset_or_garbage_is_safe(self):
        assert activate_from_env({}) is None
        assert activate_from_env({CHAOS_ENV: "not json"}) is None
        assert activate_from_env({CHAOS_ENV: '{"rules": "wat"}'}) is None


class TestActions:
    def test_chaos_active_arms_and_disarms(self):
        spec = _spec(ChaosRule(point="p", action="x"))
        with chaos_active(spec) as controller:
            assert active() is controller
            assert chaos_point("p") is not None
        assert active() is None

    def test_error_action_raises(self):
        with chaos_active(_spec(ChaosRule(point="p", action="error"))):
            with pytest.raises(RuntimeError, match="chaos"):
                chaos_point("p")

    def test_stall_action_sleeps_then_returns(self):
        import time

        rule = ChaosRule(point="p", action="stall", seconds=0.05)
        with chaos_active(_spec(rule)):
            start = time.monotonic()
            assert chaos_point("p") is rule
            assert time.monotonic() - start >= 0.05

    def test_site_specific_action_returned_unperformed(self):
        rule = ChaosRule(point="p", action="lose-write")
        with chaos_active(_spec(rule)):
            assert chaos_point("p") is rule
