"""Property-based tests (hypothesis).

Core invariants:

1. *Transformation equivalence*: for randomly generated straight-line
   and looped programs, native, ELZAR, SWIFT-R and SWIFT executions
   produce identical results.
2. *TMR correction*: a single lane flip in any replicated value never
   changes an ELZAR-hardened program's output.
3. *Majority voting*: recover() fixes every single-lane corruption and
   stops on 2-2 splits.
4. *Memory*: typed round-trips hold for arbitrary values.
5. *Cache/LRU and predictor sanity* under random access streams.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.avx import NoMajorityError, majority_value, ptest_classify, recover
from repro.cpu import Cache, Machine, MachineConfig, Memory
from repro.cpu.interpreter import FaultPlan, _to_signed
from repro.ir import IRBuilder, Module, verify_module
from repro.ir import types as T
from repro.passes import elzar_transform, swift_transform, swiftr_transform

FAST = MachineConfig(collect_timing=False, cache_enabled=False)

INT_OPS = ["add", "sub", "mul", "and", "or", "xor", "shl", "lshr", "ashr"]
DIV_OPS = ["sdiv", "udiv", "srem", "urem"]


def _build_expression_program(ops, consts, use_loop, trip):
    """A random integer kernel: a chain of binary ops folded into a
    reduction loop when ``use_loop``."""
    module = Module("prop")
    fn = module.add_function("main", T.FunctionType(T.I64, (T.I64,)), ["x"])
    b = IRBuilder()
    b.position_at_end(fn.append_block("entry"))
    x = fn.args[0]

    def chain(value, salt):
        for i, (op, c) in enumerate(zip(ops, consts)):
            rhs = b.i64((c + salt * 31 + i) & 0xFFFF | 1)
            if op in DIV_OPS:
                value = b.binop(op, value, rhs)
            else:
                value = b.binop(op, value, rhs)
        return value

    if use_loop:
        loop = b.begin_loop(b.i64(0), b.i64(trip))
        acc = b.loop_phi(loop, x)
        b.set_loop_next(loop, acc, chain(b.add(acc, loop.index), 1))
        b.end_loop(loop)
        result = acc
    else:
        result = chain(x, 0)
    b.ret(result)
    verify_module(module)
    return module


@st.composite
def expression_programs(draw):
    ops = draw(st.lists(st.sampled_from(INT_OPS + DIV_OPS), min_size=1,
                        max_size=6))
    consts = draw(st.lists(st.integers(0, 1 << 16), min_size=len(ops),
                           max_size=len(ops)))
    use_loop = draw(st.booleans())
    trip = draw(st.integers(0, 8))
    return _build_expression_program(ops, consts, use_loop, trip)


class TestTransformEquivalence:
    @given(module=expression_programs(), x=st.integers(0, (1 << 64) - 1))
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_all_schemes_agree(self, module, x):
        native = Machine(module, FAST).run("main", [x]).value
        for transform in (elzar_transform, swiftr_transform, swift_transform):
            hardened = transform(module)
            got = Machine(hardened, FAST).run("main", [x]).value
            assert got == native, transform.__name__

    @given(
        a=st.floats(allow_nan=False, allow_infinity=False, width=64),
        c=st.floats(allow_nan=False, allow_infinity=False, width=64),
    )
    @settings(max_examples=60, deadline=None)
    def test_float_pipeline_agrees(self, a, c):
        module = Module("fp")
        fn = module.add_function("main", T.FunctionType(T.F64, (T.F64,)), ["x"])
        b = IRBuilder()
        b.position_at_end(fn.append_block("entry"))
        y = b.fmul(fn.args[0], b.f64(c))
        z = b.fadd(y, b.f64(1.0))
        cmp = b.fcmp("olt", z, b.f64(0.0))
        b.ret(b.select(cmp, b.fsub(b.f64(0.0), z), z))
        native = Machine(module, FAST).run("main", [a]).value
        for transform in (elzar_transform, swiftr_transform):
            got = Machine(transform(module), FAST).run("main", [a]).value
            assert got == native or (math.isnan(got) and math.isnan(native))


class TestTmrCorrection:
    @given(
        x=st.integers(0, (1 << 32) - 1),
        index=st.integers(0, 40),
        bit=st.integers(0, 63),
        lane=st.integers(0, 3),
    )
    @settings(max_examples=80, deadline=None)
    def test_vector_lane_flips_never_corrupt(self, x, index, bit, lane):
        """Any single SEU in a *replicated* value is outvoted; SDC can
        only arise in the scalar extract window (checked separately)."""
        module = _build_expression_program(
            ["add", "mul", "xor"], [5, 9, 3], True, 5
        )
        hardened = elzar_transform(module)
        golden = Machine(hardened, FAST).run("main", [x]).value
        machine = Machine(hardened, FAST)
        machine.arm_fault(FaultPlan(target_index=index, bit=bit, lane=lane))
        try:
            result = machine.run("main", [x])
        except Exception:
            return  # detected/crash outcomes are acceptable, SDC is not
        if machine.fault_target is not None and machine.fault_target.type.is_vector:
            assert result.value == golden


class TestMajorityProperties:
    @given(
        value=st.integers(0, (1 << 64) - 1),
        lane=st.integers(0, 3),
        corrupt=st.integers(0, (1 << 64) - 1),
    )
    def test_single_corruption_always_recovered(self, value, lane, corrupt):
        lanes = [value] * 4
        lanes[lane] = corrupt
        assert recover(tuple(lanes)) == (value,) * 4 or corrupt == value

    @given(value=st.integers(0, 255), other=st.integers(0, 255))
    def test_two_two_split_raises_iff_distinct(self, value, other):
        lanes = (value, value, other, other)
        if value == other:
            assert majority_value(lanes) == value
        else:
            with pytest.raises(NoMajorityError):
                majority_value(lanes)

    @given(lanes=st.lists(st.integers(0, 1), min_size=4, max_size=4))
    def test_ptest_classify_total(self, lanes):
        kind = ptest_classify(lanes)
        if all(lanes):
            assert kind == 1
        elif not any(lanes):
            assert kind == 0
        else:
            assert kind == 2


class TestMemoryProperties:
    @given(value=st.integers(0, (1 << 64) - 1))
    def test_i64_roundtrip(self, value):
        mem = Memory()
        addr = mem.alloc(8)
        mem.store_scalar(T.I64, addr, value)
        assert mem.load_scalar(T.I64, addr) == value

    @given(value=st.floats(allow_nan=False, width=64))
    def test_f64_roundtrip(self, value):
        mem = Memory()
        addr = mem.alloc(8)
        mem.store_scalar(T.F64, addr, value)
        assert mem.load_scalar(T.F64, addr) == value

    @given(value=st.integers(-(1 << 63), (1 << 63) - 1))
    def test_signed_view_roundtrip(self, value):
        unsigned = value & ((1 << 64) - 1)
        assert _to_signed(unsigned, 64) == value


class TestCacheProperties:
    @given(stream=st.lists(st.integers(0, 63), min_size=1, max_size=300))
    @settings(max_examples=40, deadline=None)
    def test_immediate_rereference_always_hits(self, stream):
        c = Cache(size=4 << 10, assoc=8)
        for line in stream:
            c.access(line)
            assert c.access(line) is True

    @given(stream=st.lists(st.integers(0, 7), min_size=1, max_size=100))
    def test_small_working_set_never_evicts(self, stream):
        c = Cache(size=4 << 10, assoc=8)  # 8 sets x 8 ways
        seen = set()
        for line in stream:
            hit = c.access(line)
            if line in seen:
                assert hit  # 8 distinct lines cannot overflow 64 entries
            seen.add(line)
