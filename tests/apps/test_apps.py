"""Tests for the case-study applications and the YCSB generator."""

import pytest

from repro.apps import (
    OP_INSERT,
    OP_READ,
    OP_UPDATE,
    kvstore,
    sqldb,
    trace_by_name,
    webserver,
    workload_a,
    workload_d,
    zipf_probabilities,
)
from repro.cpu import Machine, MachineConfig
from repro.ir import verify_module
from repro.passes import ElzarOptions, elzar_transform, mem2reg, swiftr_transform
from repro.passes.swiftr import SwiftOptions

FAST = MachineConfig(collect_timing=False)


class TestYcsb:
    def test_workload_a_mix(self):
        trace = workload_a(2000, 128)
        reads = sum(1 for op in trace.ops if op == OP_READ)
        assert 0.4 < reads / len(trace.ops) < 0.6
        assert all(0 <= k < 128 for k in trace.keys)

    def test_workload_a_is_zipfian(self):
        trace = workload_a(5000, 256)
        from collections import Counter

        counts = Counter(trace.keys)
        top = sum(c for _, c in counts.most_common(10))
        assert top > 0.3 * len(trace.keys)  # heavy head

    def test_workload_d_mix_and_latest(self):
        trace = workload_d(2000, 128)
        inserts = sum(1 for op in trace.ops if op == OP_INSERT)
        assert 0.02 < inserts / len(trace.ops) < 0.09
        # Reads concentrate near the most recent keys.
        reads = [(i, k) for i, (o, k) in enumerate(zip(trace.ops, trace.keys))
                 if o == OP_READ]
        late_half = [k for i, k in reads if i > len(trace.ops) // 2]
        assert sum(late_half) / len(late_half) > 100  # keys have grown

    def test_zipf_probabilities_normalized(self):
        p = zipf_probabilities(100)
        assert p.sum() == pytest.approx(1.0)
        assert p[0] > p[10] > p[50]

    def test_trace_by_name(self):
        assert trace_by_name("a", 10, 16).name == "A"
        assert trace_by_name("D", 10, 16).name == "D"
        with pytest.raises(KeyError):
            trace_by_name("B", 10, 16)

    def test_deterministic(self):
        a = workload_a(100, 64)
        b = workload_a(100, 64)
        assert a.keys == b.keys and a.ops == b.ops


class TestKvStore:
    @pytest.fixture(scope="class")
    def app(self):
        trace = workload_a(80, 64)
        app = kvstore.build(trace, table_size=256)
        mem2reg(app.module)
        verify_module(app.module)
        return app

    def test_matches_reference(self, app):
        result = Machine(app.module, FAST).run(app.entry, app.args)
        assert result.output == [app.expected_checksum]

    def test_hardened_matches(self, app):
        hardened = elzar_transform(app.module)
        result = Machine(hardened, FAST).run(app.entry, app.args)
        assert result.output == [app.expected_checksum]

    def test_table_size_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            kvstore.build(workload_a(10, 8), table_size=100)

    def test_throughput_scales_with_threads(self):
        t1 = kvstore.throughput(1000.0, 1)
        t16 = kvstore.throughput(1000.0, 16)
        assert t16 > 6 * t1  # near-linear

    def test_throughput_inverse_in_cost(self):
        assert kvstore.throughput(2000.0, 4) < kvstore.throughput(1000.0, 4)


class TestSqlDb:
    @pytest.fixture(scope="class")
    def app(self):
        trace = workload_a(60, 48)
        app = sqldb.build(trace, tail_capacity=64)
        mem2reg(app.module)
        verify_module(app.module)
        return app

    def test_matches_reference(self, app):
        result = Machine(app.module, FAST).run(app.entry, app.args)
        assert result.output == [app.expected_checksum]

    def test_hardened_matches(self, app):
        hardened = swiftr_transform(app.module)
        result = Machine(hardened, FAST).run(app.entry, app.args)
        assert result.output == [app.expected_checksum]

    def test_workload_d_inserts_found_again(self):
        trace = workload_d(60, 32)
        app = sqldb.build(trace, tail_capacity=64)
        mem2reg(app.module)
        result = Machine(app.module, FAST).run(app.entry, app.args)
        assert result.output == [app.expected_checksum]

    def test_reverse_scalability(self):
        """Figure 15b: SQLite3 throughput *decreases* with threads."""
        t1 = sqldb.throughput(1000.0, 1)
        t8 = sqldb.throughput(1000.0, 8)
        t16 = sqldb.throughput(1000.0, 16)
        assert t1 > t8 > t16


class TestWebServer:
    @pytest.fixture(scope="class")
    def app(self):
        app = webserver.build(nrequests=10, page_size=1024)
        mem2reg(app.module)
        verify_module(app.module)
        return app

    def test_matches_reference(self, app):
        result = Machine(app.module, FAST).run(app.entry, app.args)
        assert result.output == [app.expected_checksum]

    def test_sendfile_left_unhardened(self, app):
        hardened = elzar_transform(
            app.module, ElzarOptions(exclude=webserver.THIRD_PARTY)
        )
        verify_module(hardened)
        assert hardened.get_function("sendfile").hardened is None
        assert hardened.get_function("main").hardened == "elzar"
        result = Machine(hardened, FAST).run(app.entry, app.args)
        assert result.output == [app.expected_checksum]

    def test_unhardened_share_keeps_overhead_low(self, app):
        """§VI: Apache's third-party share keeps ELZAR near native."""
        full = elzar_transform(app.module)
        partial = elzar_transform(
            app.module, ElzarOptions(exclude=webserver.THIRD_PARTY)
        )
        cfg = MachineConfig()
        native = Machine(app.module, cfg).run(app.entry, app.args).cycles
        full_c = Machine(full, cfg).run(app.entry, app.args).cycles
        partial_c = Machine(partial, cfg).run(app.entry, app.args).cycles
        assert partial_c < full_c
        assert partial_c / native < 1.6  # ~85% of native throughput

    def test_throughput_scales(self):
        assert webserver.throughput(1000.0, 16) > 6 * webserver.throughput(1000.0, 1)
