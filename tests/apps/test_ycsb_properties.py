"""Property-based tests for the YCSB trace generator."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import OP_INSERT, OP_READ, OP_UPDATE, workload_a, workload_d


class TestWorkloadAProperties:
    @given(nops=st.integers(10, 500), keyspace=st.integers(4, 256),
           seed=st.integers(0, 1 << 16))
    @settings(max_examples=40, deadline=None)
    def test_keys_in_range_and_ops_valid(self, nops, keyspace, seed):
        trace = workload_a(nops, keyspace, seed=seed)
        assert len(trace.ops) == len(trace.keys) == nops
        assert all(0 <= k < keyspace for k in trace.keys)
        assert set(trace.ops) <= {OP_READ, OP_UPDATE}
        assert trace.keyspace == keyspace

    @given(seed=st.integers(0, 1 << 16))
    @settings(max_examples=20, deadline=None)
    def test_zipf_head_heavier_than_tail(self, seed):
        trace = workload_a(3000, 128, seed=seed)
        from collections import Counter

        counts = Counter(trace.keys)
        head = sum(counts.get(k, 0) for k in range(8))
        tail = sum(counts.get(k, 0) for k in range(120, 128))
        assert head > tail


class TestWorkloadDProperties:
    @given(nops=st.integers(20, 500), keyspace=st.integers(4, 128),
           seed=st.integers(0, 1 << 16))
    @settings(max_examples=40, deadline=None)
    def test_inserts_extend_keyspace_monotonically(self, nops, keyspace, seed):
        trace = workload_d(nops, keyspace, seed=seed)
        newest = keyspace - 1
        for op, key in zip(trace.ops, trace.keys):
            if op == OP_INSERT:
                assert key == newest + 1  # strictly fresh keys
                newest = key
            else:
                assert op == OP_READ
                assert 0 <= key <= newest  # can only read what exists

    @given(seed=st.integers(0, 1 << 16))
    @settings(max_examples=20, deadline=None)
    def test_reads_prefer_recent_keys(self, seed):
        trace = workload_d(2000, 64, seed=seed)
        newest = 63
        gaps = []
        for op, key in zip(trace.ops, trace.keys):
            if op == OP_INSERT:
                newest = key
            else:
                gaps.append(newest - key)
        assert sum(gaps) / len(gaps) < 20  # geometric(0.15) mean ~5.7
