"""Shared fixtures and IR-building helpers for the test suite."""

from __future__ import annotations

import os

import pytest

from repro.cpu import Machine, MachineConfig
from repro.ir import IRBuilder, Module
from repro.ir import types as T


@pytest.fixture(autouse=True, scope="session")
def _isolated_lab_store(tmp_path_factory):
    """Point the durable campaign store (repro.lab) at a per-session
    temp file so tests never read or pollute the user-level store."""
    path = tmp_path_factory.mktemp("lab-store") / "store.sqlite"
    previous = os.environ.get("REPRO_LAB_STORE")
    os.environ["REPRO_LAB_STORE"] = str(path)
    yield
    if previous is None:
        os.environ.pop("REPRO_LAB_STORE", None)
    else:
        os.environ["REPRO_LAB_STORE"] = previous


@pytest.fixture(autouse=True, scope="session")
def _isolated_toolchain_cache(tmp_path_factory):
    """Point the toolchain artifact cache (repro.toolchain) at a
    per-session temp dir so tests never read or pollute the user-level
    cache. One dir for the whole session: later tests legitimately
    rehydrate artifacts stored by earlier ones (that path has its own
    dedicated tests)."""
    path = tmp_path_factory.mktemp("toolchain-cache")
    previous = os.environ.get("REPRO_TOOLCHAIN_CACHE")
    os.environ["REPRO_TOOLCHAIN_CACHE"] = str(path)
    yield
    if previous is None:
        os.environ.pop("REPRO_TOOLCHAIN_CACHE", None)
    else:
        os.environ["REPRO_TOOLCHAIN_CACHE"] = previous


@pytest.fixture
def fast_config() -> MachineConfig:
    """Machine config for semantic tests: no timing, no caches."""
    return MachineConfig(collect_timing=False, cache_enabled=False)


@pytest.fixture
def timed_config() -> MachineConfig:
    return MachineConfig(collect_timing=True, cache_enabled=True)


def make_function(module: Module, name: str, ret, params, arg_names=None):
    """Create a function + builder positioned at a fresh entry block."""
    fn = module.add_function(name, T.FunctionType(ret, tuple(params)), arg_names)
    builder = IRBuilder()
    builder.position_at_end(fn.append_block("entry"))
    return fn, builder


def run_scalar(module: Module, name: str, args=(), config=None):
    """Run a function on a fresh machine; returns the scalar result."""
    machine = Machine(module, config or MachineConfig(collect_timing=False,
                                                      cache_enabled=False))
    return machine.run(name, args).value


def build_expr_fn(ret_ty, body):
    """Single-function module: ``body(builder, args) -> value to ret``."""
    module = Module("expr")
    fn, b = make_function(module, "f", ret_ty, [])
    b.ret(body(b))
    return module
