"""Tests for the loop auto-vectorizer."""

import pytest

from repro.cpu import Machine, MachineConfig
from repro.ir import Module, verify_module
from repro.ir import types as T
from repro.ir.instructions import LoadInst, StoreInst
from repro.passes import clone_module
from repro.passes.vectorize import vectorize, vectorize_function

from ..conftest import make_function, run_scalar


def map_kernel(n=37):
    """out[i] = a[i] * 2 + 1 — a plainly vectorizable loop."""
    module = Module("m")
    module.add_global("a", T.ArrayType(T.I64, 64), list(range(64)))
    module.add_global("out", T.ArrayType(T.I64, 64))
    fn, b = make_function(module, "main", T.I64, [T.I64])
    a = module.get_global("a")
    out = module.get_global("out")
    loop = b.begin_loop(b.i64(0), fn.args[0])
    x = b.load(T.I64, b.gep(T.I64, a, loop.index))
    y = b.add(b.mul(x, b.i64(2)), b.i64(1))
    b.store(y, b.gep(T.I64, out, loop.index))
    b.end_loop(loop)
    b.ret(b.load(T.I64, b.gep(T.I64, out, b.i64(5))))
    return module


def reduction_kernel():
    module = Module("m")
    module.add_global("a", T.ArrayType(T.F64, 64), [float(i % 9) for i in range(64)])
    fn, b = make_function(module, "main", T.F64, [T.I64])
    a = module.get_global("a")
    loop = b.begin_loop(b.i64(0), fn.args[0])
    acc = b.loop_phi(loop, b.f64(3.0))
    x = b.load(T.F64, b.gep(T.F64, a, loop.index))
    b.set_loop_next(loop, acc, b.fadd(acc, x))
    b.end_loop(loop)
    b.ret(acc)
    return module


class TestLegality:
    def test_map_loop_vectorized(self):
        module = map_kernel()
        assert vectorize_function(module.get_function("main")) == 1
        verify_module(module)

    def test_reduction_vectorized(self):
        module = reduction_kernel()
        assert vectorize_function(module.get_function("main")) == 1
        verify_module(module)

    def test_indirect_access_rejected(self):
        """histogram's bins[pixel] pattern must not vectorize."""
        module = Module("m")
        module.add_global("a", T.ArrayType(T.I64, 64), list(range(64)))
        module.add_global("bins", T.ArrayType(T.I64, 64))
        fn, b = make_function(module, "main", T.VOID, [T.I64])
        a = module.get_global("a")
        bins = module.get_global("bins")
        loop = b.begin_loop(b.i64(0), fn.args[0])
        x = b.load(T.I64, b.gep(T.I64, a, loop.index))
        slot = b.gep(T.I64, bins, x)  # data-dependent index
        b.store(b.add(b.load(T.I64, slot), b.i64(1)), slot)
        b.end_loop(loop)
        b.ret_void()
        assert vectorize_function(module.get_function("main")) == 0

    def test_call_in_body_rejected(self):
        module = Module("m")
        from repro.cpu.intrinsics import rt_print_i64

        p = rt_print_i64(module)
        fn, b = make_function(module, "main", T.VOID, [T.I64])
        loop = b.begin_loop(b.i64(0), fn.args[0])
        b.call(p, [loop.index])
        b.end_loop(loop)
        b.ret_void()
        assert vectorize_function(module.get_function("main")) == 0

    def test_multiblock_body_rejected(self):
        module = Module("m")
        fn, b = make_function(module, "main", T.I64, [T.I64])
        loop = b.begin_loop(b.i64(0), fn.args[0])
        acc = b.loop_phi(loop, b.i64(0))
        c = b.icmp("eq", b.and_(loop.index, b.i64(1)), b.i64(0))
        state = b.begin_if(c)
        b.end_if(state)
        b.set_loop_next(loop, acc, b.add(acc, b.i64(1)))
        b.end_loop(loop)
        b.ret(acc)
        assert vectorize_function(module.get_function("main")) == 0

    def test_potentially_aliasing_store_rejected(self):
        """Same array loaded and stored -> stay scalar."""
        module = Module("m")
        module.add_global("a", T.ArrayType(T.I64, 64), list(range(64)))
        fn, b = make_function(module, "main", T.VOID, [T.I64])
        a = module.get_global("a")
        loop = b.begin_loop(b.i64(0), fn.args[0])
        x = b.load(T.I64, b.gep(T.I64, a, loop.index))
        b.store(b.add(x, b.i64(1)), b.gep(T.I64, a, loop.index))
        b.end_loop(loop)
        b.ret_void()
        assert vectorize_function(module.get_function("main")) == 0

    def test_non_unit_step_rejected(self):
        module = Module("m")
        module.add_global("a", T.ArrayType(T.I64, 64), list(range(64)))
        fn, b = make_function(module, "main", T.I64, [T.I64])
        a = module.get_global("a")
        loop = b.begin_loop(b.i64(0), fn.args[0], step=b.i64(2))
        acc = b.loop_phi(loop, b.i64(0))
        x = b.load(T.I64, b.gep(T.I64, a, loop.index))
        b.set_loop_next(loop, acc, b.add(acc, x))
        b.end_loop(loop)
        b.ret(acc)
        assert vectorize_function(module.get_function("main")) == 0


class TestSemantics:
    @pytest.mark.parametrize("n", [0, 1, 3, 4, 5, 37, 64])
    def test_map_results_identical(self, n, fast_config):
        base = map_kernel()
        vec = vectorize(clone_module(base))
        # Compare whole output arrays.
        m1 = Machine(base, fast_config)
        m1.run("main", [n])
        m2 = Machine(vec, fast_config)
        m2.run("main", [n])
        assert m1.read_global("out") == m2.read_global("out")

    @pytest.mark.parametrize("n", [0, 1, 4, 7, 31, 64])
    def test_reduction_results_identical(self, n, fast_config):
        base = reduction_kernel()
        vec = vectorize(clone_module(base))
        # FP reassociation: vector reduction sums in a different order,
        # so allow tiny tolerance.
        r1 = run_scalar(base, "main", [n], fast_config)
        r2 = run_scalar(vec, "main", [n], fast_config)
        assert r2 == pytest.approx(r1, rel=1e-12)

    def test_vector_loads_emitted(self):
        module = map_kernel()
        vectorize(module)
        fn = module.get_function("main")
        assert any(
            isinstance(i, LoadInst) and i.type.is_vector for i in fn.instructions()
        )
        assert any(
            isinstance(i, StoreInst) and i.value.type.is_vector
            for i in fn.instructions()
        )

    def test_speedup_on_large_input(self):
        base = map_kernel()
        vec = vectorize(clone_module(base))
        cfg = MachineConfig()
        c1 = Machine(base, cfg).run("main", [64]).cycles
        c2 = Machine(vec, cfg).run("main", [64]).cycles
        assert c2 < c1


class TestEdgeCases:
    def test_mul_reduction(self, fast_config):
        module = Module("m")
        module.add_global("a", T.ArrayType(T.I64, 16), [(i % 3) + 1 for i in range(16)])
        fn, b = make_function(module, "main", T.I64, [T.I64])
        a = module.get_global("a")
        loop = b.begin_loop(b.i64(0), fn.args[0])
        acc = b.loop_phi(loop, b.i64(1))
        x = b.load(T.I64, b.gep(T.I64, a, loop.index))
        b.set_loop_next(loop, acc, b.mul(acc, x))
        b.end_loop(loop)
        b.ret(acc)
        base = run_scalar(module, "main", [13], fast_config)
        vec = vectorize(clone_module(module))
        verify_module(vec)
        assert run_scalar(vec, "main", [13], fast_config) == base

    def test_xor_and_or_reductions(self, fast_config):
        for opcode in ("xor", "and", "or"):
            module = Module("m")
            module.add_global(
                "a", T.ArrayType(T.I64, 32), [(i * 2654435761) % 977 for i in range(32)]
            )
            fn, b = make_function(module, "main", T.I64, [T.I64])
            a = module.get_global("a")
            loop = b.begin_loop(b.i64(0), fn.args[0])
            init = b.i64((1 << 64) - 1) if opcode == "and" else b.i64(0)
            acc = b.loop_phi(loop, init)
            x = b.load(T.I64, b.gep(T.I64, a, loop.index))
            b.set_loop_next(loop, acc, b.binop(opcode, acc, x))
            b.end_loop(loop)
            b.ret(acc)
            base = run_scalar(module, "main", [29], fast_config)
            vec = vectorize(clone_module(module))
            verify_module(vec)
            assert run_scalar(vec, "main", [29], fast_config) == base, opcode

    def test_non_constant_reduction_init(self, fast_config):
        """Init from a function argument: inserted into lane 0 in the
        preheader."""
        module = Module("m")
        module.add_global("a", T.ArrayType(T.I64, 32), list(range(32)))
        fn, b = make_function(module, "main", T.I64, [T.I64, T.I64])
        a = module.get_global("a")
        loop = b.begin_loop(b.i64(0), fn.args[0])
        acc = b.loop_phi(loop, fn.args[1])
        x = b.load(T.I64, b.gep(T.I64, a, loop.index))
        b.set_loop_next(loop, acc, b.add(acc, x))
        b.end_loop(loop)
        b.ret(acc)
        base = run_scalar(module, "main", [19, 1000], fast_config)
        vec = vectorize(clone_module(module))
        verify_module(vec)
        assert run_scalar(vec, "main", [19, 1000], fast_config) == base

    def test_negative_trip_count(self, fast_config):
        module = map_kernel()
        vec = vectorize(clone_module(module))
        m1 = Machine(module, fast_config)
        m1.run("main", [(-5) & ((1 << 64) - 1)])
        m2 = Machine(vec, fast_config)
        m2.run("main", [(-5) & ((1 << 64) - 1)])
        assert m1.read_global("out") == m2.read_global("out")

    def test_loop_index_used_in_computation(self, fast_config):
        """out[i] = a[i] * i — the index feeds arithmetic, which the
        vectorizer materializes as <i, i+1, i+2, i+3>."""
        module = Module("m")
        module.add_global("a", T.ArrayType(T.I64, 64), [3] * 64)
        module.add_global("out", T.ArrayType(T.I64, 64))
        fn, b = make_function(module, "main", T.VOID, [T.I64])
        a = module.get_global("a")
        out = module.get_global("out")
        loop = b.begin_loop(b.i64(0), fn.args[0])
        x = b.load(T.I64, b.gep(T.I64, a, loop.index))
        b.store(b.mul(x, loop.index), b.gep(T.I64, out, loop.index))
        b.end_loop(loop)
        b.ret_void()
        vec = vectorize(clone_module(module))
        verify_module(vec)
        m1 = Machine(module, fast_config)
        m1.run("main", [37])
        m2 = Machine(vec, fast_config)
        m2.run("main", [37])
        assert m1.read_global("out") == m2.read_global("out")
        assert m1.read_global("out")[5] == 15

    def test_two_loops_in_one_function(self, fast_config):
        module = Module("m")
        module.add_global("a", T.ArrayType(T.I64, 32), list(range(32)))
        module.add_global("b2", T.ArrayType(T.I64, 32))
        fn, b = make_function(module, "main", T.I64, [T.I64])
        a = module.get_global("a")
        b2 = module.get_global("b2")
        loop1 = b.begin_loop(b.i64(0), fn.args[0])
        x = b.load(T.I64, b.gep(T.I64, a, loop1.index))
        b.store(b.add(x, b.i64(1)), b.gep(T.I64, b2, loop1.index))
        b.end_loop(loop1)
        loop2 = b.begin_loop(b.i64(0), fn.args[0])
        acc = b.loop_phi(loop2, b.i64(0))
        y = b.load(T.I64, b.gep(T.I64, b2, loop2.index))
        b.set_loop_next(loop2, acc, b.add(acc, y))
        b.end_loop(loop2)
        b.ret(acc)
        from repro.passes.vectorize import vectorize_function

        base = run_scalar(module, "main", [30], fast_config)
        vec = clone_module(module)
        assert vectorize_function(vec.get_function("main")) == 2
        verify_module(vec)
        assert run_scalar(vec, "main", [30], fast_config) == base

    def test_float_loop_bound_from_argument(self, fast_config):
        """Bound is an argument (not a constant) — still canonical."""
        module = reduction_kernel()
        vec = vectorize(clone_module(module))
        verify_module(vec)
        import pytest as _pytest

        assert run_scalar(vec, "main", [50], fast_config) == _pytest.approx(
            run_scalar(module, "main", [50], fast_config), rel=1e-12
        )
