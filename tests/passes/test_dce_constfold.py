"""Tests for dead code elimination and constant folding."""

from repro.ir import IRBuilder, Module, verify_module
from repro.ir import types as T
from repro.ir.instructions import BinaryInst, ICmpInst
from repro.ir.values import Constant
from repro.passes import constant_folding, dce, dce_function, fold_function
from repro.passes.utils import remove_unreachable_blocks

from ..conftest import make_function, run_scalar


class TestDCE:
    def test_unused_pure_instruction_removed(self):
        module = Module("m")
        fn, b = make_function(module, "f", T.I64, [T.I64])
        b.add(fn.args[0], b.i64(1))  # dead
        b.ret(fn.args[0])
        removed = dce_function(fn)
        assert removed == 1
        assert len(fn.entry.instructions) == 1

    def test_dead_chain_removed_iteratively(self):
        module = Module("m")
        fn, b = make_function(module, "f", T.I64, [T.I64])
        x = b.add(fn.args[0], b.i64(1))
        y = b.mul(x, b.i64(2))
        b.xor(y, b.i64(3))  # dead, keeps x and y alive until removed
        b.ret(fn.args[0])
        assert dce_function(fn) == 3

    def test_side_effects_kept(self, fast_config):
        module = Module("m")
        module.add_global("g", T.I64)
        fn, b = make_function(module, "f", T.I64, [])
        b.store(b.i64(5), module.get_global("g"))  # must stay
        b.load(T.I64, module.get_global("g"))      # load result unused but may fault: kept
        b.ret(b.i64(0))
        dce_function(fn)
        opcodes = [i.opcode for i in fn.entry.instructions]
        assert "store" in opcodes and "load" in opcodes

    def test_trapping_div_kept(self):
        module = Module("m")
        fn, b = make_function(module, "f", T.I64, [T.I64])
        b.sdiv(b.i64(1), fn.args[0])  # unused but can trap
        b.ret(b.i64(0))
        dce_function(fn)
        assert any(i.opcode == "sdiv" for i in fn.entry.instructions)

    def test_unreachable_blocks_removed_and_phis_fixed(self, fast_config):
        module = Module("m")
        fn, b = make_function(module, "f", T.I64, [T.I64])
        merge = fn.append_block("merge")
        dead = fn.append_block("dead")
        b.br(merge)
        b.position_at_end(dead)
        b.br(merge)
        b.position_at_end(merge)
        phi = b.phi(T.I64)
        phi.add_incoming(b.i64(1), fn.entry)
        phi.add_incoming(b.i64(2), dead)
        b.ret(phi)
        removed = remove_unreachable_blocks(fn)
        assert removed == 1
        verify_module(module)
        assert run_scalar(module, "f", [0], fast_config) == 1


class TestConstantFolding:
    def test_binary_folded(self):
        module = Module("m")
        fn, b = make_function(module, "f", T.I64, [])
        x = b.add(b.i64(2), b.i64(3))
        y = b.mul(x, b.i64(4))
        b.ret(y)
        folded = fold_function(fn)
        assert folded == 2
        ret = fn.entry.instructions[-1]
        assert isinstance(ret.value, Constant) and ret.value.value == 20

    def test_division_by_zero_not_folded(self):
        module = Module("m")
        fn, b = make_function(module, "f", T.I64, [])
        b.ret(b.sdiv(b.i64(1), b.i64(0)))
        assert fold_function(fn) == 0

    def test_icmp_folded(self):
        module = Module("m")
        fn, b = make_function(module, "f", T.I1, [])
        b.ret(b.icmp("slt", b.i64(-1), b.i64(0)))
        fold_function(fn)
        ret = fn.entry.instructions[-1]
        assert isinstance(ret.value, Constant) and ret.value.value == 1

    def test_fcmp_and_float_fold(self):
        module = Module("m")
        fn, b = make_function(module, "f", T.F64, [])
        x = b.fadd(b.f64(1.5), b.f64(2.5))
        c = b.fcmp("ogt", x, b.f64(3.0))
        b.ret(b.select(c, x, b.f64(0.0)))
        fold_function(fn)
        ret = fn.entry.instructions[-1]
        assert isinstance(ret.value, Constant) and ret.value.value == 4.0

    def test_cast_folded(self):
        module = Module("m")
        fn, b = make_function(module, "f", T.I64, [])
        b.ret(b.zext(b.trunc(b.i64(0x1FF), T.I8), T.I64))
        fold_function(fn)
        ret = fn.entry.instructions[-1]
        assert isinstance(ret.value, Constant) and ret.value.value == 0xFF

    def test_vector_fold(self):
        module = Module("m")
        v4 = T.vector(T.I64, 4)
        fn, b = make_function(module, "f", T.I64, [])
        s = b.add(Constant(v4, (1, 2, 3, 4)), Constant(v4, (10, 20, 30, 40)))
        b.ret(b.extractelement(s, b.i64(1)))
        fold_function(fn)
        # The add folded; extract remains (not a folded opcode).
        assert not any(i.opcode == "add" for i in fn.entry.instructions)

    def test_semantics_preserved(self, fast_config):
        module = Module("m")
        fn, b = make_function(module, "f", T.I64, [T.I64])
        x = b.mul(b.add(b.i64(3), b.i64(4)), b.i64(2))
        b.ret(b.add(fn.args[0], x))
        before = run_scalar(module, "f", [100], fast_config)
        constant_folding(module)
        verify_module(module)
        assert run_scalar(module, "f", [100], fast_config) == before == 114


class TestPassManager:
    def test_ordering_and_verification(self):
        from repro.passes import PassManager, dce, mem2reg

        module = Module("m")
        fn, b = make_function(module, "f", T.I64, [T.I64])
        slot = b.alloca(T.I64)
        b.store(fn.args[0], slot)
        b.add(b.i64(1), b.i64(2))  # dead
        b.ret(b.load(T.I64, slot))
        pm = PassManager(verify_each=True)
        pm.add(mem2reg).add(constant_folding).add(dce)
        pm.run(module)
        assert pm.pass_names == ["mem2reg", "constant_folding", "dce"]
        assert len(list(fn.instructions())) == 1  # just the ret

    def test_broken_pass_reported(self):
        from repro.passes import PassManager

        def breaker(module):
            fn = module.get_function("f")
            fn.entry.instructions.pop()  # drop terminator
            return module

        module = Module("m")
        fn, b = make_function(module, "f", T.VOID, [])
        b.ret_void()
        pm = PassManager(verify_each=True)
        pm.add(breaker, "breaker")
        import pytest

        with pytest.raises(RuntimeError, match="breaker"):
            pm.run(module)
