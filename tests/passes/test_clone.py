"""Tests for function/module cloning."""

from repro.ir import Module, format_module, verify_module
from repro.ir import types as T
from repro.passes import clone_module

from ..conftest import make_function, run_scalar


def build_module():
    module = Module("orig")
    module.add_global("g", T.ArrayType(T.I64, 8), list(range(8)))
    callee, cb = make_function(module, "leaf", T.I64, [T.I64])
    cb.ret(cb.mul(callee.args[0], callee.args[0]))
    fn, b = make_function(module, "main", T.I64, [T.I64])
    g = module.get_global("g")
    loop = b.begin_loop(b.i64(0), fn.args[0])
    acc = b.loop_phi(loop, b.i64(0))
    x = b.load(T.I64, b.gep(T.I64, g, loop.index))
    b.set_loop_next(loop, acc, b.add(acc, b.call(callee, [x])))
    b.end_loop(loop)
    b.ret(acc)
    return module


class TestCloneModule:
    def test_clone_verifies_and_matches_text(self):
        original = build_module()
        clone = clone_module(original)
        verify_module(clone)
        assert format_module(clone).replace(clone.name, "X") == \
            format_module(original).replace(original.name, "X")

    def test_clone_is_independent(self, fast_config):
        original = build_module()
        clone = clone_module(original)
        # Mutate the clone; the original is unaffected.
        clone.get_function("main").blocks[0].instructions.pop(0)
        assert run_scalar(original, "main", [8], fast_config) == sum(
            i * i for i in range(8)
        )

    def test_calls_remapped_to_clone(self):
        original = build_module()
        clone = clone_module(original)
        from repro.ir.instructions import CallInst

        for inst in clone.get_function("main").instructions():
            if isinstance(inst, CallInst):
                assert inst.callee is clone.get_function("leaf")
                assert inst.callee is not original.get_function("leaf")

    def test_same_behaviour(self, fast_config):
        original = build_module()
        clone = clone_module(original)
        assert (
            run_scalar(clone, "main", [8], fast_config)
            == run_scalar(original, "main", [8], fast_config)
        )

    def test_globals_shared_by_object(self):
        original = build_module()
        clone = clone_module(original)
        assert clone.get_global("g") is original.get_global("g")
