"""Tests for mem2reg SSA promotion."""

from repro.cpu import Machine, MachineConfig
from repro.ir import IRBuilder, Module, verify_module
from repro.ir import types as T
from repro.ir.instructions import AllocaInst, LoadInst, PhiInst, StoreInst
from repro.passes import mem2reg, promote_function

from ..conftest import make_function, run_scalar


def count_op(fn, cls):
    return sum(1 for i in fn.instructions() if isinstance(i, cls))


class TestPromotion:
    def test_straightline_promoted(self, fast_config):
        module = Module("m")
        fn, b = make_function(module, "f", T.I64, [T.I64])
        slot = b.alloca(T.I64)
        b.store(fn.args[0], slot)
        v = b.load(T.I64, slot)
        b.ret(b.add(v, b.i64(1)))
        assert promote_function(fn) == 1
        verify_module(module)
        assert count_op(fn, AllocaInst) == 0
        assert count_op(fn, LoadInst) == 0
        assert count_op(fn, StoreInst) == 0
        assert run_scalar(module, "f", [41], fast_config) == 42

    def test_diamond_gets_phi(self, fast_config):
        module = Module("m")
        fn, b = make_function(module, "f", T.I64, [T.I64])
        slot = b.alloca(T.I64)
        cond = b.icmp("sgt", fn.args[0], b.i64(0))
        state = b.begin_if(cond, with_else=True)
        b.store(b.i64(10), slot)
        b.begin_else(state)
        b.store(b.i64(20), slot)
        b.end_if(state)
        b.ret(b.load(T.I64, slot))
        promote_function(fn)
        verify_module(module)
        assert count_op(fn, PhiInst) == 1
        assert run_scalar(module, "f", [1], fast_config) == 10
        assert run_scalar(module, "f", [-1], fast_config) == 20

    def test_loop_carried_value(self, fast_config):
        module = Module("m")
        fn, b = make_function(module, "f", T.I64, [T.I64])
        slot = b.alloca(T.I64)
        b.store(b.i64(0), slot)
        loop = b.begin_loop(b.i64(0), fn.args[0])
        cur = b.load(T.I64, slot)
        b.store(b.add(cur, loop.index), slot)
        b.end_loop(loop)
        b.ret(b.load(T.I64, slot))
        promote_function(fn)
        verify_module(module)
        assert count_op(fn, AllocaInst) == 0
        assert run_scalar(module, "f", [10], fast_config) == 45

    def test_uninitialized_load_reads_zero(self, fast_config):
        module = Module("m")
        fn, b = make_function(module, "f", T.I64, [])
        slot = b.alloca(T.I64)
        b.ret(b.load(T.I64, slot))
        promote_function(fn)
        verify_module(module)
        assert run_scalar(module, "f", (), fast_config) == 0

    def test_result_semantics_preserved_on_kernel(self, fast_config):
        """The dedup-style pattern: an alloca written in nested control
        flow and read after the loop."""
        module = Module("m")
        fn, b = make_function(module, "f", T.I64, [T.I64])
        flag = b.alloca(T.I64)
        b.store(b.i64(0), flag)
        loop = b.begin_loop(b.i64(0), fn.args[0])
        is_seven = b.icmp("eq", loop.index, b.i64(7))
        state = b.begin_if(is_seven)
        b.store(b.i64(1), flag)
        b.end_if(state)
        b.end_loop(loop)
        b.ret(b.load(T.I64, flag))
        promote_function(fn)
        verify_module(module)
        assert run_scalar(module, "f", [10], fast_config) == 1
        assert run_scalar(module, "f", [5], fast_config) == 0


class TestNonPromotable:
    def test_escaping_alloca_kept(self, fast_config):
        module = Module("m")
        callee, cb = make_function(module, "sink", T.VOID, [T.PTR])
        cb.store(cb.i64(5), callee.args[0])
        cb.ret_void()
        fn, b = make_function(module, "f", T.I64, [])
        slot = b.alloca(T.I64)
        b.store(b.i64(1), slot)
        b.call(callee, [slot])
        b.ret(b.load(T.I64, slot))
        promoted = promote_function(fn)
        assert promoted == 0
        assert count_op(fn, AllocaInst) == 1
        assert run_scalar(module, "f", (), fast_config) == 5

    def test_gep_addressed_alloca_kept(self):
        module = Module("m")
        fn, b = make_function(module, "f", T.I64, [])
        slot = b.alloca(T.I64, count=4)
        p = b.gep(T.I64, slot, b.i64(2))
        b.store(b.i64(1), p)
        b.ret(b.load(T.I64, p))
        assert promote_function(fn) == 0

    def test_aggregate_alloca_kept(self):
        module = Module("m")
        fn, b = make_function(module, "f", T.VOID, [])
        b.alloca(T.ArrayType(T.I64, 4))
        b.ret_void()
        assert promote_function(fn) == 0

    def test_stored_pointer_value_kept(self):
        """Storing the alloca's *address* somewhere disqualifies it."""
        module = Module("m")
        module.add_global("g", T.PTR)
        fn, b = make_function(module, "f", T.VOID, [])
        slot = b.alloca(T.I64)
        b.store(slot, module.get_global("g"))
        b.ret_void()
        assert promote_function(fn) == 0


class TestModulePass:
    def test_mem2reg_runs_on_all_functions(self, fast_config):
        module = Module("m")
        for name in ("a", "b"):
            fn, b = make_function(module, name, T.I64, [T.I64])
            slot = b.alloca(T.I64)
            b.store(fn.args[0], slot)
            b.ret(b.load(T.I64, slot))
        mem2reg(module)
        for name in ("a", "b"):
            assert count_op(module.get_function(name), AllocaInst) == 0
        verify_module(module)
