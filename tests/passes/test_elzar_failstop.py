"""Tests for the fail-stop (detection-only) ELZAR ablation."""

import pytest

from repro.cpu import DetectedError, Machine, MachineConfig
from repro.cpu.interpreter import FaultPlan
from repro.faults import CampaignConfig, Outcome, run_campaign
from repro.ir import verify_module
from repro.ir.instructions import CallInst
from repro.passes import ElzarOptions, elzar_transform, mem2reg
from repro.workloads import get

from .test_elzar import sum_kernel

FAST = MachineConfig(collect_timing=False)


class TestFailStopStructure:
    def test_dmr_intrinsics_emitted(self):
        hardened = elzar_transform(sum_kernel(), ElzarOptions(fail_stop=True))
        verify_module(hardened)
        fn = hardened.get_function("main")
        names = {
            i.callee.name.rsplit(".", 1)[0]
            for i in fn.instructions() if isinstance(i, CallInst)
        }
        assert "elzar.check_dmr" in names
        assert "elzar.branch_cond_dmr" in names
        assert "elzar.check" not in names

    def test_faultfree_behaviour_identical(self, fast_config):
        base = sum_kernel()
        tmr = elzar_transform(base)
        dmr = elzar_transform(base, ElzarOptions(fail_stop=True))
        a = Machine(tmr, fast_config).run("main", [32]).value
        b = Machine(dmr, fast_config).run("main", [32]).value
        assert a == b

    def test_same_fast_path_cost(self):
        """Detection and recovery share the fast path (the shuffle-xor-
        ptest sequence); only the slow path differs (§III-C: recovery
        'does not need to be optimized for speed')."""
        base = sum_kernel()
        tmr = elzar_transform(base)
        dmr = elzar_transform(base, ElzarOptions(fail_stop=True))
        c1 = Machine(tmr).run("main", [32]).cycles
        c2 = Machine(dmr).run("main", [32]).cycles
        assert c2 == pytest.approx(c1, rel=0.01)


class TestFailStopBehaviour:
    def test_lane_fault_stops_instead_of_correcting(self):
        hardened = elzar_transform(sum_kernel(), ElzarOptions(fail_stop=True))
        detections = corrections = 0
        for index in range(0, 120, 3):
            machine = Machine(hardened, FAST)
            machine.arm_fault(FaultPlan(target_index=index, bit=5, lane=1))
            try:
                machine.run("main", [32])
            except DetectedError:
                detections += 1
            corrections += machine.counters.corrections
        assert detections > 0
        assert corrections == 0  # never silently repairs

    def test_campaign_detects_instead_of_correcting(self):
        built = get("linear_regression").build_at("test")
        base = mem2reg(built.module)
        dmr = elzar_transform(base, ElzarOptions(fail_stop=True))
        result = run_campaign(
            dmr, built.entry, built.args, "linreg", "elzar-dmr",
            CampaignConfig(injections=60, seed=3),
        )
        assert result.counts[Outcome.DETECTED] > 0
        assert result.counts[Outcome.CORRECTED] == 0
        # Detection-only still slashes SDC relative to native.
        native = run_campaign(
            base, built.entry, built.args, "linreg", "native",
            CampaignConfig(injections=60, seed=3),
        )
        assert result.sdc_rate < native.sdc_rate
