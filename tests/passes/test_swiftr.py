"""Tests for the SWIFT-R (TMR) and SWIFT (DMR) transformations."""

import pytest

from repro.cpu import DetectedError, Machine, MachineConfig
from repro.cpu.interpreter import FaultPlan
from repro.ir import Module, verify_module
from repro.ir import types as T
from repro.ir.instructions import BinaryInst, CallInst, LoadInst
from repro.passes import SwiftOptions, swift_transform, swiftr_transform

from ..conftest import make_function, run_scalar
from .test_elzar import sum_kernel


class TestStructure:
    def test_verifies_and_marks(self):
        hardened = swiftr_transform(sum_kernel())
        verify_module(hardened)
        assert hardened.get_function("main").hardened == "swiftr"

    def test_compute_triplicated(self):
        base = sum_kernel()
        base_adds = sum(
            1 for i in base.get_function("main").instructions()
            if isinstance(i, BinaryInst)
        )
        hardened = swiftr_transform(base)
        tmr_adds = sum(
            1 for i in hardened.get_function("main").instructions()
            if isinstance(i, BinaryInst)
        )
        assert tmr_adds == 3 * base_adds

    def test_loads_not_triplicated(self):
        """§III-B: memory operations are not replicated."""
        base = sum_kernel()
        base_loads = sum(
            1 for i in base.get_function("main").instructions()
            if isinstance(i, LoadInst)
        )
        hardened = swiftr_transform(base)
        tmr_loads = sum(
            1 for i in hardened.get_function("main").instructions()
            if isinstance(i, LoadInst)
        )
        assert tmr_loads == base_loads

    def test_votes_before_sync_instructions(self):
        hardened = swiftr_transform(sum_kernel())
        fn = hardened.get_function("main")
        votes = [
            i for i in fn.instructions()
            if isinstance(i, CallInst) and i.callee.name.startswith("tmr.vote")
        ]
        assert votes

    def test_dmr_uses_swift_checks(self):
        hardened = swift_transform(sum_kernel())
        fn = hardened.get_function("main")
        assert fn.hardened == "swift"
        checks = [
            i for i in fn.instructions()
            if isinstance(i, CallInst) and i.callee.name.startswith("swift.check")
        ]
        assert checks
        # Only two copies of each computation.
        base_adds = sum(
            1 for i in sum_kernel().get_function("main").instructions()
            if isinstance(i, BinaryInst)
        )
        dmr_adds = sum(1 for i in fn.instructions() if isinstance(i, BinaryInst))
        assert dmr_adds == 2 * base_adds

    def test_copies_validation(self):
        with pytest.raises(ValueError):
            SwiftOptions(copies=4)
        with pytest.raises(ValueError):
            swift_transform(sum_kernel(), SwiftOptions(copies=3))

    def test_no_checks_no_votes(self):
        options = SwiftOptions(
            copies=3, check_loads=False, check_stores=False,
            check_branches=False, check_other=False,
        )
        hardened = swiftr_transform(sum_kernel(), options)
        fn = hardened.get_function("main")
        assert not any(
            isinstance(i, CallInst) and i.callee.name.startswith("tmr.")
            for i in fn.instructions()
        )


class TestSemantics:
    def test_same_result(self, fast_config):
        base = sum_kernel()
        assert (
            run_scalar(swiftr_transform(base), "main", [32], fast_config)
            == run_scalar(base, "main", [32], fast_config)
        )

    def test_float_kernel(self, fast_config):
        module = Module("m")
        fn, b = make_function(module, "main", T.F64, [T.F64])
        x = b.fmul(fn.args[0], fn.args[0])
        c = b.fcmp("olt", x, b.f64(100.0))
        b.ret(b.select(c, x, b.f64(-1.0)))
        hardened = swiftr_transform(module)
        assert run_scalar(hardened, "main", [3.0], fast_config) == 9.0
        assert run_scalar(hardened, "main", [30.0], fast_config) == -1.0


class TestFaultTolerance:
    def test_single_copy_fault_outvoted(self):
        """A fault in one of the three copies is outvoted at the next
        synchronization point."""
        hardened = swiftr_transform(sum_kernel())
        golden = Machine(
            hardened, MachineConfig(collect_timing=False)
        ).run("main", [32]).value
        sdc = 0
        corrected = 0
        for index in range(0, 200, 3):
            machine = Machine(hardened, MachineConfig(collect_timing=False))
            machine.arm_fault(FaultPlan(target_index=index, bit=4, lane=0))
            try:
                result = machine.run("main", [32])
            except DetectedError:
                continue
            if result.value != golden:
                sdc += 1
                # Only shared (unreplicated) values can produce SDC.
            corrected += machine.counters.corrections
        assert corrected > 0
        # The triplicated compute dominates; most faults are voted out.
        assert sdc <= 12

    def test_dmr_detects_instead_of_correcting(self):
        hardened = swift_transform(sum_kernel())
        detections = 0
        for index in range(0, 120, 5):
            machine = Machine(hardened, MachineConfig(collect_timing=False))
            machine.arm_fault(FaultPlan(target_index=index, bit=4, lane=0))
            try:
                machine.run("main", [32])
            except DetectedError:
                detections += 1
        assert detections > 0
