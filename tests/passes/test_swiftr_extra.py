"""Additional SWIFT-R/SWIFT behaviours: vote elision on shared values,
exclusion lists, and interaction with calls/libraries."""

from repro.cpu import Machine, MachineConfig
from repro.ir import Module, verify_module
from repro.ir import types as T
from repro.ir.instructions import CallInst
from repro.passes import SwiftOptions, mem2reg, swiftr_transform

from ..conftest import make_function, run_scalar

FAST = MachineConfig(collect_timing=False)


def vote_count(fn):
    return sum(
        1 for i in fn.instructions()
        if isinstance(i, CallInst) and i.callee.name.startswith("tmr.vote")
    )


class TestVoteElision:
    def test_addresses_voted_but_shared_value_elided(self):
        """Addresses are triplicated gep instructions and must be voted
        before the memory access (§III-B); the *loaded value* however is
        one shared SSA value across the three flows, so storing it back
        adds no third vote — an optimizing SWIFT-R (like the paper's
        reimplementation, §V-D) skips votes on identical copies."""
        module = Module("m")
        module.add_global("a", T.ArrayType(T.I64, 4), [1, 2, 3, 4])
        module.add_global("b", T.ArrayType(T.I64, 4))
        fn, builder = make_function(module, "main", T.VOID, [])
        a, b = module.get_global("a"), module.get_global("b")
        x = builder.load(T.I64, builder.gep(T.I64, a, builder.i64(0)))
        builder.store(x, builder.gep(T.I64, b, builder.i64(0)))
        builder.ret_void()
        hardened = swiftr_transform(module)
        # Exactly two votes: the load address and the store address —
        # none for the shared loaded value.
        assert vote_count(hardened.get_function("main")) == 2

    def test_vote_on_computed_value(self):
        module = Module("m")
        module.add_global("b", T.ArrayType(T.I64, 4))
        fn, builder = make_function(module, "main", T.VOID, [T.I64])
        b = module.get_global("b")
        y = builder.mul(fn.args[0], builder.i64(3))  # triplicated
        builder.store(y, builder.gep(T.I64, b, builder.i64(0)))
        builder.ret_void()
        hardened = swiftr_transform(module)
        # Two votes: the computed value and the store address.
        assert vote_count(hardened.get_function("main")) == 2


class TestExclusion:
    def test_excluded_function_copied_verbatim(self, fast_config):
        module = Module("m")
        leaf, lb = make_function(module, "third_party", T.I64, [T.I64])
        lb.ret(lb.mul(leaf.args[0], leaf.args[0]))
        fn, builder = make_function(module, "main", T.I64, [T.I64])
        builder.ret(builder.call(leaf, [fn.args[0]]))
        hardened = swiftr_transform(
            module, SwiftOptions(exclude=frozenset({"third_party"}))
        )
        verify_module(hardened)
        assert hardened.get_function("third_party").hardened is None
        assert hardened.get_function("main").hardened == "swiftr"
        assert run_scalar(hardened, "main", [9], fast_config) == 81


class TestWithLibm:
    def test_swiftr_hardens_ir_libm(self, fast_config):
        from repro.workloads.libm import sqrt_f64

        module = Module("m")
        sqrt_fn = sqrt_f64(module)
        fn, builder = make_function(module, "main", T.F64, [T.F64])
        builder.ret(builder.call(sqrt_fn, [fn.args[0]]))
        hardened = swiftr_transform(module)
        verify_module(hardened)
        assert hardened.get_function("m.sqrt").hardened == "swiftr"
        import math

        got = run_scalar(hardened, "main", [2.0], fast_config)
        assert got == run_scalar(module, "main", [2.0], fast_config)
        assert abs(got - math.sqrt(2.0)) < 1e-12
