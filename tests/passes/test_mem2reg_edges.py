"""Additional mem2reg edge cases: multiple allocas, nested control
flow, cross-block liveness, mixed promotable/non-promotable slots."""

from repro.cpu import Machine, MachineConfig
from repro.ir import IRBuilder, Module, verify_module
from repro.ir import types as T
from repro.ir.instructions import AllocaInst, PhiInst
from repro.passes import promote_function

from ..conftest import make_function, run_scalar


def count_allocas(fn):
    return sum(1 for i in fn.instructions() if isinstance(i, AllocaInst))


class TestMultipleSlots:
    def test_two_interacting_slots(self, fast_config):
        """min/max tracked in two slots across a loop."""
        module = Module("m")
        module.add_global("a", T.ArrayType(T.I64, 16),
                          [9, 2, 14, 7, 1, 11, 3, 8, 6, 13, 0, 5, 12, 4, 10, 15])
        fn, b = make_function(module, "f", T.I64, [T.I64])
        lo = b.alloca(T.I64)
        hi = b.alloca(T.I64)
        b.store(b.i64(1 << 40), lo)
        b.store(b.i64(-(1 << 40)), hi)
        loop = b.begin_loop(b.i64(0), fn.args[0])
        x = b.load(T.I64, b.gep(T.I64, module.get_global("a"), loop.index))
        below = b.icmp("slt", x, b.load(T.I64, lo))
        st = b.begin_if(below)
        b.store(x, lo)
        b.end_if(st)
        above = b.icmp("sgt", x, b.load(T.I64, hi))
        st2 = b.begin_if(above)
        b.store(x, hi)
        b.end_if(st2)
        b.end_loop(loop)
        b.ret(b.sub(b.load(T.I64, hi), b.load(T.I64, lo)))
        expected = run_scalar(module, "f", [16], fast_config)
        assert promote_function(fn) == 2
        verify_module(module)
        assert count_allocas(fn) == 0
        assert run_scalar(module, "f", [16], fast_config) == expected == 15

    def test_mixed_promotable_and_escaping(self, fast_config):
        module = Module("m")
        sink, sb = make_function(module, "sink", T.VOID, [T.PTR])
        sb.store(sb.i64(99), sink.args[0])
        sb.ret_void()
        fn, b = make_function(module, "f", T.I64, [])
        good = b.alloca(T.I64)
        escaping = b.alloca(T.I64)
        b.store(b.i64(1), good)
        b.call(sink, [escaping])
        b.ret(b.add(b.load(T.I64, good), b.load(T.I64, escaping)))
        assert promote_function(fn) == 1
        verify_module(module)
        assert count_allocas(fn) == 1
        assert run_scalar(module, "f", (), fast_config) == 100


class TestNestedControlFlow:
    def test_if_inside_loop_inside_if(self, fast_config):
        module = Module("m")
        fn, b = make_function(module, "f", T.I64, [T.I64, T.I1])
        slot = b.alloca(T.I64)
        b.store(b.i64(0), slot)
        outer = b.begin_if(fn.args[1])
        loop = b.begin_loop(b.i64(0), fn.args[0])
        even = b.icmp("eq", b.and_(loop.index, b.i64(1)), b.i64(0))
        inner = b.begin_if(even)
        b.store(b.add(b.load(T.I64, slot), loop.index), slot)
        b.end_if(inner)
        b.end_loop(loop)
        b.end_if(outer)
        b.ret(b.load(T.I64, slot))
        expected_on = run_scalar(module, "f", [10, 1], fast_config)
        expected_off = run_scalar(module, "f", [10, 0], fast_config)
        promote_function(fn)
        verify_module(module)
        assert count_allocas(fn) == 0
        assert run_scalar(module, "f", [10, 1], fast_config) == expected_on == 20
        assert run_scalar(module, "f", [10, 0], fast_config) == expected_off == 0

    def test_phi_count_reasonable(self):
        """Pruned-SSA-ish: only join points get phis."""
        module = Module("m")
        fn, b = make_function(module, "f", T.I64, [T.I1])
        slot = b.alloca(T.I64)
        b.store(b.i64(1), slot)
        st = b.begin_if(fn.args[0], with_else=True)
        b.store(b.i64(2), slot)
        b.begin_else(st)
        b.store(b.i64(3), slot)
        b.end_if(st)
        b.ret(b.load(T.I64, slot))
        promote_function(fn)
        phis = sum(1 for i in fn.instructions() if isinstance(i, PhiInst))
        assert phis == 1

    def test_float_and_pointer_slots(self, fast_config):
        module = Module("m")
        module.add_global("g", T.ArrayType(T.I64, 4), [5, 6, 7, 8])
        fn, b = make_function(module, "f", T.I64, [T.I1])
        fslot = b.alloca(T.F64)
        pslot = b.alloca(T.PTR)
        b.store(b.f64(1.5), fslot)
        b.store(b.gep(T.I64, module.get_global("g"), b.i64(1)), pslot)
        st = b.begin_if(fn.args[0])
        b.store(b.gep(T.I64, module.get_global("g"), b.i64(3)), pslot)
        b.end_if(st)
        loaded = b.load(T.I64, b.load(T.PTR, pslot))
        scaled = b.fptosi(b.fmul(b.load(T.F64, fslot), b.f64(2.0)), T.I64)
        b.ret(b.add(loaded, scaled))
        expected_t = run_scalar(module, "f", [1], fast_config)
        expected_f = run_scalar(module, "f", [0], fast_config)
        assert promote_function(fn) == 2
        verify_module(module)
        assert run_scalar(module, "f", [1], fast_config) == expected_t == 11
        assert run_scalar(module, "f", [0], fast_config) == expected_f == 9
