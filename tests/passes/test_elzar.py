"""Tests for the ELZAR transformation (structure and semantics)."""

import pytest

from repro.cpu import DetectedError, Machine, MachineConfig
from repro.cpu.interpreter import FaultPlan
from repro.ir import Module, format_function, verify_module
from repro.ir import types as T
from repro.ir.instructions import (
    BinaryInst,
    BroadcastInst,
    CallInst,
    ExtractElementInst,
    LoadInst,
)
from repro.passes import ElzarOptions, elzar_transform, mem2reg

from ..conftest import make_function, run_scalar


def sum_kernel():
    module = Module("m")
    module.add_global("data", T.ArrayType(T.I64, 32), list(range(32)))
    fn, b = make_function(module, "main", T.I64, [T.I64])
    g = module.get_global("data")
    loop = b.begin_loop(b.i64(0), fn.args[0])
    acc = b.loop_phi(loop, b.i64(0))
    x = b.load(T.I64, b.gep(T.I64, g, loop.index))
    b.set_loop_next(loop, acc, b.add(acc, x))
    b.end_loop(loop)
    b.ret(acc)
    return module


class TestStructure:
    def test_module_verifies(self):
        hardened = elzar_transform(sum_kernel())
        verify_module(hardened)

    def test_signatures_unchanged(self):
        """§III-B: no changes in function signatures."""
        base = sum_kernel()
        hardened = elzar_transform(base)
        assert hardened.get_function("main").ftype == base.get_function("main").ftype

    def test_compute_becomes_vector(self):
        hardened = elzar_transform(sum_kernel())
        fn = hardened.get_function("main")
        adds = [i for i in fn.instructions() if isinstance(i, BinaryInst)]
        assert adds and all(i.type == T.vector(T.I64, 4) for i in adds)

    def test_loads_wrapped_with_extract_and_broadcast(self):
        """Figure 6: extract the address, scalar load, broadcast back."""
        hardened = elzar_transform(sum_kernel())
        fn = hardened.get_function("main")
        loads = [i for i in fn.instructions() if isinstance(i, LoadInst)]
        assert loads and all(i.type == T.I64 for i in loads)  # stays scalar
        assert any(isinstance(i, ExtractElementInst) for i in fn.instructions())
        assert any(isinstance(i, BroadcastInst) for i in fn.instructions())

    def test_checks_emitted_before_loads(self):
        hardened = elzar_transform(sum_kernel())
        fn = hardened.get_function("main")
        checks = [
            i for i in fn.instructions()
            if isinstance(i, CallInst) and i.callee.name.startswith("elzar.check")
        ]
        assert checks

    def test_no_checks_mode_drops_them(self):
        hardened = elzar_transform(sum_kernel(), ElzarOptions.no_checks())
        fn = hardened.get_function("main")
        assert not any(
            isinstance(i, CallInst) and i.callee.name.startswith("elzar.check")
            for i in fn.instructions()
        )
        # ...but branching still needs the ptest collapse (§V-B).
        assert any(
            isinstance(i, CallInst)
            and i.callee.name.startswith("elzar.branch_cond_nocheck")
            for i in fn.instructions()
        )

    def test_branches_use_checked_ptest_by_default(self):
        hardened = elzar_transform(sum_kernel())
        fn = hardened.get_function("main")
        assert any(
            isinstance(i, CallInst)
            and i.callee.name.startswith("elzar.branch_cond.")
            for i in fn.instructions()
        )

    def test_hardened_marker_set(self):
        hardened = elzar_transform(sum_kernel())
        assert hardened.get_function("main").hardened == "elzar"

    def test_exclude_list_copies_verbatim(self):
        base = sum_kernel()
        hardened = elzar_transform(base, ElzarOptions(exclude=frozenset({"main"})))
        fn = hardened.get_function("main")
        assert fn.hardened is None
        assert not any(i.type.is_vector for i in fn.instructions())


class TestSemantics:
    def test_same_result(self, fast_config):
        base = sum_kernel()
        hardened = elzar_transform(base)
        assert (
            run_scalar(hardened, "main", [32], fast_config)
            == run_scalar(base, "main", [32], fast_config)
            == sum(range(32))
        )

    def test_nested_calls_preserved(self, fast_config):
        module = Module("m")
        callee, cb = make_function(module, "sq", T.I64, [T.I64])
        cb.ret(cb.mul(callee.args[0], callee.args[0]))
        fn, b = make_function(module, "main", T.I64, [T.I64])
        b.ret(b.call(callee, [b.add(fn.args[0], b.i64(1))]))
        hardened = elzar_transform(module)
        verify_module(hardened)
        assert run_scalar(hardened, "main", [6], fast_config) == 49
        assert hardened.get_function("sq").hardened == "elzar"

    def test_division_falls_back_correctly(self, fast_config):
        """AVX lacks packed integer division (§III-C): results must
        still be exact."""
        module = Module("m")
        fn, b = make_function(module, "main", T.I64, [T.I64, T.I64])
        b.ret(b.sdiv(fn.args[0], fn.args[1]))
        hardened = elzar_transform(module)
        assert run_scalar(hardened, "main", [97, 5], fast_config) == 19

    def test_float_math_preserved(self, fast_config):
        module = Module("m")
        fn, b = make_function(module, "main", T.F64, [T.F64])
        x = b.fmul(fn.args[0], b.f64(3.0))
        c = b.fcmp("ogt", x, b.f64(10.0))
        b.ret(b.select(c, x, b.f64(0.0)))
        hardened = elzar_transform(module)
        assert run_scalar(hardened, "main", [5.0], fast_config) == 15.0
        assert run_scalar(hardened, "main", [1.0], fast_config) == 0.0

    def test_i8_semantics_preserved(self, fast_config):
        module = Module("m")
        fn, b = make_function(module, "main", T.I64, [T.I64])
        narrow = b.trunc(fn.args[0], T.I8)
        bumped = b.add(narrow, b.i8(200))
        b.ret(b.zext(bumped, T.I64))
        hardened = elzar_transform(module)
        assert run_scalar(hardened, "main", [100], fast_config) == (100 + 200) % 256


class TestFaultTolerance:
    def _run_with_fault(self, module, args, index, bit=5, lane=1):
        machine = Machine(module, MachineConfig(collect_timing=False))
        machine.arm_fault(FaultPlan(target_index=index, bit=bit, lane=lane))
        return machine, machine.run("main", args)

    def test_lane_faults_corrected_sdc_only_in_scalar_window(self):
        """Faults in replicated (vector) values are always outvoted;
        SDCs can only come from the scalar window of vulnerability —
        the extracted address/loaded value between check and broadcast
        (§V-C, histogram's 12% SDC)."""
        base = sum_kernel()
        golden = run_scalar(
            elzar_transform(base), "main", [32],
            MachineConfig(collect_timing=False),
        )
        hardened = elzar_transform(base)
        corrected_somewhere = False
        saw_window_sdc = False
        for index in range(0, 160):
            machine, result = self._run_with_fault(hardened, [32], index)
            if result.value != golden:
                saw_window_sdc = True
                assert machine.fault_target is not None
                assert not machine.fault_target.type.is_vector, (
                    f"vector-value fault at index {index} caused SDC"
                )
            if machine.counters.corrections > 0:
                corrected_somewhere = True
        assert corrected_somewhere
        assert saw_window_sdc  # the paper's vulnerability is observable

    def test_two_two_split_stops_program(self, fast_config):
        """§III-C scenario 3 surfaces as a DetectedError."""
        from repro.cpu import intrinsics as intr
        from repro.ir.values import Constant

        module = Module("m")
        v4 = T.vector(T.I64, 4)
        fn, b = make_function(module, "main", T.I64, [])
        bad = Constant(v4, (1, 1, 2, 2))
        check = intr.elzar_check(module, v4)
        out = b.call(check, [bad])
        b.ret(b.extractelement(out, b.i64(0)))
        with pytest.raises(DetectedError):
            run_scalar(module, "main", (), fast_config)

    def test_float_only_mode(self, fast_config):
        module = Module("m")
        fn, b = make_function(module, "main", T.F64, [T.F64, T.I64])
        scaled = b.fmul(fn.args[0], b.f64(2.0))
        idx = b.add(fn.args[1], b.i64(1))  # integer flow: unprotected
        as_f = b.sitofp(idx, T.F64)
        b.ret(b.fadd(scaled, as_f))
        hardened = elzar_transform(module, ElzarOptions(float_only=True))
        verify_module(hardened)
        assert run_scalar(hardened, "main", [2.0, 4], fast_config) == 9.0
        fn_h = hardened.get_function("main")
        assert fn_h.hardened == "elzar-float"
        # Integer add stays scalar; float mul is replicated.
        int_adds = [
            i for i in fn_h.instructions()
            if isinstance(i, BinaryInst) and i.opcode == "add"
        ]
        fmuls = [
            i for i in fn_h.instructions()
            if isinstance(i, BinaryInst) and i.opcode == "fmul"
        ]
        assert any(not i.type.is_vector for i in int_adds)
        assert all(i.type.is_vector for i in fmuls)
