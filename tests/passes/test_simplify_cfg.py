"""Tests for CFG simplification."""

import pytest

from repro.cpu import Machine, MachineConfig
from repro.ir import IRBuilder, Module, verify_module
from repro.ir import types as T
from repro.passes import inline_module, mem2reg
from repro.passes.simplify_cfg import simplify_cfg, simplify_function_cfg

from ..conftest import make_function, run_scalar

FAST = MachineConfig(collect_timing=False)


class TestConstantBranchFolding:
    def test_true_branch_folded(self, fast_config):
        module = Module("m")
        fn, b = make_function(module, "f", T.I64, [])
        then_b = fn.append_block("then")
        else_b = fn.append_block("else")
        b.cond_br(b.i1(True), then_b, else_b)
        b.position_at_end(then_b)
        b.ret(b.i64(1))
        b.position_at_end(else_b)
        b.ret(b.i64(2))
        assert simplify_function_cfg(fn) > 0
        verify_module(module)
        assert run_scalar(module, "f", (), fast_config) == 1
        assert len(fn.blocks) == 1  # folded + merged + unreachable gone

    def test_false_branch_folded_with_phi_fixup(self, fast_config):
        module = Module("m")
        fn, b = make_function(module, "f", T.I64, [T.I64])
        then_b = fn.append_block("then")
        merge = fn.append_block("merge")
        b.cond_br(b.i1(False), then_b, merge)
        entry = fn.entry
        b.position_at_end(then_b)
        b.br(merge)
        b.position_at_end(merge)
        phi = b.phi(T.I64)
        phi.add_incoming(b.i64(10), then_b)
        phi.add_incoming(fn.args[0], entry)
        b.ret(phi)
        simplify_function_cfg(fn)
        verify_module(module)
        assert run_scalar(module, "f", [42], fast_config) == 42


class TestChainMerging:
    def test_inline_chains_collapse(self, fast_config):
        module = Module("m")
        sq, cb = make_function(module, "sq", T.I64, [T.I64])
        cb.ret(cb.mul(sq.args[0], sq.args[0]))
        fn, b = make_function(module, "main", T.I64, [T.I64])
        total = b.add(b.call(sq, [fn.args[0]]), b.call(sq, [b.i64(3)]))
        b.ret(total)
        inline_module(module)
        before = len(module.get_function("main").blocks)
        assert before > 1
        simplify_cfg(module)
        verify_module(module)
        after = len(module.get_function("main").blocks)
        assert after == 1
        assert run_scalar(module, "main", [4], fast_config) == 25

    def test_loops_preserved(self, fast_config):
        module = Module("m")
        fn, b = make_function(module, "f", T.I64, [T.I64])
        loop = b.begin_loop(b.i64(0), fn.args[0])
        acc = b.loop_phi(loop, b.i64(0))
        b.set_loop_next(loop, acc, b.add(acc, loop.index))
        b.end_loop(loop)
        b.ret(acc)
        simplify_function_cfg(fn)
        verify_module(module)
        assert run_scalar(module, "f", [10], fast_config) == 45

    def test_workloads_survive_simplification(self, fast_config):
        from repro.workloads import BENCHMARKS, outputs_match

        for wl in BENCHMARKS[:6]:
            built = wl.build_at("test")
            mem2reg(built.module)
            inline_module(built.module)
            mem2reg(built.module)
            base = Machine(built.module, FAST).run(built.entry, built.args)
            simplify_cfg(built.module)
            verify_module(built.module)
            after = Machine(built.module, FAST).run(built.entry, built.args)
            assert outputs_match(after.output, base.output, built.rtol), wl.name
            assert after.counters.branches <= base.counters.branches
