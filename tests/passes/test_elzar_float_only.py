"""Focused tests for the float-only (stripped-down, §V-B) ELZAR mode:
domain crossings, checks at the boundary, and cost relative to full
protection."""

import math

import pytest

from repro.cpu import Machine, MachineConfig
from repro.ir import Module, verify_module
from repro.ir import types as T
from repro.ir.instructions import BinaryInst, CallInst
from repro.passes import ElzarOptions, elzar_transform

from ..conftest import make_function, run_scalar

FAST = MachineConfig(collect_timing=False)
FLOAT_ONLY = ElzarOptions(float_only=True)


class TestDomainCrossings:
    def test_sitofp_enters_protected_domain(self, fast_config):
        module = Module("m")
        fn, b = make_function(module, "main", T.F64, [T.I64])
        f = b.sitofp(fn.args[0], T.F64)  # int (unprotected) -> float
        b.ret(b.fmul(f, b.f64(2.5)))
        hardened = elzar_transform(module, FLOAT_ONLY)
        verify_module(hardened)
        assert run_scalar(hardened, "main", [4], fast_config) == 10.0
        # The fmul is replicated.
        fmuls = [i for i in hardened.get_function("main").instructions()
                 if isinstance(i, BinaryInst) and i.opcode == "fmul"]
        assert all(i.type.is_vector for i in fmuls)

    def test_fptosi_leaves_protected_domain_with_check(self, fast_config):
        module = Module("m")
        fn, b = make_function(module, "main", T.I64, [T.F64])
        scaled = b.fmul(fn.args[0], b.f64(4.0))  # protected
        as_int = b.fptosi(scaled, T.I64)         # crossing out
        b.ret(b.add(as_int, b.i64(1)))
        hardened = elzar_transform(module, FLOAT_ONLY)
        verify_module(hardened)
        assert run_scalar(hardened, "main", [2.5], fast_config) == 11
        # The crossing is a synchronization point: checked.
        checks = [i for i in hardened.get_function("main").instructions()
                  if isinstance(i, CallInst)
                  and i.callee.name.startswith("elzar.check")]
        assert checks

    def test_bitcast_crossings_roundtrip(self, fast_config):
        """The libm bit tricks: float -> bits -> float must survive."""
        module = Module("m")
        fn, b = make_function(module, "main", T.F64, [T.F64])
        bits = b.bitcast(fn.args[0], T.I64)           # leaves FP domain
        cleared = b.and_(bits, b.i64(0x7FFFFFFFFFFFFFFF))  # fabs
        back = b.bitcast(cleared, T.F64)              # re-enters
        b.ret(b.fadd(back, b.f64(1.0)))
        hardened = elzar_transform(module, FLOAT_ONLY)
        verify_module(hardened)
        assert run_scalar(hardened, "main", [-2.5], fast_config) == 3.5

    def test_fcmp_collapses_only_at_sync_points(self, fast_config):
        """fcmp results stay replicated; selects consume them lane-wise
        and branches collapse them via ptest."""
        module = Module("m")
        fn, b = make_function(module, "main", T.F64, [T.F64])
        c = b.fcmp("olt", fn.args[0], b.f64(0.0))
        flipped = b.select(c, b.fsub(b.f64(0.0), fn.args[0]), fn.args[0])
        state = b.begin_if(b.fcmp("ogt", flipped, b.f64(100.0)))
        b.ret(b.f64(100.0))
        b.position_at_end(state.merge)
        b.ret(flipped)
        hardened = elzar_transform(module, FLOAT_ONLY)
        verify_module(hardened)
        assert run_scalar(hardened, "main", [-3.0], fast_config) == 3.0
        assert run_scalar(hardened, "main", [500.0], fast_config) == 100.0
        names = {
            i.callee.name.rsplit(".", 1)[0]
            for i in hardened.get_function("main").instructions()
            if isinstance(i, CallInst)
        }
        assert "elzar.branch_cond" in names


class TestFaultCoverage:
    def test_float_faults_corrected_int_faults_not(self):
        """The §V-B trade-off in one test: lane faults in FP values are
        outvoted; the unprotected integer flow stays vulnerable."""
        module = Module("m")
        fn, b = make_function(module, "main", T.F64, [T.F64, T.I64])
        prot = b.fmul(fn.args[0], b.f64(3.0))
        unprot = b.mul(fn.args[1], b.i64(3))
        b.ret(b.fadd(prot, b.sitofp(unprot, T.F64)))
        hardened = elzar_transform(module, FLOAT_ONLY)
        golden = Machine(hardened, FAST).run("main", [2.0, 5]).value
        from repro.cpu import FaultPlan

        sdc = corrected = 0
        for index in range(0, 30):
            machine = Machine(hardened, FAST)
            machine.arm_fault(FaultPlan(target_index=index, bit=7, lane=1))
            try:
                result = machine.run("main", [2.0, 5])
            except Exception:
                continue
            if result.value != golden:
                sdc += 1
                assert machine.fault_target is not None
                assert not machine.fault_target.type.is_vector
            corrected += machine.counters.corrections
        assert corrected > 0  # FP lanes protected
        assert sdc > 0        # integer flow unprotected

    def test_cheaper_than_full_on_fp_kernels(self):
        from repro.passes import inline_module, mem2reg
        from repro.workloads import get

        built = get("swaptions").build_at("test")
        mem2reg(built.module)
        inline_module(built.module)
        mem2reg(built.module)
        full = elzar_transform(built.module)
        stripped = elzar_transform(built.module, FLOAT_ONLY)
        c_full = Machine(full, MachineConfig()).run(built.entry, built.args).cycles
        c_stripped = Machine(stripped, MachineConfig()).run(
            built.entry, built.args
        ).cycles
        assert c_stripped < c_full
