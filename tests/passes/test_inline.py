"""Tests for the function inliner."""

import pytest

from repro.cpu import Machine, MachineConfig
from repro.ir import Module, verify_module
from repro.ir import types as T
from repro.ir.instructions import CallInst
from repro.passes import inline_function_calls, inline_module, mem2reg

from ..conftest import make_function, run_scalar

FAST = MachineConfig(collect_timing=False)


def call_count(fn):
    return sum(
        1 for i in fn.instructions()
        if isinstance(i, CallInst) and not i.callee.is_intrinsic
    )


def simple_module():
    module = Module("m")
    sq, cb = make_function(module, "sq", T.I64, [T.I64])
    cb.ret(cb.mul(sq.args[0], sq.args[0]))
    fn, b = make_function(module, "main", T.I64, [T.I64])
    loop = b.begin_loop(b.i64(0), fn.args[0])
    acc = b.loop_phi(loop, b.i64(0))
    b.set_loop_next(loop, acc, b.add(acc, b.call(sq, [loop.index])))
    b.end_loop(loop)
    b.ret(acc)
    return module


class TestInlining:
    def test_straightline_callee(self, fast_config):
        module = simple_module()
        before = run_scalar(module, "main", [9], fast_config)
        inlined = inline_module(module)
        verify_module(module)
        assert call_count(module.get_function("main")) == 0
        assert run_scalar(module, "main", [9], fast_config) == before

    def test_multi_exit_callee(self, fast_config):
        module = Module("m")
        clamp, cb = make_function(module, "clamp", T.I64, [T.I64])
        big = cb.icmp("sgt", clamp.args[0], cb.i64(100))
        state = cb.begin_if(big)
        cb.ret(cb.i64(100))
        cb.position_at_end(state.merge)
        cb.ret(clamp.args[0])
        fn, b = make_function(module, "main", T.I64, [T.I64, T.I64])
        s = b.add(b.call(clamp, [fn.args[0]]), b.call(clamp, [fn.args[1]]))
        b.ret(s)
        before = run_scalar(module, "main", [7, 500], fast_config)
        inline_module(module)
        verify_module(module)
        assert call_count(module.get_function("main")) == 0
        assert run_scalar(module, "main", [7, 500], fast_config) == before == 107

    def test_transitive_inlining(self, fast_config):
        module = Module("m")
        inner, ib = make_function(module, "inner", T.I64, [T.I64])
        ib.ret(ib.add(inner.args[0], ib.i64(1)))
        outer, ob = make_function(module, "outer", T.I64, [T.I64])
        ob.ret(ob.mul(ob.call(inner, [outer.args[0]]), ob.i64(2)))
        fn, b = make_function(module, "main", T.I64, [T.I64])
        b.ret(b.call(outer, [fn.args[0]]))
        inline_module(module)
        verify_module(module)
        assert call_count(module.get_function("main")) == 0
        assert run_scalar(module, "main", [10], fast_config) == 22

    def test_recursive_callee_not_inlined(self, fast_config):
        module = Module("m")
        fact, fb = make_function(module, "fact", T.I64, [T.I64])
        base = fb.icmp("sle", fact.args[0], fb.i64(1))
        state = fb.begin_if(base)
        fb.ret(fb.i64(1))
        fb.position_at_end(state.merge)
        rec = fb.call(fact, [fb.sub(fact.args[0], fb.i64(1))])
        fb.ret(fb.mul(fact.args[0], rec))
        fn, b = make_function(module, "main", T.I64, [])
        b.ret(b.call(fact, [b.i64(6)]))
        inline_module(module)
        verify_module(module)
        # fact stays out of line (self-recursive).
        assert call_count(module.get_function("main")) == 1
        assert run_scalar(module, "main", (), fast_config) == 720

    def test_threshold_respected(self):
        module = simple_module()
        inline_module(module, threshold=0)
        assert call_count(module.get_function("main")) == 1

    def test_exclude_respected(self, fast_config):
        module = simple_module()
        inline_module(module, exclude=frozenset({"sq"}))
        assert call_count(module.get_function("main")) == 1

    def test_intrinsics_never_inlined(self, fast_config):
        from repro.cpu.intrinsics import rt_print_i64

        module = Module("m")
        p = rt_print_i64(module)
        fn, b = make_function(module, "main", T.VOID, [])
        b.call(p, [b.i64(5)])
        b.ret_void()
        inline_module(module)
        machine = Machine(module, FAST)
        machine.run("main", ())
        assert machine.output == [5]

    def test_void_callee(self, fast_config):
        module = Module("m")
        module.add_global("g", T.I64)
        setg, sb = make_function(module, "setg", T.VOID, [T.I64])
        sb.store(setg.args[0], module.get_global("g"))
        sb.ret_void()
        fn, b = make_function(module, "main", T.I64, [])
        b.call(setg, [b.i64(77)])
        b.ret(b.load(T.I64, module.get_global("g")))
        inline_module(module)
        verify_module(module)
        assert run_scalar(module, "main", (), fast_config) == 77

    def test_call_result_used_by_successor_phi(self, fast_config):
        """Call result flowing into a phi of a successor block."""
        module = Module("m")
        sq, cb = make_function(module, "sq", T.I64, [T.I64])
        cb.ret(cb.mul(sq.args[0], sq.args[0]))
        fn, b = make_function(module, "main", T.I64, [T.I64, T.I1])
        merge = fn.append_block("merge")
        other = fn.append_block("other")
        v = b.call(sq, [fn.args[0]])
        entry_block = b.block
        b.cond_br(fn.args[1], merge, other)
        b.position_at_end(other)
        b.br(merge)
        b.position_at_end(merge)
        phi = b.phi(T.I64)
        phi.add_incoming(v, entry_block)
        phi.add_incoming(b.i64(0), other)
        b.ret(phi)
        verify_module(module)
        before_t = run_scalar(module, "main", [5, 1], fast_config)
        before_f = run_scalar(module, "main", [5, 0], fast_config)
        inline_module(module)
        verify_module(module)
        assert run_scalar(module, "main", [5, 1], fast_config) == before_t == 25
        assert run_scalar(module, "main", [5, 0], fast_config) == before_f == 0

    def test_workload_pipeline_preserved(self, fast_config):
        from repro.workloads import get, outputs_match

        built = get("blackscholes").build_at("test")
        mem2reg(built.module)
        before = Machine(built.module, FAST).run(built.entry, built.args).output
        inline_module(built.module)
        mem2reg(built.module)
        verify_module(built.module)
        after = Machine(built.module, FAST).run(built.entry, built.args).output
        assert outputs_match(after, before, built.rtol)
        # The libm chain is gone from main.
        assert call_count(built.module.get_function("main")) == 0
