"""End-to-end cluster campaigns (in-process coordinator, subprocess
worker agents) against the hard invariant: outcome counts are
bit-identical to the forked-worker mode, whatever fails mid-run."""

import json

import pytest

from repro.__main__ import main
from repro.lab.store import _OPEN_STORES

#: One small cell: 40 injections in 4 shards of 10 at --scale test.
_CELL = ("--scale", "test", "--quiet",
         "--benchmarks", "histogram", "--versions", "native")


@pytest.fixture()
def lab_store(monkeypatch, tmp_path):
    path = str(tmp_path / "store.sqlite")
    monkeypatch.setenv("REPRO_LAB_STORE", path)
    yield path
    store = _OPEN_STORES.pop(path, None)
    if store is not None:
        store.close()


def _campaign(*extra):
    return main(["campaign", *_CELL, *extra])


def _report(path):
    with open(path) as fh:
        return json.load(fh)


def _events(path):
    with open(path) as fh:
        return [json.loads(line) for line in fh if line.strip()]


def _forked_reference(tmp_path):
    """Counts from the forked scheduler (workers=2) in its own store."""
    ref_json = str(tmp_path / "ref.json")
    assert main(["campaign", *_CELL, "--workers", "2",
                 "--store", str(tmp_path / "ref.sqlite"),
                 "--json", ref_json]) == 0
    return _report(ref_json)


class TestClusterCampaign:
    def test_counts_bit_identical_to_forked_workers(self, lab_store,
                                                    tmp_path, capsys):
        reference = _forked_reference(tmp_path)
        cluster_json = str(tmp_path / "cluster.json")
        assert _campaign("--cluster", "2", "--json", cluster_json) == 0
        capsys.readouterr()
        cluster = _report(cluster_json)
        assert cluster["cells"][0]["counts"] == \
            reference["cells"][0]["counts"]
        assert cluster["cells"][0]["rates"] == reference["cells"][0]["rates"]
        assert cluster["store"]["injections_executed"] == 40

    def test_batched_cluster_counts_bit_identical(self, lab_store,
                                                  tmp_path, capsys):
        # --batch rides the prepare frame to every worker agent; the
        # batched lanes must land the same counts as sequential forked
        # workers.
        reference = _forked_reference(tmp_path)
        cluster_json = str(tmp_path / "cluster-batched.json")
        assert _campaign("--cluster", "2", "--batch", "8",
                         "--json", cluster_json) == 0
        capsys.readouterr()
        cluster = _report(cluster_json)
        assert cluster["cells"][0]["counts"] == \
            reference["cells"][0]["counts"]
        assert cluster["store"]["injections_executed"] == 40

    def test_second_cluster_run_is_all_store_hits(self, lab_store,
                                                  tmp_path, capsys):
        first = str(tmp_path / "first.json")
        second = str(tmp_path / "second.json")
        assert _campaign("--cluster", "2", "--json", first) == 0
        assert _campaign("--cluster", "2", "--json", second) == 0
        capsys.readouterr()
        assert _report(second)["store"]["hit_rate"] == 1.0
        assert _report(second)["store"]["injections_executed"] == 0
        assert _report(second)["cells"][0]["counts"] == \
            _report(first)["cells"][0]["counts"]

    def test_cluster_and_forked_share_store_keys(self, lab_store,
                                                 tmp_path, capsys):
        # A forked run warms the store; the cluster run must replay it
        # (same spec/cell keys — the fabric is not part of the key).
        assert _campaign("--workers", "2") == 0
        report_json = str(tmp_path / "cluster.json")
        assert _campaign("--cluster", "2", "--json", report_json) == 0
        capsys.readouterr()
        assert _report(report_json)["store"]["hit_rate"] == 1.0

    def test_worker_killed_mid_shard_is_released(self, lab_store, tmp_path,
                                                 monkeypatch, capsys):
        reference = _forked_reference(tmp_path)
        # Whichever worker first leases shard 1 hard-exits on attempt
        # 0; the shard must be re-leased and the campaign complete.
        monkeypatch.setenv("REPRO_CLUSTER_SABOTAGE", "exit:1")
        kill_json = str(tmp_path / "kill.json")
        events_log = str(tmp_path / "events.jsonl")
        assert _campaign("--cluster", "2", "--json", kill_json,
                         "--events-log", events_log) == 0
        capsys.readouterr()

        assert _report(kill_json)["cells"][0]["counts"] == \
            reference["cells"][0]["counts"]

        events = _events(events_log)
        kinds = [e["kind"] for e in events]
        assert "worker-disconnected" in kinds
        assert "lease-requeued" in kinds
        requeued = [e for e in events if e["kind"] == "lease-requeued"]
        assert any(e["index"] == 1 for e in requeued)
        # At-most-once commit: every shard completes exactly once.
        completed = [e["index"] for e in events
                     if e["kind"] == "shard-completed"]
        assert sorted(completed) == [0, 1, 2, 3]

    def test_interrupt_then_resume_matches_fresh_run(self, lab_store,
                                                     tmp_path, capsys):
        reference = _forked_reference(tmp_path)
        assert _campaign("--cluster", "2",
                         "--interrupt-after-shards", "1") == 130
        out = capsys.readouterr().out
        assert "--resume" in out

        resumed_json = str(tmp_path / "resumed.json")
        assert _campaign("--resume", "--cluster", "2",
                         "--json", resumed_json) == 0
        capsys.readouterr()
        resumed = _report(resumed_json)
        assert resumed["cells"][0]["counts"] == reference["cells"][0]["counts"]
        # At least the shard completed before the interrupt replays.
        assert resumed["store"]["shards_from_store"] >= 1


class TestEventsLog:
    def test_jsonl_trace_is_parseable_and_ordered(self, lab_store,
                                                  tmp_path, capsys):
        events_log = str(tmp_path / "events.jsonl")
        assert _campaign("--events-log", events_log) == 0
        capsys.readouterr()
        events = _events(events_log)
        kinds = [e["kind"] for e in events]
        assert "campaign-started" in kinds
        assert "campaign-finished" in kinds
        assert kinds.count("shard-completed") == 4
        monos = [e["mono"] for e in events]
        assert monos == sorted(monos)
        assert all(e["ts"] > 0 for e in events)

    def test_trace_appends_across_invocations(self, lab_store,
                                              tmp_path, capsys):
        events_log = str(tmp_path / "events.jsonl")
        assert _campaign("--events-log", events_log) == 0
        assert _campaign("--events-log", events_log) == 0
        capsys.readouterr()
        events = _events(events_log)
        assert [e["kind"] for e in events].count("campaign-finished") == 2


class TestClusterCli:
    def test_worker_rejects_bad_connect_spec(self, capsys):
        assert main(["cluster", "worker", "--connect", "nonsense"]) == 2
        assert "HOST:PORT" in capsys.readouterr().err

    def test_worker_fails_fast_when_unreachable(self, capsys):
        # Port 1 on localhost: connection refused, exit 1, no hang.
        assert main(["cluster", "worker", "--connect", "127.0.0.1:1",
                     "--id", "w"]) == 1
        assert "cannot reach coordinator" in capsys.readouterr().out

    def test_list_includes_cluster(self, capsys):
        assert main(["list"]) == 0
        assert "cluster" in capsys.readouterr().out.split()
