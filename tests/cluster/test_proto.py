"""Wire-protocol tests: framing, the codecs, and the wire forms of
lab values (fault plans, shards, outcome counts)."""

import socket
import struct
from collections import Counter

import pytest

from repro.cpu.interpreter import FaultPlan
from repro.faults.outcomes import Outcome
from repro.lab.checkpoint import ShardPlan
from repro.cluster.proto import (
    MAX_FRAME,
    ProtocolError,
    counts_from_wire,
    counts_to_wire,
    encode_frame,
    plan_from_wire,
    plan_to_wire,
    recv_message,
    send_message,
    shard_from_wire,
    shard_to_wire,
)


@pytest.fixture()
def pair():
    a, b = socket.socketpair()
    yield a, b
    a.close()
    b.close()


class TestFraming:
    def test_roundtrip(self, pair):
        a, b = pair
        message = {"kind": "hello", "worker": "w0", "n": 7}
        send_message(a, message)
        assert recv_message(b) == message

    def test_multiple_frames_in_order(self, pair):
        a, b = pair
        for i in range(5):
            send_message(a, {"kind": "tick", "i": i})
        for i in range(5):
            assert recv_message(b) == {"kind": "tick", "i": i}

    def test_clean_eof_is_none(self, pair):
        a, b = pair
        a.close()
        assert recv_message(b) is None

    def test_eof_mid_frame_raises(self, pair):
        a, b = pair
        frame = encode_frame({"kind": "hello"})
        a.sendall(frame[:6])  # header + partial payload
        a.close()
        with pytest.raises(ProtocolError):
            recv_message(b)

    def test_oversized_length_prefix_rejected(self, pair):
        a, b = pair
        a.sendall(struct.pack(">I", MAX_FRAME + 1))
        with pytest.raises(ProtocolError):
            recv_message(b)

    def test_non_dict_payload_rejected(self, pair):
        a, b = pair
        payload = b"[1,2,3]"
        a.sendall(struct.pack(">I", len(payload)) + payload)
        with pytest.raises(ProtocolError):
            recv_message(b)

    def test_oversized_message_refused_at_encode(self):
        with pytest.raises(ProtocolError):
            encode_frame({"kind": "big", "blob": "x" * (MAX_FRAME + 1)})


class TestWireForms:
    def test_plan_roundtrip(self):
        plan = FaultPlan(17, 3, 2)
        assert plan_from_wire(plan_to_wire(plan)) == plan

    def test_plan_roundtrip_survives_json_types(self):
        # JSON turns the bits tuple into a list; from_wire restores it.
        import json

        plan = FaultPlan(5, 1, 0)
        wire = json.loads(json.dumps(plan_to_wire(plan)))
        restored = plan_from_wire(wire)
        assert restored == plan
        assert isinstance(restored.bits, tuple)

    def test_shard_roundtrip(self):
        shard = ShardPlan(index=2, start=8,
                          plans=[FaultPlan(i, 0, 0) for i in range(4)])
        back = shard_from_wire(shard_to_wire(shard))
        assert back.index == shard.index
        assert back.start == shard.start
        assert list(back.plans) == list(shard.plans)

    def test_counts_roundtrip(self):
        counts = Counter({Outcome.MASKED: 10, Outcome.SDC: 3,
                          Outcome.OS_DETECTED: 1})
        wire = counts_to_wire(counts)
        assert all(isinstance(k, str) for k in wire)
        assert counts_from_wire(wire) == counts
