"""Lease-table tests: a fake clock drives the full failure state
machine — grant order, heartbeats, expiry, backoff, exhaustion, and
the at-most-once commit rule."""

import pytest

from repro.cluster.lease import LeasePolicy, LeaseTable, ShardExhausted


def _table(indices=(0, 1, 2, 3), **overrides):
    # Jitter off by default: these tests assert exact backoff instants.
    overrides.setdefault("backoff_jitter", 0.0)
    policy = LeasePolicy(lease_timeout=10.0, backoff=1.0,
                         backoff_factor=2.0, max_attempts=3, **overrides)
    return LeaseTable(list(indices), policy)


class TestGranting:
    def test_lowest_index_first(self):
        table = _table()
        assert table.grant("a", now=0.0).index == 0
        assert table.grant("b", now=0.0).index == 1

    def test_no_double_grant_while_held(self):
        table = _table(indices=[0])
        assert table.grant("a", now=0.0).index == 0
        assert table.grant("b", now=0.0) is None

    def test_attempt_counts_up_across_requeues(self):
        table = _table(indices=[0])
        assert table.grant("a", now=0.0).attempt == 0
        table.expire(now=100.0)
        grant = table.grant("b", now=200.0)
        assert grant.attempt == 1


class TestHeartbeatAndExpiry:
    def test_heartbeat_extends_deadline(self):
        table = _table(indices=[0])
        table.grant("a", now=0.0)
        assert table.heartbeat(0, "a", now=9.0)
        assert table.expire(now=12.0) == []  # would have expired at 10
        assert table.expire(now=19.5)[0].index == 0

    def test_heartbeat_from_non_holder_rejected(self):
        table = _table(indices=[0])
        table.grant("a", now=0.0)
        assert not table.heartbeat(0, "b", now=1.0)

    def test_expiry_requeues_with_backoff(self):
        table = _table(indices=[0])
        table.grant("a", now=0.0)
        expiries = table.expire(now=10.0)
        assert [e.index for e in expiries] == [0]
        # attempt 0 failed -> backoff 1.0s: not grantable before 11.0.
        assert table.grant("b", now=10.5) is None
        assert table.grant("b", now=11.0).index == 0

    def test_backoff_grows_per_attempt(self):
        table = _table(indices=[0])
        table.grant("a", now=0.0)
        table.expire(now=10.0)          # attempt 0 failed -> +1.0s
        table.grant("a", now=11.0)
        table.expire(now=21.0)          # attempt 1 failed -> +2.0s
        assert table.grant("a", now=22.5) is None
        assert table.grant("a", now=23.0).index == 0

    def test_release_worker_requeues_only_its_leases(self):
        table = _table()
        table.grant("a", now=0.0)
        table.grant("b", now=0.0)
        released = table.release_worker("a", now=1.0)
        assert [e.index for e in released] == [0]
        assert table.in_flight == [1]

    def test_next_wakeup_tracks_deadline_then_backoff(self):
        table = _table(indices=[0])
        assert table.next_wakeup(now=0.0) is None
        table.grant("a", now=0.0)
        assert table.next_wakeup(now=0.0) == 10.0
        table.expire(now=10.0)
        assert table.next_wakeup(now=10.0) == 11.0


class TestBackoffJitter:
    def _requeue_delay(self, rng_seed):
        import random

        policy = LeasePolicy(lease_timeout=10.0, backoff=1.0,
                             backoff_factor=2.0, backoff_jitter=0.25)
        table = LeaseTable([0], policy, rng=random.Random(rng_seed))
        table.grant("a", now=0.0)
        table.expire(now=10.0)
        # Probe the not_before instant: grantable exactly when the
        # jittered delay elapses.
        lo, hi = 10.0, 10.0 + 1.0 * 1.25 + 1e-9
        for _ in range(60):
            mid = (lo + hi) / 2
            probe = LeaseTable([0], policy, rng=random.Random(rng_seed))
            probe.grant("a", now=0.0)
            probe.expire(now=10.0)
            if probe.grant("b", now=mid) is None:
                lo = mid
            else:
                hi = mid
        return hi - 10.0

    def test_jitter_is_bounded(self):
        # delay must land in [backoff, backoff * (1 + jitter)].
        for seed in range(5):
            delay = self._requeue_delay(seed)
            assert 1.0 <= delay <= 1.25 + 1e-6

    def test_jitter_varies_across_tables(self):
        # Two tables expiring at the same instant must not requeue at
        # the same instant (the thundering-herd fix).
        delays = {round(self._requeue_delay(seed), 6) for seed in range(5)}
        assert len(delays) > 1

    def test_zero_jitter_is_deterministic(self):
        table = _table(indices=[0])
        table.grant("a", now=0.0)
        table.expire(now=10.0)
        assert table.grant("b", now=10.999) is None
        assert table.grant("b", now=11.0) is not None


class TestHasGrantable:
    def test_tracks_queue_state(self):
        table = _table(indices=[0])
        assert table.has_grantable(now=0.0)
        table.grant("a", now=0.0)
        assert not table.has_grantable(now=0.0)   # held
        table.expire(now=10.0)
        assert not table.has_grantable(now=10.5)  # backing off
        assert table.has_grantable(now=11.0)
        table.grant("b", now=11.0)
        table.commit(0, "b")
        assert not table.has_grantable(now=11.0)  # committed

    def test_cancelled_shards_are_not_grantable(self):
        table = _table(indices=[0, 1])
        table.grant("a", now=0.0)
        table.cancel_pending()
        assert not table.has_grantable(now=0.0)


class TestExhaustion:
    def test_shard_exhausts_after_max_attempts(self):
        table = _table(indices=[0])
        for attempt in range(3):
            now = 100.0 * attempt
            assert table.grant("a", now=now).attempt == attempt
            table.expire(now=now + 10.0)
        with pytest.raises(ShardExhausted):
            table.grant("a", now=1000.0)

    def test_fail_reports_disposition(self):
        table = _table(indices=[0], )
        table.grant("a", now=0.0)
        assert table.fail(0, "a", now=1.0) == "requeued"
        assert table.fail(0, "b", now=1.0) == "stale"


class TestCommit:
    def test_commit_is_at_most_once(self):
        table = _table(indices=[0])
        table.grant("a", now=0.0)
        assert table.commit(0, "a") == "ok"
        assert table.commit(0, "a") == "duplicate"
        assert table.commit(5, "a") == "unknown"
        assert table.committed == [0]

    def test_late_commit_from_expired_lease_still_wins_if_first(self):
        # Worker presumed dead was merely slow: its result arrives
        # after expiry but before the re-leased copy finishes. The
        # work is deterministic, so the first copy is kept.
        table = _table(indices=[0])
        table.grant("a", now=0.0)
        table.expire(now=10.0)
        table.grant("b", now=11.0)
        assert table.commit(0, "a") == "ok"
        assert table.commit(0, "b") == "duplicate"

    def test_expired_lease_late_commit_after_regrant_is_discarded(self):
        # The mirror race: the re-leased copy commits first, then the
        # stalled original's commit limps in. At-most-once, no double
        # count — and the shard stays committed (a duplicate must not
        # perturb the table's terminal state).
        table = _table(indices=[0, 1])
        table.grant("a", now=0.0)
        table.expire(now=10.0)            # a stalled past its lease
        table.grant("b", now=11.0)
        assert table.commit(0, "b") == "ok"
        assert table.commit(0, "a") == "duplicate"
        assert table.committed == [0]
        # The discarded copy frees nothing and grants nothing: the
        # only grantable shard is still the untouched one.
        assert table.grant("a", now=11.0).index == 1
        assert table.grant("c", now=11.0) is None

    def test_done_after_all_commits(self):
        table = _table(indices=[0, 1])
        table.grant("a", now=0.0)
        table.grant("b", now=0.0)
        assert not table.done()
        table.commit(0, "a")
        table.commit(1, "b")
        assert table.done()
        assert table.drained()

    def test_cancel_pending_skips_in_flight(self):
        table = _table(indices=[0, 1, 2])
        table.grant("a", now=0.0)
        assert table.cancel_pending() == [1, 2]
        assert not table.done()          # shard 0 still in flight
        table.commit(0, "a")
        assert table.done()
