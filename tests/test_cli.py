"""Tests for the ``python -m repro`` command-line driver."""

import subprocess
import sys

import pytest

from repro.__main__ import _EXPERIMENTS, main


class TestCliInProcess:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig11", "table4", "fp-only"):
            assert name in out

    def test_unknown_experiment(self, capsys):
        assert main(["fig99"]) == 2

    def test_single_experiment_at_test_scale(self, capsys):
        assert main(["table4", "--scale", "test"]) == 0
        out = capsys.readouterr().out
        assert "truncation" in out
        assert "elapsed" in out

    def test_fig13_with_tiny_campaign(self, capsys):
        assert main(["fig13", "--scale", "test", "--injections", "5"]) == 0
        out = capsys.readouterr().out
        assert "corrupted" in out.lower() or "SDC" in out

    def test_registry_complete(self):
        expected = {
            "fig1", "fig11", "fig12", "fig13", "fig14", "fig15", "fig17",
            "table2", "table3", "table4", "fp-only", "fault-models",
        }
        assert set(_EXPERIMENTS) == expected

    def test_fault_model_matrix_tiny(self, capsys):
        assert main(["fault-models", "--scale", "test",
                     "--injections", "4"]) == 0
        out = capsys.readouterr().out
        assert "register-bitflip" in out
        assert "address-bitflip" in out
        # checker-fault rows exist only for hardened versions.
        assert "checker-fault" in out


class TestCliSubprocess:
    def test_module_entry_point(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "list"],
            capture_output=True, text=True, timeout=120,
        )
        assert result.returncode == 0
        assert "fig11" in result.stdout
