"""Tests for instruction construction and type checking."""

import pytest

from repro.ir import types as T
from repro.ir.function import BasicBlock
from repro.ir.instructions import (
    AllocaInst,
    BinaryInst,
    BranchInst,
    BroadcastInst,
    CastInst,
    ExtractElementInst,
    FCmpInst,
    GepInst,
    ICmpInst,
    InsertElementInst,
    LoadInst,
    PhiInst,
    RetInst,
    SelectInst,
    ShuffleVectorInst,
    StoreInst,
    UnreachableInst,
)
from repro.ir.values import Constant, const_int


def i64(v):
    return const_int(v)


class TestBinary:
    def test_result_type_matches_operands(self):
        inst = BinaryInst("add", i64(1), i64(2))
        assert inst.type == T.I64
        assert inst.opcode == "add"

    def test_mismatched_operands_rejected(self):
        with pytest.raises(TypeError):
            BinaryInst("add", i64(1), const_int(2, T.I32))

    def test_unknown_opcode_rejected(self):
        with pytest.raises(ValueError):
            BinaryInst("madd", i64(1), i64(2))

    def test_vector_binary(self):
        v = Constant(T.vector(T.I64, 4), (1, 2, 3, 4))
        inst = BinaryInst("mul", v, v)
        assert inst.type == T.vector(T.I64, 4)

    def test_accessors(self):
        a, b = i64(1), i64(2)
        inst = BinaryInst("sub", a, b)
        assert inst.lhs is a and inst.rhs is b


class TestCompare:
    def test_icmp_scalar_yields_i1(self):
        assert ICmpInst("slt", i64(1), i64(2)).type == T.I1

    def test_icmp_vector_yields_i1_vector(self):
        v = Constant(T.vector(T.I64, 4), (1, 2, 3, 4))
        assert ICmpInst("eq", v, v).type == T.vector(T.I1, 4)

    def test_bad_predicate(self):
        with pytest.raises(ValueError):
            ICmpInst("lt", i64(1), i64(2))
        with pytest.raises(ValueError):
            FCmpInst("slt", const_int(1, T.F64), const_int(1, T.F64))

    def test_fcmp(self):
        a = Constant(T.F64, 1.0)
        assert FCmpInst("olt", a, a).type == T.I1


class TestMemory:
    def test_load_requires_pointer(self):
        p = Constant(T.PTR, 0x1000)
        assert LoadInst(T.I64, p).type == T.I64
        with pytest.raises(TypeError):
            LoadInst(T.I64, i64(0))

    def test_store_is_void(self):
        p = Constant(T.PTR, 0x1000)
        inst = StoreInst(i64(1), p)
        assert inst.type.is_void
        assert inst.value.value == 1

    def test_alloca(self):
        inst = AllocaInst(T.I64, count=10)
        assert inst.type == T.PTR
        assert inst.count == 10

    def test_gep_scalar(self):
        p = Constant(T.PTR, 0x1000)
        inst = GepInst(T.I64, p, i64(3))
        assert inst.type == T.PTR
        assert inst.elem_type == T.I64

    def test_gep_vector_pointers(self):
        vp = Constant(T.vector(T.PTR, 4), (1, 2, 3, 4))
        vi = Constant(T.vector(T.I64, 4), (0, 1, 2, 3))
        inst = GepInst(T.I64, vp, vi)
        assert inst.type == T.vector(T.PTR, 4)


class TestControlFlow:
    def test_unconditional_branch(self):
        bb = BasicBlock("x")
        br = BranchInst(None, bb)
        assert not br.is_conditional
        assert br.targets() == (bb,)

    def test_conditional_branch(self):
        a, b = BasicBlock("a"), BasicBlock("b")
        br = BranchInst(const_int(1, T.I1), a, b)
        assert br.is_conditional
        assert br.targets() == (a, b)

    def test_conditional_requires_else(self):
        with pytest.raises(ValueError):
            BranchInst(const_int(1, T.I1), BasicBlock("a"))

    def test_replace_target(self):
        a, b, c = BasicBlock("a"), BasicBlock("b"), BasicBlock("c")
        br = BranchInst(const_int(1, T.I1), a, b)
        br.replace_target(a, c)
        assert br.targets() == (c, b)

    def test_ret(self):
        assert RetInst(None).value is None
        assert RetInst(i64(5)).value.value == 5
        assert RetInst(None).is_terminator

    def test_unreachable_is_terminator(self):
        assert UnreachableInst().is_terminator


class TestPhi:
    def test_incoming_bookkeeping(self):
        a, b = BasicBlock("a"), BasicBlock("b")
        phi = PhiInst(T.I64)
        phi.add_incoming(i64(1), a)
        phi.add_incoming(i64(2), b)
        assert phi.incoming_for(a).value == 1
        assert phi.incoming_for(b).value == 2
        with pytest.raises(KeyError):
            phi.incoming_for(BasicBlock("c"))

    def test_incoming_type_checked(self):
        phi = PhiInst(T.I64)
        with pytest.raises(TypeError):
            phi.add_incoming(const_int(1, T.I32), BasicBlock("a"))

    def test_replace_incoming_block(self):
        a, c = BasicBlock("a"), BasicBlock("c")
        phi = PhiInst(T.I64)
        phi.add_incoming(i64(1), a)
        phi.replace_incoming_block(a, c)
        assert phi.incoming_for(c).value == 1


class TestVectorOps:
    def test_extract(self):
        v = Constant(T.vector(T.I64, 4), (1, 2, 3, 4))
        inst = ExtractElementInst(v, i64(0))
        assert inst.type == T.I64
        with pytest.raises(TypeError):
            ExtractElementInst(i64(1), i64(0))

    def test_insert(self):
        v = Constant(T.vector(T.I64, 4), (1, 2, 3, 4))
        inst = InsertElementInst(v, i64(9), i64(2))
        assert inst.type == T.vector(T.I64, 4)
        with pytest.raises(TypeError):
            InsertElementInst(v, const_int(9, T.I32), i64(2))

    def test_shuffle_mask_defines_width(self):
        v = Constant(T.vector(T.I64, 4), (1, 2, 3, 4))
        inst = ShuffleVectorInst(v, v, (1, 0, 3, 2))
        assert inst.type == T.vector(T.I64, 4)
        widened = ShuffleVectorInst(v, v, (0, 1, 2, 3, 4, 5))
        assert widened.type.count == 6

    def test_broadcast(self):
        inst = BroadcastInst(i64(5), 4)
        assert inst.type == T.vector(T.I64, 4)
        with pytest.raises(TypeError):
            BroadcastInst(Constant(T.vector(T.I64, 4), (1, 2, 3, 4)), 4)


class TestSelectAndCast:
    def test_select_arms_must_match(self):
        c = const_int(1, T.I1)
        SelectInst(c, i64(1), i64(2))
        with pytest.raises(TypeError):
            SelectInst(c, i64(1), const_int(2, T.I32))

    def test_cast_types(self):
        inst = CastInst("zext", const_int(5, T.I32), T.I64)
        assert inst.type == T.I64
        with pytest.raises(ValueError):
            CastInst("extend", const_int(5, T.I32), T.I64)

    def test_replace_operand(self):
        a, b = i64(1), i64(2)
        inst = BinaryInst("add", a, a)
        inst.replace_operand(a, b)
        assert inst.lhs is b and inst.rhs is b
