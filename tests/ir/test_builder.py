"""Tests for the IRBuilder, including the structured loop/if helpers."""

import pytest

from repro.cpu import Machine, MachineConfig
from repro.ir import IRBuilder, Module, verify_module
from repro.ir import types as T
from repro.ir.instructions import BranchInst, PhiInst

from ..conftest import make_function, run_scalar


class TestBasicEmission:
    def test_auto_naming_is_unique(self):
        module = Module("m")
        fn, b = make_function(module, "f", T.I64, [T.I64])
        x = b.add(fn.args[0], b.i64(1))
        y = b.mul(x, b.i64(2))
        b.ret(y)
        names = [i.name for i in fn.instructions() if not i.type.is_void]
        assert len(names) == len(set(names))

    def test_void_instructions_unnamed(self):
        module = Module("m")
        fn, b = make_function(module, "f", T.VOID, [])
        p = b.alloca(T.I64)
        b.store(b.i64(1), p)
        b.ret_void()
        store = fn.entry.instructions[1]
        assert store.name == ""

    def test_requires_position(self):
        b = IRBuilder()
        with pytest.raises(RuntimeError):
            b.add(IRBuilder.i64(1), IRBuilder.i64(2))

    def test_constant_helpers(self):
        assert IRBuilder.i64(5).type == T.I64
        assert IRBuilder.i32(5).type == T.I32
        assert IRBuilder.i8(5).type == T.I8
        assert IRBuilder.i1(True).value == 1
        assert IRBuilder.f64(1.0).type == T.F64
        assert IRBuilder.f32(1.0).type == T.F32

    def test_phi_inserted_before_non_phis(self):
        module = Module("m")
        fn, b = make_function(module, "f", T.I64, [])
        b.add(b.i64(1), b.i64(2))
        phi = b.phi(T.I64)
        assert fn.entry.instructions[0] is phi


class TestLoops:
    def test_simple_counted_loop(self, fast_config):
        module = Module("m")
        fn, b = make_function(module, "f", T.I64, [T.I64])
        loop = b.begin_loop(b.i64(0), fn.args[0])
        acc = b.loop_phi(loop, b.i64(0))
        b.set_loop_next(loop, acc, b.add(acc, loop.index))
        b.end_loop(loop)
        b.ret(acc)
        verify_module(module)
        assert run_scalar(module, "f", [10], fast_config) == sum(range(10))

    def test_zero_trip_loop(self, fast_config):
        module = Module("m")
        fn, b = make_function(module, "f", T.I64, [T.I64])
        loop = b.begin_loop(b.i64(0), fn.args[0])
        acc = b.loop_phi(loop, b.i64(42))
        b.set_loop_next(loop, acc, b.add(acc, b.i64(1)))
        b.end_loop(loop)
        b.ret(acc)
        assert run_scalar(module, "f", [0], fast_config) == 42

    def test_loop_with_step(self, fast_config):
        module = Module("m")
        fn, b = make_function(module, "f", T.I64, [])
        loop = b.begin_loop(b.i64(0), b.i64(10), step=b.i64(3))
        acc = b.loop_phi(loop, b.i64(0))
        b.set_loop_next(loop, acc, b.add(acc, loop.index))
        b.end_loop(loop)
        b.ret(acc)
        assert run_scalar(module, "f", (), fast_config) == 0 + 3 + 6 + 9

    def test_custom_predicate(self, fast_config):
        module = Module("m")
        fn, b = make_function(module, "f", T.I64, [])
        loop = b.begin_loop(b.i64(0), b.i64(5), pred="sle")
        acc = b.loop_phi(loop, b.i64(0))
        b.set_loop_next(loop, acc, b.add(acc, b.i64(1)))
        b.end_loop(loop)
        b.ret(acc)
        assert run_scalar(module, "f", (), fast_config) == 6  # 0..5 inclusive

    def test_nested_loops(self, fast_config):
        module = Module("m")
        fn, b = make_function(module, "f", T.I64, [T.I64])
        outer = b.begin_loop(b.i64(0), fn.args[0])
        total = b.loop_phi(outer, b.i64(0))
        inner = b.begin_loop(b.i64(0), fn.args[0])
        acc = b.loop_phi(inner, total)
        b.set_loop_next(inner, acc, b.add(acc, b.i64(1)))
        b.end_loop(inner)
        b.set_loop_next(outer, total, acc)
        b.end_loop(outer)
        b.ret(total)
        verify_module(module)
        assert run_scalar(module, "f", [4], fast_config) == 16

    def test_missing_set_loop_next_raises(self):
        module = Module("m")
        fn, b = make_function(module, "f", T.I64, [])
        loop = b.begin_loop(b.i64(0), b.i64(3))
        acc = b.loop_phi(loop, b.i64(0))
        with pytest.raises(ValueError):
            b.end_loop(loop)

    def test_set_loop_next_unknown_phi(self):
        module = Module("m")
        fn, b = make_function(module, "f", T.I64, [])
        loop = b.begin_loop(b.i64(0), b.i64(3))
        stray = PhiInst(T.I64)
        with pytest.raises(KeyError):
            b.set_loop_next(loop, stray, b.i64(0))


class TestIfs:
    def test_if_then(self, fast_config):
        module = Module("m")
        fn, b = make_function(module, "f", T.I64, [T.I64])
        slot = b.alloca(T.I64)
        b.store(b.i64(1), slot)
        cond = b.icmp("sgt", fn.args[0], b.i64(0))
        state = b.begin_if(cond)
        b.store(b.i64(2), slot)
        b.end_if(state)
        b.ret(b.load(T.I64, slot))
        verify_module(module)
        assert run_scalar(module, "f", [5], fast_config) == 2
        assert run_scalar(module, "f", [-5], fast_config) == 1

    def test_if_then_else(self, fast_config):
        module = Module("m")
        fn, b = make_function(module, "f", T.I64, [T.I64])
        slot = b.alloca(T.I64)
        cond = b.icmp("sgt", fn.args[0], b.i64(0))
        state = b.begin_if(cond, with_else=True)
        b.store(b.i64(10), slot)
        b.begin_else(state)
        b.store(b.i64(20), slot)
        b.end_if(state)
        b.ret(b.load(T.I64, slot))
        verify_module(module)
        assert run_scalar(module, "f", [1], fast_config) == 10
        assert run_scalar(module, "f", [0], fast_config) == 20

    def test_begin_else_without_flag_raises(self):
        module = Module("m")
        fn, b = make_function(module, "f", T.VOID, [T.I1])
        state = b.begin_if(fn.args[0])
        with pytest.raises(ValueError):
            b.begin_else(state)

    def test_early_return_inside_then(self, fast_config):
        module = Module("m")
        fn, b = make_function(module, "f", T.I64, [T.I64])
        cond = b.icmp("eq", fn.args[0], b.i64(7))
        state = b.begin_if(cond)
        b.ret(b.i64(100))
        b.position_at_end(state.merge)
        b.ret(b.i64(0))
        verify_module(module)
        assert run_scalar(module, "f", [7], fast_config) == 100
        assert run_scalar(module, "f", [8], fast_config) == 0
