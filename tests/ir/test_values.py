"""Tests for constants, arguments, and globals."""

import pytest

from repro.ir import types as T
from repro.ir.values import (
    Constant,
    GlobalVariable,
    UndefValue,
    const_bool,
    const_float,
    const_int,
    const_splat,
)


class TestConstants:
    def test_int_constants_are_width_masked(self):
        assert Constant(T.I8, 256).value == 0
        assert Constant(T.I8, 257).value == 1
        assert Constant(T.I8, -1).value == 255
        assert Constant(T.I64, -1).value == (1 << 64) - 1

    def test_i1_constants(self):
        assert const_bool(True).value == 1
        assert const_bool(False).value == 0
        assert Constant(T.I1, 2).value == 0  # masked

    def test_float_constants(self):
        c = const_float(1.5)
        assert c.type == T.F64
        assert c.value == 1.5

    def test_vector_constant_arity_checked(self):
        Constant(T.vector(T.I64, 4), (1, 2, 3, 4))
        with pytest.raises(ValueError):
            Constant(T.vector(T.I64, 4), (1, 2, 3))

    def test_vector_constant_masks_lanes(self):
        c = Constant(T.vector(T.I8, 4), (300, -1, 0, 5))
        assert c.value == (44, 255, 0, 5)

    def test_splat(self):
        c = const_splat(const_int(7), 4)
        assert c.type == T.vector(T.I64, 4)
        assert c.value == (7, 7, 7, 7)

    def test_equality_and_hash(self):
        assert const_int(5) == const_int(5)
        assert const_int(5) != const_int(6)
        assert const_int(5, T.I32) != const_int(5, T.I64)
        assert len({const_int(5), const_int(5), const_int(6)}) == 2

    def test_ref_text(self):
        assert const_int(42).ref() == "42"
        assert const_float(2.5).ref() == "2.5"
        v = Constant(T.vector(T.I64, 2), (1, 2))
        assert v.ref() == "<i64 1, i64 2>"

    def test_pointer_constant(self):
        c = Constant(T.PTR, 0x1000)
        assert c.value == 0x1000

    def test_bad_type_rejected(self):
        with pytest.raises(TypeError):
            Constant(T.VOID, 0)


class TestUndef:
    def test_undef_ref(self):
        u = UndefValue(T.I64)
        assert u.ref() == "undef"
        assert u.type == T.I64


class TestGlobals:
    def test_global_is_pointer_valued(self):
        g = GlobalVariable("g", T.ArrayType(T.I64, 4))
        assert g.type == T.PTR
        assert g.content_type == T.ArrayType(T.I64, 4)
        assert g.ref() == "@g"

    def test_global_initializer_kept(self):
        g = GlobalVariable("g", T.I64, initializer=42)
        assert g.initializer == 42
