"""Tests for the IR type system."""

import pytest

from repro.ir import types as T


class TestTypeConstruction:
    def test_standard_int_widths_are_cached(self):
        assert T.int_type(64) is T.I64
        assert T.int_type(32) is T.I32
        assert T.int_type(16) is T.I16
        assert T.int_type(8) is T.I8
        assert T.int_type(1) is T.I1

    def test_esoteric_int_widths_allowed(self):
        # LLVM sometimes produces i9-style types (paper §III-D).
        t = T.int_type(9)
        assert t.width == 9

    def test_int_width_bounds(self):
        with pytest.raises(ValueError):
            T.IntType(0)
        with pytest.raises(ValueError):
            T.IntType(65)

    def test_float_widths(self):
        assert T.F32.bits == 32
        assert T.F64.bits == 64
        with pytest.raises(ValueError):
            T.FloatType(16)

    def test_vector_requires_scalar_elem(self):
        v = T.vector(T.I64, 4)
        assert v.elem == T.I64 and v.count == 4
        with pytest.raises(ValueError):
            T.vector(T.vector(T.I64, 4), 2)
        with pytest.raises(ValueError):
            T.vector(T.I64, 1)

    def test_array_type(self):
        a = T.ArrayType(T.F64, 10)
        assert a.count == 10
        with pytest.raises(ValueError):
            T.ArrayType(T.I8, -1)

    def test_function_type(self):
        ft = T.FunctionType(T.I64, (T.PTR, T.I64))
        assert ft.ret == T.I64
        assert ft.params == (T.PTR, T.I64)


class TestTypeEquality:
    def test_structural_equality(self):
        assert T.IntType(64) == T.I64
        assert T.vector(T.I32, 8) == T.vector(T.I32, 8)
        assert T.vector(T.I32, 8) != T.vector(T.I32, 4)
        assert T.IntType(32) != T.IntType(64)
        assert T.F32 != T.F64
        assert T.PTR == T.PointerType()

    def test_cross_kind_inequality(self):
        assert T.I32 != T.F32
        assert T.I64 != T.PTR
        assert T.VOID != T.I1

    def test_hashable(self):
        s = {T.I64, T.IntType(64), T.F64, T.vector(T.I64, 4)}
        assert len(s) == 3

    def test_function_type_equality(self):
        a = T.FunctionType(T.VOID, (T.I64,))
        b = T.FunctionType(T.VOID, (T.I64,))
        assert a == b
        assert a != T.FunctionType(T.VOID, (T.I32,))


class TestPredicates:
    def test_scalar_predicate(self):
        assert T.I64.is_scalar
        assert T.F32.is_scalar
        assert T.PTR.is_scalar
        assert not T.vector(T.I64, 4).is_scalar
        assert not T.VOID.is_scalar
        assert not T.ArrayType(T.I8, 4).is_scalar

    def test_kind_predicates(self):
        assert T.I8.is_int and not T.I8.is_float
        assert T.F64.is_float and not T.F64.is_int
        assert T.PTR.is_pointer
        assert T.vector(T.F32, 8).is_vector
        assert T.VOID.is_void


class TestSizeof:
    @pytest.mark.parametrize(
        "ty,size",
        [
            (T.I1, 1),
            (T.I8, 1),
            (T.I16, 2),
            (T.I32, 4),
            (T.I64, 8),
            (T.F32, 4),
            (T.F64, 8),
            (T.PTR, 8),
            (T.vector(T.I64, 4), 32),
            (T.vector(T.I8, 4), 4),
            (T.ArrayType(T.I32, 10), 40),
        ],
    )
    def test_sizes(self, ty, size):
        assert T.sizeof(ty) == size

    def test_subbyte_ints_round_up(self):
        assert T.sizeof(T.int_type(9)) == 2
        assert T.sizeof(T.int_type(7)) == 1

    def test_void_has_no_size(self):
        with pytest.raises(TypeError):
            T.sizeof(T.VOID)

    def test_bitwidth(self):
        assert T.bitwidth(T.I32) == 32
        assert T.bitwidth(T.F64) == 64
        assert T.bitwidth(T.PTR) == 64
        with pytest.raises(TypeError):
            T.bitwidth(T.vector(T.I64, 4))


class TestTextForm:
    @pytest.mark.parametrize(
        "ty,text",
        [
            (T.I64, "i64"),
            (T.I1, "i1"),
            (T.F32, "float"),
            (T.F64, "double"),
            (T.PTR, "ptr"),
            (T.VOID, "void"),
            (T.vector(T.I64, 4), "<4 x i64>"),
            (T.ArrayType(T.I8, 3), "[3 x i8]"),
        ],
    )
    def test_str(self, ty, text):
        assert str(ty) == text
