"""Tests for CFG analyses: RPO, dominators, frontiers, natural loops."""

from repro.ir import DominatorTree, IRBuilder, Module, find_natural_loops
from repro.ir import types as T
from repro.ir.cfg import reverse_postorder

from ..conftest import make_function


def diamond():
    """entry -> (left | right) -> merge."""
    module = Module("m")
    fn, b = make_function(module, "f", T.I64, [T.I1])
    entry = fn.entry
    left = fn.append_block("left")
    right = fn.append_block("right")
    merge = fn.append_block("merge")
    b.cond_br(fn.args[0], left, right)
    b.position_at_end(left)
    b.br(merge)
    b.position_at_end(right)
    b.br(merge)
    b.position_at_end(merge)
    b.ret(b.i64(0))
    return fn, entry, left, right, merge


def looped():
    module = Module("m")
    fn, b = make_function(module, "f", T.I64, [T.I64])
    loop = b.begin_loop(b.i64(0), fn.args[0])
    acc = b.loop_phi(loop, b.i64(0))
    b.set_loop_next(loop, acc, b.add(acc, b.i64(1)))
    b.end_loop(loop)
    b.ret(acc)
    return fn, loop


class TestRPO:
    def test_entry_first(self):
        fn, entry, *_ = diamond()
        order = reverse_postorder(fn)
        assert order[0] is entry

    def test_merge_after_branches(self):
        fn, entry, left, right, merge = diamond()
        order = reverse_postorder(fn)
        assert order.index(merge) > order.index(left)
        assert order.index(merge) > order.index(right)

    def test_unreachable_excluded(self):
        module = Module("m")
        fn, b = make_function(module, "f", T.VOID, [])
        b.ret_void()
        dead = fn.append_block("dead")
        b.position_at_end(dead)
        b.ret_void()
        assert dead not in reverse_postorder(fn)


class TestDominators:
    def test_diamond_idoms(self):
        fn, entry, left, right, merge = diamond()
        dt = DominatorTree(fn)
        assert dt.idom[entry] is None
        assert dt.idom[left] is entry
        assert dt.idom[right] is entry
        assert dt.idom[merge] is entry

    def test_dominates_is_reflexive_and_transitive(self):
        fn, entry, left, right, merge = diamond()
        dt = DominatorTree(fn)
        assert dt.dominates(entry, entry)
        assert dt.dominates(entry, merge)
        assert not dt.dominates(left, merge)
        assert not dt.strictly_dominates(entry, entry)
        assert dt.strictly_dominates(entry, left)

    def test_loop_header_dominates_body_and_exit(self):
        fn, loop = looped()
        dt = DominatorTree(fn)
        assert dt.dominates(loop.header, loop.body)
        assert dt.dominates(loop.header, loop.exit)
        assert not dt.dominates(loop.body, loop.exit)

    def test_frontiers_diamond(self):
        fn, entry, left, right, merge = diamond()
        df = DominatorTree(fn).frontiers()
        assert df[left] == {merge}
        assert df[right] == {merge}
        assert df[entry] == set()

    def test_frontier_of_loop_body_is_header(self):
        fn, loop = looped()
        df = DominatorTree(fn).frontiers()
        assert loop.header in df[loop.body]


class TestNaturalLoops:
    def test_single_loop_found(self):
        fn, loop = looped()
        loops = find_natural_loops(fn)
        assert len(loops) == 1
        found = loops[0]
        assert found.header is loop.header
        assert found.blocks == {loop.header, loop.body}
        assert found.latches == [loop.body]
        assert loop.exit in found.exits

    def test_nested_loops_found(self):
        module = Module("m")
        fn, b = make_function(module, "f", T.I64, [T.I64])
        outer = b.begin_loop(b.i64(0), fn.args[0])
        total = b.loop_phi(outer, b.i64(0))
        inner = b.begin_loop(b.i64(0), fn.args[0])
        acc = b.loop_phi(inner, total)
        b.set_loop_next(inner, acc, b.add(acc, b.i64(1)))
        b.end_loop(inner)
        b.set_loop_next(outer, total, acc)
        b.end_loop(outer)
        b.ret(total)
        loops = find_natural_loops(fn)
        assert len(loops) == 2
        sizes = sorted(len(l.blocks) for l in loops)
        assert sizes[0] == 2  # inner: header + body
        assert sizes[1] >= 4  # outer contains the inner loop

    def test_no_loops_in_diamond(self):
        fn, *_ = diamond()
        assert find_natural_loops(fn) == []
