"""Round-trip tests for the textual IR form."""

import pytest

from repro.ir import (
    IRBuilder,
    Module,
    ParseError,
    format_module,
    parse_module,
    verify_module,
)
from repro.ir import types as T

from ..conftest import make_function


def roundtrip(module: Module) -> Module:
    text = format_module(module)
    parsed = parse_module(text)
    assert format_module(parsed) == text
    return parsed


class TestRoundTrip:
    def test_arithmetic_function(self):
        module = Module("arith")
        fn, b = make_function(module, "f", T.I64, [T.I64, T.I64], ["a", "c"])
        x = b.add(fn.args[0], fn.args[1])
        y = b.mul(x, b.i64(3))
        z = b.xor(y, b.i64(255))
        b.ret(z)
        parsed = roundtrip(module)
        verify_module(parsed)

    def test_control_flow_and_phi(self):
        module = Module("cf")
        fn, b = make_function(module, "f", T.I64, [T.I64])
        loop = b.begin_loop(b.i64(0), fn.args[0])
        acc = b.loop_phi(loop, b.i64(0))
        b.set_loop_next(loop, acc, b.add(acc, loop.index))
        b.end_loop(loop)
        b.ret(acc)
        verify_module(roundtrip(module))

    def test_memory_ops(self):
        module = Module("mem")
        module.add_global("g", T.ArrayType(T.I64, 8))
        fn, b = make_function(module, "f", T.I64, [])
        g = module.get_global("g")
        p = b.gep(T.I64, g, b.i64(3))
        b.store(b.i64(9), p)
        slot = b.alloca(T.I64, 2)
        b.store(b.i64(1), slot)
        b.ret(b.load(T.I64, p))
        verify_module(roundtrip(module))

    def test_calls_and_declarations(self):
        module = Module("calls")
        callee = module.declare_function(
            "rt.print_i64", T.FunctionType(T.VOID, (T.I64,))
        )
        fn, b = make_function(module, "f", T.VOID, [T.I64])
        b.call(callee, [fn.args[0]])
        b.ret_void()
        verify_module(roundtrip(module))

    def test_forward_function_reference(self):
        text = """
define i64 @caller(i64 %x) {
entry:
  %r = call i64 @callee(i64 %x)
  ret i64 %r
}

define i64 @callee(i64 %x) {
entry:
  ret i64 %x
}
"""
        module = parse_module(text)
        verify_module(module)
        assert module.get_function("caller").is_declaration is False

    def test_vector_ops(self):
        module = Module("vec")
        v4 = T.vector(T.I64, 4)
        fn, b = make_function(module, "f", T.I64, [T.I64])
        v = b.broadcast(fn.args[0], 4)
        w = b.add(v, b.add(v, v))
        s = b.shufflevector(w, w, (1, 0, 3, 2))
        x = b.xor(s, w)
        e = b.extractelement(x, b.i64(0))
        ins = b.insertelement(x, e, b.i64(1))
        b.ret(b.extractelement(ins, b.i64(1)))
        verify_module(roundtrip(module))

    def test_casts_select_fcmp(self):
        module = Module("misc")
        fn, b = make_function(module, "double", T.F64, [T.I64])
        f = b.sitofp(fn.args[0], T.F64)
        c = b.fcmp("olt", f, b.f64(0.0))
        r = b.select(c, b.fsub(b.f64(0.0), f), f)
        b.ret(r)
        verify_module(roundtrip(module))

    def test_float_constants_roundtrip(self):
        module = Module("floats")
        fn, b = make_function(module, "f", T.F64, [])
        b.ret(b.fadd(b.f64(1.5e-7), b.f64(-2.25)))
        parsed = roundtrip(module)
        ret = parsed.get_function("f").entry.instructions[-1]
        # value survives exactly (repr round-trip)
        add = parsed.get_function("f").entry.instructions[0]
        assert add.lhs.value == 1.5e-7
        assert add.rhs.value == -2.25


class TestParserErrors:
    def test_unknown_opcode(self):
        with pytest.raises(ParseError):
            parse_module(
                "define void @f() {\nentry:\n  frobnicate i64 1\n}"
            )

    def test_undefined_value(self):
        with pytest.raises(ParseError):
            parse_module(
                "define i64 @f() {\nentry:\n  ret i64 %nope\n}"
            )

    def test_unknown_block(self):
        with pytest.raises(ParseError):
            parse_module(
                "define void @f() {\nentry:\n  br label %missing\n}"
            )

    def test_missing_brace(self):
        with pytest.raises(ParseError):
            parse_module("define void @f() {\nentry:\n  ret void\n")

    def test_type_mismatch_on_forward_ref(self):
        text = """
define i64 @f(i64 %a) {
entry:
  br label %next
next:
  %x = add i64 %later, 1
  %later = add i32 0, 0
  ret i64 %x
}
"""
        with pytest.raises(ParseError):
            parse_module(text)

    def test_module_name_comment(self):
        module = parse_module("; module fancy\ndefine void @f() {\nentry:\n  ret void\n}")
        assert module.name == "fancy"
