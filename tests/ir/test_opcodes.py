"""Tests for the opcode classification that drives the hardening
passes (paper §III-B: replicable computation vs synchronization)."""

from repro.ir import opcodes as OP


class TestClassification:
    def test_partition_is_disjoint(self):
        assert not (OP.REPLICABLE_OPS & OP.SYNC_OPS)

    def test_every_op_is_classified(self):
        unclassified = (
            OP.ALL_OPS - OP.REPLICABLE_OPS - OP.SYNC_OPS - OP.VECTOR_OPS
        )
        assert unclassified == frozenset()

    def test_sync_matches_paper(self):
        """§III-B: memory ops, control flow, and calls synchronize."""
        for op in ("load", "store", "call", "br", "ret", "alloca"):
            assert OP.is_sync(op)
            assert not OP.is_replicable(op)

    def test_compute_is_replicable(self):
        for op in ("add", "fmul", "icmp", "fcmp", "gep", "phi", "select",
                   "zext", "sdiv"):
            assert OP.is_replicable(op)
            assert not OP.is_sync(op)

    def test_avx_gaps_match_paper(self):
        """§III-C/§VII-A: AVX2 lacks packed integer division and has
        pathological truncations."""
        assert OP.AVX_MISSING_OPS == {"sdiv", "udiv", "srem", "urem"}
        assert "trunc" in OP.AVX_SLOW_CASTS

    def test_binary_ops_partition(self):
        assert OP.BINARY_OPS == OP.INT_BINARY_OPS | OP.FLOAT_BINARY_OPS
        assert not (OP.INT_BINARY_OPS & OP.FLOAT_BINARY_OPS)

    def test_predicates_sets(self):
        assert "slt" in OP.ICMP_PREDICATES
        assert "oeq" in OP.FCMP_PREDICATES
        assert not (OP.ICMP_PREDICATES & OP.FCMP_PREDICATES)
