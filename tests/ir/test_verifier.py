"""Tests for the IR verifier."""

import pytest

from repro.ir import (
    IRBuilder,
    Module,
    VerificationError,
    verify_function,
    verify_module,
)
from repro.ir import types as T
from repro.ir.instructions import BinaryInst, BranchInst, PhiInst, RetInst
from repro.ir.values import const_int

from ..conftest import make_function


def well_formed():
    module = Module("m")
    fn, b = make_function(module, "f", T.I64, [T.I64])
    loop = b.begin_loop(b.i64(0), fn.args[0])
    acc = b.loop_phi(loop, b.i64(0))
    b.set_loop_next(loop, acc, b.add(acc, b.i64(1)))
    b.end_loop(loop)
    b.ret(acc)
    return module, fn


class TestStructural:
    def test_clean_module_passes(self):
        module, _ = well_formed()
        verify_module(module)

    def test_empty_block_rejected(self):
        module, fn = well_formed()
        fn.append_block("empty")
        with pytest.raises(VerificationError, match="empty"):
            verify_module(module)

    def test_missing_terminator_rejected(self):
        module = Module("m")
        fn, b = make_function(module, "f", T.I64, [])
        b.add(b.i64(1), b.i64(2))  # no ret
        with pytest.raises(VerificationError, match="terminator"):
            verify_function(fn)

    def test_terminator_in_middle_rejected(self):
        module = Module("m")
        fn, b = make_function(module, "f", T.I64, [])
        b.ret(b.i64(1))
        fn.entry.append(RetInst(const_int(2)))
        with pytest.raises(VerificationError, match="middle"):
            verify_function(fn)

    def test_ret_type_mismatch(self):
        module = Module("m")
        fn, b = make_function(module, "f", T.I64, [])
        b.ret_void()
        with pytest.raises(VerificationError, match="ret type"):
            verify_function(fn)

    def test_branch_cond_must_be_i1(self):
        module = Module("m")
        fn, b = make_function(module, "f", T.VOID, [T.I64])
        other = fn.append_block("other")
        fn.entry.append(BranchInst(fn.args[0], other, other))
        b.position_at_end(other)
        b.ret_void()
        with pytest.raises(VerificationError, match="i1"):
            verify_function(fn)

    def test_foreign_block_target(self):
        module = Module("m")
        fn, b = make_function(module, "f", T.VOID, [])
        other_module_fn, b2 = make_function(module, "g", T.VOID, [])
        b2.ret_void()
        foreign = other_module_fn.entry
        fn.entry.append(BranchInst(None, foreign))
        with pytest.raises(VerificationError, match="foreign"):
            verify_function(fn)


class TestPhiChecks:
    def test_phi_after_non_phi_rejected(self):
        module, fn = well_formed()
        header = fn.blocks[1]
        phi = PhiInst(T.I64)
        preds = fn.compute_predecessors()[header]
        for p in preds:
            phi.add_incoming(const_int(0), p)
        header.append(phi)  # appended after the terminator region
        with pytest.raises(VerificationError):
            verify_function(fn)

    def test_phi_incoming_must_match_predecessors(self):
        module = Module("m")
        fn, b = make_function(module, "f", T.I64, [T.I1])
        merge = fn.append_block("merge")
        b.cond_br(fn.args[0], merge, merge)
        b.position_at_end(merge)
        phi = b.phi(T.I64)
        # no incoming registered at all
        b.ret(phi)
        with pytest.raises(VerificationError, match="phi"):
            verify_function(fn)


class TestSSA:
    def test_use_before_def_rejected(self):
        module = Module("m")
        fn, b = make_function(module, "f", T.I64, [])
        late = BinaryInst("add", const_int(1), const_int(2))
        early = BinaryInst("add", late, const_int(3))
        fn.entry.append(early)
        fn.entry.append(late)
        fn.entry.append(RetInst(early))
        with pytest.raises(VerificationError, match="not dominated|not defined"):
            verify_function(fn)

    def test_use_across_sibling_branches_rejected(self):
        module = Module("m")
        fn, b = make_function(module, "f", T.I64, [T.I1])
        left = fn.append_block("left")
        right = fn.append_block("right")
        b.cond_br(fn.args[0], left, right)
        b.position_at_end(left)
        x = b.add(b.i64(1), b.i64(2))
        b.ret(x)
        b.position_at_end(right)
        b.ret(x)  # x does not dominate right
        with pytest.raises(VerificationError, match="not dominated"):
            verify_function(fn)

    def test_call_to_unknown_function(self):
        module = Module("m")
        other = Module("other")
        callee = other.add_function("g", T.FunctionType(T.VOID, ()))
        fn, b = make_function(module, "f", T.VOID, [])
        b.call(callee, [])
        b.ret_void()
        with pytest.raises(VerificationError, match="unknown function"):
            verify_module(module)
