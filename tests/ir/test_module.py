"""Tests for the Module container API."""

import pytest

from repro.ir import Module
from repro.ir import types as T

from ..conftest import make_function


class TestFunctions:
    def test_add_and_get(self):
        module = Module("m")
        fn = module.add_function("f", T.FunctionType(T.VOID, ()))
        assert module.get_function("f") is fn
        assert fn.parent is module

    def test_duplicate_definition_rejected(self):
        module = Module("m")
        module.add_function("f", T.FunctionType(T.VOID, ()))
        with pytest.raises(ValueError):
            module.add_function("f", T.FunctionType(T.VOID, ()))

    def test_declare_is_idempotent(self):
        module = Module("m")
        a = module.declare_function("ext", T.FunctionType(T.I64, (T.I64,)))
        b = module.declare_function("ext", T.FunctionType(T.I64, (T.I64,)))
        assert a is b

    def test_declare_type_conflict_rejected(self):
        module = Module("m")
        module.declare_function("ext", T.FunctionType(T.I64, (T.I64,)))
        with pytest.raises(TypeError):
            module.declare_function("ext", T.FunctionType(T.VOID, ()))

    def test_unknown_function(self):
        with pytest.raises(KeyError):
            Module("m").get_function("nope")

    def test_defined_functions_excludes_declarations(self):
        module = Module("m")
        module.declare_function("ext", T.FunctionType(T.VOID, ()))
        fn, b = make_function(module, "f", T.VOID, [])
        b.ret_void()
        assert [f.name for f in module.defined_functions()] == ["f"]

    def test_remove_function(self):
        module = Module("m")
        module.add_function("f", T.FunctionType(T.VOID, ()))
        module.remove_function("f")
        with pytest.raises(KeyError):
            module.get_function("f")

    def test_arg_names(self):
        module = Module("m")
        fn = module.add_function(
            "f", T.FunctionType(T.VOID, (T.I64, T.F64)), ["count", "scale"]
        )
        assert [a.name for a in fn.args] == ["count", "scale"]
        with pytest.raises(ValueError):
            module.add_function("g", T.FunctionType(T.VOID, (T.I64,)), ["a", "b"])


class TestGlobals:
    def test_add_get_and_duplicate(self):
        module = Module("m")
        gv = module.add_global("g", T.I64, 42)
        assert module.get_global("g") is gv
        with pytest.raises(ValueError):
            module.add_global("g", T.I64)
        with pytest.raises(KeyError):
            module.get_global("nope")

    def test_clone_signature_into(self):
        src = Module("src")
        src.add_global("g", T.ArrayType(T.I8, 4), [1, 2, 3, 4])
        dst = Module("dst")
        src.clone_signature_into(dst)
        assert dst.get_global("g").initializer == [1, 2, 3, 4]
        # Idempotent.
        src.clone_signature_into(dst)
        assert len(dst.globals) == 1


class TestFunctionIntrinsicFlag:
    @pytest.mark.parametrize("name,expected", [
        ("rt.alloc", True),
        ("avx.ptest", True),
        ("elzar.check.v4i64", True),
        ("tmr.vote.i64", True),
        ("swift.check.i64", True),
        ("host.sqrt", True),
        ("main", False),
        ("memset_i8", False),
        ("m.sqrt", False),  # the IR libm is ordinary (hardenable) code
    ])
    def test_is_intrinsic(self, name, expected):
        module = Module("m")
        fn = module.declare_function(name, T.FunctionType(T.VOID, ()))
        assert fn.is_intrinsic is expected
