"""Tests for the top-level ``repro`` package surface."""

import pytest

import repro


class TestExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__.count(".") == 2


class TestHardenFacade:
    @pytest.fixture()
    def module(self):
        from repro.ir import types as T

        m = repro.Module("m")
        fn = m.add_function("f", T.FunctionType(T.I64, (T.I64,)), ["x"])
        b = repro.IRBuilder()
        b.position_at_end(fn.append_block("entry"))
        b.ret(b.mul(fn.args[0], b.i64(7)))
        return m

    @pytest.mark.parametrize("scheme,marker", [
        ("elzar", "elzar"),
        ("swiftr", "swiftr"),
        ("swift", "swift"),
    ])
    def test_schemes(self, module, scheme, marker):
        hardened = repro.harden(module, scheme)
        assert hardened.get_function("f").hardened == marker
        machine = repro.Machine(
            hardened, repro.MachineConfig(collect_timing=False)
        )
        assert machine.run("f", [6]).value == 42

    def test_options_forwarded(self, module):
        hardened = repro.harden(module, "elzar", check_loads=False,
                                float_only=True)
        assert hardened.get_function("f").hardened == "elzar-float"

    def test_unknown_scheme(self, module):
        with pytest.raises(ValueError, match="unknown scheme"):
            repro.harden(module, "qmr")

    def test_input_module_untouched(self, module):
        before = repro.format_module(module)
        repro.harden(module, "elzar")
        assert repro.format_module(module) == before
