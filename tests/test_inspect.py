"""Tests for the static module inspection tools."""

import pytest

from repro.analysis import diff_reports, inspect_function, inspect_module
from repro.passes import (
    ElzarOptions,
    elzar_transform,
    mem2reg,
    swiftr_transform,
)
from repro.workloads import get


@pytest.fixture(scope="module")
def hist():
    built = get("histogram").build_at("test")
    mem2reg(built.module)
    return built


class TestInspectFunction:
    def test_native_has_no_vectors_or_checks(self, hist):
        report = inspect_function(hist.module.get_function("main"))
        assert report.hardened == ""
        assert report.vector_instructions == 0
        assert report.check_calls == 0
        assert report.replication_coverage == 0.0
        assert report.loads > 0 and report.stores > 0 and report.branches > 0
        assert report.instructions == sum(report.opcode_histogram.values())

    def test_elzar_report(self, hist):
        hardened = elzar_transform(hist.module)
        report = inspect_function(hardened.get_function("main"))
        assert report.hardened == "elzar"
        assert report.vector_instructions > 0
        assert report.check_calls > 0
        assert report.wrapper_instructions > 0
        assert report.replication_coverage > 0.5

    def test_swiftr_report(self, hist):
        hardened = swiftr_transform(hist.module)
        report = inspect_function(hardened.get_function("main"))
        assert report.hardened == "swiftr"
        assert report.vector_instructions == 0
        assert report.check_calls > 0  # tmr.vote calls
        assert report.wrapper_instructions == 0


class TestModuleReports:
    def test_module_aggregation(self, hist):
        hardened = elzar_transform(hist.module)
        report = inspect_module(hardened)
        assert report.instructions == sum(
            f.instructions for f in report.functions.values()
        )
        assert report.check_calls > 0
        rows = report.summary_rows()
        assert any(r[0] == "main" for r in rows)

    def test_diff_reports_growth(self, hist):
        before = inspect_module(hist.module)
        after_elzar = inspect_module(elzar_transform(hist.module))
        after_swiftr = inspect_module(swiftr_transform(hist.module))
        growth_e = dict(
            (r[0], r[3]) for r in diff_reports(before, after_elzar)
        )
        growth_s = dict(
            (r[0], r[3]) for r in diff_reports(before, after_swiftr)
        )
        assert growth_e["main"] > 1.0
        assert growth_s["main"] > 2.0  # triplication

    def test_nochecks_reduces_static_checks(self, hist):
        full = inspect_module(elzar_transform(hist.module))
        bare = inspect_module(
            elzar_transform(hist.module, ElzarOptions.no_checks())
        )
        assert bare.check_calls < full.check_calls
        assert bare.wrapper_instructions == full.wrapper_instructions
