"""Tests for the workload framework utilities."""

import pytest

from repro.workloads import outputs_match, pick, rng
from repro.workloads.common import SCALES, BuiltWorkload


class TestOutputsMatch:
    def test_exact_ints(self):
        assert outputs_match([1, 2, 3], [1, 2, 3])
        assert not outputs_match([1, 2, 3], [1, 2, 4])

    def test_length_mismatch(self):
        assert not outputs_match([1, 2], [1, 2, 3])

    def test_float_tolerance(self):
        assert outputs_match([1.0 + 1e-12], [1.0], rtol=1e-9)
        assert not outputs_match([1.0 + 1e-6], [1.0], rtol=1e-9)

    def test_tolerance_scales_with_magnitude(self):
        assert outputs_match([1e12 + 1.0], [1e12], rtol=1e-9)
        assert not outputs_match([1e12 + 1e5], [1e12], rtol=1e-9)

    def test_small_values_use_absolute_floor(self):
        # scale = max(|expected|, 1.0): tiny expected values compare
        # with an absolute tolerance of rtol.
        assert outputs_match([1e-12], [0.0], rtol=1e-9)
        assert not outputs_match([1e-6], [0.0], rtol=1e-9)

    def test_none_is_wildcard(self):
        assert outputs_match([123, 4.5], [None, 4.5])

    def test_mixed_int_float(self):
        assert outputs_match([3], [3.0])
        assert outputs_match([3.0], [3])


class TestHelpers:
    def test_pick(self):
        assert pick("perf", 1, 2, 3) == 1
        assert pick("fi", 1, 2, 3) == 2
        assert pick("test", 1, 2, 3) == 3
        with pytest.raises(KeyError):
            pick("huge", 1, 2, 3)

    def test_rng_deterministic(self):
        assert rng(7).randint(0, 1 << 30) == rng(7).randint(0, 1 << 30)
        assert rng(7).randint(0, 1 << 30) != rng(8).randint(0, 1 << 30)

    def test_scales_constant(self):
        assert SCALES == ("perf", "fi", "test")

    def test_built_workload_defaults(self):
        from repro.ir import Module

        built = BuiltWorkload(Module("m"), "main", (1,))
        assert built.expected is None
        assert built.rtol == 1e-9
