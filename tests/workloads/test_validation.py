"""Rank-consistency validation of workload mixes against Table II.

The experiments depend on the workloads only through their instruction
mixes; these tests check that the *orderings* of our kernels' measured
statistics correlate with the paper's measurements. (Absolute values
differ by construction — smaller datasets, leaner IR — see
EXPERIMENTS.md.)
"""

import pytest

from repro.cpu import Machine, MachineConfig
from repro.passes import inline_module, mem2reg
from repro.workloads import BENCHMARKS, SHORT_NAMES
from repro.workloads.validation import (
    PAPER_TABLE2,
    PAPER_TABLE3_ILP_NATIVE,
    PAPER_TABLE3_INCR_ELZAR,
    paper_column,
    ranks,
    spearman,
)


class TestHelpers:
    def test_ranks_simple(self):
        assert ranks({"a": 10.0, "b": 30.0, "c": 20.0}) == {
            "a": 1, "c": 2, "b": 3,
        }

    def test_ranks_ties_averaged(self):
        r = ranks({"a": 1.0, "b": 1.0, "c": 2.0})
        assert r["a"] == r["b"] == 1.5
        assert r["c"] == 3

    def test_spearman_perfect(self):
        a = {"x": 1.0, "y": 2.0, "z": 3.0}
        assert spearman(a, a) == pytest.approx(1.0)
        inverted = {"x": 3.0, "y": 2.0, "z": 1.0}
        assert spearman(a, inverted) == pytest.approx(-1.0)

    def test_spearman_needs_overlap(self):
        with pytest.raises(ValueError):
            spearman({"x": 1.0}, {"x": 1.0})

    def test_paper_tables_complete(self):
        assert set(PAPER_TABLE2) == set(SHORT_NAMES.values())
        assert set(PAPER_TABLE3_ILP_NATIVE) == set(SHORT_NAMES.values())
        assert set(PAPER_TABLE3_INCR_ELZAR) == set(SHORT_NAMES.values())


@pytest.fixture(scope="module")
def measured():
    """Native statistics for every benchmark at test scale."""
    stats = {}
    for wl in BENCHMARKS:
        built = wl.build_at("test")
        mem2reg(built.module)
        inline_module(built.module)
        mem2reg(built.module)
        counters = Machine(built.module, MachineConfig()).run(
            built.entry, built.args
        ).counters
        stats[SHORT_NAMES[wl.name]] = {
            "loads": counters.load_fraction,
            "stores": counters.store_fraction,
            "branches": counters.branch_fraction,
            "l1_miss": counters.l1_miss_ratio,
            "br_miss": counters.branch_miss_ratio,
        }
    return stats


class TestRankConsistency:
    def _ours(self, measured, metric):
        return {name: row[metric] for name, row in measured.items()}

    def test_store_fraction_extremes(self, measured):
        """smatch (bzero) sits at the store-heavy end in both; the pure
        readers (linreg, pca, scluster) at the bottom. (Full-column
        rank correlation is not asserted: our wc/x264/swap kernels
        write far less than Phoenix/PARSEC's file-output stages, a
        documented simplification.)"""
        ours = self._ours(measured, "stores")
        top = sorted(ours, key=ours.get, reverse=True)[:3]
        assert "smatch" in top
        bottom = sorted(ours, key=ours.get)[:6]
        assert "linreg" in bottom and "pca" in bottom

    def test_load_plus_store_extremes(self, measured):
        """The endpoints that matter for Figures 11/13/14: histogram at
        the memory-heavy end, blackscholes at the light end."""
        ours = {
            n: measured[n]["loads"] + measured[n]["stores"] for n in measured
        }
        paper = {
            n: PAPER_TABLE2[n]["loads"] + PAPER_TABLE2[n]["stores"]
            for n in PAPER_TABLE2
        }
        assert max(ours, key=ours.get) == max(paper, key=paper.get) == "hist"
        ours_low = sorted(ours, key=ours.get)[:4]
        assert "black" in ours_low

    def test_branch_miss_extremes(self, measured):
        """fluidanimate's data-dependent cutoff is the least
        predictable in both; linreg/hist loop branches are the most
        predictable."""
        ours = self._ours(measured, "br_miss")
        top4 = sorted(ours, key=ours.get, reverse=True)[:4]
        assert "fluid" in top4
        bottom = sorted(ours, key=ours.get)[:6]
        assert "linreg" in bottom and "hist" in bottom

    def test_branch_fraction_positive_correlation(self, measured):
        rho = spearman(
            self._ours(measured, "branches"), paper_column("branches")
        )
        assert rho > 0.0
