"""Tests for the IR libc and libm."""

import math

import pytest

from repro.cpu import Machine, MachineConfig
from repro.ir import IRBuilder, Module, verify_module
from repro.ir import types as T
from repro.workloads import libc, libm

from ..conftest import make_function


@pytest.fixture
def machine_for():
    def build(module):
        verify_module(module)
        return Machine(module, MachineConfig(collect_timing=False,
                                             cache_enabled=False))

    return build


class TestLibc:
    def test_memset(self, machine_for):
        module = Module("m")
        module.add_global("buf", T.ArrayType(T.I8, 16), list(range(16)))
        fn = libc.memset_i8(module)
        machine = machine_for(module)
        buf = machine.globals_addr["buf"]
        machine.run("memset_i8", [buf + 2, 0xAB, 8])
        data = machine.read_global("buf")
        assert data[:2] == [0, 1]
        assert data[2:10] == [0xAB] * 8
        assert data[10:] == list(range(10, 16))

    def test_memcpy(self, machine_for):
        module = Module("m")
        module.add_global("src", T.ArrayType(T.I8, 8), list(range(8)))
        module.add_global("dst", T.ArrayType(T.I8, 8))
        libc.memcpy_i8(module)
        machine = machine_for(module)
        machine.run("memcpy_i8", [machine.globals_addr["dst"],
                                  machine.globals_addr["src"], 8])
        assert machine.read_global("dst") == list(range(8))

    def test_memcmp(self, machine_for):
        module = Module("m")
        module.add_global("a", T.ArrayType(T.I8, 4), [1, 2, 3, 4])
        module.add_global("b", T.ArrayType(T.I8, 4), [1, 2, 9, 4])
        libc.memcmp_i8(module)
        machine = machine_for(module)
        a, bb = machine.globals_addr["a"], machine.globals_addr["b"]
        assert machine.run("memcmp_i8", [a, bb, 2]).value == 0
        assert machine.run("memcmp_i8", [a, bb, 4]).value == 1

    def test_strcmp_len(self, machine_for):
        module = Module("m")
        module.add_global("a", T.ArrayType(T.I8, 4), [1, 2, 3, 4])
        module.add_global("b", T.ArrayType(T.I8, 4), [1, 2, 9, 4])
        libc.strcmp_len(module)
        machine = machine_for(module)
        a, bb = machine.globals_addr["a"], machine.globals_addr["b"]
        assert machine.run("strcmp_len", [a, bb, 4]).value == 2  # first diff
        assert machine.run("strcmp_len", [a, a, 4]).value == 4   # equal

    def test_lcg_matches_reference(self, machine_for):
        module = Module("m")
        libc.lcg_next(module)
        machine = machine_for(module)
        state = 42
        for _ in range(5):
            state = (state * 6364136223846793005 + 1442695040888963407) % (1 << 64)
        got = 42
        for _ in range(5):
            got = machine.run("lcg_next", [got]).value
        assert got == state

    def test_lcg_to_unit_in_range(self, machine_for):
        module = Module("m")
        libc.lcg_to_unit_f64(module)
        machine = machine_for(module)
        for seed in (1, 2, 1 << 63, (1 << 64) - 1):
            v = machine.run("lcg_to_unit_f64", [seed]).value
            assert 0.0 < v < 1.0001

    def test_idempotent_definition(self):
        module = Module("m")
        first = libc.memset_i8(module)
        second = libc.memset_i8(module)
        assert first is second


class TestLibm:
    @pytest.fixture(scope="class")
    def mathmod(self):
        module = Module("mathtest")
        for builder in (libm.sqrt_f64, libm.exp_f64, libm.log_f64,
                        libm.erf_f64, libm.cndf_f64, libm.fabs_f64):
            builder(module)
        libm.pow_f64(module)
        verify_module(module)
        return Machine(module, MachineConfig(collect_timing=False,
                                             cache_enabled=False))

    @pytest.mark.parametrize("x", [1e-6, 0.25, 1.0, 2.0, 3.14159, 1e6, 1e12])
    def test_sqrt(self, mathmod, x):
        assert mathmod.run("m.sqrt", [x]).value == pytest.approx(
            math.sqrt(x), rel=1e-12
        )

    def test_sqrt_nonpositive(self, mathmod):
        assert mathmod.run("m.sqrt", [0.0]).value == 0.0
        assert mathmod.run("m.sqrt", [-4.0]).value == 0.0

    @pytest.mark.parametrize("x", [-20.0, -1.0, 0.0, 0.5, 1.0, 10.0, 300.0])
    def test_exp(self, mathmod, x):
        assert mathmod.run("m.exp", [x]).value == pytest.approx(
            math.exp(x), rel=1e-12
        )

    def test_exp_saturates(self, mathmod):
        assert mathmod.run("m.exp", [800.0]).value == math.inf
        assert mathmod.run("m.exp", [-800.0]).value == 0.0

    @pytest.mark.parametrize("x", [1e-10, 0.1, 1.0, 2.718281828, 1000.0, 1e15])
    def test_log(self, mathmod, x):
        assert mathmod.run("m.log", [x]).value == pytest.approx(
            math.log(x), rel=1e-12, abs=1e-12
        )

    def test_log_zero(self, mathmod):
        assert mathmod.run("m.log", [0.0]).value == -math.inf

    @pytest.mark.parametrize("x", [-3.0, -1.0, -0.1, 0.0, 0.1, 1.0, 3.0])
    def test_erf(self, mathmod, x):
        assert mathmod.run("m.erf", [x]).value == pytest.approx(
            math.erf(x), abs=2e-7
        )

    def test_cndf_properties(self, mathmod):
        assert mathmod.run("m.cndf", [0.0]).value == pytest.approx(0.5, abs=1e-7)
        phi2 = mathmod.run("m.cndf", [2.0]).value
        phim2 = mathmod.run("m.cndf", [-2.0]).value
        assert phi2 + phim2 == pytest.approx(1.0, abs=1e-6)
        assert phi2 == pytest.approx(0.97725, abs=1e-4)

    def test_fabs(self, mathmod):
        assert mathmod.run("m.fabs", [-2.5]).value == 2.5
        assert mathmod.run("m.fabs", [2.5]).value == 2.5

    def test_pow(self, mathmod):
        assert mathmod.run("m.pow", [2.0, 10.0]).value == pytest.approx(1024.0, rel=1e-9)
        assert mathmod.run("m.pow", [9.0, 0.5]).value == pytest.approx(3.0, rel=1e-9)
        assert mathmod.run("m.pow", [-1.0, 2.0]).value == 0.0  # documented clamp

    def test_hardened_libm_matches_native(self):
        """The whole point (§IV-A): hardened math == native math, so
        golden-run comparison works."""
        from repro.passes import elzar_transform

        module = Module("m")
        libm.erf_f64(module)
        hardened = elzar_transform(module)
        native = Machine(module, MachineConfig(collect_timing=False))
        harden = Machine(hardened, MachineConfig(collect_timing=False))
        for x in (-2.0, -0.3, 0.0, 0.7, 2.5):
            assert native.run("m.erf", [x]).value == harden.run("m.erf", [x]).value
