"""Tests for the benchmark kernels: correctness against references and
preservation under every transformation."""

import pytest

from repro.cpu import Machine, MachineConfig
from repro.ir import verify_module
from repro.passes import (
    ElzarOptions,
    clone_module,
    elzar_transform,
    mem2reg,
    swift_transform,
    swiftr_transform,
)
from repro.passes.vectorize import vectorize
from repro.workloads import (
    ALL,
    BENCHMARKS,
    MICRO_WORKLOADS,
    SHORT_NAMES,
    get,
    outputs_match,
)

FAST = MachineConfig(collect_timing=False)
BENCH_NAMES = [w.name for w in BENCHMARKS]
MICRO_NAMES = [w.name for w in MICRO_WORKLOADS]


@pytest.fixture(scope="module")
def built_cache():
    cache = {}

    def build(name):
        if name not in cache:
            built = get(name).build_at("test")
            mem2reg(built.module)
            verify_module(built.module)
            cache[name] = built
        return cache[name]

    return build


class TestRegistry:
    def test_fourteen_benchmarks(self):
        assert len(BENCHMARKS) == 14
        assert len(SHORT_NAMES) == 14

    def test_lookup_by_short_name(self):
        assert get("hist").name == "histogram"
        assert get("smatch").name == "string_match"
        with pytest.raises(KeyError):
            get("nope")

    def test_scales_validated(self):
        with pytest.raises(ValueError):
            get("histogram").build_at("huge")

    def test_fi_excludes_mmul_and_fluid(self):
        from repro.workloads import FI_BENCHMARKS

        names = {w.name for w in FI_BENCHMARKS}
        assert "matrix_multiply" not in names
        assert "fluidanimate" not in names
        assert len(names) == 12

    def test_fp_only_set(self):
        from repro.workloads import FP_ONLY_BENCHMARKS

        assert {w.name for w in FP_ONLY_BENCHMARKS} == {
            "blackscholes", "fluidanimate", "swaptions",
        }


@pytest.mark.parametrize("name", BENCH_NAMES + MICRO_NAMES)
class TestReferenceOutputs:
    def test_native_matches_reference(self, name, built_cache):
        built = built_cache(name)
        result = Machine(built.module, FAST).run(built.entry, built.args)
        assert outputs_match(result.output, built.expected, built.rtol), (
            result.output, built.expected,
        )


@pytest.mark.parametrize("name", BENCH_NAMES)
class TestTransformPreservation:
    def _outputs(self, module, built):
        return Machine(module, FAST).run(built.entry, built.args).output

    def test_elzar_preserves_output(self, name, built_cache):
        built = built_cache(name)
        base = self._outputs(built.module, built)
        hardened = elzar_transform(built.module)
        verify_module(hardened)
        assert outputs_match(self._outputs(hardened, built), base, built.rtol)

    def test_swiftr_preserves_output(self, name, built_cache):
        built = built_cache(name)
        base = self._outputs(built.module, built)
        hardened = swiftr_transform(built.module)
        verify_module(hardened)
        assert outputs_match(self._outputs(hardened, built), base, built.rtol)

    def test_vectorize_preserves_output(self, name, built_cache):
        built = built_cache(name)
        base = self._outputs(built.module, built)
        vec = vectorize(clone_module(built.module))
        verify_module(vec)
        assert outputs_match(self._outputs(vec, built), base, built.rtol)

    def test_float_only_preserves_output(self, name, built_cache):
        built = built_cache(name)
        base = self._outputs(built.module, built)
        hardened = elzar_transform(built.module, ElzarOptions(float_only=True))
        verify_module(hardened)
        assert outputs_match(self._outputs(hardened, built), base, built.rtol)


class TestWorkloadCharacters:
    """The per-workload instruction mixes that drive the figures."""

    @pytest.fixture(scope="class")
    def stats(self):
        out = {}
        # A proportionally scaled-down cache for test-sized datasets
        # (see MachineConfig's scaling note).
        config = MachineConfig(l1_size=512, l2_size=4 << 10, l3_size=256 << 10)
        for name in ("histogram", "blackscholes", "matrix_multiply",
                     "word_count", "ferret", "string_match"):
            built = get(name).build_at("test")
            mem2reg(built.module)
            out[name] = Machine(built.module, config).run(
                built.entry, built.args
            ).counters
        return out

    def test_histogram_is_memory_dominated(self, stats):
        c = stats["histogram"]
        assert c.load_fraction + c.store_fraction > 25.0
        assert c.fp_fraction == 0.0

    def test_blackscholes_is_fp_dominated(self, stats):
        c = stats["blackscholes"]
        assert c.fp_fraction > 25.0
        assert c.load_fraction < 12.0

    def test_matrix_multiply_misses_cache(self, stats):
        """Column-stride walks of B thrash the (scaled) L1 — the
        paper's 62% L1-miss workload."""
        assert stats["matrix_multiply"].l1_miss_ratio > 10.0
        assert (
            stats["matrix_multiply"].l1_miss_ratio
            > stats["string_match"].l1_miss_ratio
        )

    def test_ferret_mispredicts(self, stats):
        assert stats["ferret"].branch_miss_ratio > 4.0

    def test_word_count_branch_heavy(self, stats):
        assert stats["word_count"].branch_fraction > 10.0

    def test_native_runs_have_no_avx(self, stats):
        for name, c in stats.items():
            assert c.avx_instructions == 0, name


class TestMicroStructure:
    def test_truncation_micro_has_truncs(self):
        built = get("micro_truncation").build_at("test")
        mem2reg(built.module)
        fn = built.module.get_function("main")
        truncs = [i for i in fn.instructions() if i.opcode == "trunc"]
        assert len(truncs) >= 8

    def test_micro_not_vectorizable(self):
        """Table IV microbenchmarks must not auto-vectorize, or the
        native baseline would not be the paper's scalar baseline."""
        from repro.passes.vectorize import vectorize_function

        for wl in MICRO_WORKLOADS:
            built = wl.build_at("test")
            mem2reg(built.module)
            assert vectorize_function(built.module.get_function("main")) == 0, wl.name
