"""Behavioural tests for the benchmark kernels under crafted inputs.

Each test builds a kernel, overwrites its input globals with a scenario
whose correct answer is known analytically, and checks the kernel's
output — exercising the algorithms themselves rather than comparing
against the mirrored Python reference.
"""

import math

import pytest

from repro.cpu import Machine, MachineConfig
from repro.passes import mem2reg
from repro.workloads import get

FAST = MachineConfig(collect_timing=False)


def machine_for(name, scale="test"):
    built = get(name).build_at(scale)
    mem2reg(built.module)
    return built, Machine(built.module, FAST)


class TestHistogram:
    def test_uniform_image_fills_one_bin(self):
        built, machine = machine_for("histogram")
        n = built.args[0]
        machine.write_global("image", [5] * n)
        machine.run(built.entry, built.args)
        bins = machine.read_global("bins")
        assert bins[5] == n
        assert sum(bins) == n
        # output = [checksum, total]
        assert machine.output == [5 * n, n]

    def test_two_values_split(self):
        built, machine = machine_for("histogram")
        n = built.args[0]
        machine.write_global("image", [0, 255] * (n // 2))
        machine.run(built.entry, built.args)
        bins = machine.read_global("bins")
        assert bins[0] == n // 2 and bins[255] == n // 2


class TestLinearRegression:
    def test_perfect_line_recovered(self):
        built, machine = machine_for("linear_regression")
        n = built.args[0]
        pts = []
        for i in range(n):
            pts.extend([i, 4 * i + 9])
        machine.write_global("points", pts)
        machine.run(built.entry, built.args)
        slope, intercept = machine.output[-2], machine.output[-1]
        assert slope == pytest.approx(4.0)
        assert intercept == pytest.approx(9.0)


class TestMatrixMultiply:
    def test_identity_matrix(self):
        built, machine = machine_for("matrix_multiply")
        dim = built.args[0]
        identity = [1 if i % dim == i // dim else 0 for i in range(dim * dim)]
        some = list(range(dim * dim))
        machine.write_global("A", identity)
        machine.write_global("B", some)
        machine.run(built.entry, built.args)
        c = machine.read_global("C")
        assert c[: dim * dim] == some


class TestStringMatch:
    def test_no_planted_keys_no_matches(self):
        built, machine = machine_for("string_match")
        nwords = built.args[0]
        from repro.workloads.phoenix.string_match import WORD_LEN

        # Digits never collide with the lowercase keys.
        machine.write_global("words", [48] * (nwords * WORD_LEN))
        machine.run(built.entry, built.args)
        assert machine.output == [0]


class TestWordCount:
    def test_repeated_word_counts(self):
        built, machine = machine_for("word_count")
        n = built.args[0]
        text = (list(b"abc ") * n)[:n]
        if text[-1] != 32:
            text[-1] = 32
        machine.write_global("text", text)
        machine.run(built.entry, built.args)
        words = machine.output[0]
        counts = machine.read_global("counts")
        occupied = [c for c in counts if c]
        # One distinct word (possibly a truncated final fragment too).
        assert 1 <= len(occupied) <= 2
        assert max(occupied) >= words - 1


class TestDedup:
    def test_all_identical_chunks(self):
        built, machine = machine_for("dedup")
        nchunks = built.args[0]
        from repro.workloads.parsec.dedup import CHUNK

        machine.write_global("stream", [7] * (nchunks * CHUNK))
        machine.run(built.entry, built.args)
        dups, out_len = machine.output
        assert dups == nchunks - 1
        assert out_len == CHUNK

    def test_all_distinct_chunks(self):
        built, machine = machine_for("dedup")
        nchunks = built.args[0]
        from repro.workloads.parsec.dedup import CHUNK

        stream = []
        for c in range(nchunks):
            stream.extend([(c * 37 + i) % 256 for i in range(CHUNK)])
        machine.write_global("stream", stream)
        machine.run(built.entry, built.args)
        dups, out_len = machine.output
        assert dups == 0
        assert out_len == nchunks * CHUNK


class TestFerret:
    def test_exact_match_ranks_first(self):
        built, machine = machine_for("ferret")
        nq, ndb = built.args
        from repro.workloads.parsec.ferret import DIM

        db = [((i * 13 + e) % 97) / 97.0 for i in range(ndb) for e in range(DIM)]
        target_index = ndb - 1
        query = db[target_index * DIM:(target_index + 1) * DIM]
        machine.write_global("database", db)
        machine.write_global("queries", (query * nq)[: nq * DIM])
        machine.run(built.entry, built.args)
        top_idx = machine.read_global("top_idx")
        # Distance 0 entry must rank first (for the final query state).
        assert top_idx[0] == target_index


class TestFluidanimate:
    def test_distant_particles_feel_no_force(self):
        built, machine = machine_for("fluidanimate")
        n = built.args[0]
        machine.write_global("px", [10.0 * i for i in range(n)])
        machine.write_global("py", [10.0 * i for i in range(n)])
        machine.run(built.entry, built.args)
        fx = machine.read_global("fx")
        fy = machine.read_global("fy")
        assert all(v == 0.0 for v in fx)
        assert all(v == 0.0 for v in fy)


class TestStreamcluster:
    def test_tight_cluster_opens_one_center(self):
        built, machine = machine_for("streamcluster")
        n = built.args[0]
        from repro.workloads.parsec.streamcluster import DIM

        machine.write_global(
            "points", [0.5 + 0.0001 * (i % 3) for i in range(n * DIM)]
        )
        machine.run(built.entry, built.args)
        ncenters, cost = machine.output
        assert ncenters == 1
        assert cost < 1.0


class TestBlackscholes:
    def test_put_call_parity(self):
        """C - P = S - K e^{-rt} for matched parameters."""
        built, machine = machine_for("blackscholes")
        n = built.args[0]
        s, k, r, v, t = 100.0, 95.0, 0.05, 0.3, 1.0
        machine.write_global("spot", [s] * n)
        machine.write_global("strike", [k] * n)
        machine.write_global("rate", [r] * n)
        machine.write_global("vol", [v] * n)
        machine.write_global("time", [t] * n)
        # First half calls, second half puts.
        machine.write_global("otype", [0] * (n // 2) + [1] * (n - n // 2))
        machine.run(built.entry, built.args)
        prices = machine.read_global("prices")
        call, put = prices[0], prices[-1]
        assert call - put == pytest.approx(s - k * math.exp(-r * t), abs=1e-4)

    def test_deep_in_the_money_call(self):
        built, machine = machine_for("blackscholes")
        n = built.args[0]
        machine.write_global("spot", [200.0] * n)
        machine.write_global("strike", [10.0] * n)
        machine.write_global("rate", [0.01] * n)
        machine.write_global("vol", [0.2] * n)
        machine.write_global("time", [0.5] * n)
        machine.write_global("otype", [0] * n)
        machine.run(built.entry, built.args)
        price = machine.read_global("prices")[0]
        intrinsic_value = 200.0 - 10.0 * math.exp(-0.01 * 0.5)
        assert price == pytest.approx(intrinsic_value, rel=1e-3)


class TestSwaptions:
    def test_zero_vol_deterministic(self):
        built, machine = machine_for("swaptions")
        from repro.workloads.parsec.swaptions import NSWAPTIONS

        machine.write_global("vol", [0.0] * NSWAPTIONS)
        machine.write_global("strike", [0.02] * NSWAPTIONS)
        machine.run(built.entry, built.args)
        # With zero volatility the rate only mean-reverts from 0.05
        # toward 0.05 (no movement): payoff = (0.05-0.02)*exp(-0.05).
        expected = (0.05 - 0.02) * math.exp(-0.05)
        for mean in machine.output[:NSWAPTIONS]:
            assert mean == pytest.approx(expected, rel=1e-9)


class TestX264:
    def test_identical_frames_zero_sad(self):
        built, machine = machine_for("x264")
        height, width = built.args
        from repro.workloads.parsec.x264 import BLOCK

        ref = machine.read_global("ref")
        ref_w = width + BLOCK
        cur = []
        for y in range(height):
            cur.extend(ref[y * ref_w: y * ref_w + width])
        machine.write_global("cur", cur)
        machine.run(built.entry, built.args)
        assert machine.output == [0]
