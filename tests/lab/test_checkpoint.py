"""Tests for shard planning, spec keying, and checkpoint/replay rules."""

from collections import Counter

import pytest

from repro.cpu.interpreter import FaultPlan
from repro.faults.campaign import CampaignConfig, draw_plans
from repro.faults.trace import functions_only, hardened_only
from repro.lab.checkpoint import (
    build_spec,
    ensure_golden,
    golden_digest,
    load_completed,
    module_digest,
    partition,
)
from repro.lab.events import EventBus, EventLog
from repro.lab.store import ResultStore
from repro.passes.mem2reg import mem2reg
from repro.workloads import get


@pytest.fixture(scope="module")
def hist_module():
    built = get("histogram").build_at("test")
    return mem2reg(built.module)


def _plan_tuples(plans):
    return [(p.target_index, p.bit, p.lane) for p in plans]


class TestPartition:
    def test_contiguous_cover(self):
        plans = [FaultPlan(i, 0, 0) for i in range(23)]
        shards = partition(plans, 5)
        assert [s.index for s in shards] == [0, 1, 2, 3, 4]
        assert [s.start for s in shards] == [0, 5, 10, 15, 20]
        assert [len(s.plans) for s in shards] == [5, 5, 5, 5, 3]
        flat = [p for s in shards for p in s.plans]
        assert flat == plans

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            partition([], 0)

    def test_cap_increase_preserves_shard_prefix(self):
        """Raising the injection cap must extend, not reshuffle, the
        plan list — the property that lets a 2500-injection campaign
        reuse the shards of a 150-injection one."""
        small = draw_plans(97, CampaignConfig(injections=50, seed=11))
        large = draw_plans(97, CampaignConfig(injections=120, seed=11))
        assert _plan_tuples(large[:50]) == _plan_tuples(small)
        for small_shard, large_shard in zip(partition(small, 10),
                                            partition(large, 10)):
            assert _plan_tuples(small_shard.plans) == \
                _plan_tuples(large_shard.plans)


class TestSpecKeys:
    def test_spec_is_stable_for_same_inputs(self, hist_module):
        cfg = CampaignConfig(injections=10, seed=3)
        a = build_spec(hist_module, "main", (), cfg, population=100)
        b = build_spec(hist_module, "main", (), cfg, population=100)
        assert a.spec_key == b.spec_key and a.cell_key == b.cell_key

    def test_seed_changes_spec_but_not_cell(self, hist_module):
        a = build_spec(hist_module, "main", (),
                       CampaignConfig(injections=10, seed=3), population=100)
        b = build_spec(hist_module, "main", (),
                       CampaignConfig(injections=10, seed=4), population=100)
        assert a.cell_key == b.cell_key
        assert a.spec_key != b.spec_key

    def test_injection_cap_not_in_key(self, hist_module):
        a = build_spec(hist_module, "main", (),
                       CampaignConfig(injections=10, seed=3), population=100)
        b = build_spec(hist_module, "main", (),
                       CampaignConfig(injections=500, seed=3), population=100)
        assert a.spec_key == b.spec_key

    def test_module_edit_changes_key(self, hist_module):
        cfg = CampaignConfig(injections=10, seed=3)
        before = build_spec(hist_module, "main", (), cfg, population=100)
        digest_before = module_digest(hist_module)
        rebuilt = mem2reg(get("histogram").build_at("test").module)
        assert module_digest(rebuilt) == digest_before  # same IR, same key
        other = mem2reg(get("blackscholes").build_at("test").module)
        after = build_spec(other, "main", (), cfg, population=100)
        assert after.spec_key != before.spec_key

    def test_keyed_predicates_key_the_spec(self, hist_module):
        cfg_a = CampaignConfig(injections=10, seed=3,
                               fault_eligible=hardened_only(hist_module))
        cfg_b = CampaignConfig(injections=10, seed=3,
                               fault_eligible=functions_only(
                                   frozenset(["main"])))
        a = build_spec(hist_module, "main", (), cfg_a, population=100)
        b = build_spec(hist_module, "main", (), cfg_b, population=100)
        assert a.spec_key != b.spec_key

    def test_unkeyable_predicate_yields_no_spec(self, hist_module):
        cfg = CampaignConfig(injections=10, seed=3,
                             fault_eligible=lambda fn: True)
        assert build_spec(hist_module, "main", (), cfg, population=100) is None

    def test_fault_model_changes_spec_but_not_cell(self, hist_module):
        """Campaigns under different fault models must never share
        shard rows (the plans mean different things), but they share
        the cell — one golden run prices every model."""
        a = build_spec(hist_module, "main", (),
                       CampaignConfig(injections=10, seed=3), population=100)
        b = build_spec(hist_module, "main", (),
                       CampaignConfig(injections=10, seed=3,
                                      fault_model="instruction-skip"),
                       population=100)
        assert a.cell_key == b.cell_key
        assert a.spec_key != b.spec_key

    def test_population_is_in_the_key(self, hist_module):
        """target_index is drawn modulo the population; same seed over a
        different population is a different plan list."""
        a = build_spec(hist_module, "main", (),
                       CampaignConfig(injections=10, seed=3), population=100)
        b = build_spec(hist_module, "main", (),
                       CampaignConfig(injections=10, seed=3), population=101)
        assert a.spec_key != b.spec_key

    def test_engine_not_in_key(self, hist_module):
        """Both engines classify bit-identical outcomes (the
        differential suite enforces it), so their shards are
        interchangeable store rows."""
        a = build_spec(hist_module, "main", (),
                       CampaignConfig(injections=10, seed=3,
                                      engine="decoded"), population=100)
        b = build_spec(hist_module, "main", (),
                       CampaignConfig(injections=10, seed=3,
                                      engine="reference"), population=100)
        assert a.spec_key == b.spec_key


class TestGoldenGuard:
    def test_golden_digest_is_exact(self):
        assert golden_digest([1.0, 2.0], 10, 20) != \
            golden_digest([1.0, 2.0000000001], 10, 20)

    def test_stale_golden_purges_cell(self, hist_module, tmp_path):
        store = ResultStore(str(tmp_path / "s.sqlite"))
        cfg = CampaignConfig(injections=10, seed=3)
        spec = build_spec(hist_module, "main", (), cfg, population=100)
        events = EventBus()
        log = EventLog()
        events.subscribe(log)

        assert ensure_golden(store, spec, "digest-a", 100, 900, events)
        store.put_shard(spec.spec_key, spec.cell_key, 0, 5,
                        Counter(), 0.1)
        # Same cell, different behaviour: simulator semantics drifted.
        assert not ensure_golden(store, spec, "digest-b", 100, 900, events)
        assert store.get_shard(spec.spec_key, 0) is None
        assert log.count("store-stale") == 1
        assert store.get_golden(spec.cell_key).digest == "digest-b"


class TestLoadCompleted:
    def test_plan_count_mismatch_not_reused(self, hist_module, tmp_path):
        """A short final shard stored under a smaller cap must not be
        served as the full shard of a larger campaign."""
        store = ResultStore(str(tmp_path / "s.sqlite"))
        cfg = CampaignConfig(injections=12, seed=3)
        spec = build_spec(hist_module, "main", (), cfg, population=50,
                          shard_size=5)
        plans_small = draw_plans(50, cfg)
        shards_small = partition(plans_small, 5)  # sizes 5, 5, 2
        for shard in shards_small:
            store.put_shard(spec.spec_key, spec.cell_key, shard.index,
                            len(shard.plans),
                            Counter(), 0.1)
        plans_large = draw_plans(50, CampaignConfig(injections=20, seed=3))
        shards_large = partition(plans_large, 5)  # sizes 5, 5, 5, 5
        loaded = load_completed(store, spec, shards_large)
        assert sorted(loaded) == [0, 1]  # the short shard 2 is re-run
