"""Tests for Wilson-interval adaptive stopping (repro.lab.sampling)."""

from collections import Counter

import pytest

from repro.faults.outcomes import Outcome
from repro.lab.sampling import (
    AdaptiveStop,
    wilson_halfwidth,
    wilson_interval,
)


class TestWilsonInterval:
    def test_known_value(self):
        # 5/10 at z=1.96: centred on 0.5, half-width ~0.2634.
        lo, hi = wilson_interval(5, 10)
        assert lo == pytest.approx(0.2366, abs=2e-3)
        assert hi == pytest.approx(0.7634, abs=2e-3)

    def test_zero_n_is_vacuous(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)

    def test_bounds_stay_in_unit_interval(self):
        for k, n in [(0, 5), (5, 5), (1, 1000), (999, 1000)]:
            lo, hi = wilson_interval(k, n)
            assert 0.0 <= lo <= hi <= 1.0

    def test_extreme_proportions_keep_width(self):
        # Where Wald collapses to zero width, Wilson must not.
        assert wilson_halfwidth(0, 50) > 0.01

    def test_halfwidth_shrinks_with_n(self):
        widths = [wilson_halfwidth(n // 4, n) for n in (20, 80, 320, 1280)]
        assert widths == sorted(widths, reverse=True)

    def test_rejects_impossible_counts(self):
        with pytest.raises(ValueError):
            wilson_interval(6, 5)


class TestAdaptiveStop:
    def test_not_satisfied_below_min_injections(self):
        stop = AdaptiveStop(ci_target=0.5, min_injections=100)
        counts = Counter({Outcome.MASKED: 99})
        assert not stop.satisfied(counts)

    def test_satisfied_when_all_classes_tight(self):
        stop = AdaptiveStop(ci_target=0.05, min_injections=50)
        counts = Counter({Outcome.MASKED: 1500, Outcome.SDC: 500})
        assert stop.max_halfwidth(counts) < 0.05
        assert stop.satisfied(counts)

    def test_not_satisfied_when_loose(self):
        stop = AdaptiveStop(ci_target=0.02, min_injections=10)
        counts = Counter({Outcome.MASKED: 30, Outcome.SDC: 30})
        assert not stop.satisfied(counts)

    def test_every_outcome_class_considered(self):
        # max_halfwidth ranges over all six classes, including ones
        # with zero observations (their Wilson width is small but real).
        stop = AdaptiveStop(ci_target=0.001, min_injections=10)
        counts = Counter({Outcome.MASKED: 1000})
        assert stop.max_halfwidth(counts) > 0.001
        assert not stop.satisfied(counts)
