"""End-to-end tests of ``python -m repro campaign`` (in-process)."""

import json

import pytest

from repro.__main__ import main
from repro.lab.store import _OPEN_STORES


@pytest.fixture()
def lab_store(monkeypatch, tmp_path):
    """Point the default store at a fresh file for each test."""
    path = str(tmp_path / "store.sqlite")
    monkeypatch.setenv("REPRO_LAB_STORE", path)
    yield path
    store = _OPEN_STORES.pop(path, None)
    if store is not None:
        store.close()


def _campaign(*extra):
    return main(["campaign", "--scale", "test", "--quiet",
                 "--benchmarks", "histogram", "--versions", "native",
                 "--injections", "20", *extra])


def _report(path):
    with open(path) as fh:
        return json.load(fh)


class TestCampaignCommand:
    def test_second_run_is_all_store_hits(self, lab_store, tmp_path, capsys):
        first_json = str(tmp_path / "first.json")
        second_json = str(tmp_path / "second.json")
        assert _campaign("--json", first_json) == 0
        assert _campaign("--json", second_json) == 0
        capsys.readouterr()

        first, second = _report(first_json), _report(second_json)
        assert first["store"]["injections_executed"] == 20
        assert second["store"]["injections_executed"] == 0
        assert second["store"]["hit_rate"] == 1.0
        assert second["cells"][0]["counts"] == first["cells"][0]["counts"]

    def test_interrupt_then_resume_matches_fresh_run(
            self, lab_store, tmp_path, monkeypatch, capsys):
        # Fresh, uninterrupted reference in a separate store.
        ref_json = str(tmp_path / "ref.json")
        assert main(["campaign", "--scale", "test", "--quiet",
                     "--benchmarks", "histogram", "--versions", "native",
                     "--injections", "20",
                     "--store", str(tmp_path / "ref.sqlite"),
                     "--json", ref_json]) == 0

        assert _campaign("--interrupt-after-shards", "1") == 130
        out = capsys.readouterr().out
        assert "--resume" in out

        resumed_json = str(tmp_path / "resumed.json")
        assert _campaign("--resume", "--json", resumed_json) == 0
        out = capsys.readouterr().out
        assert "resuming interrupted campaign" in out

        reference, resumed = _report(ref_json), _report(resumed_json)
        assert resumed["cells"][0]["counts"] == reference["cells"][0]["counts"]
        assert resumed["cells"][0]["rates"] == reference["cells"][0]["rates"]
        assert resumed["store"]["shards_from_store"] == 1

    def test_resume_with_nothing_pending_starts_fresh(self, lab_store, capsys):
        assert _campaign("--resume") == 0
        out = capsys.readouterr().out
        assert "nothing to resume" in out

    def test_unknown_version_fails_cleanly(self, lab_store, capsys):
        with pytest.raises(SystemExit):
            _campaign("--versions", "sgx")

    def test_adaptive_flags_accepted(self, lab_store, tmp_path, capsys):
        report_json = str(tmp_path / "adaptive.json")
        assert _campaign("--ci-target", "0.5", "--json", report_json) == 0
        capsys.readouterr()
        report = _report(report_json)
        assert report["spec"]["ci_target"] == 0.5
        assert report["cells"][0]["ci_halfwidth"] is not None

    def test_batch_matches_sequential_counts(self, tmp_path, capsys):
        # --batch is a per-worker execution knob: same store-less
        # counts as --batch 1, and its shards land in the same store
        # rows (separate stores here so both runs actually execute).
        seq_json = str(tmp_path / "seq.json")
        assert main(["campaign", "--scale", "test", "--quiet",
                     "--benchmarks", "histogram", "--versions", "native",
                     "--injections", "20",
                     "--store", str(tmp_path / "seq.sqlite"),
                     "--json", seq_json]) == 0
        batched_json = str(tmp_path / "batched.json")
        assert main(["campaign", "--scale", "test", "--quiet",
                     "--benchmarks", "histogram", "--versions", "native",
                     "--injections", "20", "--batch", "8",
                     "--store", str(tmp_path / "batched.sqlite"),
                     "--json", batched_json]) == 0
        capsys.readouterr()
        seq, batched = _report(seq_json), _report(batched_json)
        assert batched["cells"][0]["counts"] == seq["cells"][0]["counts"]
        assert batched["spec"]["batch"] == 8
        assert batched["store"]["injections_executed"] == 20

    def test_batch_rejects_nonpositive(self, lab_store, capsys):
        with pytest.raises(SystemExit) as exc:
            _campaign("--batch", "0")
        assert exc.value.code == 2
        assert "--batch must be >= 1" in capsys.readouterr().err


class TestMainDispatch:
    def test_list_includes_campaign(self, capsys):
        assert main(["list"]) == 0
        assert "campaign" in capsys.readouterr().out.split()

    def test_fig13_accepts_workers(self, lab_store, capsys):
        assert main(["fig13", "--scale", "test", "--injections", "8",
                     "--workers", "1"]) == 0
        assert "fig13" in capsys.readouterr().out
