"""Unit tests for the JSONL event sink and the monotonic emit stamp."""

import json

from repro.lab.events import EventBus, JsonlSink, LabEvent


def _lines(path):
    with open(path) as fh:
        return [json.loads(line) for line in fh if line.strip()]


class TestMonotonicStamp:
    def test_emit_stamps_wall_and_monotonic(self):
        seen = []
        bus = EventBus()
        bus.subscribe(seen.append)
        bus.emit("a")
        bus.emit("b")
        assert all(e.ts > 0 and e.mono > 0 for e in seen)
        assert seen[0].mono <= seen[1].mono

    def test_as_dict_carries_both_stamps(self):
        event = LabEvent(kind="x", data={"k": 1}, ts=2.0, mono=3.0)
        assert event.as_dict() == {"kind": "x", "ts": 2.0, "mono": 3.0,
                                   "k": 1}


class TestJsonlSink:
    def test_one_event_per_line(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        bus = EventBus()
        sink = JsonlSink(path)
        bus.subscribe(sink)
        bus.emit("shard-completed", index=0, n=10)
        bus.emit("campaign-finished", workload="histogram")
        sink.close()
        events = _lines(path)
        assert [e["kind"] for e in events] == ["shard-completed",
                                               "campaign-finished"]
        assert events[0]["index"] == 0 and events[0]["n"] == 10

    def test_flushed_per_event(self, tmp_path):
        # Readable mid-campaign: no buffering until close().
        path = str(tmp_path / "events.jsonl")
        sink = JsonlSink(path)
        sink(LabEvent(kind="first", ts=1.0, mono=1.0))
        assert _lines(path)[0]["kind"] == "first"
        sink.close()

    def test_unencodable_values_degrade_to_repr(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        sink = JsonlSink(path)
        sink(LabEvent(kind="odd", data={"obj": object()}, ts=1.0, mono=1.0))
        sink.close()
        (event,) = _lines(path)
        assert event["kind"] == "'odd'" or "object" in event["obj"]

    def test_appends_not_truncates(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        for _ in range(2):
            sink = JsonlSink(path)
            sink(LabEvent(kind="run", ts=1.0, mono=1.0))
            sink.close()
        assert len(_lines(path)) == 2

    def test_fsync_flag_syncs_every_line(self, tmp_path, monkeypatch):
        import repro.lab.events as events_mod

        synced = []
        monkeypatch.setattr(events_mod.os, "fsync",
                            lambda fd: synced.append(fd))
        path = str(tmp_path / "events.jsonl")
        sink = JsonlSink(path, fsync=True)
        sink(LabEvent(kind="a", ts=1.0, mono=1.0))
        sink(LabEvent(kind="b", ts=2.0, mono=2.0))
        assert len(synced) == 2
        assert synced[0] == sink._fh.fileno()
        sink.close()

    def test_fsync_off_by_default(self, tmp_path, monkeypatch):
        import repro.lab.events as events_mod

        synced = []
        monkeypatch.setattr(events_mod.os, "fsync",
                            lambda fd: synced.append(fd))
        sink = JsonlSink(str(tmp_path / "events.jsonl"))
        sink(LabEvent(kind="a", ts=1.0, mono=1.0))
        assert synced == []
        sink.close()
