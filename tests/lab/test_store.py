"""Tests for the SQLite result store (repro.lab.store)."""

from collections import Counter

from repro.faults.outcomes import Outcome
from repro.lab.store import ResultStore, default_store_path, digest_of


def _counts(**kw) -> Counter:
    return Counter({Outcome(k.replace("_", "-")): v for k, v in kw.items()})


class TestDigests:
    def test_stable_across_container_types(self):
        assert digest_of(("a", 1)) == digest_of(["a", 1])

    def test_frozenset_order_independent(self):
        a = frozenset(["zeta", "alpha", "mid"])
        b = frozenset(["mid", "zeta", "alpha"])
        assert digest_of(("functions_only", a)) == \
            digest_of(("functions_only", b))

    def test_distinct_keys_distinct_digests(self):
        assert digest_of(["spec", 1]) != digest_of(["spec", 2])

    def test_float_precision_preserved(self):
        assert digest_of(1e-9) != digest_of(1.0000001e-9)


class TestShardRows:
    def test_roundtrip(self, tmp_path):
        store = ResultStore(str(tmp_path / "s.sqlite"))
        counts = _counts(sdc=3, masked=2)
        store.put_shard("spec", "cell", 0, 5, counts, 0.5)
        n, loaded = store.get_shard("spec", 0)
        assert n == 5 and loaded == counts
        assert store.get_shard("spec", 1) is None
        assert store.get_shard("other", 0) is None

    def test_persists_across_connections(self, tmp_path):
        path = str(tmp_path / "s.sqlite")
        store = ResultStore(path)
        store.put_shard("spec", "cell", 3, 7, _counts(hang=7), 0.1)
        store.close()
        reopened = ResultStore(path)
        n, counts = reopened.get_shard("spec", 3)
        assert n == 7 and counts == _counts(hang=7)

    def test_upsert_idempotent(self, tmp_path):
        store = ResultStore(str(tmp_path / "s.sqlite"))
        for _ in range(2):
            store.put_shard("spec", "cell", 0, 4, _counts(masked=4), 0.2)
        assert len(store.shard_rows()) == 1

    def test_purge_cell(self, tmp_path):
        store = ResultStore(str(tmp_path / "s.sqlite"))
        store.put_shard("spec-a", "cell-1", 0, 4, _counts(masked=4), 0.1)
        store.put_shard("spec-a", "cell-1", 1, 4, _counts(sdc=4), 0.1)
        store.put_shard("spec-b", "cell-2", 0, 4, _counts(hang=4), 0.1)
        assert store.purge_cell("cell-1") == 2
        assert store.get_shard("spec-a", 0) is None
        assert store.get_shard("spec-b", 0) is not None


class TestGoldens:
    def test_roundtrip(self, tmp_path):
        store = ResultStore(str(tmp_path / "s.sqlite"))
        assert store.get_golden("cell") is None
        store.put_golden("cell", "digest-1", 42, 1000)
        record = store.get_golden("cell")
        assert record.digest == "digest-1"
        assert record.eligible == 42 and record.executed == 1000


class TestRuns:
    def test_resume_manifest_lifecycle(self, tmp_path):
        store = ResultStore(str(tmp_path / "s.sqlite"))
        assert store.latest_incomplete_run() is None
        first = store.begin_run({"injections": 10})
        second = store.begin_run({"injections": 20})
        run_id, spec = store.latest_incomplete_run()
        assert run_id == second and spec == {"injections": 20}
        store.finish_run(second)
        run_id, spec = store.latest_incomplete_run()
        assert run_id == first and spec == {"injections": 10}
        store.finish_run(first)
        assert store.latest_incomplete_run() is None


class TestDefaultPath:
    def test_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_LAB_STORE", str(tmp_path / "env.sqlite"))
        assert default_store_path() == str(tmp_path / "env.sqlite")

    def test_cache_dir_fallback(self, monkeypatch):
        monkeypatch.delenv("REPRO_LAB_STORE", raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", "/tmp/xdg-cache")
        assert default_store_path() == "/tmp/xdg-cache/repro-lab/store.sqlite"
