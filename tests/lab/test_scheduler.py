"""Tests for supervised shard execution (repro.lab.scheduler).

The runner used here is synthetic (no simulator) so the tests isolate
the supervision behaviour: fork fan-out, crash retry, timeout kill,
and graceful degradation to the supervisor process. The ``sabotage``
hook runs only inside forked workers — never in the supervisor — which
is exactly what makes degradation safe to test.
"""

import multiprocessing
import os
import time
from collections import Counter

import pytest

from repro.cpu.interpreter import FaultPlan
from repro.faults.outcomes import Outcome
from repro.lab.checkpoint import partition
from repro.lab.events import EventBus, EventLog
from repro.lab.scheduler import SchedulerPolicy, ShardScheduler

fork_only = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="requires the fork start method",
)


def _shards(n_plans=20, shard_size=4):
    return partition([FaultPlan(i, 0, 0) for i in range(n_plans)], shard_size)


def _runner(shard):
    # Deterministic per-shard counts derived from the plans alone.
    return Counter({
        Outcome.MASKED: len(shard.plans),
        Outcome.SDC: shard.index,
    })


def _collect():
    results = {}

    def on_result(shard, counts, seconds):
        assert seconds >= 0.0
        results[shard.index] = counts

    return results, on_result


def _crash_first_attempt(index, attempt):
    if index == 1 and attempt == 0:
        os._exit(13)


def _crash_always(index, attempt):
    if index == 1:
        os._exit(13)


def _hang_first_attempt(index, attempt):
    if index == 0 and attempt == 0:
        time.sleep(30)


def _raise_in_worker(index, attempt):
    if index == 2 and attempt == 0:
        raise RuntimeError("synthetic worker error")


class TestSerialPath:
    def test_runs_every_shard(self):
        shards = _shards()
        results, on_result = _collect()
        ShardScheduler(SchedulerPolicy(workers=1)).run(
            shards, _runner, on_result
        )
        assert sorted(results) == [s.index for s in shards]

    def test_empty_input_is_noop(self):
        results, on_result = _collect()
        ShardScheduler(SchedulerPolicy(workers=1)).run([], _runner, on_result)
        assert results == {}


@fork_only
class TestForkedPath:
    def test_parallel_matches_serial(self):
        shards = _shards()
        serial, on_serial = _collect()
        ShardScheduler(SchedulerPolicy(workers=1)).run(
            shards, _runner, on_serial
        )
        parallel, on_parallel = _collect()
        ShardScheduler(SchedulerPolicy(workers=3)).run(
            shards, _runner, on_parallel
        )
        assert parallel == serial

    def test_crashed_worker_is_retried(self):
        shards = _shards()
        events = EventBus()
        log = EventLog()
        events.subscribe(log)
        results, on_result = _collect()
        ShardScheduler(
            SchedulerPolicy(workers=2, backoff=0.01), events
        ).run(shards, _runner, on_result, _sabotage=_crash_first_attempt)
        assert sorted(results) == [s.index for s in shards]
        assert results[1] == _runner(shards[1])
        retries = log.of("shard-retry")
        assert retries and retries[0].data["index"] == 1

    def test_repeatedly_dying_shard_degrades_to_supervisor(self):
        shards = _shards()
        events = EventBus()
        log = EventLog()
        events.subscribe(log)
        results, on_result = _collect()
        ShardScheduler(
            SchedulerPolicy(workers=2, max_retries=1, backoff=0.01), events
        ).run(shards, _runner, on_result, _sabotage=_crash_always)
        # The shard still completes — in-process, past the sabotage.
        assert sorted(results) == [s.index for s in shards]
        assert results[1] == _runner(shards[1])
        assert log.count("shard-retry") == 1
        degraded = log.of("shard-degraded")
        assert len(degraded) == 1 and degraded[0].data["index"] == 1

    def test_hung_worker_times_out_and_retries(self):
        shards = _shards(n_plans=8, shard_size=4)
        events = EventBus()
        log = EventLog()
        events.subscribe(log)
        results, on_result = _collect()
        ShardScheduler(
            SchedulerPolicy(workers=2, timeout=0.5, backoff=0.01), events
        ).run(shards, _runner, on_result, _sabotage=_hang_first_attempt)
        assert sorted(results) == [0, 1]
        reasons = [e.data["reason"] for e in log.of("shard-retry")]
        assert any("timeout" in reason for reason in reasons)

    def test_worker_exception_is_reported_and_retried(self):
        shards = _shards()
        events = EventBus()
        log = EventLog()
        events.subscribe(log)
        results, on_result = _collect()
        ShardScheduler(
            SchedulerPolicy(workers=2, backoff=0.01), events
        ).run(shards, _runner, on_result, _sabotage=_raise_in_worker)
        assert sorted(results) == [s.index for s in shards]
        reasons = [e.data["reason"] for e in log.of("shard-retry")]
        assert any("synthetic worker error" in reason for reason in reasons)

    def test_interrupting_sink_cleans_up_workers(self):
        shards = _shards(n_plans=40, shard_size=2)

        def on_result(shard, counts, seconds):
            raise KeyboardInterrupt("stop now")

        with pytest.raises(KeyboardInterrupt):
            ShardScheduler(SchedulerPolicy(workers=4)).run(
                shards, _runner, on_result
            )
        # No worker processes left behind.
        assert not multiprocessing.active_children()


@fork_only
class TestEventDrivenWait:
    def test_huge_poll_interval_is_harmless(self):
        # The supervisor blocks on the worker pipes rather than
        # sleeping poll_interval between scans; a pathological value
        # must not slow the run down (it used to gate every scan).
        shards = _shards(n_plans=12, shard_size=4)
        results, on_result = _collect()
        started = time.monotonic()
        ShardScheduler(SchedulerPolicy(workers=2, poll_interval=30.0)).run(
            shards, _runner, on_result
        )
        assert time.monotonic() - started < 10.0
        assert sorted(results) == [s.index for s in shards]

    def test_retry_backoff_still_honoured(self):
        # With no live pipes to wait on, the supervisor must still
        # sleep until the crashed shard's retry becomes eligible
        # instead of spinning (or hanging forever).
        shards = _shards(n_plans=8, shard_size=4)  # shards 0 and 1
        results, on_result = _collect()
        ShardScheduler(SchedulerPolicy(workers=2, backoff=0.2)).run(
            shards, _runner, on_result, _sabotage=_crash_first_attempt
        )
        assert sorted(results) == [0, 1]
        assert results[1] == _runner(shards[1])
