"""Resume-equivalence tests: the ISSUE's acceptance criteria.

An interrupted campaign, resumed, must reach outcome counts, rates,
and a store row set bit-identical to the uninterrupted serial run —
for both serial and parallel execution.
"""

import multiprocessing
from collections import Counter

import pytest

from repro.faults.campaign import CampaignConfig, run_campaign
from repro.faults.outcomes import Outcome
from repro.lab.durable import run_durable_campaign
from repro.lab.events import CampaignInterrupted, EventBus, EventLog, \
    interrupt_after
from repro.lab.store import ResultStore
from repro.passes.elzar import elzar_transform
from repro.passes.mem2reg import mem2reg
from repro.workloads import get

CONFIG = dict(injections=30, seed=9)
SHARD_SIZE = 6  # 5 shards of 6

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()

worker_counts = pytest.mark.parametrize(
    "workers",
    [1, pytest.param(4, marks=pytest.mark.skipif(
        not HAS_FORK, reason="requires the fork start method"))],
)


@pytest.fixture(scope="module")
def cell():
    built = get("histogram").build_at("test")
    module = elzar_transform(mem2reg(built.module))
    return module, built.entry, built.args


@pytest.fixture(scope="module")
def baseline(cell):
    module, entry, args = cell
    return run_campaign(module, entry, args, "histogram", "elzar",
                        CampaignConfig(**CONFIG))


def _durable(cell, store, workers=1, events=None, **kw):
    module, entry, args = cell
    return run_durable_campaign(
        module, entry, args, "histogram", "elzar",
        CampaignConfig(workers=workers, **CONFIG),
        store=store, events=events, shard_size=SHARD_SIZE, **kw,
    )


class TestDurableMatchesPlainCampaign:
    @worker_counts
    def test_counts_identical(self, cell, baseline, tmp_path, workers):
        store = ResultStore(str(tmp_path / "s.sqlite"))
        outcome = _durable(cell, store, workers=workers)
        assert outcome.result.counts == baseline.counts
        assert outcome.result.total == baseline.total

    def test_ephemeral_store_false(self, cell, baseline):
        outcome = _durable(cell, False)
        assert outcome.result.counts == baseline.counts
        assert not outcome.info.durable

    def test_unkeyable_predicate_still_runs(self, cell):
        module, entry, args = cell
        events = EventBus()
        log = EventLog()
        events.subscribe(log)
        outcome = run_durable_campaign(
            module, entry, args, "histogram", "elzar",
            CampaignConfig(fault_eligible=lambda fn: True, **CONFIG),
            store=False, events=events, shard_size=SHARD_SIZE,
        )
        assert not outcome.info.durable
        assert outcome.result.total == CONFIG["injections"]


class TestInterruptResume:
    @worker_counts
    def test_bit_identical_after_resume(self, cell, baseline, tmp_path,
                                        workers):
        # Reference: uninterrupted run into its own store.
        ref_store = ResultStore(str(tmp_path / "ref.sqlite"))
        reference = _durable(cell, ref_store)

        store = ResultStore(str(tmp_path / "s.sqlite"))
        events = EventBus()
        events.subscribe(interrupt_after(2))
        with pytest.raises(CampaignInterrupted):
            _durable(cell, store, workers=workers, events=events)
        # The interrupted shards are already persisted.
        persisted = {idx for (_, idx, _, _) in store.shard_rows()}
        assert len(persisted) == 2

        resumed = _durable(cell, store, workers=workers)
        assert resumed.result.counts == baseline.counts
        assert resumed.result.sdc_rate == reference.result.sdc_rate
        assert resumed.result.crash_rate == reference.result.crash_rate
        assert resumed.info.shards_from_store == 2
        assert resumed.info.shards_executed == 3
        # Store rows, not just aggregates, are bit-identical.
        assert store.shard_rows() == ref_store.shard_rows()

    def test_replay_executes_nothing(self, cell, tmp_path):
        store = ResultStore(str(tmp_path / "s.sqlite"))
        first = _durable(cell, store)
        again = _durable(cell, store)
        assert again.info.injections_executed == 0
        assert again.info.shards_from_store == again.info.shards_total
        assert again.result.counts == first.result.counts

    def test_cap_increase_reuses_full_shards(self, cell, tmp_path):
        store = ResultStore(str(tmp_path / "s.sqlite"))
        module, entry, args = cell
        small = run_durable_campaign(
            module, entry, args, "histogram", "elzar",
            CampaignConfig(injections=18, seed=9),
            store=store, shard_size=SHARD_SIZE,
        )
        large = run_durable_campaign(
            module, entry, args, "histogram", "elzar",
            CampaignConfig(injections=30, seed=9),
            store=store, shard_size=SHARD_SIZE,
        )
        # The three full shards of the 18-injection run are reused, and
        # the larger campaign's counts extend (never contradict) them.
        assert large.info.shards_from_store == 3
        assert large.info.shards_executed == 2
        for outcome_class in Outcome:
            assert large.result.counts[outcome_class] >= \
                small.result.counts[outcome_class]
        assert sum(large.result.counts.values()) == 30


class TestAdaptiveDeterminism:
    @worker_counts
    def test_same_stop_point_any_worker_count(self, cell, tmp_path, workers):
        serial_store = ResultStore(str(tmp_path / "serial.sqlite"))
        serial = _durable(cell, serial_store, workers=1,
                          ci_target=0.25, min_injections=6)
        store = ResultStore(str(tmp_path / f"w{workers}.sqlite"))
        parallel = _durable(cell, store, workers=workers,
                            ci_target=0.25, min_injections=6)
        assert parallel.result.counts == serial.result.counts
        assert parallel.info.injections_used == serial.info.injections_used
        assert parallel.info.stopped_early == serial.info.stopped_early
