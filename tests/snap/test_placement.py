"""Placement-policy properties: determinism (the store's sharing
precondition), interval bounds, and density adaptation to the fault
model's exposed-site analysis.
"""

import pytest

from repro.faults.models import model_names
from repro.snap.placement import (
    PlacementConfig,
    function_intervals,
    make_policy,
)
from repro.toolchain import default_toolchain


def _module():
    return default_toolchain().build("histogram", "test", "elzar").module


class TestFunctionIntervals:
    @pytest.mark.parametrize("model", model_names())
    def test_deterministic_per_model(self, model):
        module = _module()
        a = function_intervals(module, 20_000, model)
        b = function_intervals(module, 20_000, model)
        assert a == b

    @pytest.mark.parametrize("model", model_names())
    def test_min_interval_is_a_floor(self, model):
        config = PlacementConfig(budget=1000, min_interval=300)
        intervals = function_intervals(_module(), 20_000, model, config)
        assert all(v >= 300 for v in intervals.values())

    def test_base_tracks_budget(self):
        module = _module()
        sparse = function_intervals(module, 100_000, "register-bitflip",
                                    PlacementConfig(budget=10))
        dense = function_intervals(module, 100_000, "register-bitflip",
                                   PlacementConfig(budget=50))
        assert sparse[""] > dense[""]

    def test_density_boost_shrinks_exposed_functions(self):
        # With boost, at least one function must be denser than the
        # base (elzar builds still expose sync/checker sites), and no
        # function may be *sparser* than the base.
        module = _module()
        intervals = function_intervals(
            module, 100_000, "instruction-skip",
            PlacementConfig(budget=10, density_boost=8.0, min_interval=16),
        )
        base = intervals[""]
        named = {k: v for k, v in intervals.items() if k}
        assert named
        assert all(v <= base for v in named.values())
        assert any(v < base for v in named.values())

    def test_boost_one_is_uniform(self):
        intervals = function_intervals(
            _module(), 100_000, "register-bitflip",
            PlacementConfig(budget=10, density_boost=1.0, min_interval=16),
        )
        assert len(set(intervals.values())) == 1


class TestCapturePolicy:
    def test_respects_max_checkpoints(self):
        policy = make_policy(_module(), 1_000_000, "register-bitflip",
                             PlacementConfig(max_checkpoints=3))
        assert policy.limit == 3

    def test_first_capture_skips_index_zero(self):
        policy = make_policy(_module(), 20_000, "register-bitflip")
        assert policy.next_index > 0

    def test_config_cache_key_distinguishes_configs(self):
        keys = {
            PlacementConfig().cache_key(),
            PlacementConfig(budget=7).cache_key(),
            PlacementConfig(min_interval=512).cache_key(),
            PlacementConfig(density_boost=2.0).cache_key(),
            PlacementConfig(max_checkpoints=8).cache_key(),
        }
        assert len(keys) == 5
