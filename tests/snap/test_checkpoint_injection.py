"""End-to-end checkpoint-injection identity: the acceptance property of
the snap subsystem.

For every registered fault model, the outcome *list* (not just counts)
of a checkpointed campaign must be bit-identical to the from-scratch
sequential loop and to the reference interpreter — checkpoints are a
pure execution-speed knob. The batched engine gets the same treatment
with ``resume_from`` group resumption, and the degraded-lane telemetry
satellite is pinned by forcing the fallback path.
"""

from collections import Counter

import pytest

from repro.faults.campaign import (
    CampaignConfig,
    _SESSION_TLS,
    draw_model_plans,
    golden_profile,
    run_campaign,
    run_plans,
)
from repro.faults.models import model_names
from repro.lab.durable import run_durable_campaign
from repro.lab.events import EventBus, EventLog
from repro.lab.store import ResultStore
from repro.toolchain import default_toolchain


@pytest.fixture(autouse=True)
def _fresh_session():
    # The session TLS pins a Machine per cell; model/engine sweeps in
    # one process must not inherit a stale checkpoint attachment.
    _SESSION_TLS.slot = None
    yield
    _SESSION_TLS.slot = None


def _cell(name="histogram", version="elzar"):
    built = default_toolchain().build(name, "test", version)
    reference, profile = golden_profile(built.module, built.entry,
                                        built.args)
    budget = int(profile.executed * 4.0) + 10_000
    return built, reference, profile, budget


def _model_plans(profile, model, n=5, seed=29):
    config = CampaignConfig(injections=n, seed=seed, fault_model=model)
    try:
        return draw_model_plans(profile, config)
    except ValueError:
        return None  # empty target stream for this cell


class TestModelMatrixIdentity:
    @pytest.mark.parametrize("model", model_names())
    @pytest.mark.parametrize("version", ["native", "elzar"])
    def test_checkpointed_equals_scratch_equals_reference(self, version,
                                                          model):
        built, reference, profile, budget = _cell(version=version)
        plans = _model_plans(profile, model)
        if plans is None:
            pytest.skip(f"{model} has no targets in {version}")
        kwargs = dict(fault_model=model)
        scratch = run_plans(built.module, built.entry, built.args, plans,
                            reference, budget, snap=False, **kwargs)
        snap = run_plans(built.module, built.entry, built.args, plans,
                         reference, budget, snap=True, **kwargs)
        ref_engine = run_plans(built.module, built.entry, built.args,
                               plans, reference, budget,
                               engine="reference", **kwargs)
        assert snap == scratch == ref_engine

    @pytest.mark.parametrize("model",
                             ["register-bitflip", "branch-flip",
                              "memory-bitflip"])
    def test_batched_checkpointed_equals_scratch(self, model):
        built, reference, profile, budget = _cell()
        plans = _model_plans(profile, model, n=8)
        scratch = run_plans(built.module, built.entry, built.args, plans,
                            reference, budget, fault_model=model,
                            snap=False)
        batched = run_plans(built.module, built.entry, built.args, plans,
                            reference, budget, fault_model=model,
                            batch=4, snap=True)
        assert batched == scratch

    def test_campaign_counts_identical_with_and_without_snap(self):
        built, _, _, _ = _cell()
        base = CampaignConfig(injections=10, seed=5)
        on = run_campaign(built.module, built.entry, built.args,
                          config=CampaignConfig(**{**base.__dict__,
                                                   "snap": True}))
        off = run_campaign(built.module, built.entry, built.args,
                           config=CampaignConfig(**{**base.__dict__,
                                                    "snap": False}))
        assert on.counts == off.counts


class TestDegradedLaneTelemetry:
    def test_fallback_emits_event_and_counts(self, monkeypatch):
        # Simulate a lane dying unreported: drop one key from every
        # batch result. run_plans must reclassify it sequentially (so
        # the outcome list stays correct), emit batch-lane-degraded,
        # and count it into the caller's stats.
        import repro.cpu.batch as batch_mod

        real = batch_mod.run_batch
        dropped = []

        def lossy(machine, snapshot, entry, args, plans, *a, **kw):
            got = real(machine, snapshot, entry, args, plans, *a, **kw)
            for key, _plan in plans:
                if key in got:
                    dropped.append(key)
                    del got[key]
                    break
            return got

        monkeypatch.setattr(batch_mod, "run_batch", lossy)
        built, reference, profile, budget = _cell()
        plans = _model_plans(profile, "register-bitflip", n=8)
        scratch = run_plans(built.module, built.entry, built.args, plans,
                            reference, budget, snap=False)

        log = EventLog()
        bus = EventBus()
        bus.subscribe(log)
        stats = {}
        got = run_plans(built.module, built.entry, built.args, plans,
                        reference, budget, batch=4, events=bus,
                        stats=stats)
        assert got == scratch
        assert dropped  # the monkeypatch actually exercised the path
        assert stats["lanes_degraded"] == len(dropped)
        assert log.count("batch-lane-degraded") == len(dropped)
        event = log.of("batch-lane-degraded")[0]
        assert event.data["index"] in dropped


class TestDurableStoreRows:
    def test_store_rows_shared_across_snap_settings(self, tmp_path):
        # A store written by a snap=False campaign must serve a
        # snap=True campaign in full (the spec key excludes execution
        # knobs), and the counted results must be identical.
        built, _, _, _ = _cell()
        store = ResultStore(str(tmp_path / "lab.sqlite"))
        off = run_durable_campaign(
            built.module, built.entry, built.args, "histogram", "elzar",
            CampaignConfig(injections=12, seed=3, snap=False),
            store=store, shard_size=4,
        )
        assert off.info.shards_executed == 3
        on = run_durable_campaign(
            built.module, built.entry, built.args, "histogram", "elzar",
            CampaignConfig(injections=12, seed=3, snap=True),
            store=store, shard_size=4,
        )
        assert on.info.shards_from_store == 3
        assert on.info.shards_executed == 0
        assert on.result.counts == off.result.counts

    def test_durable_campaign_reports_degraded_lanes(self, tmp_path):
        # No degradation in a healthy run — the field exists and is 0.
        built, _, _, _ = _cell()
        store = ResultStore(str(tmp_path / "lab.sqlite"))
        out = run_durable_campaign(
            built.module, built.entry, built.args, "histogram", "elzar",
            CampaignConfig(injections=8, seed=3, batch=4),
            store=store, shard_size=8,
        )
        assert out.info.batch_lanes_degraded == 0
