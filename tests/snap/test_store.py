"""The content-addressed checkpoint store: keying, corruption, sharing
with the artifact cache, and LRU garbage collection (the ``--gc``
satellite).
"""

import os
import time

from repro.snap.build import build_checkpoints
from repro.snap.placement import PlacementConfig
from repro.snap.store import SnapStore, checkpoint_key, machine_key
from repro.toolchain import default_toolchain
from repro.toolchain.cache import ArtifactCache


def _built():
    return default_toolchain().build("histogram", "test", "elzar")


class TestSnapStore:
    def test_store_load_roundtrip(self, tmp_path):
        store = SnapStore(root=str(tmp_path))
        blobs = [b"alpha", b"beta" * 100, b""]
        meta = {"module": "m", "marks": [1, 2, 3]}
        assert store.store("ab" + "0" * 30, blobs, meta)
        got = store.load("ab" + "0" * 30)
        assert got is not None
        assert got[0] == blobs
        assert got[1] == meta
        assert store.stats.hits == 1 and store.stats.stores == 1

    def test_missing_key_is_a_miss(self, tmp_path):
        store = SnapStore(root=str(tmp_path))
        assert store.load("cd" + "1" * 30) is None
        assert store.stats.misses == 1

    def test_corrupt_set_is_discarded(self, tmp_path):
        store = SnapStore(root=str(tmp_path))
        key = "ef" + "2" * 30
        store.store(key, [b"payload"], {})
        path = store._path(key)
        with open(path, "r+b") as fh:
            fh.seek(8)
            fh.write(b"\xff")
        assert store.load(key) is None
        assert store.stats.invalid == 1
        assert not os.path.exists(path)

    def test_disabled_store_is_inert(self):
        store = SnapStore.disabled()
        assert not store.enabled
        assert not store.store("k", [b"x"], {})
        assert store.load("k") is None
        assert store.entries() == []

    def test_entries_reports_meta(self, tmp_path):
        store = SnapStore(root=str(tmp_path))
        store.store("aa" + "3" * 30, [b"x", b"y"], {"model": "m1"})
        rows = store.entries()
        assert len(rows) == 1
        assert rows[0]["states"] == 2
        assert rows[0]["model"] == "m1"


class TestCheckpointKey:
    def test_key_covers_model_budget_placement_machine(self):
        built = _built()
        from repro.cpu.interpreter import MachineConfig

        mkey = machine_key(MachineConfig(engine="decoded"))
        base = checkpoint_key(built.module, built.entry, ("a",), (),
                              "register-bitflip", 1000, mkey,
                              PlacementConfig().cache_key())
        variants = [
            checkpoint_key(built.module, built.entry, ("a",), (),
                           "branch-flip", 1000, mkey,
                           PlacementConfig().cache_key()),
            checkpoint_key(built.module, built.entry, ("a",), (),
                           "register-bitflip", 2000, mkey,
                           PlacementConfig().cache_key()),
            checkpoint_key(built.module, built.entry, ("a",), (),
                           "register-bitflip", 1000, mkey,
                           PlacementConfig(budget=7).cache_key()),
            checkpoint_key(
                built.module, built.entry, ("a",), (),
                "register-bitflip", 1000,
                machine_key(MachineConfig(engine="decoded",
                                          cache_enabled=False)),
                PlacementConfig().cache_key()),
        ]
        assert len({base, *variants}) == len(variants) + 1

    def test_key_is_stable_across_calls(self):
        built = _built()
        from repro.cpu.interpreter import MachineConfig

        mkey = machine_key(MachineConfig(engine="decoded"))
        k1 = checkpoint_key(built.module, built.entry, (), (), "m", 9,
                            mkey, PlacementConfig().cache_key())
        k2 = checkpoint_key(built.module, built.entry, (), (), "m", 9,
                            mkey, PlacementConfig().cache_key())
        assert k1 == k2


class TestBuilderStoreSharing:
    def test_cold_build_then_warm_load(self, tmp_path):
        built = _built()
        from repro.faults.campaign import golden_profile

        # The toolchain build cache shares module objects across tests;
        # drop any checkpoint sets other tests left in the module cache
        # so this build is genuinely cold.
        for slot in [k for k in built.module._golden_cache
                     if isinstance(k, tuple) and k and k[0] == "snap-set"]:
            built.module._golden_cache.pop(slot)
        _, profile = golden_profile(built.module, built.entry, built.args)
        budget = int(profile.executed * 4.0) + 10_000
        store = SnapStore(root=str(tmp_path))
        cset = build_checkpoints(built.module, built.entry, built.args,
                                 budget=budget, model="register-bitflip",
                                 eligible=profile.eligible, store=store)
        assert cset is not None and not cset.from_cache
        assert store.stats.stores == 1
        # A second process would miss the in-module cache but hit the
        # store; simulate by clearing the module-side slot.
        built.module._golden_cache.pop(("snap-set", cset.key))
        warm = build_checkpoints(built.module, built.entry, built.args,
                                 budget=budget, model="register-bitflip",
                                 eligible=profile.eligible, store=store)
        assert warm.from_cache
        assert warm.key == cset.key
        assert warm.marks == cset.marks
        assert store.stats.hits == 1

    def test_short_runs_and_unkeyable_predicates_skip(self, tmp_path):
        built = _built()
        store = SnapStore(root=str(tmp_path))
        assert build_checkpoints(built.module, built.entry, built.args,
                                 budget=10_000, model="register-bitflip",
                                 eligible=100, store=store) is None
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            assert build_checkpoints(
                built.module, built.entry, built.args, budget=10_000,
                fault_eligible=lambda fn: True,
                model="register-bitflip", eligible=100_000, store=store,
            ) is None


class TestArtifactCacheGC:
    def _fill(self, root, names, size=1024):
        paths = []
        for i, name in enumerate(names):
            sub = os.path.join(root, name[:2])
            os.makedirs(sub, exist_ok=True)
            path = os.path.join(sub, name)
            with open(path, "wb") as fh:
                fh.write(b"x" * size)
            # Strictly increasing mtimes make LRU order deterministic.
            stamp = time.time() - len(names) + i
            os.utime(path, (stamp, stamp))
            paths.append(path)
        return paths

    def test_gc_evicts_lru_first(self, tmp_path):
        cache = ArtifactCache(root=str(tmp_path))
        paths = self._fill(str(tmp_path),
                           ["aa1.json", "bb2.json", "cc3.snapset",
                            "dd4.json"])
        stats = cache.gc(2 * 1024)
        assert stats.evicted_files == 2
        # The two oldest are gone, the two newest survive.
        assert not os.path.exists(paths[0])
        assert not os.path.exists(paths[1])
        assert os.path.exists(paths[2])
        assert os.path.exists(paths[3])
        assert stats.kept_bytes <= 2 * 1024

    def test_gc_under_budget_is_a_noop(self, tmp_path):
        cache = ArtifactCache(root=str(tmp_path))
        paths = self._fill(str(tmp_path), ["aa1.json", "bb2.snapset"])
        stats = cache.gc(1024 * 1024)
        assert stats.evicted_files == 0
        assert all(os.path.exists(p) for p in paths)

    def test_gc_stats_render(self, tmp_path):
        cache = ArtifactCache(root=str(tmp_path))
        self._fill(str(tmp_path), ["aa1.json", "bb2.json"])
        stats = cache.gc(1024)
        text = stats.render()
        assert "cache gc:" in text
        assert stats.as_dict()["evicted_files"] == stats.evicted_files

    def test_load_touches_mtime(self, tmp_path):
        # The LRU signal: a loaded artifact must look recently used.
        built = _built()
        cache = ArtifactCache(root=str(tmp_path))
        key = "ab" * 16
        assert cache.store(key, built.module, {"ir_digest": "d1"})
        path = cache._path(key)
        old = time.time() - 10_000
        os.utime(path, (old, old))
        assert cache.load(key, lambda text: "d1") is not None
        assert os.path.getmtime(path) > old + 5_000
