"""Serialization round-trip properties of the checkpoint format.

The contract: ``deserialize(serialize(state))`` yields a state whose
resumed execution is bit-identical to resuming the original — across
machine configs (cache, predictor, timing) — and any corruption is a
:class:`SnapFormatError`, never a silently wrong state.
"""

import pytest

from repro.cpu import Machine, MachineConfig
from repro.cpu.interpreter import FaultPlan
from repro.cpu.resumable import resume_run, run_resumable
from repro.snap.format import (
    SnapFormatError,
    deserialize_state,
    serialize_state,
)
from repro.toolchain import default_toolchain


class _TakeOnce:
    def __init__(self, at):
        self.next_index = at
        self.states = []

    def take(self, machine, stack, executed):
        from repro.cpu.resumable import capture_state

        self.states.append(capture_state(machine, stack, executed))
        self.next_index = 1 << 62


def _capture(module, entry, args, config, at=400):
    machine = Machine(module, config)
    machine.count_only = True
    policy = _TakeOnce(at)
    run_resumable(machine, entry, args, capture=policy)
    assert policy.states
    return machine, policy.states[0]


CONFIGS = [
    MachineConfig(engine="decoded", collect_timing=False),
    MachineConfig(engine="decoded", collect_timing=True),
    MachineConfig(engine="decoded", cache_enabled=False,
                  collect_timing=False),
    MachineConfig(engine="decoded", collect_by_opcode=True,
                  collect_timing=True),
]


class TestRoundTrip:
    @pytest.mark.parametrize("config", CONFIGS)
    @pytest.mark.parametrize("version", ["native", "elzar"])
    def test_roundtrip_resumes_bit_identically(self, version, config):
        built = default_toolchain().build("histogram", "test", version)
        machine, state = _capture(built.module, built.entry, built.args,
                                  config)
        blob = serialize_state(state, machine)
        revived = deserialize_state(blob, machine)

        plan = FaultPlan(target_index=state.eligible + 30, bit=13, lane=1)
        m1 = Machine(built.module, config)
        r1 = resume_run(m1, state, (plan,))
        m2 = Machine(built.module, config)
        r2 = resume_run(m2, revived, (plan,))
        assert list(r1.output) == list(r2.output)
        assert r1.counters.as_dict() == r2.counters.as_dict()
        assert r1.cycles == r2.cycles
        assert m1.eligible_executed == m2.eligible_executed

    def test_serialization_is_deterministic(self):
        built = default_toolchain().build("histogram", "test", "elzar")
        machine, state = _capture(
            built.module, built.entry, built.args,
            MachineConfig(engine="decoded", collect_timing=False),
        )
        blob = serialize_state(state, machine)
        # serialize(deserialize(blob)) == blob pins both directions.
        assert serialize_state(deserialize_state(blob, machine),
                               machine) == blob

    def test_corruption_raises_not_misresumes(self):
        built = default_toolchain().build("histogram", "test", "native")
        machine, state = _capture(
            built.module, built.entry, built.args,
            MachineConfig(engine="decoded", collect_timing=False),
        )
        blob = serialize_state(state, machine)
        # Truncations and a bad magic must all be detected up front.
        with pytest.raises(SnapFormatError):
            deserialize_state(blob[:10], machine)
        with pytest.raises(SnapFormatError):
            deserialize_state(b"XXXX" + blob[4:], machine)
