"""Semantic tests for the interpreter, opcode by opcode."""

import math

import pytest

from repro.cpu import (
    ArithmeticFault,
    HangError,
    Machine,
    MachineConfig,
    MemoryFault,
)
from repro.ir import IRBuilder, Module
from repro.ir import types as T
from repro.ir.values import Constant

from ..conftest import make_function, run_scalar


def eval_binop(opcode, ty, a, b, config):
    module = Module("m")
    fn, builder = make_function(module, "f", ty, [ty, ty])
    builder.ret(builder.binop(opcode, fn.args[0], fn.args[1]))
    return run_scalar(module, "f", [a, b], config)


class TestIntegerArithmetic:
    @pytest.mark.parametrize(
        "opcode,a,b,expected",
        [
            ("add", 3, 4, 7),
            ("sub", 3, 4, (1 << 64) - 1),   # wraps
            ("mul", 1 << 32, 1 << 32, 0),   # wraps
            ("and", 0b1100, 0b1010, 0b1000),
            ("or", 0b1100, 0b1010, 0b1110),
            ("xor", 0b1100, 0b1010, 0b0110),
            ("shl", 1, 8, 256),
            ("lshr", 256, 4, 16),
            ("udiv", 7, 2, 3),
            ("urem", 7, 2, 1),
        ],
    )
    def test_unsigned_ops(self, opcode, a, b, expected, fast_config):
        assert eval_binop(opcode, T.I64, a, b, fast_config) == expected

    def test_sdiv_truncates_toward_zero(self, fast_config):
        minus7 = (1 << 64) - 7
        assert eval_binop("sdiv", T.I64, minus7, 2, fast_config) == (1 << 64) - 3
        assert eval_binop("srem", T.I64, minus7, 2, fast_config) == (1 << 64) - 1

    def test_ashr_sign_extends(self, fast_config):
        minus8 = (1 << 64) - 8
        assert eval_binop("ashr", T.I64, minus8, 1, fast_config) == (1 << 64) - 4

    def test_shift_count_masked_by_width(self, fast_config):
        # x86 semantics: count mod width.
        assert eval_binop("shl", T.I64, 1, 64, fast_config) == 1
        assert eval_binop("shl", T.I8, 1, 9, fast_config) == 2

    def test_division_by_zero_traps(self, fast_config):
        with pytest.raises(ArithmeticFault):
            eval_binop("sdiv", T.I64, 1, 0, fast_config)
        with pytest.raises(ArithmeticFault):
            eval_binop("urem", T.I64, 1, 0, fast_config)

    def test_narrow_width_wrapping(self, fast_config):
        assert eval_binop("add", T.I8, 200, 100, fast_config) == 44
        assert eval_binop("mul", T.I16, 300, 300, fast_config) == 90000 % 65536


class TestFloatArithmetic:
    @pytest.mark.parametrize(
        "opcode,a,b,expected",
        [
            ("fadd", 1.5, 2.25, 3.75),
            ("fsub", 1.0, 0.25, 0.75),
            ("fmul", 3.0, 0.5, 1.5),
            ("fdiv", 1.0, 4.0, 0.25),
        ],
    )
    def test_ops(self, opcode, a, b, expected, fast_config):
        assert eval_binop(opcode, T.F64, a, b, fast_config) == expected

    def test_fdiv_by_zero_gives_inf(self, fast_config):
        assert eval_binop("fdiv", T.F64, 1.0, 0.0, fast_config) == math.inf
        assert math.isnan(eval_binop("fdiv", T.F64, 0.0, 0.0, fast_config))

    def test_f32_rounds(self, fast_config):
        got = eval_binop("fadd", T.F32, 0.1, 0.2, fast_config)
        import struct
        expected = struct.unpack(
            "<f", struct.pack("<f", struct.unpack("<f", struct.pack("<f", 0.1))[0]
                              + struct.unpack("<f", struct.pack("<f", 0.2))[0])
        )[0]
        assert got == expected

    def test_frem(self, fast_config):
        assert eval_binop("frem", T.F64, 7.5, 2.0, fast_config) == math.fmod(7.5, 2.0)


class TestComparisons:
    @pytest.mark.parametrize(
        "pred,a,b,expected",
        [
            ("eq", 5, 5, 1),
            ("ne", 5, 5, 0),
            ("ult", 1, (1 << 64) - 1, 1),   # unsigned: -1 is big
            ("slt", (1 << 64) - 1, 1, 1),   # signed: -1 < 1
            ("sge", 0, (1 << 64) - 5, 1),
            ("ugt", (1 << 64) - 5, 0, 1),
        ],
    )
    def test_icmp(self, pred, a, b, expected, fast_config):
        module = Module("m")
        fn, builder = make_function(module, "f", T.I1, [T.I64, T.I64])
        builder.ret(builder.icmp(pred, fn.args[0], fn.args[1]))
        assert run_scalar(module, "f", [a, b], fast_config) == expected

    @pytest.mark.parametrize(
        "pred,a,b,expected",
        [
            ("oeq", 1.0, 1.0, 1),
            ("olt", 1.0, 2.0, 1),
            ("oge", 2.0, 2.0, 1),
            ("ord", 1.0, math.nan, 0),
            ("uno", 1.0, math.nan, 1),
            ("one", math.nan, 1.0, 0),
        ],
    )
    def test_fcmp(self, pred, a, b, expected, fast_config):
        module = Module("m")
        fn, builder = make_function(module, "f", T.I1, [T.F64, T.F64])
        builder.ret(builder.fcmp(pred, fn.args[0], fn.args[1]))
        assert run_scalar(module, "f", [a, b], fast_config) == expected


class TestCasts:
    def cast(self, opcode, from_ty, to_ty, value, config):
        module = Module("m")
        fn, b = make_function(module, "f", to_ty, [from_ty])
        b.ret(b.cast(opcode, fn.args[0], to_ty))
        return run_scalar(module, "f", [value], config)

    def test_trunc(self, fast_config):
        assert self.cast("trunc", T.I64, T.I8, 0x1FF, fast_config) == 0xFF

    def test_zext(self, fast_config):
        assert self.cast("zext", T.I8, T.I64, 0xFF, fast_config) == 255

    def test_sext(self, fast_config):
        assert self.cast("sext", T.I8, T.I64, 0xFF, fast_config) == (1 << 64) - 1
        assert self.cast("sext", T.I8, T.I64, 0x7F, fast_config) == 127

    def test_sitofp_and_back(self, fast_config):
        assert self.cast("sitofp", T.I64, T.F64, (1 << 64) - 3, fast_config) == -3.0
        assert self.cast("fptosi", T.F64, T.I64, -3.7, fast_config) == (1 << 64) - 3

    def test_fptosi_nan_is_zero(self, fast_config):
        assert self.cast("fptosi", T.F64, T.I64, math.nan, fast_config) == 0

    def test_bitcast_f64_i64(self, fast_config):
        bits = self.cast("bitcast", T.F64, T.I64, 1.0, fast_config)
        assert bits == 0x3FF0000000000000
        assert self.cast("bitcast", T.I64, T.F64, bits, fast_config) == 1.0

    def test_fptrunc_fpext(self, fast_config):
        v = self.cast("fptrunc", T.F64, T.F32, 0.1, fast_config)
        import struct
        assert v == struct.unpack("<f", struct.pack("<f", 0.1))[0]
        assert self.cast("fpext", T.F32, T.F64, 1.5, fast_config) == 1.5


class TestVectorSemantics:
    def test_lanewise_add(self, fast_config):
        module = Module("m")
        v4 = T.vector(T.I64, 4)
        fn, b = make_function(module, "f", T.I64, [])
        a = Constant(v4, (1, 2, 3, 4))
        c = Constant(v4, (10, 20, 30, 40))
        s = b.add(a, c)
        b.ret(b.extractelement(s, b.i64(2)))
        assert run_scalar(module, "f", (), fast_config) == 33

    def test_shuffle(self, fast_config):
        module = Module("m")
        v4 = T.vector(T.I64, 4)
        fn, b = make_function(module, "f", T.I64, [])
        a = Constant(v4, (1, 2, 3, 4))
        s = b.shufflevector(a, a, (3, 2, 1, 0))
        b.ret(b.extractelement(s, b.i64(0)))
        assert run_scalar(module, "f", (), fast_config) == 4

    def test_shuffle_concatenation_indexing(self, fast_config):
        module = Module("m")
        v4 = T.vector(T.I64, 4)
        fn, b = make_function(module, "f", T.I64, [])
        a = Constant(v4, (1, 2, 3, 4))
        c = Constant(v4, (5, 6, 7, 8))
        s = b.shufflevector(a, c, (0, 4, 1, 5))
        b.ret(b.extractelement(s, b.i64(1)))
        assert run_scalar(module, "f", (), fast_config) == 5

    def test_broadcast_insert_extract(self, fast_config):
        module = Module("m")
        fn, b = make_function(module, "f", T.I64, [T.I64])
        v = b.broadcast(fn.args[0], 4)
        v = b.insertelement(v, b.i64(99), b.i64(3))
        s0 = b.extractelement(v, b.i64(0))
        s3 = b.extractelement(v, b.i64(3))
        b.ret(b.add(s0, s3))
        assert run_scalar(module, "f", [7], fast_config) == 106

    def test_vector_select_with_vector_cond(self, fast_config):
        module = Module("m")
        v4 = T.vector(T.I64, 4)
        fn, b = make_function(module, "f", T.I64, [])
        a = Constant(v4, (1, 2, 3, 4))
        c = Constant(v4, (4, 3, 2, 1))
        cmp = b.icmp("slt", a, c)
        picked = b.select(cmp, a, c)
        # picked = min(a, c) lanewise = (1, 2, 2, 1)
        total = b.i64(0)
        acc = b.extractelement(picked, b.i64(0))
        for lane in range(1, 4):
            acc = b.add(acc, b.extractelement(picked, b.i64(lane)))
        b.ret(acc)
        assert run_scalar(module, "f", (), fast_config) == 6

    def test_extract_out_of_range_faults(self, fast_config):
        module = Module("m")
        v4 = T.vector(T.I64, 4)
        fn, b = make_function(module, "f", T.I64, [T.I64])
        a = Constant(v4, (1, 2, 3, 4))
        b.ret(b.extractelement(a, fn.args[0]))
        with pytest.raises(MemoryFault):
            run_scalar(module, "f", [9], fast_config)


class TestMemoryOps:
    def test_global_load_store_roundtrip(self, fast_config):
        module = Module("m")
        module.add_global("g", T.ArrayType(T.I64, 4), [9, 8, 7, 6])
        fn, b = make_function(module, "f", T.I64, [T.I64])
        g = module.get_global("g")
        p = b.gep(T.I64, g, fn.args[0])
        old = b.load(T.I64, p)
        b.store(b.add(old, b.i64(1)), p)
        b.ret(b.load(T.I64, p))
        assert run_scalar(module, "f", [2], fast_config) == 8

    def test_negative_gep_index(self, fast_config):
        module = Module("m")
        module.add_global("g", T.ArrayType(T.I64, 4), [9, 8, 7, 6])
        fn, b = make_function(module, "f", T.I64, [])
        g = module.get_global("g")
        p = b.gep(T.I64, g, b.i64(3))
        p2 = b.gep(T.I64, p, Constant(T.I64, -2))
        b.ret(b.load(T.I64, p2))
        assert run_scalar(module, "f", (), fast_config) == 8

    def test_wild_load_faults(self, fast_config):
        module = Module("m")
        fn, b = make_function(module, "f", T.I64, [T.I64])
        p = b.inttoptr(fn.args[0])
        b.ret(b.load(T.I64, p))
        with pytest.raises(MemoryFault):
            run_scalar(module, "f", [0], fast_config)
        with pytest.raises(MemoryFault):
            run_scalar(module, "f", [1 << 40], fast_config)

    def test_alloca_frames_released(self, fast_config):
        module = Module("m")
        callee, cb = make_function(module, "leaf", T.I64, [])
        slot = cb.alloca(T.I64)
        cb.store(cb.i64(5), slot)
        cb.ret(cb.load(T.I64, slot))
        fn, b = make_function(module, "f", T.I64, [T.I64])
        loop = b.begin_loop(b.i64(0), fn.args[0])
        acc = b.loop_phi(loop, b.i64(0))
        v = b.call(callee, [])
        b.set_loop_next(loop, acc, b.add(acc, v))
        b.end_loop(loop)
        b.ret(acc)
        machine = Machine(module, fast_config)
        result = machine.run("f", [1000])
        assert result.value == 5000
        # Stack did not grow unboundedly (LIFO release).
        from repro.cpu import STACK_BASE
        assert machine.memory.stack_top == STACK_BASE

    def test_vector_load_store(self, fast_config):
        module = Module("m")
        module.add_global("g", T.ArrayType(T.I64, 8), list(range(8)))
        v4 = T.vector(T.I64, 4)
        fn, b = make_function(module, "f", T.I64, [])
        g = module.get_global("g")
        v = b.load(v4, b.gep(T.I64, g, b.i64(2)))
        b.store(v, b.gep(T.I64, g, b.i64(4)))
        b.ret(b.load(T.I64, b.gep(T.I64, g, b.i64(7))))
        assert run_scalar(module, "f", (), fast_config) == 5


class TestCallsAndControl:
    def test_recursion(self, fast_config):
        module = Module("m")
        fn, b = make_function(module, "fact", T.I64, [T.I64])
        n = fn.args[0]
        is_base = b.icmp("sle", n, b.i64(1))
        state = b.begin_if(is_base)
        b.ret(b.i64(1))
        b.position_at_end(state.merge)
        rec = b.call(fn, [b.sub(n, b.i64(1))])
        b.ret(b.mul(n, rec))
        assert run_scalar(module, "fact", [10], fast_config) == 3628800

    def test_deep_recursion_hangs(self, fast_config):
        module = Module("m")
        fn, b = make_function(module, "inf", T.I64, [T.I64])
        b.ret(b.call(fn, [fn.args[0]]))
        with pytest.raises(HangError):
            run_scalar(module, "inf", [0], fast_config)

    def test_instruction_budget(self):
        module = Module("m")
        fn, b = make_function(module, "spin", T.I64, [])
        loop = b.begin_loop(b.i64(0), b.i64(1 << 40))
        b.end_loop(loop)
        b.ret(b.i64(0))
        config = MachineConfig(collect_timing=False, max_instructions=1000)
        with pytest.raises(HangError):
            Machine(module, config).run("spin", ())

    def test_output_collection(self, fast_config):
        module = Module("m")
        from repro.cpu.intrinsics import rt_print_f64, rt_print_i64

        pi = rt_print_i64(module)
        pf = rt_print_f64(module)
        fn, b = make_function(module, "f", T.VOID, [])
        b.call(pi, [Constant(T.I64, (1 << 64) - 2)])  # prints signed
        b.call(pf, [b.f64(1.5)])
        b.ret_void()
        machine = Machine(module, fast_config)
        result = machine.run("f", ())
        assert result.output == [-2, 1.5]

    def test_argument_count_checked(self, fast_config):
        module = Module("m")
        fn, b = make_function(module, "f", T.I64, [T.I64])
        b.ret(fn.args[0])
        machine = Machine(module, fast_config)
        with pytest.raises(TypeError):
            machine.run("f", [])

    def test_undef_evaluates_to_zero(self, fast_config):
        from repro.ir.values import UndefValue

        module = Module("m")
        fn, b = make_function(module, "f", T.I64, [])
        b.ret(b.add(UndefValue(T.I64), b.i64(5)))
        assert run_scalar(module, "f", (), fast_config) == 5
