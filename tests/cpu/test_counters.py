"""Tests for PerfCounters arithmetic and derived ratios."""

from repro.cpu import PerfCounters


class TestRatios:
    def test_zero_denominators_are_safe(self):
        c = PerfCounters()
        assert c.l1_miss_ratio == 0.0
        assert c.branch_miss_ratio == 0.0
        assert c.load_fraction == 0.0
        assert c.store_fraction == 0.0
        assert c.branch_fraction == 0.0
        assert c.fp_fraction == 0.0

    def test_fractions_over_uops(self):
        c = PerfCounters()
        c.instructions = 100
        c.uops = 200
        c.loads = 50
        c.stores = 20
        c.branches = 10
        c.fp_instructions = 40
        assert c.load_fraction == 25.0   # 50/200, not 50/100
        assert c.store_fraction == 10.0
        assert c.branch_fraction == 5.0
        assert c.fp_fraction == 20.0

    def test_fractions_fall_back_to_instructions(self):
        c = PerfCounters()
        c.instructions = 100
        c.loads = 25
        assert c.load_fraction == 25.0

    def test_miss_ratios(self):
        c = PerfCounters()
        c.l1_accesses = 200
        c.l1_misses = 20
        c.cond_branches = 50
        c.branch_misses = 5
        assert c.l1_miss_ratio == 10.0
        assert c.branch_miss_ratio == 10.0


class TestMergeAndHistogram:
    def test_merge_sums_all_fields(self):
        a = PerfCounters()
        b = PerfCounters()
        for field in ("instructions", "uops", "loads", "stores", "branches",
                      "cond_branches", "branch_misses", "calls",
                      "l1_accesses", "l1_misses", "l2_misses", "l3_misses",
                      "fp_instructions", "int_div_instructions",
                      "corrections", "detections", "recoveries_failed"):
            setattr(a, field, 3)
            setattr(b, field, 4)
        a.merge(b)
        for field in ("instructions", "uops", "loads", "corrections"):
            assert getattr(a, field) == 7

    def test_merge_combines_histograms(self):
        a = PerfCounters()
        b = PerfCounters()
        a.by_opcode = {"add": 2}
        b.by_opcode = {"add": 3, "mul": 1}
        a.merge(b)
        assert a.by_opcode == {"add": 5, "mul": 1}

    def test_count_respects_flag(self):
        c = PerfCounters()
        c.count("add")
        assert c.by_opcode == {}
        c.collect_by_opcode = True
        c.count("add")
        c.count("add")
        assert c.by_opcode == {"add": 2}
