"""Tests for the multithreaded scalability model."""

import pytest

from repro.cpu import PERFECT, ScalabilityProfile, normalized_overhead, runtime_at
from repro.cpu.threads import speedup_over_threads


class TestRuntimeModel:
    def test_perfect_scaling(self):
        assert runtime_at(1000, 1, PERFECT) == pytest.approx(1000)
        t16 = runtime_at(1000, 16, PERFECT)
        assert t16 < 1000 / 10  # near-linear

    def test_serial_fraction_limits_speedup(self):
        profile = ScalabilityProfile(parallel_fraction=0.5)
        assert speedup_over_threads(1000, 1000, profile) < 2.01

    def test_sync_grows_with_threads(self):
        profile = ScalabilityProfile(parallel_fraction=0.9,
                                     sync_fraction=0.1, sync_growth=1.0)
        t1 = runtime_at(1000, 1, profile)
        t16 = runtime_at(1000, 16, profile)
        # Sync term at 16 threads: 0.1*1000*16 = 1600 > everything else.
        assert t16 > t1

    def test_threads_must_be_positive(self):
        with pytest.raises(ValueError):
            runtime_at(1000, 0, PERFECT)

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            ScalabilityProfile(parallel_fraction=1.5)
        with pytest.raises(ValueError):
            ScalabilityProfile(sync_fraction=-0.1)


class TestNormalizedOverhead:
    def test_equals_cycle_ratio_for_pure_compute(self):
        o = normalized_overhead(1000, 4000, 16, PERFECT)
        assert o == pytest.approx(4.0)

    def test_sync_amortizes_overhead(self):
        """The dedup/streamcluster effect (§V-B): hardening overhead
        shrinks at high thread counts for poorly scaling workloads."""
        profile = ScalabilityProfile(parallel_fraction=0.9,
                                     sync_fraction=0.06, sync_growth=0.8)
        o1 = normalized_overhead(1000, 4000, 1, profile)
        o16 = normalized_overhead(1000, 4000, 16, profile)
        assert o16 < o1
        assert o16 > 1.0

    def test_well_scaling_workload_is_flat(self):
        """The word_count/ferret effect: overhead constant over threads."""
        profile = ScalabilityProfile(parallel_fraction=0.99)
        o1 = normalized_overhead(1000, 4000, 1, profile)
        o16 = normalized_overhead(1000, 4000, 16, profile)
        assert o16 == pytest.approx(o1, rel=0.05)

    def test_zero_native_cycles_rejected(self):
        with pytest.raises(ValueError):
            normalized_overhead(0, 100, 1, PERFECT)
