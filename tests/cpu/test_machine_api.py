"""Tests for Machine-level API behaviour: run results, counter resets,
error paths, and configuration effects."""

import pytest

from repro.avx import PROPOSED_AVX
from repro.cpu import Machine, MachineConfig, Trap
from repro.ir import IRBuilder, Module
from repro.ir import types as T

from ..conftest import make_function


def sum_module():
    module = Module("m")
    fn, b = make_function(module, "main", T.I64, [T.I64])
    loop = b.begin_loop(b.i64(0), fn.args[0])
    acc = b.loop_phi(loop, b.i64(0))
    b.set_loop_next(loop, acc, b.add(acc, loop.index))
    b.end_loop(loop)
    b.ret(acc)
    return module


class TestRunResult:
    def test_fields_populated(self):
        result = Machine(sum_module()).run("main", [10])
        assert result.value == 45
        assert result.cycles > 0
        assert result.ilp > 0
        assert result.instructions == result.counters.instructions > 0
        assert result.output == []
        assert result.fault_injected is False

    def test_timing_disabled_gives_zero_cycles(self):
        config = MachineConfig(collect_timing=False)
        result = Machine(sum_module(), config).run("main", [10])
        assert result.cycles == 0.0
        assert result.counters.instructions > 0

    def test_counters_accumulate_across_runs(self):
        machine = Machine(sum_module())
        first = machine.run("main", [10]).counters.instructions
        total = machine.run("main", [10]).counters.instructions
        assert total == 2 * first

    def test_reset_counters(self):
        machine = Machine(sum_module())
        machine.run("main", [10])
        result = machine.run("main", [10], reset_counters=True)
        fresh = Machine(sum_module()).run("main", [10])
        assert result.counters.instructions == fresh.counters.instructions
        assert result.cycles == pytest.approx(fresh.cycles)

    def test_cost_model_changes_cycles(self):
        from repro.passes import elzar_transform

        hardened = elzar_transform(sum_module())
        haswell = Machine(hardened).run("main", [64]).cycles
        proposed = Machine(
            hardened, MachineConfig(cost_model=PROPOSED_AVX)
        ).run("main", [64]).cycles
        assert proposed < haswell


class TestErrorPaths:
    def test_running_declaration_rejected(self):
        module = Module("m")
        module.declare_function("ext", T.FunctionType(T.VOID, ()))
        with pytest.raises(ValueError):
            Machine(module).run("ext", ())

    def test_unknown_function(self):
        with pytest.raises(KeyError):
            Machine(sum_module()).run("nope", ())

    def test_call_to_undefined_external_traps(self, fast_config):
        module = Module("m")
        ext = module.declare_function("mystery.fn", T.FunctionType(T.VOID, ()))
        fn, b = make_function(module, "main", T.VOID, [])
        b.call(ext, [])
        b.ret_void()
        with pytest.raises(Trap):
            Machine(module, fast_config).run("main", ())

    def test_unknown_intrinsic_traps(self, fast_config):
        module = Module("m")
        ext = module.declare_function("rt.frobnicate", T.FunctionType(T.VOID, ()))
        fn, b = make_function(module, "main", T.VOID, [])
        b.call(ext, [])
        b.ret_void()
        with pytest.raises(Trap, match="unknown intrinsic"):
            Machine(module, fast_config).run("main", ())


class TestGlobalAccessors:
    def test_write_and_read_roundtrip(self, fast_config):
        module = Module("m")
        module.add_global("g", T.ArrayType(T.F64, 4))
        fn, b = make_function(module, "main", T.F64, [])
        b.ret(b.load(T.F64, b.gep(T.F64, module.get_global("g"), b.i64(2))))
        machine = Machine(module, fast_config)
        machine.write_global("g", [1.0, 2.0, 3.0, 4.0])
        assert machine.run("main", ()).value == 3.0
        assert machine.read_global("g") == [1.0, 2.0, 3.0, 4.0]

    def test_scalar_global(self, fast_config):
        module = Module("m")
        module.add_global("s", T.I64, 42)
        machine = Machine(module, fast_config)
        assert machine.read_global("s") == 42
        machine.write_global("s", 43)
        assert machine.read_global("s") == 43

    def test_partial_read(self, fast_config):
        module = Module("m")
        module.add_global("g", T.ArrayType(T.I64, 8), list(range(8)))
        machine = Machine(module, fast_config)
        assert machine.read_global("g", count=3) == [0, 1, 2]


class TestCacheConfig:
    def test_smaller_caches_miss_more(self, ):
        module = Module("m")
        module.add_global("g", T.ArrayType(T.I64, 2048), list(range(2048)))
        fn, b = make_function(module, "main", T.I64, [])
        # Strided walk defeats the prefetcher.
        loop = b.begin_loop(b.i64(0), b.i64(2048), step=b.i64(31))
        acc = b.loop_phi(loop, b.i64(0))
        x = b.load(T.I64, b.gep(T.I64, module.get_global("g"), loop.index))
        b.set_loop_next(loop, acc, b.add(acc, x))
        b.end_loop(loop)
        # Second pass: hits depend on capacity.
        loop2 = b.begin_loop(b.i64(0), b.i64(2048), step=b.i64(31))
        acc2 = b.loop_phi(loop2, acc)
        x2 = b.load(T.I64, b.gep(T.I64, module.get_global("g"), loop2.index))
        b.set_loop_next(loop2, acc2, b.add(acc2, x2))
        b.end_loop(loop2)
        b.ret(acc2)
        big = Machine(module, MachineConfig(l1_size=64 << 10))
        small = Machine(module, MachineConfig(l1_size=1 << 10))
        rb = big.run("main", ())
        rs = small.run("main", ())
        assert rs.counters.l1_miss_ratio > rb.counters.l1_miss_ratio
        assert rb.value == rs.value
