"""Tests for the cache hierarchy simulator."""

from repro.cpu import Cache, CacheHierarchy, LINE_SIZE


class TestSingleCache:
    def test_miss_then_hit(self):
        c = Cache(size=1024, assoc=2, line_size=64)
        assert c.access(5) is False
        assert c.access(5) is True

    def test_distinct_lines_independent(self):
        c = Cache(size=1024, assoc=2, line_size=64)
        c.access(1)
        assert c.access(2) is False

    def test_lru_eviction(self):
        # 2-way set: lines mapping to the same set evict oldest.
        c = Cache(size=2 * 64, assoc=2, line_size=64)  # 1 set
        c.access(0)
        c.access(1)
        c.access(2)  # evicts 0
        assert c.access(1) is True
        assert c.access(0) is False

    def test_lru_refresh_on_hit(self):
        c = Cache(size=2 * 64, assoc=2, line_size=64)
        c.access(0)
        c.access(1)
        c.access(0)  # refresh 0
        c.access(2)  # should evict 1, not 0
        assert c.access(0) is True
        assert c.access(1) is False

    def test_reset(self):
        c = Cache(size=1024, assoc=2)
        c.access(5)
        c.reset()
        assert c.access(5) is False

    def test_geometry_validated(self):
        import pytest

        with pytest.raises(ValueError):
            Cache(size=1000, assoc=3, line_size=64)


class TestHierarchy:
    def test_miss_path_and_latencies(self):
        h = CacheHierarchy(l1_size=4 << 10, l2_size=32 << 10, l3_size=1 << 20,
                           prefetch=False)
        level, latency = h.access(0x10000)
        assert level == 4  # cold: DRAM
        assert latency == 200.0
        level, latency = h.access(0x10000)
        assert level == 1
        assert latency == 4.0

    def test_l1_eviction_falls_to_l2(self):
        h = CacheHierarchy(l1_size=4 << 10, l2_size=32 << 10, l3_size=1 << 20,
                           prefetch=False)
        # Touch enough distinct lines to overflow L1 (64 lines) but not L2.
        for i in range(128):
            h.access(i * LINE_SIZE)
        level, latency = h.access(0)
        assert level == 2
        assert latency == 12.0

    def test_straddling_access_touches_two_lines(self):
        h = CacheHierarchy(prefetch=False)
        h.access(LINE_SIZE - 4, size=8)  # straddles into next line
        level, _ = h.access(LINE_SIZE)   # second line already filled
        assert level == 1

    def test_sequential_stream_miss_ratio_without_prefetch(self):
        h = CacheHierarchy(prefetch=False)
        misses = 0
        for i in range(0, 8192, 8):
            level, _ = h.access(i)
            if level > 1:
                misses += 1
        # One miss per 64-byte line = 1/8 of 8-byte accesses.
        assert misses == 8192 // LINE_SIZE

    def test_l3_size_rounding(self):
        h = CacheHierarchy(l3_size=35 << 20, l3_assoc=16)
        assert h.l3.num_sets * 16 * LINE_SIZE <= 35 << 20


class TestPrefetcher:
    def test_sequential_stream_mostly_hits(self):
        """The streamer hides a unit-stride scan (linear_regression's
        native behaviour on real hardware)."""
        h = CacheHierarchy()
        misses = 0
        for i in range(0, 65536, 8):
            level, _ = h.access(i)
            if level > 1:
                misses += 1
        assert misses < 8  # only the stream-detection warmup misses

    def test_random_accesses_not_prefetched(self):
        import random

        rng = random.Random(7)
        h = CacheHierarchy(l1_size=2 << 10, l2_size=8 << 10,
                           l3_size=64 << 10)
        misses = 0
        n = 2000
        for _ in range(n):
            level, _ = h.access(rng.randrange(1 << 24) * 8)
            if level > 1:
                misses += 1
        assert misses > n * 0.9

    def test_strided_column_walk_not_prefetched(self):
        """matrix_multiply's B-column pattern (multi-line stride) must
        keep missing — it is what amortizes ELZAR there (§V-B)."""
        h = CacheHierarchy(l1_size=2 << 10, l2_size=8 << 10,
                           l3_size=64 << 10)
        stride = 5 * LINE_SIZE
        misses = 0
        for rep in range(4):
            for i in range(200):
                level, _ = h.access(i * stride)
                if level == 4:
                    misses += 1
        assert misses >= 200  # at least the first full walk misses

    def test_multiple_concurrent_streams(self):
        h = CacheHierarchy()
        misses = 0
        for i in range(1000):
            for base in (0, 1 << 20, 2 << 20, 3 << 20):
                level, _ = h.access(base + i * 8)
                if level > 1:
                    misses += 1
        assert misses < 16

    def test_prefetch_counter(self):
        h = CacheHierarchy()
        for i in range(0, 4096, 8):
            h.access(i)
        assert h.prefetches > 0
