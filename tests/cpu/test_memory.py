"""Tests for the flat memory subsystem."""

import pytest

from repro.cpu import HEAP_BASE, Memory, MemoryFault, STACK_BASE
from repro.ir import types as T


class TestAllocation:
    def test_heap_starts_above_null_page(self):
        mem = Memory()
        addr = mem.alloc(64)
        assert addr >= HEAP_BASE

    def test_alignment(self):
        mem = Memory()
        mem.alloc(3)
        addr = mem.alloc(8, align=16)
        assert addr % 16 == 0

    def test_heap_exhaustion(self):
        mem = Memory(heap_capacity=1 << 12)
        with pytest.raises(MemoryError):
            mem.alloc(1 << 20)

    def test_negative_alloc_rejected(self):
        with pytest.raises(ValueError):
            Memory().alloc(-1)

    def test_stack_mark_release(self):
        mem = Memory()
        mark = mem.stack_mark()
        a = mem.stack_alloc(128)
        assert a >= STACK_BASE
        mem.stack_release(mark)
        b = mem.stack_alloc(128)
        assert b == a  # reused after release


class TestAccessValidation:
    def test_null_page_faults(self):
        mem = Memory()
        with pytest.raises(MemoryFault):
            mem.read_bytes(0, 8)
        with pytest.raises(MemoryFault):
            mem.write_bytes(100, b"x")

    def test_beyond_heap_top_faults(self):
        mem = Memory()
        addr = mem.alloc(16)
        mem.read_bytes(addr, 16)
        with pytest.raises(MemoryFault):
            mem.read_bytes(addr + 8, 16)  # straddles heap top

    def test_gap_between_heap_and_stack_faults(self):
        mem = Memory()
        mem.alloc(8)
        with pytest.raises(MemoryFault):
            mem.read_bytes(STACK_BASE - 4096, 8)

    def test_fault_reports_details(self):
        mem = Memory()
        try:
            mem.write_bytes(4, b"abcd")
        except MemoryFault as exc:
            assert exc.address == 4
            assert exc.write is True


class TestTypedAccess:
    @pytest.mark.parametrize(
        "ty,value",
        [
            (T.I8, 200),
            (T.I16, 40000),
            (T.I32, 4_000_000_000),
            (T.I64, (1 << 63) + 5),
            (T.F32, 1.5),
            (T.F64, -2.75),
            (T.PTR, 0x123456),
        ],
    )
    def test_scalar_roundtrip(self, ty, value):
        mem = Memory()
        addr = mem.alloc(16)
        mem.store_scalar(ty, addr, value)
        assert mem.load_scalar(ty, addr) == value

    def test_little_endian_layout(self):
        mem = Memory()
        addr = mem.alloc(8)
        mem.store_scalar(T.I64, addr, 0x0102030405060708)
        assert mem.read_bytes(addr, 1) == b"\x08"

    def test_narrow_store_masks(self):
        mem = Memory()
        addr = mem.alloc(8)
        mem.store_scalar(T.I8, addr, 0x1FF)
        assert mem.load_scalar(T.I8, addr) == 0xFF

    def test_i1_stored_as_byte(self):
        mem = Memory()
        addr = mem.alloc(2)
        mem.store_scalar(T.I1, addr, 1)
        mem.store_scalar(T.I1, addr + 1, 0)
        assert mem.load_scalar(T.I1, addr) == 1
        assert mem.load_scalar(T.I1, addr + 1) == 0

    def test_vector_roundtrip(self):
        mem = Memory()
        v4 = T.vector(T.I64, 4)
        addr = mem.alloc(32)
        mem.store_value(v4, addr, (1, 2, 3, 4))
        assert mem.load_value(v4, addr) == (1, 2, 3, 4)


class TestGlobalInit:
    def test_zero_init(self):
        mem = Memory()
        addr = mem.init_global(T.ArrayType(T.I64, 4), None)
        assert mem.load_scalar(T.I64, addr + 24) == 0

    def test_list_init(self):
        mem = Memory()
        addr = mem.init_global(T.ArrayType(T.I32, 3), [7, 8, 9])
        assert mem.load_scalar(T.I32, addr + 4) == 8

    def test_bytes_init(self):
        mem = Memory()
        addr = mem.init_global(T.ArrayType(T.I8, 4), b"abc")
        assert mem.load_scalar(T.I8, addr) == ord("a")

    def test_scalar_global(self):
        mem = Memory()
        addr = mem.init_global(T.F64, 3.25)
        assert mem.load_scalar(T.F64, addr) == 3.25

    def test_oversized_initializer_rejected(self):
        mem = Memory()
        with pytest.raises(ValueError):
            mem.init_global(T.ArrayType(T.I8, 2), b"toolong")
