"""Round-trip tests for the ``Machine.snapshot()/restore()`` micro-API.

The batched fault-injection engine (``repro.cpu.batch``) and the
injection session both lean on one property: restoring a snapshot puts
the machine in a state from which a run is *bit-identical* to a run
from the snapshot point — outputs, every architectural counter, and
cycles. These tests pin that property across workloads, hardened
builds, armed fault plans, and runs abandoned by traps.
"""

import pytest

from repro.cpu import Machine, MachineConfig
from repro.cpu.errors import Trap
from repro.cpu.interpreter import FaultPlan
from repro.toolchain import default_toolchain

WORKLOADS = [("histogram", "native"), ("histogram", "elzar"),
             ("blackscholes", "native"), ("blackscholes", "elzar")]


def build(name, version):
    built = default_toolchain().build(name, "test", version)
    return built.module, built.entry, built.args


def observe(machine, entry, args):
    try:
        result = machine.run(entry, args)
    except Trap as exc:
        return ("trap", type(exc).__name__, str(exc),
                machine.counters.as_dict())
    return ("ok", list(result.output), result.counters.as_dict(),
            result.cycles)


class TestSnapshotRoundTrip:
    @pytest.mark.parametrize("name,version", WORKLOADS)
    def test_restore_then_run_is_bit_identical(self, name, version):
        module, entry, args = build(name, version)
        machine = Machine(module, MachineConfig(engine="decoded"))
        snap = machine.snapshot()
        first = observe(machine, entry, args)
        # The first run dirtied heap, counters, caches; restore must
        # erase every trace of it.
        machine.restore(snap)
        second = observe(machine, entry, args)
        assert first == second

    def test_restore_equals_fresh_machine(self):
        module, entry, args = build("histogram", "elzar")
        machine = Machine(module, MachineConfig(engine="decoded"))
        snap = machine.snapshot()
        observe(machine, entry, args)
        machine.restore(snap)
        fresh = Machine(module, MachineConfig(engine="decoded"))
        assert observe(machine, entry, args) == observe(fresh, entry, args)

    def test_repeated_restores_stay_identical(self):
        module, entry, args = build("histogram", "native")
        machine = Machine(module, MachineConfig(engine="decoded"))
        snap = machine.snapshot()
        runs = []
        for _ in range(3):
            machine.restore(snap)
            runs.append(observe(machine, entry, args))
        assert runs[0] == runs[1] == runs[2]

    @pytest.mark.parametrize("plan", [
        FaultPlan(target_index=7, bit=3, lane=1),
        FaultPlan(target_index=40, bit=62, lane=2),
        FaultPlan(target_index=11, bit=5, kind="addr"),
        FaultPlan(target_index=3, bit=0, kind="branch"),
    ])
    def test_armed_fault_state_round_trips(self, plan):
        # snapshot() captures armed-but-unfired plans; a restored run
        # must fire the same fault at the same dynamic site.
        module, entry, args = build("histogram", "elzar")
        machine = Machine(module, MachineConfig(engine="decoded"))
        machine.arm_fault(plan)
        snap = machine.snapshot()
        first = observe(machine, entry, args)
        machine.restore(snap)
        assert observe(machine, entry, args) == first

    def test_restore_after_trap_recovers_golden_run(self):
        # An address flip into the high bits traps mid-run, abandoning
        # the machine with live frames and a half-written heap; restore
        # must still recover a clean golden run.
        module, entry, args = build("histogram", "native")
        machine = Machine(module, MachineConfig(engine="decoded"))
        snap = machine.snapshot()
        golden = observe(machine, entry, args)
        assert golden[0] == "ok"

        machine.restore(snap)
        machine.arm_fault(FaultPlan(target_index=2, bit=40, kind="addr"))
        faulted = observe(machine, entry, args)

        machine.restore(snap)
        assert observe(machine, entry, args) == golden
        # The exercise is only meaningful if the fault actually
        # perturbed the first run.
        assert faulted != golden
