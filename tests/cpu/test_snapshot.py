"""Round-trip tests for the ``Machine.snapshot()/restore()`` micro-API
and the resumable trampoline's mid-run capture/resume extension of it.

The batched fault-injection engine (``repro.cpu.batch``) and the
injection session both lean on one property: restoring a snapshot puts
the machine in a state from which a run is *bit-identical* to a run
from the snapshot point — outputs, every architectural counter, and
cycles. These tests pin that property across workloads, hardened
builds, armed fault plans, and runs abandoned by traps.

The trampoline (``repro.cpu.resumable``) extends the property to
*mid-run* points: an explicit-frame run is bit-identical to the
recursive engine, and a state captured at any eligible-instruction
boundary resumes to the identical completion.
"""

import pytest

from repro.cpu import Machine, MachineConfig
from repro.cpu.errors import Trap
from repro.cpu.interpreter import FaultPlan
from repro.cpu.resumable import (
    capture_state,
    rebuild_frames,
    restore_payload,
    resume_run,
    run_resumable,
    run_stack,
)
from repro.toolchain import default_toolchain

WORKLOADS = [("histogram", "native"), ("histogram", "elzar"),
             ("blackscholes", "native"), ("blackscholes", "elzar")]


def build(name, version):
    built = default_toolchain().build(name, "test", version)
    return built.module, built.entry, built.args


def observe(machine, entry, args):
    try:
        result = machine.run(entry, args)
    except Trap as exc:
        return ("trap", type(exc).__name__, str(exc),
                machine.counters.as_dict())
    return ("ok", list(result.output), result.counters.as_dict(),
            result.cycles)


class TestSnapshotRoundTrip:
    @pytest.mark.parametrize("name,version", WORKLOADS)
    def test_restore_then_run_is_bit_identical(self, name, version):
        module, entry, args = build(name, version)
        machine = Machine(module, MachineConfig(engine="decoded"))
        snap = machine.snapshot()
        first = observe(machine, entry, args)
        # The first run dirtied heap, counters, caches; restore must
        # erase every trace of it.
        machine.restore(snap)
        second = observe(machine, entry, args)
        assert first == second

    def test_restore_equals_fresh_machine(self):
        module, entry, args = build("histogram", "elzar")
        machine = Machine(module, MachineConfig(engine="decoded"))
        snap = machine.snapshot()
        observe(machine, entry, args)
        machine.restore(snap)
        fresh = Machine(module, MachineConfig(engine="decoded"))
        assert observe(machine, entry, args) == observe(fresh, entry, args)

    def test_repeated_restores_stay_identical(self):
        module, entry, args = build("histogram", "native")
        machine = Machine(module, MachineConfig(engine="decoded"))
        snap = machine.snapshot()
        runs = []
        for _ in range(3):
            machine.restore(snap)
            runs.append(observe(machine, entry, args))
        assert runs[0] == runs[1] == runs[2]

    @pytest.mark.parametrize("plan", [
        FaultPlan(target_index=7, bit=3, lane=1),
        FaultPlan(target_index=40, bit=62, lane=2),
        FaultPlan(target_index=11, bit=5, kind="addr"),
        FaultPlan(target_index=3, bit=0, kind="branch"),
    ])
    def test_armed_fault_state_round_trips(self, plan):
        # snapshot() captures armed-but-unfired plans; a restored run
        # must fire the same fault at the same dynamic site.
        module, entry, args = build("histogram", "elzar")
        machine = Machine(module, MachineConfig(engine="decoded"))
        machine.arm_fault(plan)
        snap = machine.snapshot()
        first = observe(machine, entry, args)
        machine.restore(snap)
        assert observe(machine, entry, args) == first

    def test_restore_after_trap_recovers_golden_run(self):
        # An address flip into the high bits traps mid-run, abandoning
        # the machine with live frames and a half-written heap; restore
        # must still recover a clean golden run.
        module, entry, args = build("histogram", "native")
        machine = Machine(module, MachineConfig(engine="decoded"))
        snap = machine.snapshot()
        golden = observe(machine, entry, args)
        assert golden[0] == "ok"

        machine.restore(snap)
        machine.arm_fault(FaultPlan(target_index=2, bit=40, kind="addr"))
        faulted = observe(machine, entry, args)

        machine.restore(snap)
        assert observe(machine, entry, args) == golden
        # The exercise is only meaningful if the fault actually
        # perturbed the first run.
        assert faulted != golden


class _TakeOnce:
    """Minimal capture policy: one state at the first boundary at or
    after ``at`` eligible instructions."""

    def __init__(self, at):
        self.next_index = at
        self.states = []

    def take(self, machine, stack, executed):
        self.states.append(capture_state(machine, stack, executed))
        self.next_index = 1 << 62


def _streams(machine):
    return (machine.eligible_executed, machine.mem_accesses_eligible,
            machine.cond_branches_eligible, machine.checker_sites_executed)


class TestResumableTrampoline:
    """The explicit-frame engine is indistinguishable from recursion."""

    @pytest.mark.parametrize("name,version", WORKLOADS)
    def test_trampoline_matches_recursive(self, name, version):
        module, entry, args = build(name, version)
        rec = Machine(module, MachineConfig(engine="decoded"))
        tram = Machine(module, MachineConfig(engine="decoded"))
        r1 = rec.run(entry, args)
        r2 = run_resumable(tram, entry, args)
        assert list(r1.output) == list(r2.output)
        assert r1.counters.as_dict() == r2.counters.as_dict()
        assert r1.cycles == r2.cycles
        assert _streams(rec) == _streams(tram)

    @pytest.mark.parametrize("kwargs", [
        {"collect_timing": False},
        {"cache_enabled": False},
        {"collect_by_opcode": True},
    ])
    def test_trampoline_matches_across_configs(self, kwargs):
        module, entry, args = build("histogram", "elzar")
        rec = Machine(module, MachineConfig(engine="decoded", **kwargs))
        tram = Machine(module, MachineConfig(engine="decoded", **kwargs))
        r1 = rec.run(entry, args)
        r2 = run_resumable(tram, entry, args)
        assert list(r1.output) == list(r2.output)
        assert r1.counters.as_dict() == r2.counters.as_dict()
        assert r1.cycles == r2.cycles

    @pytest.mark.parametrize("name,version", WORKLOADS)
    def test_trampoline_count_only_streams_match(self, name, version):
        module, entry, args = build(name, version)
        rec = Machine(module, MachineConfig(engine="decoded",
                                            collect_timing=False))
        rec.count_only = True
        tram = Machine(module, MachineConfig(engine="decoded",
                                             collect_timing=False))
        tram.count_only = True
        r1 = rec.run(entry, args)
        run_resumable(tram, entry, args)
        assert _streams(rec) == _streams(tram)
        assert list(r1.output) == list(tram.output)

    def test_trampoline_faulted_run_matches_recursive(self):
        module, entry, args = build("histogram", "elzar")
        plan = FaultPlan(target_index=40, bit=62, lane=2)
        rec = Machine(module, MachineConfig(engine="decoded"))
        rec.arm_fault(plan)
        tram = Machine(module, MachineConfig(engine="decoded"))
        tram.arm_fault(plan)
        r1 = rec.run(entry, args)
        r2 = run_resumable(tram, entry, args)
        assert list(r1.output) == list(r2.output)
        assert r1.counters.as_dict() == r2.counters.as_dict()

    @pytest.mark.parametrize("at", [1, 500, 3000])
    def test_capture_resume_completes_bit_identically(self, at):
        # Capture mid-run during a count_only golden run (the builder's
        # path), resume with no plans on a second machine: the tail must
        # complete to the golden output with golden counters.
        module, entry, args = build("histogram", "elzar")
        golden = Machine(module, MachineConfig(engine="decoded",
                                               collect_timing=False))
        reference = golden.run(entry, args)

        cap = Machine(module, MachineConfig(engine="decoded",
                                            collect_timing=False))
        cap.count_only = True
        policy = _TakeOnce(at)
        run_resumable(cap, entry, args, capture=policy)
        assert len(policy.states) == 1
        state = policy.states[0]
        assert state.eligible >= at

        resumed = Machine(module, MachineConfig(engine="decoded",
                                                collect_timing=False))
        result = resume_run(resumed, state, ())
        assert list(result.output) == list(reference.output)
        assert result.counters.as_dict() == reference.counters.as_dict()

    def test_capture_is_nondestructive(self):
        # A run with a capture hook produces the same result as one
        # without: take() only copies.
        module, entry, args = build("blackscholes", "elzar")
        plain = Machine(module, MachineConfig(engine="decoded"))
        plain.count_only = True
        r1 = run_resumable(plain, entry, args)
        hooked = Machine(module, MachineConfig(engine="decoded"))
        hooked.count_only = True
        policy = _TakeOnce(100)
        r2 = run_resumable(hooked, entry, args, capture=policy)
        assert list(r1.output) == list(r2.output)
        assert r1.counters.as_dict() == r2.counters.as_dict()
        assert _streams(plain) == _streams(hooked)

    def test_resume_is_repeatable(self):
        # One state, resumed three times on the same machine (the
        # injection-session reuse pattern): identical every time.
        module, entry, args = build("histogram", "native")
        cap = Machine(module, MachineConfig(engine="decoded",
                                            collect_timing=False))
        cap.count_only = True
        policy = _TakeOnce(200)
        run_resumable(cap, entry, args, capture=policy)
        state = policy.states[0]
        machine = Machine(module, MachineConfig(engine="decoded",
                                                collect_timing=False))
        plan = FaultPlan(target_index=state.eligible + 50, bit=7, lane=0)
        runs = []
        for _ in range(3):
            result = resume_run(machine, state, (plan,))
            runs.append((list(result.output),
                         result.counters.as_dict(),
                         machine.fault_injected))
        assert runs[0] == runs[1] == runs[2]
