"""Tests for the trap hierarchy and its mapping onto Table I."""

import pytest

from repro.cpu import (
    AbortError,
    ArithmeticFault,
    DetectedError,
    HangError,
    MemoryFault,
    Trap,
)
from repro.faults import Outcome


class TestHierarchy:
    def test_all_traps_are_traps(self):
        for cls in (MemoryFault, ArithmeticFault, HangError, DetectedError,
                    AbortError):
            assert issubclass(cls, Trap)

    def test_memory_fault_details(self):
        exc = MemoryFault(0x42, size=8, write=True)
        assert exc.address == 0x42
        assert exc.size == 8
        assert exc.write is True
        assert "write" in str(exc) and "0x42" in str(exc)

    def test_memory_fault_read_message(self):
        assert "read" in str(MemoryFault(0x10, 4, write=False))


class TestTableOneMapping:
    """The campaign classifies each trap per Table I of the paper."""

    def test_mapping(self):
        from repro.faults.campaign import inject_once  # noqa: F401  (import check)

        # Documented mapping (see faults/outcomes.py):
        assert Outcome.HANG.system_state == "crashed"          # unresponsive
        assert Outcome.OS_DETECTED.system_state == "crashed"   # OS terminated
        assert Outcome.DETECTED.system_state == "crashed"      # fail-stop
        assert Outcome.CORRECTED.system_state == "correct"     # ELZAR fixed it
        assert Outcome.MASKED.system_state == "correct"        # no effect
        assert Outcome.SDC.system_state == "corrupted"         # silent corruption

    def test_outcome_values_are_stable(self):
        """The string values appear in rendered tables and CSVs."""
        assert Outcome.SDC.value == "sdc"
        assert Outcome.CORRECTED.value == "corrected"
        assert Outcome.OS_DETECTED.value == "os-detected"
