"""Differential tests: pre-decoded engine vs reference interpreter.

The decoded engine (``repro.cpu.engine``) is a pure performance
optimisation — for every workload it must reproduce the reference
interpreter *bit for bit*: outputs, every architectural counter
(instructions, uops, loads, stores, branches, cache hierarchy, branch
misses, by-opcode histogram), cycle counts, ILP, and the fault-injection
observables (eligible counts, injection site, outcome). These tests
sweep all 14 kernels, the three case-study apps, hardened builds, and
armed fault runs through both engines and require exact equality.
"""

import random
import sys

import pytest

from repro.apps import kvstore, sqldb, webserver, workload_a
from repro.cpu import Machine, MachineConfig
from repro.cpu.interpreter import FaultPlan
from repro.faults import (
    CampaignConfig,
    draw_model_plans,
    golden_profile,
    golden_run,
    model_names,
    run_campaign,
)
from repro.passes import elzar_transform, mem2reg
from repro.workloads import ALL
from repro.workloads.registry import BENCHMARKS

KERNELS = [w.name for w in BENCHMARKS]


def run_engine(module, entry, args, engine, collect_timing=True, plan=None,
               max_instructions=None):
    config = MachineConfig(engine=engine, collect_timing=collect_timing)
    if max_instructions is not None:
        config.max_instructions = max_instructions
    machine = Machine(module, config)
    if plan is not None:
        machine.arm_fault(plan)
    outcome = None
    result = None
    try:
        result = machine.run(entry, args)
    except Exception as exc:  # classified later; both engines must match
        outcome = (type(exc).__name__, str(exc))
    return machine, result, outcome


def assert_identical(module, entry, args, collect_timing=True):
    _, ref, ref_exc = run_engine(module, entry, args, "reference",
                                 collect_timing)
    _, dec, dec_exc = run_engine(module, entry, args, "decoded",
                                 collect_timing)
    assert dec_exc == ref_exc
    if ref is None:
        return None, None
    assert dec.value == ref.value
    assert dec.output == ref.output
    assert dec.counters.as_dict() == ref.counters.as_dict()
    if collect_timing:
        assert dec.cycles == ref.cycles
        assert dec.ilp == ref.ilp
    return dec, ref


@pytest.mark.parametrize("name", KERNELS)
def test_kernel_native_identical(name):
    built = ALL[name].build_at("test")
    assert_identical(built.module, built.entry, built.args)


@pytest.mark.parametrize("name", ["histogram", "blackscholes", "kmeans"])
def test_kernel_hardened_identical(name):
    built = ALL[name].build_at("test")
    module = mem2reg(built.module)
    hardened = elzar_transform(module)
    assert_identical(hardened, built.entry, built.args)


@pytest.mark.parametrize("builder", [
    lambda: kvstore.build(workload_a(60, 32), table_size=256),
    lambda: sqldb.build(workload_a(40, 32), tail_capacity=64),
    lambda: webserver.build(nrequests=8, page_size=1024),
], ids=["kvstore", "sqldb", "webserver"])
def test_app_identical(builder):
    app = builder()
    assert_identical(app.module, app.entry, app.args)


@pytest.mark.parametrize("name", ["histogram", "swaptions"])
def test_kernel_identical_without_timing(name):
    built = ALL[name].build_at("test")
    assert_identical(built.module, built.entry, built.args,
                     collect_timing=False)


@pytest.mark.parametrize("name", ["histogram", "blackscholes"])
def test_armed_runs_identical(name):
    """Fault-injection runs agree on every observable: the eligible
    stream, whether/where the fault landed, the final state or the
    exception, and the counters."""
    built = ALL[name].build_at("test")
    module, entry, args = built.module, built.entry, built.args
    _, eligible, executed = golden_run(module, entry, args)
    rng = random.Random(name)
    for _ in range(6):
        plan = FaultPlan(target_index=rng.randrange(eligible),
                         bit=rng.randrange(64), lane=rng.randrange(4))
        runs = {}
        for engine in ("reference", "decoded"):
            machine, result, exc = run_engine(
                module, entry, args, engine, collect_timing=False,
                plan=plan, max_instructions=executed * 4,
            )
            runs[engine] = (
                exc,
                machine.fault_injected,
                machine.eligible_executed,
                machine.fault_target.ref() if machine.fault_target else None,
                result.output if result else None,
                machine.counters.as_dict(),
            )
        assert runs["decoded"] == runs["reference"], plan


@pytest.mark.parametrize("model", model_names())
def test_fault_models_identical_per_plan(model):
    """For every registered fault model, the interpreter and the
    decoded engine must classify the identical per-plan observables:
    same streams counted, same injection site, same output or trap.
    This is the contract that lets the durable store share shard rows
    between engines."""
    built = ALL["histogram"].build_at("test")
    module = elzar_transform(mem2reg(built.module))
    entry, args = built.entry, built.args
    _, profile = golden_profile(module, entry, args)
    cfg = CampaignConfig(injections=10, seed=13, fault_model=model)
    plans = draw_model_plans(profile, cfg)
    budget = profile.executed * 4 + 10_000
    for plan in plans:
        runs = {}
        for engine in ("reference", "decoded"):
            machine, result, exc = run_engine(
                module, entry, args, engine, collect_timing=False,
                plan=plan, max_instructions=budget,
            )
            runs[engine] = (
                exc,
                machine.fault_injected,
                machine.eligible_executed,
                machine.mem_accesses_eligible,
                machine.cond_branches_eligible,
                machine.checker_sites_executed,
                machine.fault_target.ref() if machine.fault_target else None,
                tuple(result.output) if result else None,
                machine.counters.corrections,
            )
        assert runs["decoded"] == runs["reference"], (model, plan)


@pytest.mark.parametrize("model", model_names())
def test_fault_model_campaign_counts_identical(model):
    """End-to-end per model: full campaign outcome counts bit-identical
    between engines (the CampaignConfig.engine knob CI exercises)."""
    built = ALL["histogram"].build_at("test")
    module = elzar_transform(mem2reg(built.module))
    counts = {}
    for engine in ("reference", "decoded"):
        cfg = CampaignConfig(injections=12, seed=21, fault_model=model,
                             engine=engine)
        result = run_campaign(module, built.entry, built.args, "h", "elzar",
                              cfg)
        assert result.fault_model == model
        counts[engine] = dict(result.counts)
    assert counts["decoded"] == counts["reference"]


def test_count_only_mode_matches_engines():
    """count_only profiles the eligible stream without arming a fault,
    identically on both engines and identically to an armed run."""
    built = ALL["kmeans"].build_at("test")
    counts = {}
    for engine in ("reference", "decoded"):
        machine = Machine(built.module,
                          MachineConfig(engine=engine, collect_timing=False))
        machine.count_only = True
        result = machine.run(built.entry, built.args)
        assert not machine.fault_injected
        counts[engine] = (machine.eligible_executed, tuple(result.output))
    assert counts["decoded"] == counts["reference"]
    assert counts["decoded"][0] > 0


def test_golden_run_has_no_sentinel_plan():
    """golden_run must not arm any fault plan (the old target_index=-1
    sentinel hack) — eligible counting rides on count_only mode."""
    built = ALL["histogram"].build_at("test")
    output, eligible, executed = golden_run(built.module, built.entry,
                                            built.args)
    assert output == built.expected
    assert 0 < eligible <= executed


def test_golden_run_cache_hit_and_invalidation():
    built = ALL["histogram"].build_at("test")
    module = built.module
    module._golden_cache.clear()
    first = golden_run(module, built.entry, built.args)
    assert len(module._golden_cache) == 1
    second = golden_run(module, built.entry, built.args)
    assert second == first
    assert len(module._golden_cache) == 1
    module.bump_version()
    assert len(module._golden_cache) == 0
    third = golden_run(module, built.entry, built.args)
    assert third == first


@pytest.mark.parametrize("workers", [2, 4])
def test_campaign_counts_independent_of_workers(workers):
    built = ALL["histogram"].build_at("test")
    cfg = CampaignConfig(injections=24, seed=11)
    serial = run_campaign(built.module, built.entry, built.args,
                          "h", "native", cfg, workers=1)
    parallel = run_campaign(built.module, built.entry, built.args,
                            "h", "native", cfg, workers=workers)
    assert dict(parallel.counts) == dict(serial.counts)


def test_run_restores_recursion_limit():
    """Importing repro must not touch the interpreter recursion limit,
    and Machine.run must restore whatever limit it raised."""
    saved = sys.getrecursionlimit()
    try:
        sys.setrecursionlimit(1500)
        built = ALL["histogram"].build_at("test")
        machine = Machine(built.module, MachineConfig(collect_timing=False))
        machine.run(built.entry, built.args)
        assert sys.getrecursionlimit() == 1500
    finally:
        sys.setrecursionlimit(saved)
