"""Tests for the branch predictor and the dataflow timing model."""

from repro.avx.costs import HASWELL
from repro.cpu import GSharePredictor, TimingModel


class TestPredictor:
    def test_learns_always_taken(self):
        p = GSharePredictor()
        for _ in range(100):
            p.predict_and_update(1, True)
        assert p.miss_ratio < 10.0

    def test_learns_alternating_pattern(self):
        p = GSharePredictor()
        for i in range(400):
            p.predict_and_update(1, i % 2 == 0)
        # gshare captures the pattern via history after warmup.
        late = GSharePredictor()
        misses_late = 0
        for i in range(2000):
            if not late.predict_and_update(1, i % 2 == 0):
                if i > 200:
                    misses_late += 1
        assert misses_late < 50

    def test_random_pattern_misses_heavily(self):
        import random

        rng = random.Random(3)
        p = GSharePredictor()
        for _ in range(2000):
            p.predict_and_update(7, rng.random() < 0.5)
        assert p.miss_ratio > 25.0

    def test_reset(self):
        p = GSharePredictor()
        p.predict_and_update(1, True)
        p.reset()
        assert p.predictions == 0 and p.misses == 0


class TestTiming:
    def test_issue_width_bounds_throughput(self):
        t = TimingModel(HASWELL, issue_width=4)
        for _ in range(400):
            t.issue("add", 1.0, ())
        assert t.cycles >= 100.0  # 400 uops / 4-wide
        assert t.cycles < 120.0

    def test_dependence_chain_bounds_latency(self):
        t = TimingModel(HASWELL)
        ready = 0.0
        for _ in range(100):
            ready = t.issue("mul", 3.0, [ready])
        assert t.cycles >= 300.0

    def test_independent_ops_overlap(self):
        t = TimingModel(HASWELL)
        for _ in range(100):
            t.issue("mul", 3.0, [0.0])
        assert t.cycles < 100.0

    def test_multi_uop_instructions_cost_more_frontend(self):
        t1 = TimingModel(HASWELL)
        for _ in range(100):
            t1.issue("x", 1.0, (), uops=1)
        t4 = TimingModel(HASWELL)
        for _ in range(100):
            t4.issue("x", 1.0, (), uops=4)
        assert t4.cycles > 3 * t1.cycles

    def test_store_port_structural_hazard(self):
        t = TimingModel(HASWELL)
        for _ in range(100):
            t.issue("store", 1.0, ())
        # One store per cycle despite the 4-wide frontend.
        assert t.cycles >= 90.0

    def test_divider_is_unpipelined(self):
        t = TimingModel(HASWELL)
        for _ in range(10):
            t.issue("sdiv", 26.0, [0.0])
        assert t.cycles >= 10 * 20.0  # div unit busy 20/op

    def test_vector_port_group_narrower_than_scalar(self):
        scalar = TimingModel(HASWELL)
        for _ in range(300):
            scalar.issue("add", 1.0, (), uops=1, is_vector=False)
        vec = TimingModel(HASWELL)
        for _ in range(300):
            vec.issue("add", 1.0, (), uops=1, is_vector=True)
        assert vec.cycles > scalar.cycles

    def test_branch_mispredict_stalls_frontend(self):
        t = TimingModel(HASWELL)
        done = t.issue("br", 1.0, ())
        before = t.issue_time
        t.branch_mispredict(done)
        assert t.issue_time >= done + t.branch_miss_penalty
        assert t.issue_time > before

    def test_rob_limits_overlap(self):
        small = TimingModel(HASWELL, rob_size=4)
        for _ in range(40):
            small.issue("load", 0.0, (), extra_latency=200.0)
        big = TimingModel(HASWELL, rob_size=1000)
        for _ in range(40):
            big.issue("load", 0.0, (), extra_latency=200.0)
        assert small.cycles > big.cycles

    def test_ilp_reporting(self):
        t = TimingModel(HASWELL)
        for _ in range(100):
            t.issue("add", 1.0, ())
        assert 3.0 < t.ilp <= 4.01

    def test_reset(self):
        t = TimingModel(HASWELL)
        t.issue("add", 1.0, ())
        t.reset()
        assert t.cycles == 0.0 and t.issued == 0 and t.uops_issued == 0
