"""Differential fuzz: the compiled execution core vs decoded vs reference.

Randomly generated small modules — nested branches, counted loops,
defined calls (pure leaves the segment compiler inlines and impure
helpers it must really suspend around), intrinsics, memory traffic,
float arithmetic, and trapping division — run through every engine
tier, through mid-run capture/resume, through batched injection, and
through every registered fault model. Outcomes, output streams, stream
counters, and architectural counters must be bit-identical everywhere:
the compiled core is admissible only as a pure performance change.

The file also pins the compiled core's supporting machinery: the
engine registry (``MachineConfig.engine`` validation,
``register_engine``), the cross-instance compiled-code cache (warm
compiles are 100% digest hits), and the ``engine-compile`` lab event.
"""

import random

import pytest

import repro.cpu.compiled as compiled_mod
import repro.faults.campaign as campaign_mod
from repro.cpu import Machine, MachineConfig
from repro.cpu.compiled import (
    add_compile_hook,
    capture_state,
    code_cache_clear,
    remove_compile_hook,
    resume_run,
    run_resumable,
)
from repro.cpu.interpreter import (
    FaultPlan,
    register_engine,
    registered_engines,
)
from repro.cpu.intrinsics import rt_print_i64
from repro.faults import (
    CampaignConfig,
    draw_model_plans,
    golden_profile,
    model_names,
)
from repro.faults.campaign import run_plans
from repro.ir import Module
from repro.ir import types as T
from repro.passes import elzar_transform, mem2reg

from ..conftest import make_function

ENGINES = ("reference", "decoded", "compiled")

PURE_OPS = ("add", "sub", "mul", "and", "or", "xor", "shl", "lshr", "ashr")
CMPS = ("eq", "ne", "ult", "ule", "slt", "sle", "sgt", "uge")


@pytest.fixture(autouse=True)
def _strict_compile(monkeypatch):
    # Surface segment-compiler bugs as failures instead of silent
    # (bit-identical) fallbacks to the record path.
    monkeypatch.setattr(compiled_mod, "STRICT_COMPILE", True)


def _rand_leaf(module, rng, idx):
    """Pure-ALU single-block callee: the shape the segment compiler
    inlines at call sites."""
    fn, b = make_function(module, f"leaf{idx}", T.I64, [T.I64, T.I64])
    x, y = fn.args
    v = x
    for _ in range(rng.randint(2, 6)):
        operand = rng.choice([y, b.i64(rng.randint(1, 63))])
        v = b.binop(rng.choice(PURE_OPS), v, operand)
    if rng.random() < 0.5:
        cond = b.icmp(rng.choice(CMPS), v, y)
        v = b.select(cond, v, x)
    b.ret(v)
    return fn


def _rand_helper(module, rng, leaves):
    """Memory-touching callee (loads, stores, division): never
    inlinable, so calling it exercises the real suspend/resume path."""
    fn, b = make_function(module, "helper", T.I64, [T.PTR, T.I64])
    p, i = fn.args
    slot = b.gep(T.I64, p, b.and_(i, b.i64(7)))
    v = b.load(T.I64, slot)
    v = b.call(rng.choice(leaves), [v, i])
    b.store(v, slot)
    b.ret(b.urem(v, b.or_(i, b.i64(rng.randint(1, 9) | 1))))
    return fn


def build_random_module(seed, trap=False):
    """Deterministic random program: returns (module, entry, args).

    With ``trap=False`` the golden run always completes (faults are the
    only trap source); ``trap=True`` appends an unguarded division by
    zero so the golden run itself must trap identically everywhere.
    """
    rng = random.Random(seed)
    module = Module(f"fuzz{seed}")
    printer = rt_print_i64(module)
    leaves = [_rand_leaf(module, rng, i) for i in range(rng.randint(1, 3))]
    helper = _rand_helper(module, rng, leaves)

    fn, b = make_function(module, "main", T.I64, [T.I64, T.I64])
    a0, a1 = fn.args
    buf = b.alloca(T.I64, count=8)

    loop = b.begin_loop(b.i64(0), b.i64(8))
    v = b.call(rng.choice(leaves), [b.add(a0, loop.index), a1])
    b.store(v, b.gep(T.I64, buf, loop.index))
    b.end_loop(loop)

    loop = b.begin_loop(b.i64(0), b.i64(rng.randint(6, 12)))
    acc = b.loop_phi(loop, b.i64(rng.randint(0, 1000)))
    i = loop.index
    hv = b.call(helper, [buf, i])
    t = b.call(rng.choice(leaves), [hv, acc])
    state = b.begin_if(b.icmp(rng.choice(CMPS), t, a1), with_else=True)
    b.store(b.xor(t, b.i64(rng.getrandbits(32))),
            b.gep(T.I64, buf, b.and_(i, b.i64(7))))
    b.begin_else(state)
    b.store(b.add(t, acc),
            b.gep(T.I64, buf, b.and_(b.add(i, b.i64(3)), b.i64(7))))
    b.end_if(state)
    m = b.load(T.I64, b.gep(T.I64, buf, b.and_(i, b.i64(7))))
    b.set_loop_next(loop, acc, b.add(acc, b.xor(m, t)))
    b.end_loop(loop)
    acc = loop.pending_phis[0][0]

    # A bounded float excursion: uitofp/fmul/fcmp/select stay exact
    # and trap-free for small operands.
    fv = b.uitofp(b.and_(acc, b.i64(0xFFFF)), T.F64)
    fv = b.fmul(fv, b.f64(1.0 + rng.randint(1, 7) / 8.0))
    picked = b.select(b.fcmp("olt", fv, b.f64(float(rng.randint(0, 1 << 16)))),
                      b.add(acc, a0), b.xor(acc, a1))
    b.call(printer, [picked])
    if trap:
        picked = b.udiv(picked, b.sub(a1, a1))
    b.ret(picked)
    return module, "main", [rng.getrandbits(16), rng.getrandbits(16)]


def _observe(module, entry, args, engine, collect_timing=True, plan=None,
             max_instructions=None, count_only=False):
    config = MachineConfig(engine=engine, collect_timing=collect_timing)
    if max_instructions is not None:
        config.max_instructions = max_instructions
    machine = Machine(module, config)
    if count_only:
        machine.count_only = True
    if plan is not None:
        machine.arm_fault(plan)
    exc = result = None
    try:
        result = machine.run(entry, args)
    except Exception as err:  # classified below; engines must agree
        exc = (type(err).__name__, str(err))
    observed = {
        "exc": exc,
        "counters": machine.counters.as_dict(),
        "output": list(machine.output),
    }
    if plan is not None or count_only:
        # The eligible-stream counters are maintained by the reference
        # interpreter unconditionally but by the accelerated engines
        # only for armed or count_only runs (pure bookkeeping skip).
        observed["streams"] = (
            machine.eligible_executed, machine.mem_accesses_eligible,
            machine.cond_branches_eligible, machine.checker_sites_executed)
        observed["injected"] = machine.fault_injected
    if result is not None:
        observed["value"] = result.value
        if collect_timing:
            observed["cycles"] = result.cycles
    return observed


@pytest.mark.parametrize("seed", range(8))
def test_random_modules_identical_across_engines(seed):
    module, entry, args = build_random_module(seed)
    payloads = []
    add_compile_hook(payloads.append)
    try:
        runs = {engine: _observe(module, entry, args, engine)
                for engine in ENGINES}
    finally:
        remove_compile_hook(payloads.append)
    assert runs["decoded"] == runs["reference"]
    assert runs["compiled"] == runs["reference"]
    # The compiled run must actually have compiled something — an
    # all-fallback run would make this test vacuous.
    assert sum(p["segments"] for p in payloads) > 0


@pytest.mark.parametrize("seed", range(0, 8, 2))
def test_armed_random_runs_identical_across_engines(seed):
    """Raw fault injection (no campaign machinery): site, streams,
    outcome, and counters agree for every engine."""
    module, entry, args = build_random_module(seed)
    golden = {engine: _observe(module, entry, args, engine,
                               collect_timing=False, count_only=True)
              for engine in ENGINES}
    assert golden["decoded"] == golden["reference"]
    assert golden["compiled"] == golden["reference"]
    eligible = golden["reference"]["streams"][0]
    budget = golden["reference"]["counters"]["instructions"] * 4 + 1000
    rng = random.Random(seed + 100)
    for _ in range(4):
        plan = FaultPlan(target_index=rng.randrange(eligible),
                         bit=rng.randrange(64), lane=0)
        runs = {engine: _observe(module, entry, args, engine,
                                 collect_timing=False, plan=plan,
                                 max_instructions=budget)
                for engine in ENGINES}
        assert runs["decoded"] == runs["reference"], plan
        assert runs["compiled"] == runs["reference"], plan


@pytest.mark.parametrize("seed", range(0, 8, 3))
def test_trapping_modules_identical_across_engines(seed):
    module, entry, args = build_random_module(seed, trap=True)
    runs = {engine: _observe(module, entry, args, engine)
            for engine in ENGINES}
    assert runs["reference"]["exc"] is not None
    assert runs["reference"]["exc"][0] == "ArithmeticFault"
    assert runs["decoded"] == runs["reference"]
    assert runs["compiled"] == runs["reference"]


@pytest.mark.parametrize("budget", [1, 17, 150])
def test_budget_exhaustion_identical_across_engines(budget):
    # HangError must fire at the identical dynamic-instruction count
    # (the compiled core's budget prechecks bail to the record path
    # near exhaustion rather than over- or under-counting).
    module, entry, args = build_random_module(2)
    runs = {engine: _observe(module, entry, args, engine,
                             max_instructions=budget)
            for engine in ENGINES}
    assert runs["reference"]["exc"] is not None
    assert runs["reference"]["exc"][0] == "HangError"
    assert runs["decoded"] == runs["reference"]
    assert runs["compiled"] == runs["reference"]


class _TakeOnce:
    def __init__(self, at):
        self.next_index = at
        self.states = []

    def take(self, machine, stack, executed):
        self.states.append(capture_state(machine, stack, executed))
        self.next_index = 1 << 62


@pytest.mark.parametrize("seed,at", [(1, 1), (1, 40), (5, 12)])
def test_compiled_resume_mid_run_matches_straight_run(seed, at):
    module, entry, args = build_random_module(seed)
    straight = Machine(module, MachineConfig(engine="compiled",
                                             collect_timing=False))
    reference = straight.run(entry, args)

    cap = Machine(module, MachineConfig(engine="compiled",
                                        collect_timing=False))
    cap.count_only = True
    policy = _TakeOnce(at)
    run_resumable(cap, entry, args, capture=policy)
    assert len(policy.states) == 1
    state = policy.states[0]
    assert state.eligible >= at

    resumed = Machine(module, MachineConfig(engine="compiled",
                                            collect_timing=False))
    result = resume_run(resumed, state, ())
    assert list(result.output) == list(reference.output)
    assert result.value == reference.value
    assert result.counters.as_dict() == reference.counters.as_dict()


@pytest.mark.parametrize("seed", [0, 4])
@pytest.mark.parametrize("model", model_names())
def test_fault_models_identical_per_plan(seed, model):
    """Every fault model, on hardened random code: the per-plan outcome
    *list* — sequential decoded, sequential compiled, and batched
    compiled lanes — must be bit-identical."""
    module, entry, args = build_random_module(seed)
    module = elzar_transform(mem2reg(module))
    golden = Machine(module, MachineConfig(engine="compiled",
                                           collect_timing=False))
    reference = list(golden.run(entry, args).output)
    _, profile = golden_profile(module, entry, args)
    budget = profile.executed * 4 + 10_000
    cfg = CampaignConfig(injections=6, seed=seed + 17, fault_model=model)
    plans = draw_model_plans(profile, cfg)

    outcomes = {}
    for key, engine, batch in (("decoded", "decoded", 1),
                               ("compiled", "compiled", 1),
                               ("compiled-batched", "compiled", 3)):
        campaign_mod._SESSION_TLS.__dict__.clear()
        module._golden_cache.clear()
        outcomes[key] = run_plans(module, entry, args, plans, reference,
                                  budget, engine=engine, batch=batch,
                                  fault_model=model, snap=False)
    assert outcomes["compiled"] == outcomes["decoded"], model
    assert outcomes["compiled-batched"] == outcomes["decoded"], model


def test_fault_plans_with_snap_resume_identical():
    """Checkpoint-resumed injection on the compiled engine returns the
    exact outcome list of from-scratch decoded injection."""
    module, entry, args = build_random_module(3)
    module = elzar_transform(mem2reg(module))
    golden = Machine(module, MachineConfig(engine="compiled",
                                           collect_timing=False))
    reference = list(golden.run(entry, args).output)
    _, profile = golden_profile(module, entry, args)
    budget = profile.executed * 4 + 10_000
    cfg = CampaignConfig(injections=10, seed=29)
    plans = draw_model_plans(profile, cfg)

    outcomes = {}
    for engine, snap in (("decoded", False), ("compiled", True)):
        campaign_mod._SESSION_TLS.__dict__.clear()
        module._golden_cache.clear()
        outcomes[(engine, snap)] = run_plans(
            module, entry, args, plans, reference, budget,
            engine=engine, snap=snap)
    assert outcomes[("compiled", True)] == outcomes[("decoded", False)]


def test_machine_config_rejects_unknown_engine():
    with pytest.raises(ValueError, match="unknown engine"):
        MachineConfig(engine="jit")
    # The error names the registered engines so the fix is self-evident.
    try:
        MachineConfig(engine="jit")
    except ValueError as exc:
        for name in ("reference", "decoded", "compiled"):
            assert name in str(exc)


def test_register_engine_round_trip():
    from repro.cpu.interpreter import _ENGINE_SPECS

    assert set(ENGINES) <= set(registered_engines())
    register_engine("experimental", ("repro.cpu.compiled", "run_decoded"))
    try:
        assert "experimental" in registered_engines()
        module, entry, args = build_random_module(6)
        got = _observe(module, entry, args, "experimental")
        want = _observe(module, entry, args, "decoded")
        assert got == want
    finally:
        _ENGINE_SPECS.pop("experimental", None)


def test_warm_compile_is_all_code_cache_hits():
    """Two machines decoding byte-identical IR in separate module
    instances share compiled code objects: the second compile is 100%
    digest hits, zero fresh ``compile()`` calls."""
    code_cache_clear()
    payloads = []
    add_compile_hook(payloads.append)
    try:
        for _ in range(2):
            module, entry, args = build_random_module(7)
            machine = Machine(module, MachineConfig(engine="compiled"))
            machine.run(entry, args)
    finally:
        remove_compile_hook(payloads.append)
    assert len(payloads) == 2
    cold, warm = payloads
    assert cold["digest"] == warm["digest"]
    assert cold["code_misses"] > 0
    assert warm["code_misses"] == 0
    assert warm["code_hits"] == cold["code_hits"] + cold["code_misses"]


def test_durable_campaign_emits_engine_compile_event():
    from repro.lab import run_durable_campaign
    from repro.lab.events import EventBus

    module, entry, args = build_random_module(5)
    module = elzar_transform(mem2reg(module))
    bus = EventBus()
    seen = []
    bus.subscribe(seen.append)
    cfg = CampaignConfig(injections=8, seed=3, engine="compiled")
    run_durable_campaign(module, entry, args, "fuzz", "elzar", cfg,
                         store=False, events=bus)
    compiles = [e for e in seen if e.kind == "engine-compile"]
    assert compiles, [e.kind for e in seen]
    payload = compiles[0].data
    for key in ("digest", "variant", "functions", "blocks", "segments",
                "compile_ms", "code_hits", "code_misses"):
        assert key in payload, key
    assert payload["segments"] > 0
