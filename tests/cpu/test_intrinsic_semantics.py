"""Direct tests of the hardening intrinsics' runtime semantics:
``elzar.check`` (recover + count), ``elzar.branch_cond`` (ptest
classification), ``tmr.vote``, ``swift.check``, and the runtime
services."""

import math

import pytest

from repro.cpu import DetectedError, Machine, MachineConfig
from repro.cpu import intrinsics as intr
from repro.ir import IRBuilder, Module
from repro.ir import types as T
from repro.ir.values import Constant

from ..conftest import make_function

FAST = MachineConfig(collect_timing=False, cache_enabled=False)


def call_intrinsic(declare, vec_ty, lanes, ret_lane=0):
    """Build main() { v = <lanes>; r = intrinsic(v); ret r[ret_lane] }."""
    module = Module("m")
    fn, b = make_function(module, "main", vec_ty.elem, [])
    callee = declare(module)
    v = Constant(vec_ty, lanes)
    out = b.call(callee, [v])
    b.ret(b.extractelement(out, b.i64(ret_lane)))
    return module


class TestElzarCheck:
    def test_clean_lanes_pass_through_uncounted(self):
        v4 = T.vector(T.I64, 4)
        module = call_intrinsic(lambda m: intr.elzar_check(m, v4), v4,
                                (9, 9, 9, 9))
        machine = Machine(module, FAST)
        assert machine.run("main", ()).value == 9
        assert machine.counters.corrections == 0

    @pytest.mark.parametrize("lane", [0, 1, 2, 3])
    def test_single_corrupt_lane_recovered(self, lane):
        v4 = T.vector(T.I64, 4)
        lanes = [7, 7, 7, 7]
        lanes[lane] = 1234
        module = call_intrinsic(lambda m: intr.elzar_check(m, v4), v4,
                                tuple(lanes), ret_lane=lane)
        machine = Machine(module, FAST)
        assert machine.run("main", ()).value == 7  # corrected in place
        assert machine.counters.corrections == 1

    def test_two_two_split_detected(self):
        v4 = T.vector(T.I64, 4)
        module = call_intrinsic(lambda m: intr.elzar_check(m, v4), v4,
                                (1, 1, 2, 2))
        machine = Machine(module, FAST)
        with pytest.raises(DetectedError):
            machine.run("main", ())
        assert machine.counters.recoveries_failed == 1

    def test_float_lanes_compared_bitwise(self):
        """NaN lanes must compare equal to each other (bit pattern),
        not trigger spurious corrections."""
        v4 = T.vector(T.F64, 4)
        nan = math.nan
        module = call_intrinsic(lambda m: intr.elzar_check(m, v4), v4,
                                (nan, nan, nan, nan))
        machine = Machine(module, FAST)
        result = machine.run("main", ())
        assert math.isnan(result.value)
        assert machine.counters.corrections == 0

    def test_float_corruption_recovered(self):
        v4 = T.vector(T.F64, 4)
        module = call_intrinsic(lambda m: intr.elzar_check(m, v4), v4,
                                (1.5, 1.5, -2.25, 1.5), ret_lane=2)
        machine = Machine(module, FAST)
        assert machine.run("main", ()).value == 1.5
        assert machine.counters.corrections == 1


class TestBranchCond:
    def build(self, lanes, checked=True):
        module = Module("m")
        fn, b = make_function(module, "main", T.I1, [])
        callee = intr.elzar_branch_cond(module, 4, checked=checked)
        v = Constant(T.vector(T.I1, 4), lanes)
        b.ret(b.call(callee, [v]))
        return module

    def test_all_true(self):
        machine = Machine(self.build((1, 1, 1, 1)), FAST)
        assert machine.run("main", ()).value == 1

    def test_all_false(self):
        machine = Machine(self.build((0, 0, 0, 0)), FAST)
        assert machine.run("main", ()).value == 0

    @pytest.mark.parametrize("lanes,expected", [
        ((1, 1, 0, 1), 1),  # majority true
        ((0, 1, 0, 0), 0),  # majority false
    ])
    def test_mix_recovered_by_majority(self, lanes, expected):
        machine = Machine(self.build(lanes), FAST)
        assert machine.run("main", ()).value == expected
        assert machine.counters.corrections == 1

    def test_two_two_mix_detected(self):
        machine = Machine(self.build((1, 1, 0, 0)), FAST)
        with pytest.raises(DetectedError):
            machine.run("main", ())

    def test_nocheck_variant_uses_all_true_semantics(self):
        """Unchecked AVX branching is ptest+je: 'taken' means all lanes
        true, so a corrupted mix silently falls into the false arm."""
        machine = Machine(self.build((1, 1, 0, 1), checked=False), FAST)
        assert machine.run("main", ()).value == 0
        assert machine.counters.corrections == 0


class TestTmrVoteAndSwiftCheck:
    def vote(self, a, b_, c, ty=T.I64):
        module = Module("m")
        fn, b = make_function(module, "main", ty, [])
        callee = intr.tmr_vote(module, ty)
        out = b.call(callee, [Constant(ty, a), Constant(ty, b_), Constant(ty, c)])
        b.ret(out)
        return Machine(module, FAST)

    def test_all_agree(self):
        machine = self.vote(5, 5, 5)
        assert machine.run("main", ()).value == 5
        assert machine.counters.corrections == 0

    @pytest.mark.parametrize("copies,winner", [
        ((9, 5, 5), 5),
        ((5, 9, 5), 5),
        ((5, 5, 9), 5),
    ])
    def test_majority_wins(self, copies, winner):
        machine = self.vote(*copies)
        assert machine.run("main", ()).value == winner
        assert machine.counters.corrections == 1

    def test_all_differ_detected(self):
        machine = self.vote(1, 2, 3)
        with pytest.raises(DetectedError):
            machine.run("main", ())
        assert machine.counters.recoveries_failed == 1

    def test_swift_check_passes_and_fails(self):
        module = Module("m")
        fn, b = make_function(module, "main", T.I64, [T.I64, T.I64])
        callee = intr.swift_check(module, T.I64)
        b.ret(b.call(callee, [fn.args[0], fn.args[1]]))
        machine = Machine(module, FAST)
        assert machine.run("main", [4, 4]).value == 4
        machine = Machine(module, FAST)
        with pytest.raises(DetectedError):
            machine.run("main", [4, 5])
        assert machine.counters.detections == 1


class TestRuntimeServices:
    def test_rt_alloc_returns_fresh_memory(self, fast_config):
        module = Module("m")
        fn, b = make_function(module, "main", T.I64, [])
        alloc = intr.rt_alloc(module)
        p1 = b.call(alloc, [b.i64(64)])
        p2 = b.call(alloc, [b.i64(64)])
        b.store(b.i64(11), p1)
        b.store(b.i64(22), p2)
        b.ret(b.add(b.load(T.I64, p1), b.load(T.I64, p2)))
        machine = Machine(module, fast_config)
        assert machine.run("main", ()).value == 33

    def test_rt_abort_traps(self, fast_config):
        from repro.cpu import AbortError

        module = Module("m")
        fn, b = make_function(module, "main", T.VOID, [])
        b.call(intr.rt_abort(module), [])
        b.ret_void()
        with pytest.raises(AbortError):
            Machine(module, fast_config).run("main", ())

    def test_host_math(self, fast_config):
        module = Module("m")
        fn, b = make_function(module, "main", T.F64, [T.F64])
        sqrt = intr.host_unary(module, "sqrt")
        b.ret(b.call(sqrt, [fn.args[0]]))
        machine = Machine(module, fast_config)
        assert machine.run("main", [9.0]).value == 3.0
        assert math.isnan(machine.run("main", [-1.0]).value)
