"""Build parity: the same (workload, scale, variant) names the same IR
in every subsystem — harness sessions, cluster cells, and the warm
artifact-cache path. This is the divergence the toolchain exists to
kill (cluster cells used to skip inlining; the campaign CLI's "native"
used to mean the unvectorized base)."""

import pytest

from repro.cluster.cells import CellCache, build_cell
from repro.harness import Session
from repro.toolchain import Toolchain, VARIANTS
from repro.toolchain.build import module_digest

WORKLOADS = ("histogram", "blackscholes")


@pytest.fixture(scope="module")
def session():
    return Session("test")


class TestSessionVsCells:
    @pytest.mark.parametrize("variant", VARIANTS)
    def test_cell_digest_equals_session_digest(self, session, variant):
        """Satellite check from the issue: for every registry variant,
        a cluster cell rebuild is bit-identical to the harness build."""
        for workload in WORKLOADS:
            module, entry, args = build_cell(workload, "test", variant)
            assert module_digest(module) == module_digest(
                session.module(workload, variant))
            built = session.toolchain.build(workload, "test", variant)
            assert entry == built.entry
            assert args == built.args

    def test_cells_inline_like_the_harness(self, session):
        """The historical bug: cells ran mem2reg only, so their modules
        still contained calls the harness had inlined. Same digest ⇒
        same pipeline."""
        module, _, _ = build_cell("histogram", "test", "noavx")
        assert module_digest(module) == module_digest(
            session.built("histogram").module)

    def test_cell_cache_returns_same_cell(self):
        cache = CellCache()
        first = cache.get("histogram", "test", "elzar")
        assert cache.get("histogram", "test", "elzar") is first


class TestWarmPathParity:
    def test_rehydrated_digests_match_cold(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TOOLCHAIN_CACHE", str(tmp_path))
        cold = Toolchain()
        digests = {
            variant: cold.ir_digest("histogram", "test", variant)
            for variant in VARIANTS
        }
        warm = Toolchain()
        for variant in VARIANTS:
            built = warm.build("histogram", "test", variant)
            assert built.from_cache, variant
            assert built.ir_digest == digests[variant], variant

    def test_harden_from_rehydrated_base_matches_cold(
            self, tmp_path, monkeypatch):
        """A worker that rehydrates the noavx base but hardens the
        variant cold must reach the exact digest of an all-cold build —
        otherwise a cluster handshake between a warm and a cold checkout
        would refuse its own code."""
        monkeypatch.setenv("REPRO_TOOLCHAIN_CACHE", str(tmp_path))
        cold = Toolchain()
        expect = cold.ir_digest("histogram", "test", "elzar")
        # Fresh toolchain, hardened artifact removed: base comes from
        # the cache, the elzar transform runs cold on the parsed module.
        key = Toolchain.artifact_key(
            "histogram", "test",
            cold.build("histogram", "test", "elzar").spec)
        artifact = tmp_path / key[:2] / f"{key}.json"
        artifact.unlink()
        warm_base = Toolchain()
        built = warm_base.build("histogram", "test", "elzar")
        assert not built.from_cache
        assert warm_base._bases_from_cache  # base did rehydrate
        assert built.ir_digest == expect

    def test_run_meta_round_trips(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TOOLCHAIN_CACHE", str(tmp_path))
        cold = Toolchain().build("histogram", "test", "native")
        warm = Toolchain().build("histogram", "test", "native")
        assert warm.entry == cold.entry
        assert warm.args == cold.args
        assert warm.expected == cold.expected
        assert warm.rtol == cold.rtol


class TestCostModelPlumbing:
    def test_session_prices_proposed_avx_differently(self, session):
        haswell = session.cycles("histogram", "elzar")
        proposed = session.cycles("histogram", "elzar_proposed")
        assert proposed < haswell  # Figure 17: proposed ISA is cheaper
