"""The content-addressed artifact cache: hits, validation, and the
degrade-to-miss guarantees."""

import json
import os

from repro.toolchain import ArtifactCache, Toolchain
from repro.toolchain.build import _ir_text_digest


def _one_artifact(root):
    files = []
    for dirpath, _, names in os.walk(root):
        files += [os.path.join(dirpath, n) for n in names
                  if n.endswith(".json")]
    return files


class TestWarmRebuild:
    def test_second_build_is_all_hits_and_bit_identical(
            self, tmp_path, monkeypatch):
        """The CI warm-cache property: a second process rebuilding the
        same cells does zero build/harden work (pure cache hits) and
        reaches bit-identical digests."""
        monkeypatch.setenv("REPRO_TOOLCHAIN_CACHE", str(tmp_path))
        cells = [("histogram", "test", v) for v in ("noavx", "native",
                                                    "elzar", "swiftr")]
        cold = Toolchain()
        digests = {c: cold.build(*c).ir_digest for c in cells}
        assert cold.cache.stats.hits == 0
        assert cold.cache.stats.stores == len(cells)

        warm = Toolchain()
        for cell in cells:
            built = warm.build(*cell)
            assert built.from_cache
            assert built.ir_digest == digests[cell]
        assert warm.cache.stats.misses == 0
        assert warm.cache.stats.hits == len(cells)
        assert warm.cache.stats.stores == 0

    def test_in_process_memoization_returns_same_object(
            self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TOOLCHAIN_CACHE", str(tmp_path))
        tc = Toolchain()
        first = tc.build("histogram", "test", "elzar")
        assert tc.build("histogram", "test", "elzar") is first


class TestValidation:
    def test_corrupt_artifact_degrades_to_miss(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TOOLCHAIN_CACHE", str(tmp_path))
        cold = Toolchain()
        expect = cold.build("histogram", "test", "elzar").ir_digest
        [path] = [p for p in _one_artifact(tmp_path)
                  if json.load(open(p))["meta"]["variant"] == "elzar"]
        with open(path, "w") as fh:
            fh.write('{"meta": {}, "ir": "; module broken\\n"}')

        warm = Toolchain()
        built = warm.build("histogram", "test", "elzar")
        assert not built.from_cache  # rebuilt cold
        assert built.ir_digest == expect
        assert warm.cache.stats.invalid >= 1
        # The bad file was discarded and replaced by the rebuild.
        payload = json.load(open(path))
        assert payload["meta"]["ir_digest"] == expect

    def test_tampered_ir_fails_digest_check(self, tmp_path):
        cache = ArtifactCache(str(tmp_path))
        tc = Toolchain(cache=cache)
        built = tc.build("histogram", "test", "noavx")
        [path] = _one_artifact(tmp_path)
        payload = json.load(open(path))
        payload["ir"] = payload["ir"].replace("add", "mul", 1)
        with open(path, "w") as fh:
            json.dump(payload, fh)
        fresh = ArtifactCache(str(tmp_path))
        key = Toolchain.artifact_key("histogram", "test", built.spec)
        assert fresh.load(key, _ir_text_digest) is None
        assert fresh.stats.invalid == 1
        assert not os.path.exists(path)  # discarded


class TestDisabling:
    def test_off_switch_disables_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TOOLCHAIN_CACHE", "off")
        tc = Toolchain()
        assert not tc.cache.enabled
        built = tc.build("histogram", "test", "noavx")
        assert not built.from_cache
        assert tc.cache.stats.stores == 0

    def test_disabled_cache_never_touches_disk(self):
        cache = ArtifactCache.disabled()
        assert not cache.enabled
        assert cache.load("00" * 32, _ir_text_digest) is None
        assert cache.store("00" * 32, None, {}) is False


class TestKeying:
    def test_key_varies_by_every_component(self):
        from repro.toolchain import get_variant
        base = Toolchain.artifact_key("histogram", "test",
                                      get_variant("elzar"))
        assert Toolchain.artifact_key("kmeans", "test",
                                      get_variant("elzar")) != base
        assert Toolchain.artifact_key("histogram", "fi",
                                      get_variant("elzar")) != base
        assert Toolchain.artifact_key("histogram", "test",
                                      get_variant("elzar_detect")) != base
