"""The variant registry: the single source of truth for variant names,
options, and cost profiles across every subsystem."""

import dataclasses

import pytest

from repro.avx.costs import HASWELL, PROPOSED_AVX
from repro.cluster.cells import VERSIONS
from repro.harness import VARIANTS as HARNESS_VARIANTS
from repro.passes.elzar import ElzarOptions
from repro.toolchain import (
    REGISTRY,
    VARIANTS,
    VariantSpec,
    get_variant,
    variant_names,
)
from repro.toolchain.digest import digest_of


class TestRegistryContents:
    def test_paper_variants_present(self):
        for name in ("native", "noavx", "elzar", "elzar_noload",
                     "elzar_nostore", "elzar_nobranch", "elzar_nochecks",
                     "elzar_float", "elzar_proposed", "elzar_detect",
                     "swiftr", "swift"):
            assert name in REGISTRY

    def test_aliases_resolve_to_canonical_spec(self):
        assert get_variant("elzar-detect") is REGISTRY["elzar_detect"]
        assert get_variant("elzar-failstop") is REGISTRY["elzar_detect"]

    def test_unknown_variant_error_lists_registry(self):
        with pytest.raises(KeyError) as err:
            get_variant("sgx")
        message = str(err.value)
        for name in variant_names():
            assert name in message

    def test_cost_profiles(self):
        assert get_variant("elzar").cost_model is HASWELL
        assert get_variant("elzar_proposed").cost_model is PROPOSED_AVX

    def test_elzar_proposed_differs_only_in_cost_profile(self):
        full = get_variant("elzar")
        proposed = get_variant("elzar_proposed")
        assert full.options == proposed.options
        assert full.cost_profile != proposed.cost_profile

    def test_detect_variant_is_fail_stop(self):
        assert get_variant("elzar_detect").options.fail_stop is True

    def test_fig12_ablation_is_cumulative(self):
        """Each Figure 12 step disables a superset of the previous
        step's checks."""
        steps = ("elzar", "elzar_noload", "elzar_nostore", "elzar_nobranch")
        flags = ("check_loads", "check_stores", "check_branches")
        for i, name in enumerate(steps[1:], start=1):
            options = get_variant(name).options
            for flag in flags[:i]:
                assert getattr(options, flag) is False, (name, flag)


class TestSingleSourceOfTruth:
    """Every subsystem's variant vocabulary IS the registry."""

    def test_harness_variants_are_registry_names(self):
        assert HARNESS_VARIANTS == variant_names()
        assert VARIANTS == variant_names()

    def test_cluster_versions_are_registry_specs(self):
        assert set(VERSIONS) == set(variant_names())
        for name, spec in VERSIONS.items():
            assert spec is REGISTRY[name]


class TestSpecValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            VariantSpec("bogus", "quadruple")

    def test_unknown_cost_profile_rejected(self):
        with pytest.raises(ValueError, match="cost profile"):
            VariantSpec("bogus", "elzar", ElzarOptions(),
                        cost_profile="SKYLAKE")


class TestCacheKeys:
    def test_keys_deterministic_and_digestable(self):
        for spec in REGISTRY.values():
            assert spec.cache_key() == spec.cache_key()
            assert digest_of(spec.cache_key())  # canonicalizable

    def test_keys_distinguish_every_variant_with_distinct_behaviour(self):
        digests = {}
        for spec in REGISTRY.values():
            digests.setdefault(digest_of(spec.cache_key()), []).append(
                spec.name)
        for names in digests.values():
            assert len(names) == 1, f"colliding cache keys: {names}"

    def test_options_change_changes_key(self):
        base = get_variant("elzar")
        tweaked = dataclasses.replace(
            base, options=ElzarOptions(check_loads=False))
        assert digest_of(base.cache_key()) != digest_of(tweaked.cache_key())
