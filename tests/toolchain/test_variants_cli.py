"""``python -m repro variants`` — the registry inspection command."""

import json

import pytest

from repro.__main__ import main
from repro.toolchain import pipeline_digest, toolchain_digest, variant_names


class TestVariantsCommand:
    def test_lists_every_registry_variant(self, capsys):
        assert main(["variants"]) == 0
        out = capsys.readouterr().out
        for name in variant_names():
            assert name in out
        assert pipeline_digest()[:12] in out
        assert "elzar-detect" in out  # aliases shown

    def test_listed_by_main_list(self, capsys):
        assert main(["list"]) == 0
        assert "variants" in capsys.readouterr().out.split()

    def test_digest_matrix_and_json_report(self, tmp_path, capsys):
        report_path = str(tmp_path / "variants.json")
        assert main(["variants", "--workloads", "histogram",
                     "--scale", "test", "--json", report_path]) == 0
        capsys.readouterr()
        with open(report_path) as fh:
            report = json.load(fh)
        assert report["toolchain_digest"] == toolchain_digest()
        assert report["scale"] == "test"
        digests = report["ir_digests"]["histogram"]
        assert set(digests) == set(variant_names())
        # noavx IS the base; every hardened variant differs from it.
        assert len({digests[v] for v in ("noavx", "elzar", "swiftr",
                                         "native")}) == 4
        # Same transform, different cost model: identical IR.
        assert digests["elzar"] == digests["elzar_proposed"]

    def test_unknown_workload_rejected(self, capsys):
        assert main(["variants", "--workloads", "nope"]) == 2
        assert "unknown workload" in capsys.readouterr().out


class TestCampaignUsesRegistry:
    def test_unknown_version_error_names_registry(
            self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_LAB_STORE",
                           str(tmp_path / "store.sqlite"))
        with pytest.raises(SystemExit) as err:
            main(["campaign", "--scale", "test", "--quiet",
                  "--benchmarks", "histogram", "--versions", "sgx",
                  "--injections", "4"])
        message = str(err.value)
        assert "sgx" in message
        for name in ("elzar_detect", "swiftr", "elzar_float"):
            assert name in message

    def test_registry_alias_accepted(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_LAB_STORE",
                           str(tmp_path / "store.sqlite"))
        report_json = str(tmp_path / "out.json")
        assert main(["campaign", "--scale", "test", "--quiet",
                     "--benchmarks", "histogram",
                     "--versions", "elzar-detect",
                     "--injections", "10", "--json", report_json]) == 0
        capsys.readouterr()
        with open(report_json) as fh:
            report = json.load(fh)
        assert report["cells"][0]["version"] == "elzar-detect"
        from repro.lab.store import _OPEN_STORES
        store = _OPEN_STORES.pop(str(tmp_path / "store.sqlite"), None)
        if store is not None:
            store.close()
