"""Printer→parser→printer is a fixed point for every artifact the
toolchain can store (satellite check from the issue).

This is the correctness precondition of the artifact cache: a stored
module is its printed text, so the text must determine the module and
the reprint must be byte-identical (otherwise digests — cell keys,
cluster handshakes — would depend on whether a module was rehydrated).
The sweep covers every registry workload × every registry variant at
smoke scale, which also exercises the printer's collision-safe naming
(the micro_branches builders reuse value names; hardened parsed
modules restart the %tN counter)."""

import pytest

from repro.ir.parser import parse_module
from repro.ir.printer import format_module
from repro.ir.verifier import verify_module
from repro.toolchain import Toolchain, VARIANTS
from repro.workloads.registry import ALL


@pytest.fixture(scope="module")
def toolchain():
    return Toolchain()


@pytest.mark.parametrize("workload", sorted(ALL))
def test_print_parse_print_fixed_point(toolchain, workload):
    for variant in VARIANTS:
        module = toolchain.module(workload, "test", variant)
        text = format_module(module)
        reparsed = parse_module(text)
        verify_module(reparsed)
        assert format_module(reparsed) == text, (workload, variant)


def test_duplicate_value_names_print_unambiguously():
    """The regression behind the sweep: two in-memory values may share
    a name (by-identity references keep the IR unambiguous), but the
    printed text must rename the duplicate or it parses back wrong."""
    from repro.ir import IRBuilder, Module
    from repro.ir import types as T

    module = Module("dup")
    fn = module.add_function(
        "f", T.FunctionType(T.I64, (T.I64,)), ["x"])
    builder = IRBuilder()
    entry = fn.append_block("entry")
    builder.position_at_end(entry)
    first = builder.add(fn.args[0], fn.args[0], name="same")
    second = builder.add(first, fn.args[0], name="same")
    builder.ret(second)

    text = format_module(module)
    reparsed = parse_module(text)
    verify_module(reparsed)
    assert format_module(reparsed) == text
    # The second def was renamed; the ret references it, not the first.
    body = text.splitlines()
    assert any("same.r2 = " in line for line in body)
    assert any("ret i64 %same.r2" in line for line in body)
