"""Tests for the analysis helpers, intrinsic declarations, and the
Experiment container."""

import pytest

from repro.analysis import arithmetic_mean, fmt, geometric_mean, render_table
from repro.cpu import intrinsics as intr
from repro.harness.base import Experiment
from repro.ir import Module
from repro.ir import types as T


class TestReport:
    def test_fmt(self):
        assert fmt(None) == "-"
        assert fmt(1.23456, 2) == "1.23"
        assert fmt(7) == "7"
        assert fmt("x") == "x"

    def test_render_table_alignment(self):
        text = render_table("T", ("a", "bb"), [(1, 2.5), (10, 3.25)])
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[2] and "bb" in lines[2]
        data_lines = [l for l in lines if "2.50" in l or "3.25" in l]
        assert len(data_lines) == 2
        widths = {len(l) for l in lines[1:]}
        assert len(widths) <= 2  # rules and rows align

    def test_means(self):
        assert arithmetic_mean([1.0, 3.0]) == 2.0
        assert geometric_mean([1.0, 4.0]) == 2.0
        assert arithmetic_mean([]) == 0.0
        assert geometric_mean([]) == 0.0


class TestExperiment:
    def make(self):
        return Experiment(
            id="figX", title="demo", headers=("name", "v"),
            rows=[("a", 1.0), ("b", 2.0)],
        )

    def test_render_contains_id(self):
        assert "[figX]" in self.make().render()

    def test_row_by_label(self):
        exp = self.make()
        assert exp.row_by_label("b")[1] == 2.0
        with pytest.raises(KeyError):
            exp.row_by_label("zzz")

    def test_column(self):
        assert self.make().column(1) == [1.0, 2.0]


class TestIntrinsics:
    def test_type_tags(self):
        assert intr.type_tag(T.I64) == "i64"
        assert intr.type_tag(T.F32) == "f32"
        assert intr.type_tag(T.PTR) == "p64"
        assert intr.type_tag(T.vector(T.I1, 4)) == "v4i1"
        assert intr.type_tag(T.vector(T.F64, 4)) == "v4f64"
        with pytest.raises(TypeError):
            intr.type_tag(T.VOID)

    def test_monomorphised_names(self):
        module = Module("m")
        check = intr.elzar_check(module, T.vector(T.I64, 4))
        assert check.name == "elzar.check.v4i64"
        assert check.is_intrinsic
        vote = intr.tmr_vote(module, T.F64)
        assert vote.name == "tmr.vote.f64"
        assert len(vote.ftype.params) == 3

    def test_declarations_cached(self):
        module = Module("m")
        a = intr.elzar_check(module, T.vector(T.I64, 4))
        b = intr.elzar_check(module, T.vector(T.I64, 4))
        assert a is b

    def test_branch_cond_variants(self):
        module = Module("m")
        checked = intr.elzar_branch_cond(module, 4, checked=True)
        nocheck = intr.elzar_branch_cond(module, 4, checked=False)
        assert checked.name != nocheck.name
        assert checked.ftype.ret == T.I1

    def test_conflicting_redeclaration_rejected(self):
        module = Module("m")
        module.declare_function("rt.alloc", T.FunctionType(T.PTR, (T.I64,)))
        with pytest.raises(TypeError):
            module.declare_function("rt.alloc", T.FunctionType(T.VOID, ()))


class TestExperimentExport:
    def make(self):
        return Experiment(
            id="figX", title="demo", headers=("name", "v"),
            rows=[("a", 1.0), ("b", None)],
        )

    def test_to_dict(self):
        d = self.make().to_dict()
        assert d["id"] == "figX"
        assert d["rows"][0] == {"name": "a", "v": 1.0}

    def test_to_csv(self):
        text = self.make().to_csv()
        lines = text.strip().splitlines()
        assert lines[0] == "name,v"
        assert lines[1] == "a,1.0"
        assert lines[2] == "b,"  # None -> empty cell

    def test_save(self, tmp_path):
        path = tmp_path / "fig.csv"
        self.make().save(path)
        assert path.read_text().startswith("name,v")

    def test_dict_is_json_serializable(self):
        import json

        json.dumps(self.make().to_dict())
