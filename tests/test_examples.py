"""Smoke tests: the example scripts run end-to-end.

The heavyweight examples (perf-scale pricing, the full paper driver)
are exercised with reduced parameters or skipped; these tests assert
the examples' code paths work, not their runtime.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str, timeout: int = 600) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "ELZAR-hardened IR" in out
        assert "still correct" in out
        assert "majority-vote corrections performed" in out

    def test_fault_injection_campaign_small(self):
        out = run_example("fault_injection_campaign.py", "20")
        assert "histogram/native" in out
        assert "SDC" in out

    def test_inspect_hardening(self):
        out = run_example("inspect_hardening.py", "histogram")
        assert "swift-r" in out
        assert "elzar" in out

    @pytest.mark.slow
    def test_kvstore_ycsb(self):
        out = run_example("kvstore_ycsb.py")
        assert "ELZAR reaches" in out

    @pytest.mark.slow
    def test_harden_blackscholes(self):
        out = run_example("harden_blackscholes.py")
        assert "book_value" in out
