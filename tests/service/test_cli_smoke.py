"""Black-box smoke of the service CLI: a real ``python -m repro
serve`` subprocess, ``python -m repro submit`` clients from two
tenants (one duplicate spec), an event stream, and a SIGTERM drain
that must exit clean and leave a manifest. This is the test the CI
service job runs."""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

_REPO = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(_REPO, "src")
    env["PYTHONUNBUFFERED"] = "1"
    return env


def _submit(url, tenant, *extra, timeout=600):
    return subprocess.run(
        [sys.executable, "-m", "repro", "submit", "--url", url,
         "--tenant", tenant, "--workload", "histogram",
         "--version", "elzar", "--scale", "test", *extra],
        env=_env(), capture_output=True, text=True, timeout=timeout)


@pytest.fixture()
def served(tmp_path):
    store = str(tmp_path / "store.sqlite")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--store", store, "--max-running", "2"],
        env=_env(), stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True)
    url = None
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if "listening on" in line:
            url = line.split("listening on")[1].split()[0]
            break
        if proc.poll() is not None:
            break
    if url is None:
        proc.kill()
        pytest.fail("service never reported its listen address")
    try:
        yield proc, url, store
    finally:
        if proc.poll() is None:
            proc.kill()
        proc.wait(timeout=10)


class TestServeSmoke:
    def test_two_tenants_duplicate_spec_stream_and_sigterm(self, served):
        proc, url, store = served

        first = _submit(url, "alice", "--wait")
        assert first.returncode == 0, first.stdout + first.stderr
        assert "succeeded" in first.stdout

        # Tenant bob submits the identical spec: served entirely from
        # the store — zero new injections.
        duplicate = _submit(url, "bob", "--wait")
        assert duplicate.returncode == 0, duplicate.stdout
        assert "0 executed, 40 from store" in duplicate.stdout

        # Stream a third campaign's events end to end.
        streamed = _submit(url, "alice", "--seed", "5", "--stream")
        assert streamed.returncode == 0, streamed.stdout
        kinds = [json.loads(line)["kind"]
                 for line in streamed.stdout.splitlines()
                 if line.startswith("{")]
        assert "campaign-started" in kinds
        assert kinds[-1] == "campaign-settled"

        # Graceful drain: SIGTERM -> finish -> manifest -> exit 0.
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=60) == 0
        assert "draining" in proc.stdout.read()
        with open(f"{store}.manifest.json") as fh:
            manifest = json.load(fh)
        assert manifest["reason"] == "drain"
        assert len(manifest["campaigns"]) == 3
        assert all(c["status"] == "succeeded"
                   for c in manifest["campaigns"])

    def test_submit_against_dead_service_fails_cleanly(self):
        result = _submit("127.0.0.1:1", "alice", timeout=60)
        assert result.returncode == 1
        assert "cannot reach" in result.stderr
