"""Acceptance E2E: the service over the cluster fabric. Three
concurrent campaigns from two tenants, multiplexed fair-share over one
worker pool, must land counts bit-identical to `python -m repro
campaign` forked mode — and an identical resubmission must execute
nothing."""

import json

import pytest

from repro.__main__ import main
from repro.service import ReproService, ServiceClient

_CELLS = [
    ("alice", {"workload": "histogram", "version": "native",
               "scale": "test"}),
    ("alice", {"workload": "histogram", "version": "elzar",
               "scale": "test"}),
    ("bob", {"workload": "blackscholes", "version": "native",
             "scale": "test"}),
]


@pytest.fixture(scope="module")
def forked_reference(tmp_path_factory):
    """Every cell's counts from the forked CLI, in its own store."""
    tmp = tmp_path_factory.mktemp("ref")
    report = str(tmp / "ref.json")
    assert main(["campaign", "--scale", "test", "--quiet",
                 "--benchmarks", "histogram,blackscholes",
                 "--versions", "native,elzar",
                 "--workers", "2", "--store", str(tmp / "ref.sqlite"),
                 "--json", report]) == 0
    with open(report) as fh:
        cells = json.load(fh)["cells"]
    return {(c["workload"], c["version"]): c["counts"] for c in cells}


@pytest.fixture(scope="module")
def cluster_service(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("svc")
    service = ReproService(str(tmp / "store.sqlite"), port=0,
                           cluster_workers=2, max_running=3,
                           lease_timeout=15.0)
    host, port = service.start()
    try:
        yield service, host, port
    finally:
        service.stop()


class TestClusterService:
    def test_three_concurrent_campaigns_bit_identical(
            self, cluster_service, forked_reference, capsys):
        service, host, port = cluster_service
        submitted = []
        for tenant, spec in _CELLS:
            client = ServiceClient(host, port, tenant=tenant)
            submitted.append((client, spec,
                              client.submit(spec)["id"]))
        for client, spec, campaign_id in submitted:
            record = client.wait(campaign_id, timeout=600.0)
            assert record["status"] == "succeeded", record.get("error")
            expected = forked_reference[(spec["workload"],
                                         spec["version"])]
            assert record["result"]["counts"] == expected
            assert record["result"]["injections_used"] == 40
        capsys.readouterr()

    def test_resubmitted_spec_executes_nothing(self, cluster_service,
                                               forked_reference):
        service, host, port = cluster_service
        tenant, spec = _CELLS[1]
        client = ServiceClient(host, port, tenant=tenant)
        record = client.wait(client.submit(spec)["id"], timeout=600.0)
        assert record["status"] == "succeeded"
        assert record["result"]["counts"] == \
            forked_reference[(spec["workload"], spec["version"])]
        assert record["result"]["injections_executed"] == 0
        assert record["result"]["injections_from_store"] == 40

    def test_cluster_events_reach_campaign_feed(self, cluster_service):
        # Coordinator-side telemetry (lease grants, shard commits) is
        # demultiplexed into the submitting campaign's event stream.
        service, host, port = cluster_service
        client = ServiceClient(host, port, tenant="carol")
        spec = {"workload": "histogram", "version": "native",
                "scale": "test", "seed": 77}
        campaign_id = client.submit(spec)["id"]
        events = list(client.stream_events(campaign_id))
        kinds = {e["kind"] for e in events}
        assert "campaign-started" in kinds
        assert "lease-granted" in kinds
        assert "shard-completed" in kinds
        assert "campaign-settled" in kinds
        assert all(e.get("campaign") == campaign_id for e in events)

    def test_status_reports_cluster_pool(self, cluster_service):
        service, host, port = cluster_service
        status = ServiceClient(host, port).status()
        assert status["cluster"]["workers"] == 2
