"""Spec validation + the digest contract: execution knobs must not key
the content address; outcome-determining fields must."""

import pytest

from repro.service.spec import (
    MAX_INJECTIONS,
    SpecError,
    parse_request,
)

_BASE = {"workload": "histogram", "version": "elzar"}


def _parse(**extra):
    return parse_request({**_BASE, **extra})


class TestValidation:
    def test_minimal_spec_gets_scale_defaults(self):
        request = _parse()
        assert request.scale == "test"
        assert request.injections == 40       # test-scale default
        assert request.shard_size == 10
        assert request.seed == 2016
        assert request.build_scale == "test"

    def test_perf_scale_defaults(self):
        request = _parse(scale="perf")
        assert request.injections == 150
        assert request.shard_size == 25
        assert request.build_scale == "fi"

    def test_unknown_workload_rejected(self):
        with pytest.raises(SpecError) as exc:
            parse_request({"workload": "nope", "version": "elzar"})
        assert exc.value.field == "workload"
        assert exc.value.as_dict()["code"] == "invalid-spec"

    def test_unknown_variant_rejected(self):
        with pytest.raises(SpecError) as exc:
            parse_request({"workload": "histogram", "version": "nope"})
        assert exc.value.field == "version"

    def test_unknown_fault_model_rejected(self):
        with pytest.raises(SpecError) as exc:
            _parse(fault_model="cosmic-ray")
        assert exc.value.field == "fault_model"

    def test_unknown_field_rejected(self):
        with pytest.raises(SpecError) as exc:
            _parse(turbo=True)
        assert exc.value.field == "turbo"
        assert "unknown field" in exc.value.message

    def test_non_object_body_rejected(self):
        with pytest.raises(SpecError) as exc:
            parse_request([1, 2, 3])
        assert exc.value.field == "body"

    def test_injection_bounds(self):
        with pytest.raises(SpecError):
            _parse(injections=0)
        with pytest.raises(SpecError):
            _parse(injections=MAX_INJECTIONS + 1)
        with pytest.raises(SpecError):
            _parse(injections="many")
        with pytest.raises(SpecError):
            _parse(injections=True)  # bools are not budgets

    def test_ci_target_bounds(self):
        assert _parse(ci_target=0.02).ci_target == 0.02
        assert _parse(ci_target=None).ci_target is None
        with pytest.raises(SpecError):
            _parse(ci_target=0.0)
        with pytest.raises(SpecError):
            _parse(ci_target=1.5)
        with pytest.raises(SpecError):
            _parse(ci_target="tight")

    def test_bad_engine_rejected(self):
        with pytest.raises(SpecError) as exc:
            _parse(engine="quantum")
        assert exc.value.field == "engine"


class TestDigest:
    def test_execution_knobs_do_not_change_digest(self):
        # Counts are bit-identical across engine/batch/workers/priority
        # by the determinism contract, so the digest — which drives
        # coalescing and cache hits — must ignore them.
        base = _parse().digest()
        assert _parse(engine="reference").digest() == base
        assert _parse(batch=8).digest() == base
        assert _parse(workers=4).digest() == base
        assert _parse(priority=9).digest() == base

    def test_outcome_fields_change_digest(self):
        base = _parse().digest()
        assert _parse(seed=7).digest() != base
        assert _parse(injections=20).digest() != base
        assert _parse(shard_size=5).digest() != base
        assert _parse(fault_model="multi-bitflip").digest() != base
        assert _parse(ci_target=0.05).digest() != base
        assert parse_request({"workload": "blackscholes",
                              "version": "elzar"}).digest() != base

    def test_digest_is_stable_across_parses(self):
        assert _parse(seed=3).digest() == _parse(seed=3).digest()
