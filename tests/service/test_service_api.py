"""HTTP API end-to-end over the local forked fabric: submission
lifecycle, store-backed resubmission, in-flight coalescing, overlapping
cells, quotas, priority scheduling, event streaming, and drain."""

import json

import pytest

from repro.__main__ import main
from repro.service import (
    ReproService,
    ServiceClient,
    ServiceError,
    TenantQuotas,
)
from repro.service.state import load_manifest

_SPEC = {"workload": "histogram", "version": "elzar", "scale": "test"}


def _start(tmp_path, **kwargs):
    service = ReproService(str(tmp_path / "store.sqlite"), port=0, **kwargs)
    host, port = service.start()
    return service, host, port


@pytest.fixture()
def service(tmp_path):
    service, host, port = _start(tmp_path, max_running=2)
    try:
        yield service, host, port
    finally:
        service.stop()


def _client(host, port, tenant="alice"):
    return ServiceClient(host, port, tenant=tenant)


def _forked_reference(tmp_path, versions="elzar", injections=None):
    """Counts from `python -m repro campaign` forked mode, own store."""
    report = str(tmp_path / "ref.json")
    argv = ["campaign", "--scale", "test", "--quiet",
            "--benchmarks", "histogram", "--versions", versions,
            "--workers", "2", "--store", str(tmp_path / "ref.sqlite"),
            "--json", report]
    if injections is not None:
        argv += ["--injections", str(injections)]
    assert main(argv) == 0
    with open(report) as fh:
        return json.load(fh)


class TestLifecycle:
    def test_submit_runs_bit_identical_to_forked_cli(self, service,
                                                     tmp_path, capsys):
        reference = _forked_reference(tmp_path)
        _, host, port = service
        client = _client(host, port)
        submitted = client.submit(_SPEC)
        assert submitted["id"].startswith("c")
        record = client.wait(submitted["id"])
        capsys.readouterr()
        assert record["status"] == "succeeded"
        assert record["result"]["counts"] == \
            reference["cells"][0]["counts"]
        assert record["result"]["injections_used"] == 40
        assert record["tenant"] == "alice"

    def test_resubmit_after_completion_is_pure_store_hit(self, service):
        _, host, port = service
        client = _client(host, port)
        first = client.wait(client.submit(_SPEC)["id"])
        second = client.wait(client.submit(_SPEC)["id"])
        assert second["result"]["counts"] == first["result"]["counts"]
        assert second["result"]["injections_executed"] == 0
        assert second["result"]["injections_from_store"] == 40

    def test_results_endpoint_requires_terminal_state(self, service):
        _, host, port = service
        client = _client(host, port)
        campaign_id = client.submit({**_SPEC, "injections": 200})["id"]
        # Racing the campaign: either it is still running (409) or it
        # already finished (200) — both are legal; a 409 must carry
        # the structured code.
        try:
            client.results(campaign_id)
        except ServiceError as exc:
            assert exc.status == 409
            assert exc.payload["code"] == "not-finished"
        client.wait(campaign_id)
        results = client.results(campaign_id)
        assert results["result"]["injections_used"] == 200

    def test_unknown_campaign_404(self, service):
        _, host, port = service
        with pytest.raises(ServiceError) as exc:
            _client(host, port).campaign("c9999-deadbeef")
        assert exc.value.status == 404

    def test_invalid_spec_400(self, service):
        _, host, port = service
        with pytest.raises(ServiceError) as exc:
            _client(host, port).submit({"workload": "nope",
                                        "version": "elzar"})
        assert exc.value.status == 400
        assert exc.value.payload["code"] == "invalid-spec"
        assert exc.value.payload["field"] == "workload"

    def test_status_endpoint(self, service):
        _, host, port = service
        client = _client(host, port)
        client.wait(client.submit(_SPEC)["id"])
        status = client.status()
        assert status["service"] == "repro"
        assert status["campaigns"]["succeeded"] >= 1
        assert status["draining"] is False


class TestCoalescing:
    def test_identical_inflight_specs_coalesce(self, service):
        _, host, port = service
        client = _client(host, port)
        other = _client(host, port, tenant="bob")
        spec = {**_SPEC, "injections": 120}
        leader_id = client.submit(spec)["id"]
        follower = other.submit(spec)
        assert follower["coalesced_with"] == leader_id
        leader_rec = client.wait(leader_id)
        follower_rec = other.wait(follower["id"])
        assert follower_rec["status"] == leader_rec["status"] == "succeeded"
        assert follower_rec["result"] == leader_rec["result"]
        assert follower_rec["coalesced_with"] == leader_id
        # The follower adopted — the work ran exactly once.
        assert leader_rec["result"]["injections_executed"] == 120

    def test_overlapping_caps_share_shards(self, service, tmp_path,
                                           capsys):
        # Same cell, different budgets: shards are cap-independent
        # slices of one pre-drawn plan list, so the 20-injection
        # campaign is a strict prefix of the 40-injection one. Run
        # them concurrently; each must match its serial reference
        # (no double-counting), and both key the same store spec.
        ref40 = _forked_reference(tmp_path, injections=40)
        ref20 = _forked_reference(tmp_path, injections=20)
        capsys.readouterr()
        _, host, port = service
        client = _client(host, port)
        big = client.submit({**_SPEC, "injections": 40})["id"]
        small = client.submit({**_SPEC, "injections": 20})["id"]
        big_rec = client.wait(big)
        small_rec = client.wait(small)
        assert big_rec["result"]["counts"] == ref40["cells"][0]["counts"]
        assert small_rec["result"]["counts"] == ref20["cells"][0]["counts"]
        assert big_rec["result"]["spec_key"] == \
            small_rec["result"]["spec_key"]
        assert big_rec["result"]["injections_used"] == 40
        assert small_rec["result"]["injections_used"] == 20


class TestQuotas:
    def test_over_budget_submission_rejected_429(self, tmp_path):
        service, host, port = _start(
            tmp_path, quotas=TenantQuotas(max_injections=50))
        try:
            with pytest.raises(ServiceError) as exc:
                _client(host, port).submit({**_SPEC, "injections": 51})
            assert exc.value.status == 429
            assert exc.value.payload["code"] == "quota-exceeded"
            assert exc.value.payload["quota"] == "max_injections"
        finally:
            service.stop()

    def test_concurrency_quota_rejects_then_frees(self, tmp_path):
        service, host, port = _start(
            tmp_path, quotas=TenantQuotas(max_concurrent=1), max_running=2)
        try:
            client = _client(host, port, tenant="bob")
            first = client.submit({**_SPEC, "injections": 120})["id"]
            with pytest.raises(ServiceError) as exc:
                client.submit({**_SPEC, "seed": 7})
            assert exc.value.status == 429
            assert exc.value.payload["quota"] == "max_concurrent"
            assert exc.value.payload["tenant"] == "bob"
            # Another tenant is unaffected.
            other_id = _client(host, port, tenant="carol").submit(
                {**_SPEC, "seed": 7})["id"]
            client.wait(first)
            # Settling released bob's slot.
            second = client.submit({**_SPEC, "seed": 9})["id"]
            client.wait(second)
            _client(host, port, tenant="carol").wait(other_id)
        finally:
            service.stop()


class TestPriority:
    def test_higher_priority_queued_campaign_runs_first(self, tmp_path):
        service, host, port = _start(tmp_path, max_running=1)
        try:
            client = _client(host, port)
            blocker = client.submit({**_SPEC, "injections": 120})["id"]
            low = client.submit({**_SPEC, "seed": 1, "priority": 0})["id"]
            high = client.submit({**_SPEC, "seed": 2, "priority": 5})["id"]
            for campaign_id in (blocker, low, high):
                client.wait(campaign_id)
            low_rec = client.campaign(low)
            high_rec = client.campaign(high)
            assert high_rec["started"] <= low_rec["started"]
        finally:
            service.stop()


class TestEvents:
    def test_stream_replays_and_follows_to_settlement(self, service):
        _, host, port = service
        client = _client(host, port)
        campaign_id = client.submit(_SPEC)["id"]
        events = list(client.stream_events(campaign_id))
        kinds = [e["kind"] for e in events]
        assert kinds[0] == "campaign-started"
        assert "campaign-finished" in kinds
        assert kinds[-1] == "campaign-settled"
        assert all(e["campaign"] == campaign_id for e in events)
        done = [e for e in events
                if e["kind"] in ("shard-completed", "shard-store-hit")]
        assert sum(int(e["n"]) for e in done) == 40

    def test_stream_after_completion_serves_history(self, service):
        _, host, port = service
        client = _client(host, port)
        campaign_id = client.submit(_SPEC)["id"]
        client.wait(campaign_id)
        events = list(client.stream_events(campaign_id))
        assert [e["kind"] for e in events][0] == "campaign-started"
        assert [e["kind"] for e in events][-1] == "campaign-settled"


class TestDrain:
    def test_drain_interrupts_and_writes_manifest(self, tmp_path):
        service, host, port = _start(tmp_path, max_running=1)
        client = _client(host, port)
        running = client.submit({**_SPEC, "injections": 400})["id"]
        queued = client.submit({**_SPEC, "seed": 3})["id"]
        # Let the running campaign land at least one shard first.
        import time
        for _ in range(600):
            record = client.campaign(running)
            if record.get("progress", {}).get("shards_done", 0) >= 1:
                break
            time.sleep(0.05)
        service.initiate_drain()
        assert service.wait_drained(timeout=60.0)
        service.stop()

        manifest = load_manifest(str(tmp_path / "store.sqlite.manifest.json"))
        assert manifest is not None and manifest["reason"] == "drain"
        by_id = {c["id"]: c for c in manifest["campaigns"]}
        assert by_id[queued]["status"] == "interrupted"
        assert by_id[running]["status"] in ("interrupted", "succeeded")

        # Completed shards survived: a fresh service over the same
        # store resumes instead of recomputing.
        service2, host2, port2 = _start(tmp_path, max_running=1)
        try:
            client2 = _client(host2, port2)
            resumed = client2.wait(
                client2.submit({**_SPEC, "injections": 400})["id"],
                timeout=600.0)
            assert resumed["status"] == "succeeded"
            assert resumed["result"]["injections_from_store"] >= 10
        finally:
            service2.stop()

    def test_submissions_rejected_while_draining(self, tmp_path):
        service, host, port = _start(tmp_path, max_running=1)
        client = _client(host, port)
        client.submit({**_SPEC, "injections": 400})
        service._drain_flag.set()  # drain begins on the loop thread...
        service.initiate_drain()
        try:
            client.submit({**_SPEC, "seed": 11})
        except ServiceError as exc:
            assert exc.status == 503
            assert exc.payload["code"] == "service-draining"
        except OSError:
            pass  # ...and may finish first, closing the listener
        finally:
            service.stop()
