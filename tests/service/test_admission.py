"""Admission-controller unit tests: the three quota axes, charge and
release accounting, and per-tenant overrides."""

import pytest

from repro.service.admission import (
    AdmissionController,
    QuotaExceeded,
    TenantQuotas,
)


def _controller(**kwargs):
    return AdmissionController(TenantQuotas(**kwargs))


class TestQuotas:
    def test_per_campaign_budget_cap(self):
        controller = _controller(max_injections=100)
        with pytest.raises(QuotaExceeded) as exc:
            controller.admit("alice", 101)
        assert exc.value.quota == "max_injections"
        assert exc.value.as_dict()["code"] == "quota-exceeded"
        # Nothing was charged by the rejection.
        controller.admit("alice", 100)

    def test_concurrency_cap(self):
        controller = _controller(max_concurrent=2)
        controller.admit("alice", 10)
        controller.admit("alice", 10)
        with pytest.raises(QuotaExceeded) as exc:
            controller.admit("alice", 10)
        assert exc.value.quota == "max_concurrent"
        assert exc.value.current == 2

    def test_active_injection_sum_cap(self):
        # Many small campaigns must not add up to one giant one.
        controller = _controller(max_concurrent=100,
                                 max_injections=1000,
                                 max_active_injections=1500)
        controller.admit("alice", 1000)
        with pytest.raises(QuotaExceeded) as exc:
            controller.admit("alice", 600)
        assert exc.value.quota == "max_active_injections"

    def test_release_frees_quota(self):
        controller = _controller(max_concurrent=1)
        controller.admit("alice", 10)
        with pytest.raises(QuotaExceeded):
            controller.admit("alice", 10)
        controller.release("alice", 10)
        controller.admit("alice", 10)

    def test_tenants_are_isolated(self):
        controller = _controller(max_concurrent=1)
        controller.admit("alice", 10)
        controller.admit("bob", 10)  # alice's usage is not bob's

    def test_overrides_replace_defaults(self):
        controller = AdmissionController(
            TenantQuotas(max_concurrent=1),
            overrides={"vip": TenantQuotas(max_concurrent=3)},
        )
        controller.admit("vip", 10)
        controller.admit("vip", 10)
        controller.admit("alice", 10)
        with pytest.raises(QuotaExceeded):
            controller.admit("alice", 10)

    def test_snapshot_reports_active_usage_only(self):
        controller = _controller()
        controller.admit("alice", 10)
        controller.admit("bob", 20)
        controller.release("bob", 20)
        assert controller.snapshot() == {
            "alice": {"campaigns": 1, "injections": 10},
        }
