"""Service crash-recovery: manifest durability and cold-start resume.

The restart manifest is the service's only memory across incarnations;
these tests pin its torn-write behaviour (checksummed, atomic, degrades
to "no manifest") and the recovery loop built on it: a service killed
mid-campaign restarts, resubmits the interrupted spec by itself, and
completes it from the store's banked shard prefix with zero re-executed
shards."""

import json
import time

import pytest

from repro.chaos.hooks import ChaosRule, ChaosSpec, chaos_active
from repro.service import ReproService, ServiceClient
from repro.service.state import (
    Campaign,
    CampaignFeed,
    load_manifest,
    write_manifest,
)

_SPEC = {"workload": "histogram", "version": "native", "scale": "test"}


def _start(tmp_path, **kwargs):
    service = ReproService(str(tmp_path / "store.sqlite"), port=0, **kwargs)
    host, port = service.start()
    return service, host, port


class _Loop:
    def call_soon_threadsafe(self, fn, *args):
        fn(*args)


def _campaign(request, cid="c0001-aaaaaaaa", status="interrupted"):
    campaign = Campaign(id=cid, tenant="alice", request=request,
                        digest="aaaaaaaa", feed=CampaignFeed(_Loop()))
    campaign.status = status
    return campaign


class TestManifestDurability:
    def _one(self, tmp_path):
        from repro.service.spec import parse_request

        path = str(tmp_path / "manifest.json")
        write_manifest(path, [_campaign(parse_request(_SPEC))],
                       reason="drain")
        return path

    def test_round_trip(self, tmp_path):
        path = self._one(tmp_path)
        payload = load_manifest(path)
        assert payload is not None and payload["reason"] == "drain"
        assert payload["campaigns"][0]["status"] == "interrupted"

    def test_missing_manifest_is_none(self, tmp_path):
        assert load_manifest(str(tmp_path / "nope.json")) is None

    def test_truncated_manifest_degrades_to_none(self, tmp_path):
        path = self._one(tmp_path)
        body = open(path).read()
        with open(path, "w") as fh:
            fh.write(body[:len(body) // 2])  # torn write
        assert load_manifest(path) is None

    def test_tampered_manifest_fails_checksum(self, tmp_path):
        path = self._one(tmp_path)
        payload = json.load(open(path))
        payload["campaigns"][0]["tenant"] = "mallory"
        with open(path, "w") as fh:
            json.dump(payload, fh)
        assert load_manifest(path) is None

    def test_wrong_version_is_none(self, tmp_path):
        path = self._one(tmp_path)
        payload = json.load(open(path))
        payload["version"] = 999
        with open(path, "w") as fh:
            json.dump(payload, fh)
        assert load_manifest(path) is None


class TestColdStartRecovery:
    def test_restart_resumes_interrupted_campaign_from_store(self, tmp_path):
        # Incarnation 1: the service.event chaos seam drains (SIGTERM
        # semantics) at the second completed shard, so exactly 2 of the
        # campaign's 4 shards are banked when the manifest is written.
        spec = ChaosSpec(scenario="svc-restart", seed=0, rules=[
            ChaosRule(point="service.event", action="drain",
                      match={"kind": "shard-completed"}, after=1),
        ])
        service, host, port = _start(tmp_path, max_running=1)
        client = ServiceClient(host, port, tenant="alice")
        with chaos_active(spec):
            submitted = client.submit(_SPEC)["id"]
            assert service.wait_drained(timeout=120.0)
            service.stop()

        manifest = load_manifest(str(tmp_path / "store.sqlite.manifest.json"))
        assert manifest is not None
        row = next(c for c in manifest["campaigns"] if c["id"] == submitted)
        assert row["status"] == "interrupted"
        assert row["progress"]["shards_done"] == 2
        assert row["progress"]["spec_key"]  # recovery's store pointer

        # Incarnation 2: same store, nobody resubmits — the service
        # recovers the manifest row on its own and completes it from
        # the banked prefix, re-executing zero banked shards.
        service2, host2, port2 = _start(tmp_path, max_running=1)
        try:
            client2 = ServiceClient(host2, port2, tenant="alice")
            recovered = None
            deadline = time.time() + 120.0
            while time.time() < deadline:
                rows = client2.campaigns()["campaigns"]
                recovered = next(
                    (r for r in rows if r.get("resumed_from") == submitted),
                    None)
                if recovered and recovered["status"] == "succeeded":
                    break
                time.sleep(0.1)
            assert recovered is not None, "manifest row was never resubmitted"
            assert recovered["status"] == "succeeded"
            result = recovered["result"]
            assert result["shards_from_store"] == 2
            assert result["shards_executed"] == 2
            assert result["injections_from_store"] == 20
        finally:
            service2.stop()

    def test_torn_manifest_starts_fresh_without_crashing(self, tmp_path):
        manifest_path = tmp_path / "store.sqlite.manifest.json"
        manifest_path.write_text('{"version": 1, "campaigns": [{"tr')
        service, host, port = _start(tmp_path)
        try:
            client = ServiceClient(host, port, tenant="alice")
            time.sleep(0.2)  # let the recovery task run (and no-op)
            assert client.campaigns()["campaigns"] == []
            # The service still works end to end.
            record = client.wait(client.submit(_SPEC)["id"])
            assert record["status"] == "succeeded"
        finally:
            service.stop()

    def test_no_resume_flag_restores_explicit_resubmit(self, tmp_path):
        from repro.service.spec import parse_request

        write_manifest(str(tmp_path / "store.sqlite.manifest.json"),
                       [_campaign(parse_request(_SPEC))], reason="drain")
        service, host, port = _start(tmp_path, resume_manifest=False)
        try:
            client = ServiceClient(host, port, tenant="alice")
            time.sleep(0.2)
            assert client.campaigns()["campaigns"] == []
        finally:
            service.stop()
