"""Tests for the fault-injection framework."""

import pytest

from repro.faults import (
    CampaignConfig,
    CampaignResult,
    Outcome,
    golden_run,
    inject_once,
    run_campaign,
)
from repro.cpu.interpreter import FaultPlan
from repro.ir import Module, types as T
from repro.passes import elzar_transform, mem2reg, swiftr_transform
from repro.workloads import get

from ..conftest import make_function


@pytest.fixture(scope="module")
def hist():
    wl = get("histogram")
    built = wl.build_at("test")
    return mem2reg(built.module), built


class TestOutcomes:
    def test_system_state_mapping(self):
        assert Outcome.HANG.system_state == "crashed"
        assert Outcome.OS_DETECTED.system_state == "crashed"
        assert Outcome.DETECTED.system_state == "crashed"
        assert Outcome.CORRECTED.system_state == "correct"
        assert Outcome.MASKED.system_state == "correct"
        assert Outcome.SDC.system_state == "corrupted"

    def test_rates(self):
        r = CampaignResult("w", "native")
        r.counts[Outcome.SDC] = 3
        r.counts[Outcome.MASKED] = 6
        r.counts[Outcome.HANG] = 1
        assert r.total == 10
        assert r.sdc_rate == 30.0
        assert r.correct_rate == 60.0
        assert r.crash_rate == 10.0
        assert r.as_dict()["sdc"] == 30.0

    def test_empty_result(self):
        r = CampaignResult("w", "native")
        assert r.sdc_rate == 0.0 and r.total == 0


class TestGoldenRun:
    def test_reference_output_and_counts(self, hist):
        module, built = hist
        output, eligible, executed = golden_run(module, built.entry, built.args)
        assert output == built.expected
        assert 0 < eligible <= executed

    def test_deterministic(self, hist):
        module, built = hist
        a = golden_run(module, built.entry, built.args)
        b = golden_run(module, built.entry, built.args)
        assert a == b


class TestInjectOnce:
    def test_masked_fault(self, hist):
        """Flipping a dead-upper bit of an i8-wide value is masked."""
        module, built = hist
        reference, eligible, executed = golden_run(module, built.entry, built.args)
        outcome = inject_once(
            module, built.entry, built.args,
            FaultPlan(target_index=eligible - 1, bit=62),
            reference, budget=executed * 4,
        )
        assert outcome in (Outcome.MASKED, Outcome.SDC, Outcome.OS_DETECTED)

    def test_campaign_is_deterministic(self, hist):
        module, built = hist
        cfg = CampaignConfig(injections=25, seed=99)
        a = run_campaign(module, built.entry, built.args, "h", "native", cfg)
        b = run_campaign(module, built.entry, built.args, "h", "native", cfg)
        assert a.counts == b.counts

    def test_different_seeds_differ(self, hist):
        module, built = hist
        a = run_campaign(module, built.entry, built.args, "h", "native",
                         CampaignConfig(injections=40, seed=1))
        b = run_campaign(module, built.entry, built.args, "h", "native",
                         CampaignConfig(injections=40, seed=2))
        assert a.counts != b.counts  # overwhelmingly likely


class TestHardeningEffect:
    def test_elzar_cuts_sdc_rate(self, hist):
        """The Figure 13 headline: ELZAR reduces SDC substantially."""
        module, built = hist
        cfg = CampaignConfig(injections=80, seed=5)
        native = run_campaign(module, built.entry, built.args, "h", "native", cfg)
        hardened = elzar_transform(module)
        elzar = run_campaign(hardened, built.entry, built.args, "h", "elzar", cfg)
        assert elzar.sdc_rate < native.sdc_rate / 2
        assert elzar.counts[Outcome.CORRECTED] > 0

    def test_swiftr_also_corrects(self, hist):
        module, built = hist
        cfg = CampaignConfig(injections=60, seed=6)
        hardened = swiftr_transform(module)
        result = run_campaign(hardened, built.entry, built.args, "h", "swiftr", cfg)
        native = run_campaign(module, built.entry, built.args, "h", "native", cfg)
        assert result.sdc_rate < native.sdc_rate

    def test_campaign_requires_eligible_instructions(self):
        module = Module("m")
        fn, b = make_function(module, "f", T.VOID, [])
        b.ret_void()
        with pytest.raises(ValueError):
            run_campaign(module, "f", (), "empty", "native",
                         CampaignConfig(injections=1))


class TestEligibilityKeyProtocol:
    def test_unkeyed_predicate_warns_once_per_identity(self, monkeypatch):
        import warnings

        from repro.faults import campaign as campaign_mod

        monkeypatch.setattr(campaign_mod, "_warned_unkeyed_predicates", set())
        first = lambda fn: True  # noqa: E731
        second = lambda fn: False  # noqa: E731
        with pytest.warns(RuntimeWarning, match="cache_key"):
            assert campaign_mod._eligibility_key(first) is None
        # Same predicate again: silent (already warned about).
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            assert campaign_mod._eligibility_key(first) is None
        assert not [w for w in record
                    if issubclass(w.category, RuntimeWarning)]
        # A *different* unkeyed predicate is its own problem: warn again.
        with pytest.warns(RuntimeWarning, match="cache_key"):
            assert campaign_mod._eligibility_key(second) is None

    def test_forked_worker_does_not_warn(self, monkeypatch):
        """The dedupe set is copied into forked lab workers, but even a
        fresh child must stay silent: only the parent process emits."""
        import warnings

        from repro.faults import campaign as campaign_mod

        monkeypatch.setattr(campaign_mod, "_warned_unkeyed_predicates", set())

        class _FakeChild:
            pass

        monkeypatch.setattr(campaign_mod.multiprocessing, "parent_process",
                            lambda: _FakeChild())
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            assert campaign_mod._eligibility_key(lambda fn: True) is None
        assert not [w for w in record
                    if issubclass(w.category, RuntimeWarning)]
        assert not campaign_mod._warned_unkeyed_predicates

    def test_keyed_predicate_is_silent(self):
        import warnings

        from repro.faults.campaign import _eligibility_key
        from repro.faults.trace import functions_only

        predicate = functions_only(frozenset(["main"]))
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            key = _eligibility_key(predicate)
        assert key == predicate.cache_key
        assert not [w for w in record
                    if issubclass(w.category, RuntimeWarning)]

    def test_none_predicate_keys_to_empty(self):
        from repro.faults.campaign import _eligibility_key

        assert _eligibility_key(None) == ()


class TestWorkerResolution:
    def test_zero_means_all_cpus(self):
        from repro.faults.campaign import resolve_workers

        assert resolve_workers(0) >= 1
        assert resolve_workers(3) == 3

    def test_workers_zero_matches_serial_counts(self, hist):
        module, built = hist
        serial = run_campaign(module, built.entry, built.args, "h", "native",
                              CampaignConfig(injections=20, seed=7, workers=1))
        auto = run_campaign(module, built.entry, built.args, "h", "native",
                            CampaignConfig(injections=20, seed=7, workers=0))
        assert auto.counts == serial.counts
