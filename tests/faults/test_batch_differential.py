"""Differential matrix for batched lane-parallel injection.

``repro.cpu.batch`` is a pure performance change: for every fault
model, every engine, and every batch size, ``run_plans`` must return
the *same per-plan Outcome list* — not merely the same counts — as a
scalar ``inject_once`` loop. These tests sweep that matrix on the
hardened histogram cell (the only version where every registered model
has a non-empty target stream) plus targeted stress cases: lanes that
trap early and silently corrupt late inside one batch, plans that
never fire, and dead-bit flips resolved without forking.
"""

import os

import pytest

from repro.cpu.interpreter import FaultPlan
from repro.faults import (
    CampaignConfig,
    Outcome,
    golden_profile,
    inject_once,
    model_names,
    run_campaign,
    run_plans,
)
from repro.faults.models import get_model
from repro.toolchain import default_toolchain

pytestmark = pytest.mark.skipif(not hasattr(os, "fork"),
                                reason="batched engine needs os.fork")

BATCH_SIZES = (1, 4, 16)


class _PlanConfig:
    def __init__(self, seed, injections):
        self.seed = seed
        self.injections = injections


@pytest.fixture(scope="module")
def cell():
    built = default_toolchain().build("histogram", "test", "elzar")
    module, entry, args = built.module, built.entry, built.args
    reference, profile = golden_profile(module, entry, args)
    budget = max(1000, profile.executed * 10)
    return module, entry, args, reference, profile, budget


def scalar_baseline(cell, plans, engine="decoded"):
    module, entry, args, reference, _, budget = cell
    return [inject_once(module, entry, args, plan, reference, budget,
                        engine=engine) for plan in plans]


class TestModelMatrix:
    @pytest.mark.parametrize("model_name", model_names())
    def test_every_model_bit_identical_at_every_batch_size(
            self, cell, model_name):
        module, entry, args, reference, profile, budget = cell
        plans = get_model(model_name).draw_plans(
            profile, _PlanConfig(seed=11, injections=12))
        baseline = scalar_baseline(cell, plans)
        for k in BATCH_SIZES:
            got = run_plans(module, entry, args, plans, reference, budget,
                            batch=k, fault_model=model_name)
            assert got == baseline, (
                f"{model_name} batch={k}: outcome list diverged")

    def test_reference_engine_identity(self, cell):
        # The reference interpreter has no batched path; run_plans must
        # fall back to sequential injection and still match it exactly.
        module, entry, args, reference, profile, budget = cell
        plans = get_model("register-bitflip").draw_plans(
            profile, _PlanConfig(seed=5, injections=6))
        baseline = scalar_baseline(cell, plans, engine="reference")
        got = run_plans(module, entry, args, plans, reference, budget,
                        engine="reference", batch=16)
        assert got == baseline


class TestLaneDivergence:
    def find_plan(self, cell, candidates, want):
        module, entry, args, reference, _, budget = cell
        for plan in candidates:
            outcome = inject_once(module, entry, args, plan, reference,
                                  budget)
            if outcome in want:
                return plan, outcome
        pytest.skip(f"no plan classifying as {want} found at this scale")

    def test_early_trap_and_late_sdc_in_one_batch(self, cell):
        # The stress shape: lane 0 forks first and dies in a trap while
        # later lanes are still pending in the golden parent; the last
        # lane forks near the end of the run and silently corrupts.
        module, entry, args, reference, profile, budget = cell
        trap_plan, _ = self.find_plan(
            cell,
            [FaultPlan(target_index=i, bit=40, kind="addr")
             for i in range(8)],
            {Outcome.OS_DETECTED, Outcome.DETECTED, Outcome.HANG})
        sdc_plan, _ = self.find_plan(
            cell,
            [FaultPlan(target_index=profile.eligible - 1 - i, bit=b, lane=0)
             for b in (31, 15, 7) for i in range(10)],
            {Outcome.SDC})
        filler = get_model("register-bitflip").draw_plans(
            profile, _PlanConfig(seed=3, injections=6))
        plans = [trap_plan, *filler, sdc_plan]
        baseline = scalar_baseline(cell, plans)
        for k in (4, 16):
            got = run_plans(module, entry, args, plans, reference, budget,
                            batch=k)
            assert got == baseline

    def test_never_firing_and_dead_bit_plans(self, cell):
        module, entry, args, reference, profile, budget = cell
        plans = [
            # Site beyond the stream population: never fires.
            FaultPlan(target_index=profile.eligible + 1000, bit=3, lane=0),
            # Dead bit on a scalar (bit past the type width) resolves
            # to the golden outcome without forking a lane.
            FaultPlan(target_index=1, bit=63, lane=0),
            *get_model("register-bitflip").draw_plans(
                profile, _PlanConfig(seed=9, injections=4)),
        ]
        baseline = scalar_baseline(cell, plans)
        got = run_plans(module, entry, args, plans, reference, budget,
                        batch=16)
        assert got == baseline


class TestFabricIdentity:
    def test_campaign_counts_identical_across_batch_sizes(self):
        built = default_toolchain().build("histogram", "test", "native")
        module, entry, args = built.module, built.entry, built.args
        results = {}
        for k in (1, 4, 16):
            config = CampaignConfig(injections=24, seed=2016, workers=1,
                                    batch=k)
            result = run_campaign(module, entry, args, "histogram",
                                  "native", config)
            results[k] = dict(result.counts)
        assert results[1] == results[4] == results[16]

    def test_forked_workers_with_batch(self):
        built = default_toolchain().build("histogram", "test", "native")
        module, entry, args = built.module, built.entry, built.args
        serial = run_campaign(module, entry, args, "histogram", "native",
                              CampaignConfig(injections=24, seed=2016,
                                             workers=1, batch=1))
        forked = run_campaign(module, entry, args, "histogram", "native",
                              CampaignConfig(injections=24, seed=2016,
                                             workers=2, batch=4))
        assert dict(serial.counts) == dict(forked.counts)
