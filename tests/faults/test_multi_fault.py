"""Multi-fault tolerance (paper §III-A): "four copies of data can
tolerate two independent SEUs with a high probability", and the
extended recovery of §III-C handles two corrupted lanes unless they
agree on the same wrong value (the 2-2 split, which must stop)."""

import random

import pytest

from repro.cpu import DetectedError, Machine, MachineConfig
from repro.cpu.interpreter import FaultPlan
from repro.ir import Module
from repro.ir import types as T
from repro.passes import elzar_transform

from ..conftest import make_function

FAST = MachineConfig(collect_timing=False)


def compute_kernel():
    """Pure-register arithmetic: every value is replicated, so lane
    faults exercise only the TMR machinery (no scalar windows)."""
    module = Module("m")
    fn, b = make_function(module, "main", T.I64, [T.I64])
    v = fn.args[0]
    for i in range(12):
        v = b.add(b.mul(v, b.i64(3)), b.i64(i + 1))
        v = b.xor(v, b.lshr(v, b.i64(7)))
    b.ret(v)
    return module


@pytest.fixture(scope="module")
def hardened():
    return elzar_transform(compute_kernel())


@pytest.fixture(scope="module")
def golden(hardened):
    return Machine(hardened, FAST).run("main", [12345]).value


class TestTwoFaults:
    def test_two_faults_in_different_values_always_masked(self, hardened, golden):
        """Faults in two different replicated values: each is outvoted
        independently by its own three clean lanes."""
        for i1, i2 in [(0, 5), (3, 11), (7, 20), (2, 30)]:
            machine = Machine(hardened, FAST)
            machine.arm_faults([
                FaultPlan(target_index=i1, bit=9, lane=1),
                FaultPlan(target_index=i2, bit=17, lane=3),
            ])
            result = machine.run("main", [12345])
            assert result.value == golden
            assert machine.counters.corrections >= 1

    def test_two_faults_same_value_different_lanes_recovered(
        self, hardened, golden
    ):
        """§III-C scenario 2: two lanes corrupted *differently* — the
        two agreeing clean lanes still form a majority."""
        machine = Machine(hardened, FAST)
        machine.arm_faults([
            FaultPlan(target_index=6, bit=9, lane=1),
            FaultPlan(target_index=6, bit=17, lane=3),
        ])
        result = machine.run("main", [12345])
        assert result.value == golden
        assert machine.counters.corrections >= 1

    def test_identical_double_fault_forces_stop(self, hardened, golden):
        """§III-C scenario 3: the same bit flipped in two lanes creates
        a 2-2 split with no majority — execution must stop, never emit
        a wrong result silently."""
        stopped = corrected = 0
        for index in range(0, 24):
            machine = Machine(hardened, FAST)
            machine.arm_faults([
                FaultPlan(target_index=index, bit=9, lane=0),
                FaultPlan(target_index=index, bit=9, lane=2),
            ])
            try:
                result = machine.run("main", [12345])
            except DetectedError:
                stopped += 1
                continue
            # If it did not stop, the result must still be correct
            # (e.g. the corrupted value was consumed lane-wise before
            # any check compared lanes).
            assert result.value == golden
        assert stopped > 0

    def test_random_double_faults_mostly_tolerated(self, hardened, golden):
        """The paper's probabilistic claim: most random SEU pairs are
        masked or at worst detected; silent corruption stays rare. In a
        fully replicated kernel it must be zero."""
        rng = random.Random(42)
        sdc = 0
        trials = 60
        for _ in range(trials):
            machine = Machine(hardened, FAST)
            machine.arm_faults([
                FaultPlan(rng.randrange(40), rng.randrange(64), rng.randrange(4)),
                FaultPlan(rng.randrange(40), rng.randrange(64), rng.randrange(4)),
            ])
            try:
                result = machine.run("main", [12345])
            except DetectedError:
                continue
            if result.value != golden:
                sdc += 1
        assert sdc == 0

    def test_plans_unordered_input_accepted(self, hardened, golden):
        machine = Machine(hardened, FAST)
        machine.arm_faults([
            FaultPlan(target_index=20, bit=3, lane=2),
            FaultPlan(target_index=4, bit=3, lane=1),
        ])
        assert machine.run("main", [12345]).value == golden
