"""Tests for dynamic tracing and fault-region demarcation (§IV-B)."""

import pytest

from repro.faults import (
    CampaignConfig,
    collect_trace,
    functions_only,
    golden_run,
    hardened_only,
    run_campaign,
)
from repro.passes import elzar_transform, mem2reg
from repro.workloads import get


@pytest.fixture(scope="module")
def smatch():
    built = get("string_match").build_at("test")
    mem2reg(built.module)
    return built


class TestCollectTrace:
    def test_per_function_counts(self, smatch):
        summary = collect_trace(smatch.module, smatch.entry, smatch.args)
        assert summary.total > 0
        assert "main" in summary.per_function
        assert "memset_i8" in summary.per_function  # the bzero hotspot
        assert sum(summary.per_function.values()) == summary.total

    def test_memset_dominates_smatch(self, smatch):
        """§V-B: string_match spends most of its time in bzero."""
        summary = collect_trace(smatch.module, smatch.entry, smatch.args)
        assert summary.fraction("memset_i8") > 0.4
        hottest = summary.hottest(1)[0][0]
        assert hottest == "memset_i8"

    def test_opcode_histogram(self, smatch):
        summary = collect_trace(smatch.module, smatch.entry, smatch.args)
        assert summary.opcodes["load"] > 0
        assert summary.opcodes["icmp"] > 0

    def test_matches_golden_run_count(self, smatch):
        summary = collect_trace(smatch.module, smatch.entry, smatch.args)
        _, eligible, _ = golden_run(smatch.module, smatch.entry, smatch.args)
        assert summary.total == eligible


class TestRegionRestriction:
    def test_predicate_shrinks_eligible_set(self, smatch):
        full = golden_run(smatch.module, smatch.entry, smatch.args)[1]
        restricted = golden_run(
            smatch.module, smatch.entry, smatch.args,
            functions_only(frozenset({"main"})),
        )[1]
        assert 0 < restricted < full

    def test_hardened_only_predicate(self, smatch):
        hardened = elzar_transform(smatch.module)
        predicate = hardened_only(hardened)
        assert predicate(hardened.get_function("main"))
        # Intrinsic declarations are never eligible.
        for fn in hardened.functions.values():
            if fn.is_intrinsic:
                assert not predicate(fn)

    def test_restricted_campaign_runs(self, smatch):
        """Injecting only into main (excluding the 'library' memset,
        like the paper excludes unhardened libraries)."""
        hardened = elzar_transform(smatch.module)
        cfg = CampaignConfig(
            injections=30, seed=9,
            fault_eligible=functions_only(frozenset({"main"})),
        )
        result = run_campaign(
            hardened, smatch.entry, smatch.args, "smatch", "elzar", cfg
        )
        assert result.total == 30
