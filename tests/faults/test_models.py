"""Tests for the pluggable fault-model registry and its contracts."""

import random

import pytest

from repro.cpu import errors as cpu_errors
from repro.cpu.interpreter import FaultPlan, _flip
from repro.faults import (
    CampaignConfig,
    Outcome,
    draw_plans,
    trap_outcome,
)
from repro.faults.models import (
    DEFAULT_MODEL,
    FaultModel,
    StreamProfile,
    get_model,
    model_names,
    register_model,
)
from repro.ir import types as T

PROFILE = StreamProfile(eligible=500, executed=2000, mem_accesses=120,
                        cond_branches=40, checker_sites=80)


def _tuples(plans):
    return [(p.target_index, p.bit, p.lane, p.kind, p.bits, p.offset)
            for p in plans]


class TestRegistry:
    def test_all_seven_models_registered(self):
        names = model_names()
        assert names[0] == DEFAULT_MODEL == "register-bitflip"
        assert set(names) == {
            "register-bitflip", "multi-bitflip", "address-bitflip",
            "memory-bitflip", "branch-flip", "instruction-skip",
            "checker-fault",
        }

    def test_unknown_model_error_lists_known(self):
        with pytest.raises(ValueError, match="register-bitflip"):
            get_model("cosmic-ray")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_model(get_model(DEFAULT_MODEL))

    def test_cache_keys_are_distinct_and_stable(self):
        keys = [get_model(n).cache_key for n in model_names()]
        assert len(set(keys)) == len(keys)
        assert get_model(DEFAULT_MODEL).cache_key == \
            ("fault-model", "register-bitflip")


class TestDrawContracts:
    def test_default_model_matches_legacy_draw_plans(self):
        """The default model's draw order is byte-identical to the
        historical draw_plans — stored campaigns keep replaying."""
        cfg = CampaignConfig(injections=64, seed=42)
        legacy = draw_plans(PROFILE.eligible, cfg)
        model = get_model(DEFAULT_MODEL).draw_plans(PROFILE, cfg)
        assert _tuples(model) == _tuples(legacy)

    @pytest.mark.parametrize("name", [
        "register-bitflip", "multi-bitflip", "address-bitflip",
        "memory-bitflip", "branch-flip", "instruction-skip",
        "checker-fault",
    ])
    def test_prefix_property(self, name):
        """A larger injection cap extends — never reshuffles — a
        smaller cap's plan list (the repro.lab shard-reuse invariant)."""
        model = get_model(name)
        small = model.draw_plans(PROFILE, CampaignConfig(injections=30,
                                                         seed=9))
        large = model.draw_plans(PROFILE, CampaignConfig(injections=90,
                                                         seed=9))
        assert _tuples(large[:30]) == _tuples(small)

    @pytest.mark.parametrize("name", model_names())
    def test_plans_target_the_right_stream(self, name):
        model = get_model(name)
        population = model.population(PROFILE)
        for plan in model.draw_plans(PROFILE,
                                     CampaignConfig(injections=200, seed=3)):
            assert 0 <= plan.target_index < population

    def test_multi_bitflip_bits_are_distinct(self):
        model = get_model("multi-bitflip")
        for plan in model.draw_plans(PROFILE,
                                     CampaignConfig(injections=300, seed=5)):
            bits = (plan.bit,) + plan.bits
            assert len(bits) in (2, 3)
            assert len(set(bits)) == len(bits)
            assert all(0 <= b < 64 for b in bits)

    def test_empty_population_raises(self):
        native = StreamProfile(eligible=100, executed=400, mem_accesses=10,
                               cond_branches=5, checker_sites=0)
        with pytest.raises(ValueError, match="checker sites"):
            get_model("checker-fault").draw_plans(
                native, CampaignConfig(injections=1))

    def test_population_streams(self):
        assert get_model("address-bitflip").population(PROFILE) == 120
        assert get_model("branch-flip").population(PROFILE) == 40
        assert get_model("checker-fault").population(PROFILE) == 80
        for name in ("register-bitflip", "multi-bitflip", "memory-bitflip",
                     "instruction-skip"):
            assert get_model(name).population(PROFILE) == 500

    def test_draw_consumes_fixed_rng_budget(self):
        """Each model's draw must make the same number of randrange
        calls regardless of what it rolls (e.g. MultiBitFlip consumes
        its third-bit draw even for 2-bit plans) — the documented
        fixed-arity contract that keeps draw sequences easy to reason
        about when extending a model."""

        class CountingRandom(random.Random):
            calls = 0

            def randrange(self, *args, **kwargs):
                self.calls += 1
                return super().randrange(*args, **kwargs)

        for name in model_names():
            model = get_model(name)
            counts = set()
            for seed in range(30):
                rng = CountingRandom(seed)
                model.draw(rng, 500)
                counts.add(rng.calls)
            assert len(counts) == 1, f"{name}: variable draw count {counts}"


class TestTrapOutcomeExhaustive:
    """Satellite: every Trap subclass in repro.cpu.errors must map onto
    a Table-I outcome — a new fault class cannot silently escape the
    classifier (the old except-list would have let it propagate)."""

    def _all_trap_classes(self):
        classes = [cpu_errors.Trap]
        for obj in vars(cpu_errors).values():
            if (isinstance(obj, type) and issubclass(obj, cpu_errors.Trap)
                    and obj is not cpu_errors.Trap):
                classes.append(obj)
        return classes

    def test_hierarchy_is_nontrivial(self):
        names = {cls.__name__ for cls in self._all_trap_classes()}
        assert {"Trap", "MemoryFault", "ArithmeticFault", "HangError",
                "DetectedError", "AbortError"} <= names

    def test_every_trap_maps_to_a_crashed_outcome(self):
        for cls in self._all_trap_classes():
            if cls is cpu_errors.MemoryFault:
                trap = cls(address=0xbad)
            else:
                trap = cls("synthetic")
            outcome = trap_outcome(trap)
            assert isinstance(outcome, Outcome)
            assert outcome.system_state == "crashed"

    def test_specific_mappings(self):
        assert trap_outcome(cpu_errors.HangError("h")) == Outcome.HANG
        assert trap_outcome(cpu_errors.DetectedError("d")) == Outcome.DETECTED
        assert trap_outcome(cpu_errors.MemoryFault(0)) == Outcome.OS_DETECTED
        assert trap_outcome(cpu_errors.ArithmeticFault("a")) == \
            Outcome.OS_DETECTED
        assert trap_outcome(cpu_errors.AbortError("a")) == Outcome.OS_DETECTED
        assert trap_outcome(cpu_errors.Trap("bare")) == Outcome.OS_DETECTED


class TestFlipNarrowTypes:
    """Satellite: pin the documented draw-width semantics. Bits are
    always drawn from [0,64) and lanes from [0,4); on narrower scalar
    types a draw at bit % 64 >= width hits architecturally dead upper
    bits and must be a silent no-op — NOT re-drawn or wrapped, because
    the fixed draw order is baked into durable store keys."""

    def test_i8_dead_upper_bits_noop(self):
        for bit in range(8, 64):
            assert _flip(5, T.I8, bit, lane=0) == 5
        assert _flip(5, T.I8, 2, lane=0) == 1  # 0b101 ^ 0b100

    def test_i32_dead_upper_bits_noop(self):
        assert _flip(7, T.I32, 40, lane=0) == 7
        assert _flip(7, T.I32, 31, lane=0) == 7 + (1 << 31)

    def test_i1_flips_only_bit_zero(self):
        assert _flip(1, T.I1, 0, lane=3) == 0
        for bit in range(1, 64):
            assert _flip(1, T.I1, bit, lane=0) == 1

    def test_f32_wraps_into_width(self):
        # f32 is 32 bits wide: bits >= 32 (mod 64) are dead.
        assert _flip(1.5, T.F32, 33, lane=0) == 1.5
        assert _flip(1.5, T.F32, 0, lane=0) != 1.5

    def test_i64_every_bit_live(self):
        for bit in (0, 31, 63):
            assert _flip(0, T.I64, bit, lane=0) == 1 << bit

    def test_vector_lane_wraps_scalar_bit_does_not(self):
        # Vector values wrap the lane index into the element count...
        vec = (1, 2, 3, 4)
        v4i64 = T.vector(T.I64, 4)
        assert _flip(vec, v4i64, 0, lane=5) == (1, 3, 3, 4)
        # ...scalars ignore the lane entirely.
        assert _flip(9, T.I64, 1, lane=7) == 11


class TestCustomModel:
    def test_registry_is_extensible(self):
        class EveryOther(FaultModel):
            name = "test-every-other"

            def population(self, profile):
                return profile.eligible // 2

            def draw(self, rng, population):
                return FaultPlan(target_index=rng.randrange(population),
                                 bit=0, kind="skip")

        model = register_model(EveryOther())
        try:
            assert get_model("test-every-other") is model
            plans = model.draw_plans(PROFILE, CampaignConfig(injections=5,
                                                             seed=1))
            assert len(plans) == 5
            assert all(p.target_index < 250 for p in plans)
        finally:
            from repro.faults.models import _REGISTRY

            del _REGISTRY["test-every-other"]
