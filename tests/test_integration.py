"""End-to-end integration tests: the full paper pipeline on small
inputs — build, optimize, vectorize/harden, simulate, inject faults —
plus textual round-trips of transformed modules."""

import pytest

from repro import (
    FaultPlan,
    Machine,
    MachineConfig,
    harden,
    inline_module,
    mem2reg,
)
from repro.faults import CampaignConfig, Outcome, run_campaign
from repro.ir import format_module, parse_module, verify_module
from repro.passes import clone_module
from repro.passes.vectorize import vectorize
from repro.workloads import get, outputs_match

FAST = MachineConfig(collect_timing=False)


def pipeline(name, scale="test"):
    built = get(name).build_at(scale)
    mem2reg(built.module)
    inline_module(built.module)
    mem2reg(built.module)
    verify_module(built.module)
    return built


class TestFullPipeline:
    def test_histogram_end_to_end(self):
        built = pipeline("histogram")
        native = Machine(built.module, FAST).run(built.entry, built.args)
        assert outputs_match(native.output, built.expected, built.rtol)

        for scheme in ("elzar", "swiftr", "swift"):
            hardened = harden(built.module, scheme)
            verify_module(hardened)
            result = Machine(hardened, FAST).run(built.entry, built.args)
            assert result.output == native.output, scheme

    def test_harden_rejects_unknown_scheme(self):
        built = pipeline("histogram")
        with pytest.raises(ValueError):
            harden(built.module, "quintuple")

    def test_harden_forwards_options(self):
        built = pipeline("blackscholes")
        hardened = harden(built.module, "elzar", float_only=True)
        assert hardened.get_function("main").hardened == "elzar-float"

    def test_vectorized_then_simulated(self):
        built = pipeline("string_match")
        vec = vectorize(clone_module(built.module))
        verify_module(vec)
        native = Machine(built.module, MachineConfig())
        simd = Machine(vec, MachineConfig())
        r1 = native.run(built.entry, built.args)
        r2 = simd.run(built.entry, built.args)
        assert r1.output == r2.output
        assert r2.cycles < r1.cycles  # bzero vectorizes (Figure 1)

    def test_hardened_module_text_roundtrip(self):
        """ELZAR output prints and parses back to an equivalent module."""
        built = pipeline("linear_regression")
        hardened = harden(built.module, "elzar")
        text = format_module(hardened)
        reparsed = parse_module(text)
        verify_module(reparsed)
        a = Machine(hardened, FAST).run(built.entry, built.args)
        b = Machine(reparsed, FAST).run(built.entry, built.args)
        assert b.output == a.output
        assert b.counters.instructions == a.counters.instructions

    def test_campaign_on_hardened_pipeline(self):
        built = pipeline("linear_regression")
        hardened = harden(built.module, "elzar")
        cfg = CampaignConfig(injections=40, seed=11)
        native = run_campaign(built.module, built.entry, built.args,
                              "linreg", "native", cfg)
        elzar = run_campaign(hardened, built.entry, built.args,
                             "linreg", "elzar", cfg)
        assert elzar.sdc_rate <= native.sdc_rate
        assert elzar.total == native.total == 40

    def test_window_of_vulnerability_documented_behaviour(self):
        """§V-C: an SDC under ELZAR implies the fault hit a scalar
        (extracted) value, never a replicated one."""
        built = pipeline("histogram")
        hardened = harden(built.module, "elzar")
        golden = Machine(hardened, FAST).run(built.entry, built.args).output
        for index in range(0, 400, 13):
            machine = Machine(hardened, FAST)
            machine.arm_fault(FaultPlan(target_index=index, bit=3, lane=1))
            try:
                result = machine.run(built.entry, built.args)
            except Exception:
                continue
            if result.output != golden and machine.fault_target is not None:
                assert not machine.fault_target.type.is_vector
