"""Tests for the reproduction scorecard."""

import pytest

from repro.harness import AppSession, Session, compute_scorecard
from repro.harness.scorecard import Claim, Scorecard


class TestClaimMechanics:
    def test_verdict_strings(self):
        assert Claim("a", "s", "e", "m", True).verdict == "PASS"
        assert Claim("a", "s", "e", "m", False).verdict == "FAIL"
        assert Claim("a", "s", "e", "m", False, skipped=True).verdict == "SKIP"

    def test_counts(self):
        card = Scorecard([
            Claim("a", "", "", "", True),
            Claim("b", "", "", "", False),
            Claim("c", "", "", "", False, skipped=True),
        ])
        assert card.passed == 1 and card.failed == 1 and card.skipped == 1

    def test_render_contains_summary(self):
        card = Scorecard([Claim("a", "s", "e", "m", True)])
        assert "1 pass" in card.render()


class TestFullScorecard:
    @pytest.fixture(scope="class")
    def card(self):
        session = Session("test")
        apps = AppSession("test")
        return compute_scorecard(session, apps, fi_injections=0)

    def test_all_computable_claims_pass(self, card):
        failing = [c.id for c in card.claims if not c.passed and not c.skipped]
        assert failing == [], f"failing claims: {failing}"

    def test_covers_every_artefact(self, card):
        prefixes = {c.id.split(".")[0] for c in card.claims}
        assert {"fig1", "fig11", "fig12", "fig13", "fig14", "fig15",
                "fig17", "table2", "table3", "table4"} <= prefixes

    def test_perf_only_claims_skipped_at_test_scale(self, card):
        by_id = {c.id: c for c in card.claims}
        assert by_id["table2.mmul-l1"].skipped
        assert by_id["fig13"].skipped  # injections=0

    def test_experiment_export(self, card):
        exp = card.to_experiment()
        assert exp.id == "scorecard"
        assert len(exp.rows) == len(card.claims)
        assert "PASS" in exp.to_csv()
