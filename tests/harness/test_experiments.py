"""Tests for the experiment harness (run at 'test' scale: the assertions
target the paper's qualitative *shapes*, not absolute values)."""

import pytest

from repro.harness import (
    AppSession,
    Session,
    fig01_simd_speedup,
    fig11_overhead,
    fig12_checks_breakdown,
    fault_model_matrix,
    fig13_fault_injection,
    fig14_swiftr_comparison,
    fig15_case_studies,
    fig17_proposed_avx,
    fp_only_overhead,
    relative_throughput,
    table2_native_stats,
    table3_ilp,
    table4_micro,
)


@pytest.fixture(scope="module")
def session():
    return Session("test")


@pytest.fixture(scope="module")
def apps():
    return AppSession("test")


class TestSession:
    def test_results_cached(self, session):
        a = session.run("histogram", "native")
        b = session.run("histogram", "native")
        assert a is b

    def test_unknown_variant_rejected(self, session):
        with pytest.raises(KeyError):
            session.module("histogram", "mystery")

    def test_output_checked(self, session):
        # All variants must produce the reference output.
        for variant in ("native", "noavx", "elzar", "swiftr"):
            session.run("histogram", variant)

    def test_overhead_positive(self, session):
        assert session.overhead("histogram", "elzar") > 1.0


class TestFig11(object):
    @pytest.fixture(scope="class")
    def exp(self, session):
        return fig11_overhead(session, threads=(1, 16))

    def test_has_all_rows(self, exp):
        labels = [r[0] for r in exp.rows]
        assert "hist" in labels and "smatch-na" in labels and "mean" in labels
        assert len(exp.rows) == 16  # 14 + smatch-na + mean

    def test_mean_overhead_in_paper_band(self, exp):
        """Paper: 4.1-5.6x depending on threads; we accept 2-8x."""
        mean = exp.row_by_label("mean")
        assert 2.0 < mean[1] < 8.0

    def test_smatch_is_worst(self, exp):
        overheads = {r[0]: r[1] for r in exp.rows if r[0] != "mean"}
        assert overheads["smatch"] == max(overheads.values())

    def test_fp_trio_among_cheapest(self, exp):
        """kmeans/blackscholes/swaptions sit at the cheap end (vector FP
        costs one issue slot). Note: the paper's cheapest case is mmul
        (memory-bound at 100s of MB); at interpretable dataset sizes
        mmul's working set cannot leave the (scaled) hierarchy, so that
        single amortization is not reproduced — see EXPERIMENTS.md."""
        overheads = {r[0]: r[1] for r in exp.rows
                     if r[0] not in ("mean", "smatch-na")}
        ranked = sorted(overheads, key=overheads.get)
        assert "black" in ranked[:4]

    def test_dedup_overhead_amortized_by_threads(self, exp):
        row = exp.row_by_label("dedup")
        assert row[2] < row[1]  # t16 < t1


class TestFig12:
    @pytest.fixture(scope="class")
    def exp(self, session):
        return fig12_checks_breakdown(session)

    def test_monotone_mean(self, exp):
        """Disabling checks can only reduce overhead."""
        mean = exp.row_by_label("mean")
        assert mean[1] >= mean[2] >= mean[3] >= mean[4] >= mean[5] > 1.0

    def test_branch_checks_nearly_free(self, exp):
        """Paper: disabling branch checks saves only ~4%."""
        mean = exp.row_by_label("mean")
        saving = (mean[3] - mean[4]) / mean[3]
        assert saving < 0.10

    def test_load_store_checks_costly(self, exp):
        """Paper: load+store checks are ~39% of the overhead."""
        mean = exp.row_by_label("mean")
        assert (mean[1] - mean[3]) / mean[1] > 0.10


class TestFig14:
    @pytest.fixture(scope="class")
    def exp(self, session):
        return fig14_swiftr_comparison(session)

    def test_swiftr_cheaper_on_average(self, exp):
        """The paper's headline: ELZAR ~46% worse than SWIFT-R."""
        mean = exp.row_by_label("mean")
        assert mean[2] > mean[1]

    def test_elzar_wins_on_fp_benchmarks(self, exp):
        """kmeans/blackscholes/fluidanimate favour ELZAR (Figure 14)."""
        wins = [r[0] for r in exp.rows if r[0] != "mean" and r[3] < 0]
        assert "blackscholes" in wins or "black" in wins

    def test_memory_benchmarks_favor_swiftr(self, exp):
        row = exp.row_by_label("hist")
        assert row[3] > 0  # ELZAR worse on histogram


class TestFig17:
    def test_proposed_avx_much_cheaper(self, session):
        exp = fig17_proposed_avx(session)
        mean = exp.row_by_label("mean")
        assert mean[2] < mean[1]
        assert mean[2] < 2.5  # paper estimates 1.48x


class TestFig01:
    def test_smatch_benefits_most(self, session, apps):
        exp = fig01_simd_speedup(session, apps)
        speedups = {r[0]: r[1] for r in exp.rows}
        kernels = {k: v for k, v in speedups.items()
                   if k not in ("memcached", "sqlite3", "apache")}
        assert speedups["smatch"] == max(kernels.values())
        assert speedups["smatch"] > 25.0

    def test_most_kernels_gain_little(self, session, apps):
        exp = fig01_simd_speedup(session, apps)
        small = [r for r in exp.rows if r[1] < 15.0]
        assert len(small) >= len(exp.rows) // 2


class TestTables:
    def test_table2_shape(self, session):
        exp = table2_native_stats(session)
        assert len(exp.rows) == 14
        by_name = {r[0]: r for r in exp.rows}
        # histogram is the most load+store heavy (Table II).
        sums = {name: row[3] + row[4] for name, row in by_name.items()}
        assert sums["hist"] == max(sums.values())
        # blackscholes is among the least memory-bound (Table II; at
        # tiny scales swaptions' register-resident Monte Carlo can rank
        # below it).
        ranked = sorted(sums, key=sums.get)
        assert "black" in ranked[:3]

    def test_table3_shape(self, session):
        exp = table3_ilp(session)
        for row in exp.rows:
            name, ilp_n, ilp_e, ilp_s, incr_e, incr_s = row
            assert incr_e > 1.0 and incr_s > 1.0
            assert ilp_n > 0 and ilp_e > 0 and ilp_s > 0
        # SWIFT-R triplication blows up instruction counts more than
        # ELZAR overall (Table III: ELZAR's premise), on average.
        import statistics

        mean_e = statistics.mean(r[4] for r in exp.rows)
        mean_s = statistics.mean(r[5] for r in exp.rows)
        assert mean_e > 1.3 and mean_s > 2.0

    def test_table4_shape(self, session):
        exp = table4_micro(session)
        rows = {r[0]: r for r in exp.rows}
        assert set(rows) == {"loads", "stores", "branches", "truncation"}
        # Stores are the least penalized class (paper: ~1.0x).
        assert rows["stores"][1] <= rows["loads"][1]
        assert rows["truncation"][1] > 2.0


class TestFpOnly:
    def test_float_only_cheaper_than_full(self, session):
        exp = fp_only_overhead(session, threads=(1,))
        for row in exp.rows:
            name, overhead_pct = row[0], row[1]
            full = (session.overhead(
                {"black": "blackscholes", "fluid": "fluidanimate",
                 "swap": "swaptions"}[name], "elzar") - 1) * 100
            # blackscholes' bit-trick-heavy libm pays protected-domain
            # crossings (bitcast f64<->i64) in float-only mode, so give
            # it a small margin; the other two must be strictly cheaper.
            assert overhead_pct < full * 1.3


class TestFig13:
    def test_small_campaign_shape(self):
        exp = fig13_fault_injection(
            injections=40, scale="test", benchmarks=["histogram", "blackscholes"]
        )
        rows = {(r[0], r[1]): r for r in exp.rows}
        nat = rows[("hist", "native")]
        elz = rows[("hist", "elzar")]
        assert elz[4] < nat[4]  # SDC reduced
        mean_nat = rows[("mean", "native")]
        mean_elz = rows[("mean", "elzar")]
        assert mean_elz[4] < mean_nat[4]
        assert mean_elz[3] > mean_nat[3]  # correct rate up


class TestFaultModelMatrix:
    def test_shape_and_skip_semantics(self):
        exp = fault_model_matrix(
            injections=12, models=["register-bitflip", "checker-fault"]
        )
        cells = {(r[1], r[2]) for r in exp.rows}
        # register-bitflip runs against every version...
        for version in ("noavx", "swiftr", "elzar-detect", "elzar"):
            assert ("register-bitflip", version) in cells
        # ...but checker-fault has no checker sites in the unhardened
        # scalar base: the cell is a hole in the matrix, not a zero row.
        assert ("checker-fault", "noavx") not in cells
        assert ("checker-fault", "elzar") in cells
        for row in exp.rows:
            rates = row[3:]
            assert all(0.0 <= r <= 100.0 for r in rates)
            assert sum(rates) == pytest.approx(100.0)


class TestFig15:
    @pytest.fixture(scope="class")
    def exp(self, apps):
        return fig15_case_studies(apps)

    def test_sqlite_reverse_scaling(self, exp):
        for row in exp.rows:
            if row[0] == "sqlite3" and row[2] == "native":
                assert row[3] > row[-1]  # t1 > t16

    def test_memcached_scales(self, exp):
        for row in exp.rows:
            if row[0] == "memcached" and row[2] == "native":
                assert row[-1] > 4 * row[3]

    def test_relative_throughputs_ranked(self, exp):
        """Paper: memcached 72-85%, sqlite 20-30%, apache ~85%."""
        kv = relative_throughput(exp, "memcached", "A")
        sql = relative_throughput(exp, "sqlite3", "A")
        web = relative_throughput(exp, "apache", "-")
        assert sql < kv
        assert sql < web
        assert web > 0.5


class TestDeterminism:
    """Simulation results are bit-deterministic across sessions — a
    prerequisite for the resume/compare workflow and for FI golden runs
    (Date/randomness only enter via seeded generators)."""

    def test_cycles_reproducible_across_sessions(self):
        a = Session("test")
        b = Session("test")
        for variant in ("native", "elzar"):
            ra = a.run("histogram", variant)
            rb = b.run("histogram", variant)
            assert ra.cycles == rb.cycles
            assert ra.counters.uops == rb.counters.uops
            assert ra.output == rb.output

    def test_app_session_reproducible(self):
        a = AppSession("test")
        b = AppSession("test")
        assert (
            a.cycles_per_op("memcached", "native")
            == b.cycles_per_op("memcached", "native")
        )
