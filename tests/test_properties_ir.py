"""Property-based tests over the IR itself: printer/parser round-trips
on randomly generated programs, esoteric integer widths (§III-D), and
hardened-code invariants."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cpu import Machine, MachineConfig
from repro.ir import (
    IRBuilder,
    Module,
    format_module,
    parse_module,
    verify_module,
)
from repro.ir import types as T
from repro.ir.values import Constant
from repro.ir.instructions import CallInst
from repro.passes import elzar_transform, mem2reg, swiftr_transform

FAST = MachineConfig(collect_timing=False, cache_enabled=False)

_SCALAR_OPS = ["add", "sub", "mul", "and", "or", "xor", "shl", "lshr"]


def _random_program(ops, consts, widths, with_branch):
    module = Module("fuzz")
    fn = module.add_function("main", T.FunctionType(T.I64, (T.I64,)), ["x"])
    b = IRBuilder()
    b.position_at_end(fn.append_block("entry"))
    v = fn.args[0]
    for op, c, w in zip(ops, consts, widths):
        ty = T.int_type(w)
        narrowed = b.trunc(v, ty) if w < 64 else v
        rhs = IRBuilder.i64(c) if w == 64 else Constant(ty, c)
        mixed = b.binop(op, narrowed, rhs)
        v = b.zext(mixed, T.I64) if w < 64 else mixed
    if with_branch:
        cond = b.icmp("slt", v, b.i64(1 << 32))
        state = b.begin_if(cond, with_else=True)
        then_v = b.add(v, b.i64(1))
        b.begin_else(state)
        else_v = b.xor(v, b.i64(0xFF))
        b.end_if(state)
        phi = b.phi(T.I64)
        phi.add_incoming(then_v, state.then_end)
        phi.add_incoming(else_v, state.else_block)
        v = phi
    b.ret(v)
    verify_module(module)
    return module


@st.composite
def programs(draw):
    n = draw(st.integers(1, 6))
    ops = draw(st.lists(st.sampled_from(_SCALAR_OPS), min_size=n, max_size=n))
    consts = draw(st.lists(st.integers(0, 255), min_size=n, max_size=n))
    widths = draw(st.lists(st.sampled_from([8, 16, 32, 64]), min_size=n,
                           max_size=n))
    with_branch = draw(st.booleans())
    return _random_program(ops, consts, widths, with_branch)


class TestPrinterParserFuzz:
    @given(module=programs(), x=st.integers(0, (1 << 64) - 1))
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_roundtrip_preserves_text_and_behaviour(self, module, x):
        text = format_module(module)
        reparsed = parse_module(text)
        verify_module(reparsed)
        assert format_module(reparsed) == text
        a = Machine(module, FAST).run("main", [x]).value
        b = Machine(reparsed, FAST).run("main", [x]).value
        assert a == b

    @given(module=programs())
    @settings(max_examples=30, deadline=None)
    def test_hardened_modules_roundtrip(self, module):
        hardened = elzar_transform(module)
        text = format_module(hardened)
        reparsed = parse_module(text)
        verify_module(reparsed)
        assert format_module(reparsed) == text


class TestEsotericWidths:
    """§III-D: LLVM sometimes produces i1/i9-style types; they are
    extended to supported widths with the right signedness."""

    @pytest.mark.parametrize("width", [1, 7, 9, 17, 33])
    def test_odd_width_arithmetic_survives_hardening(self, width, fast_config):
        module = Module("m")
        fn = module.add_function("main", T.FunctionType(T.I64, (T.I64,)), ["x"])
        b = IRBuilder()
        b.position_at_end(fn.append_block("entry"))
        ty = T.int_type(width)
        narrow = b.trunc(fn.args[0], ty)
        bumped = b.binop("add", narrow, Constant(ty, 1))
        b.ret(b.zext(bumped, T.I64))
        native = Machine(module, fast_config).run("main", [(1 << width) - 1]).value
        assert native == 0  # wraps within the odd width
        for transform in (elzar_transform, swiftr_transform):
            hardened = transform(module)
            got = Machine(hardened, fast_config).run("main", [(1 << width) - 1]).value
            assert got == native

    @pytest.mark.parametrize("width", [7, 9])
    def test_sext_of_odd_width(self, width, fast_config):
        module = Module("m")
        fn = module.add_function("main", T.FunctionType(T.I64, (T.I64,)), ["x"])
        b = IRBuilder()
        b.position_at_end(fn.append_block("entry"))
        ty = T.int_type(width)
        narrow = b.trunc(fn.args[0], ty)
        b.ret(b.sext(narrow, T.I64))
        top_bit_set = (1 << width) - 1  # all ones: negative in width
        native = Machine(module, fast_config).run("main", [top_bit_set]).value
        assert native == (1 << 64) - 1  # sign-extended -1
        hardened = elzar_transform(module)
        assert Machine(hardened, fast_config).run("main", [top_bit_set]).value == native


class TestHardenedInvariants:
    @given(module=programs())
    @settings(max_examples=30, deadline=None)
    def test_elzar_emits_no_vector_sync_ops(self, module):
        """Loads/stores/calls in ELZAR output always operate on scalars
        (§III-B: memory and control flow are not replicated)."""
        hardened = elzar_transform(module)
        for fn in hardened.defined_functions():
            for inst in fn.instructions():
                if inst.opcode == "load":
                    assert not inst.type.is_vector
                elif inst.opcode == "store":
                    assert not inst.value.type.is_vector
                elif isinstance(inst, CallInst) and not inst.callee.is_intrinsic:
                    for arg in inst.args:
                        assert not arg.type.is_vector

    @given(module=programs())
    @settings(max_examples=30, deadline=None)
    def test_swiftr_output_has_no_vectors_at_all(self, module):
        hardened = swiftr_transform(module)
        for fn in hardened.defined_functions():
            for inst in fn.instructions():
                assert not inst.type.is_vector
