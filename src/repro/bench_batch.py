"""Batched fault-injection benchmark: ``repro.cpu.batch`` vs scalar.

Measures per-injection throughput of the batched lane-parallel engine
(one shared golden prefix, forked lanes, digest reconvergence) against
the scalar baseline — a plain ``inject_once`` loop, which pays machine
construction and the full golden prefix for every single injection.
The sweep covers batch sizes K in ``BATCH_SIZES``; K=1 exercises the
sequential :class:`~repro.faults.campaign.InjectionSession` path that
``run_plans`` falls back to.

Correctness is asserted, not assumed: for every cell and every K the
full outcome *list* (not just its counts) must be bit-identical to the
scalar baseline's — any drift fails the benchmark rather than
reporting a speedup for a different campaign.

``benchmarks/bench_batch_injection.py`` drives this module and
persists the numbers to ``BENCH_batch.json``.
"""

from __future__ import annotations

import json
import time
from typing import Dict, List, Optional, Sequence

from .faults.campaign import golden_profile, inject_once, run_plans
from .faults.models import DEFAULT_MODEL, get_model
from .toolchain import default_toolchain
from .workloads.registry import FI_BENCHMARKS

#: Batch sizes swept per cell; the headline speedup is the largest one.
BATCH_SIZES = (1, 4, 16)

#: Injections per cell. Small enough that the scalar baseline stays
#: affordable, large enough that the batched engine's one-time costs
#: (session build, golden profile, lockstep trace) are amortised the
#: way a real campaign amortises them. The paper's campaigns used 2500
#: per program; the scalar baseline's per-injection throughput is flat
#: in N long before 96, while the batched engine keeps gaining as its
#: per-cell costs spread — so this still *under*states campaign-scale
#: speedup.
DEFAULT_INJECTIONS = 96


class _PlanConfig:
    def __init__(self, seed: int, injections: int):
        self.seed = seed
        self.injections = injections


def _reset_campaign_state(module) -> None:
    """Forget cached sessions/goldens so a timed run pays the same
    one-time costs a fresh campaign cell pays."""
    from .faults import campaign as _campaign
    _campaign._SESSION_TLS.slot = None
    module._golden_cache.clear()


def bench_cell(name: str, version: str, scale: str = "fi",
               injections: int = DEFAULT_INJECTIONS, seed: int = 7,
               fault_model: str = DEFAULT_MODEL) -> Dict:
    """One workload x version cell: scalar baseline plus the K sweep."""
    built = default_toolchain().build(name, scale, version)
    module, entry, args = built.module, built.entry, built.args
    reference, profile = golden_profile(module, entry, args)
    budget = max(1000, profile.executed * 10)
    plans = get_model(fault_model).draw_plans(
        profile, _PlanConfig(seed, injections))

    start = time.perf_counter()
    baseline = [inject_once(module, entry, args, plan, reference, budget)
                for plan in plans]
    scalar_seconds = time.perf_counter() - start

    row = {
        "workload": name,
        "version": version,
        "scale": scale,
        "injections": injections,
        "fault_model": fault_model,
        "scalar_seconds": scalar_seconds,
        "scalar_ips": injections / scalar_seconds,
        "batched": {},
    }
    for k in BATCH_SIZES:
        _reset_campaign_state(module)
        start = time.perf_counter()
        outcomes = run_plans(module, entry, args, plans, reference, budget,
                             batch=k, fault_model=fault_model)
        elapsed = time.perf_counter() - start
        if outcomes != baseline:
            raise AssertionError(
                f"{name}/{version} batch={k}: outcomes diverge from scalar "
                f"inject_once — batching must be bit-identical")
        row["batched"][str(k)] = {
            "seconds": elapsed,
            "ips": injections / elapsed,
            "speedup": scalar_seconds / elapsed,
        }
    row["speedup"] = row["batched"][str(max(BATCH_SIZES))]["speedup"]
    return row


def bench_batch_injection(scale: str = "fi",
                          injections: int = DEFAULT_INJECTIONS,
                          workloads: Optional[Sequence[str]] = None,
                          verbose: bool = True) -> List[Dict]:
    """The full Figure-13 grid (both versions of every FI benchmark)."""
    names = list(workloads) if workloads else [w.name for w in FI_BENCHMARKS]
    rows = []
    for name in names:
        for version in ("native", "elzar"):
            row = bench_cell(name, version, scale, injections)
            rows.append(row)
            if verbose:
                per_k = "  ".join(
                    f"K={k} {row['batched'][str(k)]['speedup']:5.2f}x"
                    for k in BATCH_SIZES)
                print(f"{name:<18} {version:<7} "
                      f"scalar {row['scalar_ips']:6.1f} inj/s  {per_k}")
    if verbose and rows:
        print(f"{'geomean speedup':<26} {geomean_speedup(rows):.2f}x "
              f"(K={max(BATCH_SIZES)})")
    return rows


def geomean_speedup(rows: List[Dict]) -> Optional[float]:
    if not rows:
        return None
    product = 1.0
    for row in rows:
        product *= row["speedup"]
    return product ** (1.0 / len(rows))


def write_report(rows: List[Dict], path: str = "BENCH_batch.json") -> None:
    report = {
        "benchmark": "batch_injection",
        "unit": "injections per second",
        "batch_sizes": list(BATCH_SIZES),
        "geomean_speedup": geomean_speedup(rows),
        "rows": rows,
    }
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
