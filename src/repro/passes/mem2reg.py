"""mem2reg: promote stack slots to SSA registers.

Standard SSA construction (Cytron et al.): phi placement at iterated
dominance frontiers of the stores, then a renaming walk over the
dominator tree. An alloca is promotable when it is a single scalar (or
vector) slot whose address is only ever used directly by loads and
stores *to* it.

This mirrors the paper's use of LLVM's scalarrepl/mem2reg before
hardening (§IV-A): the hardened program should carry its data flow in
registers, where ELZAR can replicate it, not in memory, which is
assumed ECC-protected and is not replicated.
"""

from __future__ import annotations

from typing import Dict, List, Set

from ..ir import types as T
from ..ir.cfg import DominatorTree
from ..ir.function import BasicBlock, Function
from ..ir.instructions import AllocaInst, Instruction, LoadInst, PhiInst, StoreInst
from ..ir.module import Module
from ..ir.values import Constant, Value
from .utils import build_use_map


def mem2reg(module: Module) -> Module:
    for fn in module.defined_functions():
        promote_function(fn)
    module.bump_version()
    return module


def promote_function(fn: Function) -> int:
    """Promote all eligible allocas in ``fn``; returns how many."""
    allocas = _promotable_allocas(fn)
    if not allocas:
        return 0
    domtree = DominatorTree(fn)
    frontiers = domtree.frontiers()
    preds = fn.compute_predecessors()

    # Phase 1: phi placement at iterated dominance frontiers.
    phis: Dict[PhiInst, AllocaInst] = {}
    for alloca in allocas:
        def_blocks: Set[BasicBlock] = {
            inst.parent
            for inst in _users(fn, alloca)
            if isinstance(inst, StoreInst)
        }
        placed: Set[BasicBlock] = set()
        worklist = list(def_blocks)
        while worklist:
            block = worklist.pop()
            for frontier_block in frontiers.get(block, ()):
                if frontier_block in placed:
                    continue
                placed.add(frontier_block)
                phi = PhiInst(alloca.allocated_type)
                phi.name = fn.next_name(f"{alloca.name}.phi")
                frontier_block.insert(0, phi)
                phis[phi] = alloca
                if frontier_block not in def_blocks:
                    worklist.append(frontier_block)

    # Phase 2: renaming walk over the dominator tree.
    alloca_set = set(map(id, allocas))
    stacks: Dict[int, List[Value]] = {id(a): [] for a in allocas}
    to_erase: List[Instruction] = []

    def current_value(alloca: AllocaInst) -> Value:
        stack = stacks[id(alloca)]
        if stack:
            return stack[-1]
        return _zero_value(alloca.allocated_type)

    def rename(block: BasicBlock) -> None:
        pushed: List[int] = []
        for inst in list(block.instructions):
            if isinstance(inst, PhiInst) and inst in phis:
                stacks[id(phis[inst])].append(inst)
                pushed.append(id(phis[inst]))
                continue
            if isinstance(inst, LoadInst) and id(inst.ptr) in alloca_set:
                replacement = current_value(inst.ptr)
                _replace_uses_in_fn(fn, inst, replacement)
                to_erase.append(inst)
                continue
            if isinstance(inst, StoreInst) and id(inst.ptr) in alloca_set:
                stacks[id(inst.ptr)].append(inst.value)
                pushed.append(id(inst.ptr))
                to_erase.append(inst)
                continue
        for succ in block.successors():
            for phi in succ.phis():
                alloca = phis.get(phi)
                if alloca is not None:
                    phi.add_incoming(current_value(alloca), block)
        for child in domtree.children[block]:
            rename(child)
        for key in pushed:
            stacks[key].pop()

    rename(fn.entry)

    for inst in to_erase:
        inst.parent.remove(inst)
    for alloca in allocas:
        alloca.parent.remove(alloca)

    # Prune phis for incoming edges never seen (unreachable preds).
    for phi, alloca in phis.items():
        block = phi.parent
        if block is None:
            continue
        expected = preds[block]
        if len(phi.incoming_blocks) != len(expected):
            for pred in expected:
                if pred not in phi.incoming_blocks:
                    phi.add_incoming(_zero_value(phi.type), pred)
    return len(allocas)


def _promotable_allocas(fn: Function) -> List[AllocaInst]:
    uses = build_use_map(fn)
    out = []
    for inst in fn.instructions():
        if not isinstance(inst, AllocaInst):
            continue
        if inst.count != 1:
            continue
        ty = inst.allocated_type
        if not (ty.is_scalar or ty.is_vector):
            continue
        ok = True
        for user, index in uses.get(id(inst), ()):
            if isinstance(user, LoadInst):
                continue
            if isinstance(user, StoreInst) and index == 1:
                continue  # address operand of a store to this slot
            ok = False
            break
        if ok:
            out.append(inst)
    return out


def _users(fn: Function, value: Value) -> List[Instruction]:
    return [inst for inst in fn.instructions() if value in inst.operands]


def _replace_uses_in_fn(fn: Function, old: Value, new: Value) -> None:
    for inst in fn.instructions():
        for i, op in enumerate(inst.operands):
            if op is old:
                inst.operands[i] = new


def _zero_value(ty: T.Type) -> Value:
    """Value of an uninitialized slot (LLVM would say undef; we use a
    deterministic zero so simulations are reproducible)."""
    if ty.is_vector:
        return Constant(ty, (0,) * ty.count)
    if ty.is_float:
        return Constant(ty, 0.0)
    if ty.is_pointer:
        return Constant(ty, 0)
    return Constant(ty, 0)
