"""CFG simplification: fold constant branches, remove unreachable
blocks, and merge straight-line block chains.

Available as a standard cleanup (useful after inlining, which leaves
``br``-only chains), but deliberately *not* part of the measured
experiment pipeline: on x86 an unconditional jump to the next block is
materialized as a fall-through at code layout, so removing it here
would not change the instruction stream the paper's perf counters saw —
keeping the blocks makes our branch statistics comparable.
"""

from __future__ import annotations

from typing import Dict

from ..ir.function import BasicBlock, Function
from ..ir.instructions import BranchInst, PhiInst
from ..ir.module import Module
from ..ir.values import Constant
from .utils import remove_unreachable_blocks


def simplify_cfg(module: Module) -> Module:
    for fn in module.defined_functions():
        simplify_function_cfg(fn)
    module.bump_version()
    return module


def simplify_function_cfg(fn: Function) -> int:
    """Returns the number of simplifications performed."""
    total = 0
    changed = True
    while changed:
        changed = False
        folded = _fold_constant_branches(fn)
        removed = remove_unreachable_blocks(fn)
        merged = _merge_straightline_chains(fn)
        count = folded + removed + merged
        if count:
            total += count
            changed = True
    return total


def _fold_constant_branches(fn: Function) -> int:
    """``br i1 true/false`` becomes an unconditional branch (phis in
    the dropped target lose their incoming edge)."""
    folded = 0
    for block in fn.blocks:
        term = block.terminator
        if not isinstance(term, BranchInst) or not term.is_conditional:
            continue
        cond = term.cond
        if not isinstance(cond, Constant):
            continue
        taken = term.then_block if cond.value else term.else_block
        dropped = term.else_block if cond.value else term.then_block
        block.remove(term)
        block.append(BranchInst(None, taken))
        if dropped is not taken:
            for phi in dropped.phis():
                _drop_incoming(phi, block)
        folded += 1
    return folded


def _drop_incoming(phi: PhiInst, pred: BasicBlock) -> None:
    keep = [
        (v, b) for v, b in zip(phi.operands, phi.incoming_blocks) if b is not pred
    ]
    phi.operands = [v for v, _ in keep]
    phi.incoming_blocks = [b for _, b in keep]


def _merge_straightline_chains(fn: Function) -> int:
    """Merge B -> C when B ends in an unconditional branch to C and C
    has no other predecessors (and no phis after edge folding)."""
    merged = 0
    while True:
        preds = fn.compute_predecessors()
        candidate = None
        for block in fn.blocks:
            term = block.terminator
            if not isinstance(term, BranchInst) or term.is_conditional:
                continue
            succ = term.then_block
            if succ is block or succ is fn.entry:
                continue
            if len(preds[succ]) != 1:
                continue
            candidate = (block, succ)
            break
        if candidate is None:
            return merged
        block, succ = candidate
        # Single-predecessor phis are trivial copies.
        replacements: Dict[int, object] = {}
        for phi in succ.phis():
            replacements[id(phi)] = phi.incoming_for(block)
        if replacements:
            for inst in fn.instructions():
                for i, op in enumerate(inst.operands):
                    if id(op) in replacements:
                        inst.operands[i] = replacements[id(op)]
        block.remove(block.terminator)
        for inst in list(succ.instructions):
            if isinstance(inst, PhiInst):
                continue
            succ.remove(inst)
            block.append(inst)
        # Phis in the successors of the merged block now flow from `block`.
        new_term = block.terminator
        if isinstance(new_term, BranchInst):
            for target in new_term.targets():
                for phi in target.phis():
                    phi.replace_incoming_block(succ, block)
        fn.blocks.remove(succ)
        merged += 1
