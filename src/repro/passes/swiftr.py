"""SWIFT-R: instruction-triplication ILR with majority voting.

The paper's baseline (Reis et al. [16], re-implemented by the authors
because the original was not public; §V-D). Every replicable
instruction is emitted three times, creating three independent data
flows; before each synchronization instruction the three copies of
every live-in operand are majority-voted (``tmr.vote``), masking a
fault in any single copy (Figure 5b).

Replicated inputs: loads, call results, and function arguments are
computed once and *shared* by the three flows (the classical SWIFT-R
move into three shadow registers — we share the SSA value, which keeps
the same window of vulnerability: a fault in the producing instruction
corrupts all three flows, a fault in any consumer corrupts one).

The same machinery with ``copies=2`` and fail-stop checks implements
plain SWIFT (DMR, detection only) for the ablation experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..cpu import intrinsics as intr
from ..ir.builder import IRBuilder
from ..ir.function import BasicBlock, Function
from ..ir.instructions import (
    AllocaInst,
    BinaryInst,
    BranchInst,
    CallInst,
    CastInst,
    FCmpInst,
    GepInst,
    ICmpInst,
    Instruction,
    LoadInst,
    PhiInst,
    RetInst,
    SelectInst,
    StoreInst,
    UnreachableInst,
)
from ..ir.module import Module
from ..ir.function import Function as FnValue
from ..ir.values import Constant, GlobalVariable, UndefValue, Value


@dataclass(frozen=True)
class SwiftOptions:
    copies: int = 3           # 3 = SWIFT-R (TMR), 2 = SWIFT (DMR)
    check_loads: bool = True
    check_stores: bool = True
    check_branches: bool = True
    check_other: bool = True
    #: Functions copied verbatim instead of hardened (third-party code).
    exclude: frozenset = frozenset()

    def __post_init__(self):
        if self.copies not in (2, 3):
            raise ValueError("copies must be 2 (SWIFT) or 3 (SWIFT-R)")


def swiftr_transform(module: Module, options: Optional[SwiftOptions] = None) -> Module:
    """Instruction-triplicating TMR transform (new module)."""
    options = options or SwiftOptions(copies=3)
    return _transform(module, options, suffix="swiftr")


def swift_transform(module: Module, options: Optional[SwiftOptions] = None) -> Module:
    """Instruction-duplicating DMR (fail-stop) transform (new module)."""
    options = options or SwiftOptions(copies=2)
    if options.copies != 2:
        raise ValueError("swift_transform requires copies=2")
    return _transform(module, options, suffix="swift")


def _transform(module: Module, options: SwiftOptions, suffix: str) -> Module:
    out = Module(f"{module.name}.{suffix}")
    module.clone_signature_into(out)
    for fn in module.functions.values():
        out.declare_function(fn.name, fn.ftype)
    for fn in module.functions.values():
        if fn.is_declaration:
            continue
        if fn.name in options.exclude:
            from .clone import clone_function_into

            clone_function_into(fn, out)
        else:
            _Triplicator(fn, out, options, suffix).run()
    return out


class _Triplicator:
    def __init__(self, fn: Function, target: Module, options: SwiftOptions,
                 suffix: str):
        self.fn = fn
        self.target = target
        self.options = options
        self.suffix = suffix
        self.new_fn = target.get_function(fn.name)
        self.builder = IRBuilder()
        # Original value -> tuple of N copies in the new function.
        self.vmap: Dict[int, Tuple[Value, ...]] = {}
        self.bmap: Dict[int, BasicBlock] = {}

    @property
    def n(self) -> int:
        return self.options.copies

    def run(self) -> Function:
        fn, new_fn = self.fn, self.new_fn
        new_fn._name_counter = fn._name_counter  # avoid %tN name collisions
        for old_arg, new_arg in zip(fn.args, new_fn.args):
            self.vmap[id(old_arg)] = (new_arg,) * self.n
        for block in fn.blocks:
            self.bmap[id(block)] = new_fn.append_block(block.name)
        for block in fn.blocks:
            self.builder.position_at_end(self.bmap[id(block)])
            for inst in block.instructions:
                self._transform(inst)
        self._wire_phis()
        new_fn.hardened = self.suffix
        return new_fn

    # Operand copies ----------------------------------------------------------------

    def copies(self, value: Value) -> Tuple[Value, ...]:
        if isinstance(value, (Constant, UndefValue)):
            return (value,) * self.n
        if isinstance(value, GlobalVariable):
            return (self.target.get_global(value.name),) * self.n
        if isinstance(value, FnValue):
            return (self.target.get_function(value.name),) * self.n
        mapped = self.vmap.get(id(value))
        if mapped is None:
            raise KeyError(f"unmapped operand {value.ref()} in @{self.fn.name}")
        return mapped

    def vote(self, value: Value, enabled: bool) -> Value:
        """Majority-vote (or DMR-check) the copies of an operand before
        it reaches a synchronization instruction; returns the winner."""
        copies = self.copies(value)
        if not enabled or _all_same(copies):
            return copies[0]
        if self.n == 2:
            callee = intr.swift_check(self.target, copies[0].type)
            return self.builder.call(callee, list(copies))
        callee = intr.tmr_vote(self.target, copies[0].type)
        return self.builder.call(callee, list(copies))

    # Transformation -------------------------------------------------------------------

    def _transform(self, inst: Instruction) -> None:
        b = self.builder

        if isinstance(inst, PhiInst):
            phis = []
            for i in range(self.n):
                phi = PhiInst(inst.type)
                phi.name = f"{inst.name}.c{i}" if i else inst.name
                b.block.append(phi)
                phis.append(phi)
            self.vmap[id(inst)] = tuple(phis)
            return

        if isinstance(inst, (BinaryInst, GepInst, SelectInst, ICmpInst,
                             FCmpInst, CastInst)):
            out = []
            for i in range(self.n):
                operands = [self.copies(op)[i] for op in inst.operands]
                copy = _rebuild(inst, operands)
                copy.name = f"{inst.name}.c{i}" if i else inst.name
                b.block.append(copy)
                out.append(copy)
            self.vmap[id(inst)] = tuple(out)
            return

        if isinstance(inst, LoadInst):
            addr = self.vote(inst.ptr, self.options.check_loads)
            loaded = b.load(inst.type, addr, name=inst.name)
            self.vmap[id(inst)] = (loaded,) * self.n
            return

        if isinstance(inst, StoreInst):
            value = self.vote(inst.value, self.options.check_stores)
            addr = self.vote(inst.ptr, self.options.check_stores)
            b.store(value, addr)
            return

        if isinstance(inst, AllocaInst):
            copy = AllocaInst(inst.allocated_type, inst.count)
            copy.name = inst.name
            b.block.append(copy)
            self.vmap[id(inst)] = (copy,) * self.n
            return

        if isinstance(inst, CallInst):
            args = [self.vote(a, self.options.check_other) for a in inst.args]
            callee = self.target.get_function(inst.callee.name)
            call = b.call(callee, args, name=inst.name)
            if not inst.type.is_void:
                self.vmap[id(inst)] = (call,) * self.n
            return

        if isinstance(inst, BranchInst):
            if not inst.is_conditional:
                b.br(self.bmap[id(inst.then_block)])
                return
            cond = self.vote(inst.cond, self.options.check_branches)
            b.cond_br(
                cond,
                self.bmap[id(inst.then_block)],
                self.bmap[id(inst.else_block)],
            )
            return

        if isinstance(inst, RetInst):
            if inst.value is None:
                b.ret_void()
                return
            b.ret(self.vote(inst.value, self.options.check_other))
            return

        if isinstance(inst, UnreachableInst):
            b.unreachable()
            return

        raise TypeError(f"SWIFT-R cannot transform {inst!r}")

    def _wire_phis(self) -> None:
        for block in self.fn.blocks:
            for inst in block.instructions:
                if not isinstance(inst, PhiInst):
                    continue
                new_phis = self.vmap[id(inst)]
                for value, pred in inst.incoming():
                    incoming = self.copies(value)
                    for phi, inc in zip(new_phis, incoming):
                        phi.add_incoming(inc, self.bmap[id(pred)])


def _rebuild(inst: Instruction, operands: List[Value]) -> Instruction:
    if isinstance(inst, BinaryInst):
        return BinaryInst(inst.opcode, operands[0], operands[1])
    if isinstance(inst, ICmpInst):
        return ICmpInst(inst.pred, operands[0], operands[1])
    if isinstance(inst, FCmpInst):
        return FCmpInst(inst.pred, operands[0], operands[1])
    if isinstance(inst, CastInst):
        return CastInst(inst.opcode, operands[0], inst.type)
    if isinstance(inst, GepInst):
        return GepInst(inst.elem_type, operands[0], operands[1])
    if isinstance(inst, SelectInst):
        return SelectInst(operands[0], operands[1], operands[2])
    raise TypeError(f"not a compute instruction: {inst!r}")


def _all_same(copies: Tuple[Value, ...]) -> bool:
    first = copies[0]
    return all(c is first for c in copies[1:])
