"""Dead code elimination: remove value-producing instructions whose
results are never used and which cannot have side effects, iterating to
a fixed point. Also prunes unreachable blocks."""

from __future__ import annotations

from ..ir.function import Function
from ..ir.module import Module
from .utils import build_use_map, has_side_effects, remove_unreachable_blocks


def dce(module: Module) -> Module:
    for fn in module.defined_functions():
        dce_function(fn)
    module.bump_version()
    return module


def dce_function(fn: Function) -> int:
    """Returns the number of instructions removed."""
    removed = remove_unreachable_blocks(fn)
    while True:
        uses = build_use_map(fn)
        dead = []
        for block in fn.blocks:
            for inst in block.instructions:
                if inst.is_terminator or has_side_effects(inst):
                    continue
                if inst.type.is_void:
                    continue
                if not uses.get(id(inst)):
                    dead.append(inst)
        if not dead:
            return removed
        for inst in dead:
            inst.parent.remove(inst)
        removed += len(dead)
