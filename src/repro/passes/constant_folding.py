"""Constant folding: evaluate instructions whose operands are all
constants and replace their uses with the result.

Shares the scalar semantics helpers with the interpreter so folding and
execution can never disagree. Division by a constant zero is left in
place (it must trap at run time)."""

from __future__ import annotations

from typing import Optional

from ..cpu.errors import ArithmeticFault
from ..cpu import interpreter as interp
from ..ir import types as T
from ..ir.function import Function
from ..ir.instructions import (
    BinaryInst,
    CastInst,
    FCmpInst,
    ICmpInst,
    Instruction,
    SelectInst,
)
from ..ir.module import Module
from ..ir.values import Constant
from .utils import replace_all_uses


def constant_folding(module: Module) -> Module:
    for fn in module.defined_functions():
        fold_function(fn)
    module.bump_version()
    return module


def fold_function(fn: Function) -> int:
    """Returns the number of instructions folded (and erased)."""
    folded = 0
    changed = True
    while changed:
        changed = False
        for block in fn.blocks:
            for inst in list(block.instructions):
                replacement = _try_fold(inst)
                if replacement is None:
                    continue
                replace_all_uses(fn, inst, replacement)
                block.remove(inst)
                folded += 1
                changed = True
    return folded


def _try_fold(inst: Instruction) -> Optional[Constant]:
    if not all(isinstance(op, Constant) for op in inst.operands):
        return None
    ty = inst.type
    if isinstance(inst, BinaryInst):
        a, b = inst.lhs.value, inst.rhs.value
        elem = ty.elem if ty.is_vector else ty
        try:
            if ty.is_vector:
                if elem.is_float:
                    value = tuple(
                        interp._float_binop(inst.opcode, x, y, elem.bits)
                        for x, y in zip(a, b)
                    )
                else:
                    value = tuple(
                        interp._int_binop(inst.opcode, x, y, elem.width)
                        for x, y in zip(a, b)
                    )
            elif elem.is_float:
                value = interp._float_binop(inst.opcode, a, b, elem.bits)
            else:
                value = interp._int_binop(inst.opcode, a, b, elem.width)
        except ArithmeticFault:
            return None  # keep the trapping division
        return Constant(ty, value)
    if isinstance(inst, ICmpInst):
        oty = inst.lhs.type
        fun = interp._ICMP[inst.pred]
        if oty.is_vector:
            width = T.bitwidth(oty.elem)
            value = tuple(
                1 if fun(x, y, width) else 0
                for x, y in zip(inst.lhs.value, inst.rhs.value)
            )
            return Constant(ty, value)
        width = T.bitwidth(oty)
        return Constant(T.I1, 1 if fun(inst.lhs.value, inst.rhs.value, width) else 0)
    if isinstance(inst, FCmpInst):
        fun = interp._FCMP[inst.pred]
        if inst.lhs.type.is_vector:
            value = tuple(
                1 if fun(x, y) else 0
                for x, y in zip(inst.lhs.value, inst.rhs.value)
            )
            return Constant(ty, value)
        return Constant(T.I1, 1 if fun(inst.lhs.value, inst.rhs.value) else 0)
    if isinstance(inst, CastInst):
        src = inst.value.type
        if inst.opcode in ("inttoptr", "ptrtoint", "bitcast"):
            return None  # pointer provenance: leave alone
        if ty.is_vector:
            value = tuple(
                interp._cast_scalar(inst.opcode, v, src.elem, ty.elem)
                for v in inst.value.value
            )
            return Constant(ty, value)
        return Constant(ty, interp._cast_scalar(inst.opcode, inst.value.value, src, ty))
    if isinstance(inst, SelectInst):
        if inst.cond.type.is_vector:
            return None
        chosen = inst.tval if inst.cond.value else inst.fval
        return Constant(ty, chosen.value)
    return None
