"""The ELZAR transformation (paper §III, §IV).

ELZAR replicates *data*, not instructions: every live value is held in
all four lanes of a vector (YMM) register, and replicable computation
(arithmetic, logic, comparisons, casts, address arithmetic, selects,
phis) is rewritten to the corresponding vector operation so that all
replicas are computed by one instruction (Figure 2).

Synchronization instructions (loads, stores, calls, returns, branches;
§III-B) stay scalar. ELZAR wraps them:

- a load extracts lane 0 of the replicated address, performs the scalar
  load, and broadcasts the result back into all lanes (Figure 6);
- a store extracts both the value and the address;
- calls extract every argument and broadcast the return value, so
  function signatures never change (§III-B) — this also gives the
  module-boundary behaviour of the paper for unhardened externals;
- a branch turns into a lane-wise comparison followed by a
  ptest-style collapse of the replicated i1 result (Figure 7).

Checks (§III-C step 2) are inserted before synchronization
instructions: the shuffle–xor–ptest sequence of Figure 8, modelled by
the ``elzar.check.*`` intrinsic whose fast-path cost equals that
sequence and whose slow path performs the extended majority-vote
recovery of §III-C step 3 (including the no-majority program stop).
Branch checks reuse the ptest needed for branching anyway, adding only
one jump (Figure 9) — hence the separate, cheaper
``elzar.branch_cond`` intrinsic; with branch checks disabled the
``_nocheck`` variant still pays the ptest because AVX has no other way
to branch.

Deviations from the paper (documented in DESIGN.md): every type is
replicated exactly 4x (the paper fills the whole YMM register, §III-D
option 3), and check/recovery are intrinsics with the paper's costs
rather than inline IR, keeping the hardened CFG isomorphic to the
original. The fault-injection window of vulnerability on extracted
addresses (§V-C) is preserved: the extract happens *after* the check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..cpu import intrinsics as intr
from ..ir import types as T
from ..ir.builder import IRBuilder
from ..ir.function import BasicBlock, Function
from ..ir.instructions import (
    AllocaInst,
    BinaryInst,
    BranchInst,
    BroadcastInst,
    CallInst,
    CastInst,
    FCmpInst,
    GepInst,
    ICmpInst,
    Instruction,
    LoadInst,
    PhiInst,
    RetInst,
    SelectInst,
    StoreInst,
    UnreachableInst,
)
from ..ir.module import Module
from ..ir.values import Argument, Constant, GlobalVariable, UndefValue, Value

LANES = 4


@dataclass(frozen=True)
class ElzarOptions:
    """Configuration knobs for the experiments.

    The check_* flags reproduce Figure 12's ablation ("no loads",
    "+ no stores", "+ no branches", "all checks disabled");
    ``float_only`` reproduces the stripped-down version of §V-B that
    replicates floats/doubles but not integers and pointers.
    """

    lanes: int = LANES
    check_loads: bool = True
    check_stores: bool = True
    check_branches: bool = True
    check_other: bool = True  # calls, returns
    float_only: bool = False
    #: Detection-only ablation: checks fail-stop instead of recovering
    #: by majority vote (the HAFT-style division of labour the paper
    #: contrasts itself with in §II-A: detection in-thread, recovery
    #: delegated to an external mechanism).
    fail_stop: bool = False
    #: Functions copied verbatim instead of hardened — the paper leaves
    #: third-party libraries unprotected (§IV-A, §VI Apache).
    exclude: frozenset = frozenset()

    def __post_init__(self):
        if self.lanes < 2:
            raise ValueError("replication needs at least 2 lanes")
        if self.lanes < 3 and not self.fail_stop:
            raise ValueError(
                "majority voting needs >=3 replicas (paper §II-B); use "
                "fail_stop=True for 2-lane detection-only hardening"
            )

    @staticmethod
    def no_checks() -> "ElzarOptions":
        return ElzarOptions(
            check_loads=False,
            check_stores=False,
            check_branches=False,
            check_other=False,
        )


def elzar_transform(
    module: Module, options: Optional[ElzarOptions] = None
) -> Module:
    """Return a new module in which every defined function is hardened."""
    options = options or ElzarOptions()
    out = Module(f"{module.name}.elzar")
    module.clone_signature_into(out)
    for fn in module.functions.values():
        out.declare_function(fn.name, fn.ftype)
    for fn in module.functions.values():
        if fn.is_declaration:
            continue
        if fn.name in options.exclude:
            _copy_unhardened(fn, out)
        else:
            _harden_function(fn, out, options)
    return out


def _copy_unhardened(fn: Function, target: Module) -> None:
    # clone_function_into fills the declaration shell already present in
    # ``target`` (other functions hold references to that shell).
    from .clone import clone_function_into

    clone_function_into(fn, target)


class _FunctionHardener:
    def __init__(self, fn: Function, target: Module, options: ElzarOptions):
        self.fn = fn
        self.target = target
        self.options = options
        self.new_fn = target.get_function(fn.name)
        self.builder = IRBuilder()
        self.vmap: Dict[int, Value] = {}
        self.bmap: Dict[int, BasicBlock] = {}
        self._entry_broadcasts: Dict[int, Value] = {}

    # Protection predicate -----------------------------------------------------

    def protects(self, ty: T.Type) -> bool:
        """Should a value of this (scalar) type live replicated?"""
        if ty.is_void or ty.is_vector:
            return False
        if self.options.float_only:
            return ty.is_float
        return True

    def vec_ty(self, ty: T.Type) -> T.VectorType:
        return T.vector(ty, self.options.lanes)

    # Main driver -----------------------------------------------------------------

    def run(self) -> Function:
        fn, new_fn = self.fn, self.new_fn
        new_fn._name_counter = fn._name_counter  # avoid %tN name collisions
        for old_arg, new_arg in zip(fn.args, new_fn.args):
            self.vmap[id(old_arg)] = new_arg  # replicated lazily at entry
        for block in fn.blocks:
            self.bmap[id(block)] = new_fn.append_block(block.name)

        for block in fn.blocks:
            self.builder.position_at_end(self.bmap[id(block)])
            for inst in block.instructions:
                self._transform(inst)

        self._wire_phis()
        new_fn.hardened = "elzar-float" if self.options.float_only else "elzar"
        return new_fn

    # Operand representation ---------------------------------------------------------

    def rep(self, value: Value) -> Value:
        """Hardened representation of an operand: a 4-lane vector for
        protected values, the scalar clone otherwise."""
        if isinstance(value, Constant):
            if self.protects(value.type):
                return Constant(self.vec_ty(value.type), (value.value,) * self.options.lanes)
            return value
        if isinstance(value, UndefValue):
            if self.protects(value.type):
                return UndefValue(self.vec_ty(value.type))
            return value
        if isinstance(value, GlobalVariable):
            gv = self.target.get_global(value.name)
            if self.protects(value.type):
                return self._entry_broadcast(gv)
            return gv
        if isinstance(value, Function):
            return self.target.get_function(value.name)
        if isinstance(value, Argument):
            mapped = self.vmap[id(value)]
            if self.protects(value.type):
                return self._entry_broadcast(mapped)
            return mapped
        mapped = self.vmap.get(id(value))
        if mapped is None:
            raise KeyError(f"unmapped operand {value.ref()} in @{self.fn.name}")
        return mapped

    def _entry_broadcast(self, scalar: Value) -> Value:
        """Broadcast a function input (argument/global address) into a
        replicated register once, in the entry block (§III-B: "ILR
        replicates all inputs")."""
        cached = self._entry_broadcasts.get(id(scalar))
        if cached is not None:
            return cached
        entry = self.new_fn.entry
        bcast = BroadcastInst(scalar, self.options.lanes)
        bcast.name = self.new_fn.next_name(f"{scalar.name}.rep")
        entry.insert(entry.first_non_phi_index(), bcast)
        self._entry_broadcasts[id(scalar)] = bcast
        return bcast

    # Check / extract helpers ----------------------------------------------------------

    def check(self, vec: Value, enabled: bool) -> Value:
        """Insert a check-and-recover (or fail-stop) call if checks are
        enabled for this class of synchronization instruction."""
        if not enabled or not vec.type.is_vector:
            return vec
        if self.options.fail_stop:
            callee = intr.elzar_check_dmr(self.target, vec.type)
        else:
            callee = intr.elzar_check(self.target, vec.type)
        return self.builder.call(callee, [vec])

    def to_scalar(self, value: Value, check_enabled: bool) -> Value:
        """Collapse a hardened operand to a scalar for use by a
        synchronization instruction (check, then extract lane 0).

        Splat constants collapse for free — the backend folds an
        extract of a constant vector to an immediate (no check needed
        either: constants cannot be corrupted in our register-fault
        model, and the paper's checks guard *computed* replicas)."""
        if not value.type.is_vector:
            return value
        if isinstance(value, Constant):
            first = value.value[0]
            if all(v == first for v in value.value[1:]):
                return Constant(value.type.elem, first)
        checked = self.check(value, check_enabled)
        return self.builder.extractelement(checked, IRBuilder.i64(0))

    def from_scalar(self, scalar: Value) -> Value:
        """Replicate a synchronization instruction's scalar result."""
        return self.builder.broadcast(scalar, self.options.lanes)

    # Instruction transformation ----------------------------------------------------------

    def _transform(self, inst: Instruction) -> None:
        b = self.builder
        opcode = inst.opcode

        if isinstance(inst, PhiInst):
            ty = self.vec_ty(inst.type) if self.protects(inst.type) else inst.type
            phi = PhiInst(ty)
            phi.name = inst.name
            b.block.append(phi)
            self.vmap[id(inst)] = phi
            return

        if isinstance(inst, (BinaryInst, GepInst, SelectInst, ICmpInst, FCmpInst,
                             CastInst)):
            self._transform_compute(inst)
            return

        if isinstance(inst, LoadInst):
            addr = self.to_scalar(self.rep(inst.ptr), self.options.check_loads)
            loaded = b.load(inst.type, addr, name=inst.name)
            if self.protects(inst.type):
                self.vmap[id(inst)] = self.from_scalar(loaded)
            else:
                self.vmap[id(inst)] = loaded
            return

        if isinstance(inst, StoreInst):
            # Paper §V-B: stores check both the address and the value,
            # which is why store checks cost more than load checks.
            value = self.to_scalar(self.rep(inst.value), self.options.check_stores)
            addr = self.to_scalar(self.rep(inst.ptr), self.options.check_stores)
            b.store(value, addr)
            return

        if isinstance(inst, AllocaInst):
            copy = AllocaInst(inst.allocated_type, inst.count)
            copy.name = inst.name
            b.block.append(copy)
            if self.protects(T.PTR):
                self.vmap[id(inst)] = self.from_scalar(copy)
            else:
                self.vmap[id(inst)] = copy
            return

        if isinstance(inst, CallInst):
            args = [
                self.to_scalar(self.rep(a), self.options.check_other)
                for a in inst.args
            ]
            callee = self.target.get_function(inst.callee.name)
            call = b.call(callee, args, name=inst.name)
            if not inst.type.is_void:
                if self.protects(inst.type):
                    self.vmap[id(inst)] = self.from_scalar(call)
                else:
                    self.vmap[id(inst)] = call
            return

        if isinstance(inst, BranchInst):
            if not inst.is_conditional:
                b.br(self.bmap[id(inst.then_block)])
                return
            cond = self.rep(inst.cond)
            if cond.type.is_vector:
                if self.options.fail_stop and self.options.check_branches:
                    callee = intr.elzar_branch_cond_dmr(
                        self.target, cond.type.count
                    )
                else:
                    callee = intr.elzar_branch_cond(
                        self.target, cond.type.count,
                        checked=self.options.check_branches,
                    )
                cond = b.call(callee, [cond])
            b.cond_br(
                cond,
                self.bmap[id(inst.then_block)],
                self.bmap[id(inst.else_block)],
            )
            return

        if isinstance(inst, RetInst):
            if inst.value is None:
                b.ret_void()
                return
            value = self.to_scalar(self.rep(inst.value), self.options.check_other)
            b.ret(value)
            return

        if isinstance(inst, UnreachableInst):
            b.unreachable()
            return

        raise TypeError(f"ELZAR cannot transform {inst!r}")

    def _transform_compute(self, inst: Instruction) -> None:
        """Replicable computation: emit the vector form when the result
        (and in float_only mode, the operand domain) is protected."""
        b = self.builder
        if isinstance(inst, (ICmpInst, FCmpInst)):
            protected = self.protects(inst.lhs.type)
        else:
            protected = self.protects(inst.type)

        if not protected:
            # float_only mode: clone scalar, but operands that live in
            # the protected domain must be collapsed first (fptosi etc).
            operands = [self._unprotect(op) for op in inst.operands]
            copy = _rebuild(inst, operands)
            copy.name = inst.name
            b.block.append(copy)
            if not inst.type.is_void:
                self.vmap[id(inst)] = copy
            return

        operands = [self._protect(self.rep(op), op.type) for op in inst.operands]
        copy = _rebuild_vector(inst, operands, self.options.lanes)
        copy.name = inst.name
        b.block.append(copy)
        # Note for float_only mode: fcmp results stay replicated
        # (<4 x i1>); they collapse only at synchronization points —
        # branches via ptest, scalar consumers via _unprotect — exactly
        # like full-mode i1 values. An i1 phi mixing replicated and
        # scalar incomings is not supported in float_only mode (none of
        # the paper's FP workloads produce one); _wire_phis reports it.
        self.vmap[id(inst)] = copy

    def _protect(self, value: Value, orig_ty: T.Type) -> Value:
        """Lift an operand into the replicated domain if it is not
        there already (float_only mode: an int feeding sitofp)."""
        if value.type.is_vector or value.type.is_void:
            return value
        if isinstance(value, Constant):
            return Constant(self.vec_ty(value.type), (value.value,) * self.options.lanes)
        return self.builder.broadcast(value, self.options.lanes)

    def _unprotect(self, op: Value) -> Value:
        """Collapse a protected operand for use by an unprotected
        instruction (float_only mode: fptosi's float input). Checked:
        leaving the protected domain is a synchronization point."""
        mapped = self.rep(op)
        if mapped.type.is_vector:
            return self.to_scalar(mapped, self.options.check_other)
        return mapped

    # Phi wiring ------------------------------------------------------------------------

    def _wire_phis(self) -> None:
        for block in self.fn.blocks:
            for inst in block.instructions:
                if not isinstance(inst, PhiInst):
                    continue
                new_phi = self.vmap[id(inst)]
                for value, pred in inst.incoming():
                    incoming = self.rep(value)
                    if new_phi.type.is_vector and not incoming.type.is_vector:
                        incoming = self._lift_constant(incoming)
                    elif not new_phi.type.is_vector and incoming.type.is_vector:
                        raise TypeError(
                            f"float_only mode cannot mix replicated and "
                            f"scalar values in phi {inst.ref()} of "
                            f"@{self.fn.name}; harden with the full mode"
                        )
                    new_phi.add_incoming(incoming, self.bmap[id(pred)])

    def _lift_constant(self, value: Value) -> Value:
        if isinstance(value, Constant):
            return Constant(
                self.vec_ty(value.type), (value.value,) * self.options.lanes
            )
        raise TypeError(f"cannot lift {value!r} into the replicated domain")


def _rebuild(inst: Instruction, operands) -> Instruction:
    """Clone a compute instruction with new (scalar) operands."""
    if isinstance(inst, BinaryInst):
        return BinaryInst(inst.opcode, operands[0], operands[1])
    if isinstance(inst, ICmpInst):
        return ICmpInst(inst.pred, operands[0], operands[1])
    if isinstance(inst, FCmpInst):
        return FCmpInst(inst.pred, operands[0], operands[1])
    if isinstance(inst, CastInst):
        return CastInst(inst.opcode, operands[0], inst.type)
    if isinstance(inst, GepInst):
        return GepInst(inst.elem_type, operands[0], operands[1])
    if isinstance(inst, SelectInst):
        return SelectInst(operands[0], operands[1], operands[2])
    raise TypeError(f"not a compute instruction: {inst!r}")


def _rebuild_vector(inst: Instruction, operands, lanes: int) -> Instruction:
    """Vector form of a compute instruction with replicated operands."""
    if isinstance(inst, BinaryInst):
        return BinaryInst(inst.opcode, operands[0], operands[1])
    if isinstance(inst, ICmpInst):
        return ICmpInst(inst.pred, operands[0], operands[1])
    if isinstance(inst, FCmpInst):
        return FCmpInst(inst.pred, operands[0], operands[1])
    if isinstance(inst, CastInst):
        to_ty = T.vector(inst.type, lanes)
        return CastInst(inst.opcode, operands[0], to_ty)
    if isinstance(inst, GepInst):
        return GepInst(inst.elem_type, operands[0], operands[1])
    if isinstance(inst, SelectInst):
        return SelectInst(operands[0], operands[1], operands[2])
    raise TypeError(f"not a compute instruction: {inst!r}")


def _harden_function(fn: Function, target: Module, options: ElzarOptions) -> Function:
    return _FunctionHardener(fn, target, options).run()
