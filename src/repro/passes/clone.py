"""Function/module cloning with operand remapping.

Used by every transformation that builds a new module (hardening,
vectorization): the clone maps argument objects, block objects, global
references and callees into the target module.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..ir.function import BasicBlock, Function
from ..ir.instructions import (
    AllocaInst,
    BinaryInst,
    BranchInst,
    BroadcastInst,
    CallInst,
    CastInst,
    ExtractElementInst,
    FCmpInst,
    GepInst,
    ICmpInst,
    InsertElementInst,
    Instruction,
    LoadInst,
    PhiInst,
    RetInst,
    SelectInst,
    ShuffleVectorInst,
    StoreInst,
    UnreachableInst,
)
from ..ir.module import Module
from ..ir.values import Constant, GlobalVariable, UndefValue, Value


def clone_instruction(
    inst: Instruction,
    operand: Callable[[Value], Value],
    block: Callable[[BasicBlock], BasicBlock],
) -> Instruction:
    """Structural copy of ``inst`` with operands passed through
    ``operand`` and block references through ``block``. Phi incoming
    edges are NOT copied (wire them in a second pass)."""
    if isinstance(inst, BinaryInst):
        return BinaryInst(inst.opcode, operand(inst.lhs), operand(inst.rhs))
    if isinstance(inst, ICmpInst):
        return ICmpInst(inst.pred, operand(inst.lhs), operand(inst.rhs))
    if isinstance(inst, FCmpInst):
        return FCmpInst(inst.pred, operand(inst.lhs), operand(inst.rhs))
    if isinstance(inst, CastInst):
        return CastInst(inst.opcode, operand(inst.value), inst.type)
    if isinstance(inst, AllocaInst):
        return AllocaInst(inst.allocated_type, inst.count)
    if isinstance(inst, LoadInst):
        return LoadInst(inst.type, operand(inst.ptr))
    if isinstance(inst, StoreInst):
        return StoreInst(operand(inst.value), operand(inst.ptr))
    if isinstance(inst, GepInst):
        return GepInst(inst.elem_type, operand(inst.ptr), operand(inst.index))
    if isinstance(inst, BranchInst):
        if inst.is_conditional:
            return BranchInst(
                operand(inst.cond), block(inst.then_block), block(inst.else_block)
            )
        return BranchInst(None, block(inst.then_block))
    if isinstance(inst, RetInst):
        return RetInst(None if inst.value is None else operand(inst.value))
    if isinstance(inst, UnreachableInst):
        return UnreachableInst()
    if isinstance(inst, CallInst):
        return CallInst(operand(inst.callee), [operand(a) for a in inst.args])
    if isinstance(inst, PhiInst):
        return PhiInst(inst.type)
    if isinstance(inst, SelectInst):
        return SelectInst(operand(inst.cond), operand(inst.tval), operand(inst.fval))
    if isinstance(inst, ExtractElementInst):
        return ExtractElementInst(operand(inst.vec), operand(inst.index))
    if isinstance(inst, InsertElementInst):
        return InsertElementInst(
            operand(inst.vec), operand(inst.elem), operand(inst.index)
        )
    if isinstance(inst, ShuffleVectorInst):
        return ShuffleVectorInst(operand(inst.v1), operand(inst.v2), inst.mask)
    if isinstance(inst, BroadcastInst):
        return BroadcastInst(operand(inst.scalar), inst.type.count)
    raise TypeError(f"cannot clone {inst!r}")


def clone_function_into(
    fn: Function,
    target: Module,
    name: Optional[str] = None,
    value_map: Optional[Dict[int, Value]] = None,
) -> Function:
    """Clone ``fn`` into ``target`` (which must already contain any
    globals/functions the body references, by name)."""
    new_fn = target.functions.get(name or fn.name)
    if new_fn is None:
        new_fn = target.add_function(
            name or fn.name, fn.ftype, [a.name for a in fn.args]
        )
    vmap: Dict[int, Value] = value_map if value_map is not None else {}
    for old_arg, new_arg in zip(fn.args, new_fn.args):
        vmap[id(old_arg)] = new_arg
    bmap: Dict[int, BasicBlock] = {}
    for old_block in fn.blocks:
        bmap[id(old_block)] = new_fn.append_block(old_block.name)

    def operand(v: Value) -> Value:
        mapped = vmap.get(id(v))
        if mapped is not None:
            return mapped
        if isinstance(v, (Constant, UndefValue)):
            return v
        if isinstance(v, GlobalVariable):
            return target.get_global(v.name)
        if isinstance(v, Function):
            return target.get_function(v.name)
        raise KeyError(f"unmapped operand {v!r} while cloning @{fn.name}")

    def block(b: BasicBlock) -> BasicBlock:
        return bmap[id(b)]

    for old_block in fn.blocks:
        new_block = bmap[id(old_block)]
        for inst in old_block.instructions:
            copy = clone_instruction(inst, operand, block)
            copy.name = inst.name
            new_block.append(copy)
            if not inst.type.is_void:
                vmap[id(inst)] = copy

    # Second pass: phi incoming edges.
    for old_block in fn.blocks:
        for inst in old_block.instructions:
            if isinstance(inst, PhiInst):
                new_phi = vmap[id(inst)]
                for value, pred in inst.incoming():
                    new_phi.add_incoming(operand(value), block(pred))
    new_fn._name_counter = fn._name_counter
    new_fn.hardened = fn.hardened
    return new_fn


def clone_module(module: Module, name: Optional[str] = None) -> Module:
    """Deep-copy a module (globals shared by object, bodies cloned)."""
    out = Module(name or module.name)
    for gv in module.globals.values():
        out.globals[gv.name] = gv
    for fn in module.functions.values():
        out.add_function(fn.name, fn.ftype, [a.name for a in fn.args])
    for fn in module.functions.values():
        if not fn.is_declaration:
            clone_function_into(fn, out)
    return out
