"""repro.passes — IR transformations: optimization, vectorization, and
the ELZAR / SWIFT-R / SWIFT hardening schemes."""

from .clone import clone_function_into, clone_instruction, clone_module
from .constant_folding import constant_folding, fold_function
from .dce import dce, dce_function
from .elzar import ElzarOptions, elzar_transform
from .inline import inline_function_calls, inline_module
from .mem2reg import mem2reg, promote_function
from .pass_manager import PassManager
from .simplify_cfg import simplify_cfg, simplify_function_cfg
from .swiftr import SwiftOptions, swift_transform, swiftr_transform
from .utils import (
    build_use_map,
    erase_instruction,
    has_side_effects,
    remove_unreachable_blocks,
    replace_all_uses,
)

__all__ = [
    "ElzarOptions",
    "PassManager",
    "SwiftOptions",
    "build_use_map",
    "clone_function_into",
    "clone_instruction",
    "clone_module",
    "constant_folding",
    "dce",
    "dce_function",
    "elzar_transform",
    "erase_instruction",
    "inline_function_calls",
    "inline_module",
    "fold_function",
    "has_side_effects",
    "mem2reg",
    "promote_function",
    "remove_unreachable_blocks",
    "replace_all_uses",
    "simplify_cfg",
    "simplify_function_cfg",
    "swift_transform",
    "swiftr_transform",
]
