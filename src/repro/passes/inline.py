"""Function inlining.

The paper applies ELZAR "after all optimization passes" (§IV-A), i.e.
after LLVM -O3 has inlined the hot math and helper calls. Without
inlining, every call boundary pays ELZAR's argument-check/extract +
return-broadcast wrappers, grossly inflating overhead for call-heavy
kernels (blackscholes' CNDF chain). This pass inlines small,
non-recursive callees until a fixed point.

Mechanics: the call block is split at the call site; the callee body is
cloned into the caller with arguments mapped to the call operands;
every cloned ``ret`` branches to the continuation block, where a phi
merges the return values.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..ir.function import BasicBlock, Function
from ..ir.instructions import BranchInst, CallInst, PhiInst, RetInst
from ..ir.module import Module
from ..ir.values import Constant, GlobalVariable, UndefValue, Value
from .clone import clone_instruction
from .utils import replace_all_uses

#: Callees with at most this many instructions are inlined.
DEFAULT_THRESHOLD = 120

#: Upper bound on a caller's growth, as a multiple of its original size.
GROWTH_CAP = 12


def inline_module(module: Module, threshold: int = DEFAULT_THRESHOLD,
                  exclude: frozenset = frozenset()) -> Module:
    """Inline small calls in every defined function (to a fixed point,
    bounded by the growth cap). ``exclude`` names third-party functions
    that must stay out-of-line (their hardening/vectorization status is
    managed separately, §IV-A)."""
    for fn in module.defined_functions():
        inline_function_calls(fn, module, threshold, exclude)
    module.bump_version()
    return module


def _size(fn: Function) -> int:
    return sum(len(b.instructions) for b in fn.blocks)


def _is_self_recursive(fn: Function) -> bool:
    return any(
        isinstance(i, CallInst) and i.callee is fn for i in fn.instructions()
    )


def inline_function_calls(
    fn: Function, module: Module, threshold: int = DEFAULT_THRESHOLD,
    exclude: frozenset = frozenset(),
) -> int:
    """Inline eligible call sites inside ``fn``; returns how many."""
    budget = max(_size(fn) * GROWTH_CAP, 400)
    inlined = 0
    changed = True
    while changed and _size(fn) < budget:
        changed = False
        for block in list(fn.blocks):
            site = _find_site(block, fn, module, threshold, exclude)
            if site is not None:
                _inline_site(fn, block, site)
                inlined += 1
                changed = True
                break
    return inlined


def _find_site(block: BasicBlock, fn: Function, module: Module,
               threshold: int, exclude: frozenset = frozenset()) -> Optional[CallInst]:
    for inst in block.instructions:
        if not isinstance(inst, CallInst):
            continue
        callee = inst.callee
        if callee.is_declaration or callee.is_intrinsic:
            continue
        if callee.name in exclude:
            continue
        if callee is fn or _is_self_recursive(callee):
            continue
        if _size(callee) > threshold:
            continue
        return inst
    return None


def _inline_site(fn: Function, block: BasicBlock, call: CallInst) -> None:
    callee = call.callee
    index = block.instructions.index(call)

    # Split: `block` keeps [0, index); `cont` receives (index, end].
    cont = fn.insert_block_after(block, fn.next_name(f"{callee.name}.cont"))
    tail = block.instructions[index + 1:]
    del block.instructions[index:]
    for inst in tail:
        inst.parent = cont
        cont.instructions.append(inst)

    # Successor phis must now name `cont` as their predecessor.
    term = cont.terminator
    if isinstance(term, BranchInst):
        for succ in term.targets():
            for phi in succ.phis():
                phi.replace_incoming_block(block, cont)

    # Clone the callee body.
    vmap: Dict[int, Value] = {}
    for formal, actual in zip(callee.args, call.args):
        vmap[id(formal)] = actual
    bmap: Dict[int, BasicBlock] = {}
    new_blocks: List[BasicBlock] = []
    insert_after = block
    for src in callee.blocks:
        nb = fn.insert_block_after(
            insert_after, fn.next_name(f"{callee.name}.{src.name}")
        )
        insert_after = nb
        bmap[id(src)] = nb
        new_blocks.append(nb)

    def operand(v: Value) -> Value:
        mapped = vmap.get(id(v))
        if mapped is not None:
            return mapped
        if isinstance(v, (Constant, UndefValue, GlobalVariable, Function)):
            return v
        raise KeyError(
            f"unmapped operand {v.ref()} while inlining @{callee.name}"
        )

    def blockref(b: BasicBlock) -> BasicBlock:
        return bmap[id(b)]

    returns: List[tuple] = []
    for src in callee.blocks:
        dst = bmap[id(src)]
        for inst in src.instructions:
            if isinstance(inst, RetInst):
                value = None if inst.value is None else operand(inst.value)
                returns.append((value, dst))
                dst.append(BranchInst(None, cont))
                continue
            copy = clone_instruction(inst, operand, blockref)
            copy.name = fn.next_name(inst.name or "t") if inst.name else ""
            dst.append(copy)
            if not inst.type.is_void:
                vmap[id(inst)] = copy

    # Second pass: phi incoming edges within the cloned body.
    for src in callee.blocks:
        for inst in src.instructions:
            if isinstance(inst, PhiInst):
                new_phi = vmap[id(inst)]
                for value, pred in inst.incoming():
                    new_phi.add_incoming(operand(value), blockref(pred))

    # Enter the inlined body.
    block.append(BranchInst(None, bmap[id(callee.entry)]))

    # Merge return values in the continuation block.
    if not call.type.is_void:
        if not returns:  # callee never returns; cont is unreachable
            replacement = UndefValue(call.type)
        elif len(returns) == 1:
            replacement = returns[0][0]
        else:
            phi = PhiInst(call.type)
            phi.name = fn.next_name(f"{callee.name}.ret")
            for value, pred in returns:
                phi.add_incoming(value, pred)
            cont.insert(0, phi)
            replacement = phi
        replace_all_uses(fn, call, replacement)
    # Drop the call (it was removed from `block` with the tail; make
    # sure it is not in `cont` either).
    if call in cont.instructions:
        cont.remove(call)
