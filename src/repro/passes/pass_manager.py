"""A minimal pass manager.

A *pass* is a callable ``(Module) -> Module`` (it may transform in
place and return its input, or build a fresh module). The manager runs
them in order, optionally verifying after each pass — the same shape as
the paper's LLVM pipeline, where ELZAR runs "after all optimization
passes and right before assembly code generation" (§IV-A).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from ..ir.module import Module
from ..ir.verifier import verify_module

Pass = Callable[[Module], Module]


class PassManager:
    def __init__(self, verify_each: bool = False):
        self.verify_each = verify_each
        self._passes: List[Tuple[str, Pass]] = []

    def add(self, pass_fn: Pass, name: Optional[str] = None) -> "PassManager":
        self._passes.append((name or getattr(pass_fn, "__name__", "pass"), pass_fn))
        return self

    def run(self, module: Module) -> Module:
        for name, pass_fn in self._passes:
            result = pass_fn(module)
            module = result if result is not None else module
            # Passes mutate IR (often in place): invalidate decoded-form
            # and golden-run caches keyed on the module version.
            module.bump_version()
            if self.verify_each:
                try:
                    verify_module(module)
                except Exception as exc:
                    raise RuntimeError(f"verification failed after {name}") from exc
        return module

    @property
    def pass_names(self) -> List[str]:
        return [name for name, _ in self._passes]
