"""Loop auto-vectorizer.

Provides the "native" (SIMD-enabled) baseline of Figure 1: the paper
compares each application compiled with all vectorization enabled
against a ``no-SIMD`` build, finding that most applications gain little
(<10%) from SIMD — the motivation for using the idle SIMD lanes for
fault tolerance instead. ELZAR itself requires vectorization to be
*disabled* in the original program (§IV-A), so the hardening pipeline
never runs this pass.

Scope (deliberately that of a classic inner-loop vectorizer):

- canonical counted loops (the shape ``IRBuilder.begin_loop`` emits):
  a header with the induction phi, an ``slt`` bound test, and a single
  body block that is also the latch; constant step 1;
- unit-stride memory accesses: ``gep base, i`` with a loop-invariant
  base; at most one distinct store base, assumed not to alias loads
  (the builder's arrays come from distinct globals/allocations);
- straight-line body of vectorizable compute (binary ops, casts,
  selects, comparisons);
- reduction phis over {add, fadd, mul, fmul, and, or, xor}.

The transform emits a 4-wide main loop with contiguous vector loads and
stores, broadcast loop-invariants, a horizontal reduction block, and
reuses the original loop as the scalar epilogue.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..ir import types as T
from ..ir.builder import IRBuilder
from ..ir.cfg import find_natural_loops
from ..ir.function import BasicBlock, Function
from ..ir.instructions import (
    BinaryInst,
    BranchInst,
    CastInst,
    FCmpInst,
    GepInst,
    ICmpInst,
    Instruction,
    LoadInst,
    PhiInst,
    SelectInst,
    StoreInst,
)
from ..ir.module import Module
from ..ir.values import Constant, Value

WIDTH = 4

_REDUCTION_IDENTITY = {
    "add": 0,
    "fadd": 0.0,
    "mul": 1,
    "fmul": 1.0,
    "and": -1,  # all ones (masked by width)
    "or": 0,
    "xor": 0,
}


@dataclass
class _Candidate:
    header: BasicBlock
    body: BasicBlock
    exit: BasicBlock
    preheader: BasicBlock
    index: PhiInst
    bound: Value
    cond: ICmpInst
    reductions: List[Tuple[PhiInst, BinaryInst]]


def vectorize(module: Module, exclude: frozenset = frozenset()) -> Module:
    """Vectorize every legal innermost loop in every defined function
    (minus ``exclude`` — third-party code identical in SIMD and no-SIMD
    builds). Transforms in place; returns the module."""
    for fn in module.defined_functions():
        if fn.name not in exclude:
            vectorize_function(fn)
    module.bump_version()
    return module


def vectorize_function(fn: Function) -> int:
    """Returns the number of loops vectorized."""
    candidates = _find_candidates(fn)
    for cand in candidates:
        _transform(fn, cand)
    return len(candidates)


# --- Legality ---------------------------------------------------------------------


def _find_candidates(fn: Function) -> List[_Candidate]:
    loops = find_natural_loops(fn)
    inner = []
    headers = {loop.header for loop in loops}
    for loop in loops:
        # Innermost: contains no other loop's header.
        if any(h in loop.blocks and h is not loop.header for h in headers):
            continue
        cand = _match_canonical(fn, loop)
        if cand is not None and _legal_body(cand):
            inner.append(cand)
    return inner


def _match_canonical(fn: Function, loop) -> Optional[_Candidate]:
    header = loop.header
    if len(loop.blocks) != 2 or len(loop.latches) != 1:
        return None
    body = loop.latches[0]
    if body is header:
        return None
    # Header: phis*, icmp slt(index, bound), cond_br(body, exit).
    term = header.terminator
    if not isinstance(term, BranchInst) or not term.is_conditional:
        return None
    if term.then_block is not body:
        return None
    exit_block = term.else_block
    if exit_block in loop.blocks:
        return None
    non_phi = header.instructions[header.first_non_phi_index():]
    if len(non_phi) != 2:
        return None
    cond = non_phi[0]
    if not isinstance(cond, ICmpInst) or cond.pred != "slt" or term.cond is not cond:
        return None
    # Body must branch straight back to the header.
    body_term = body.terminator
    if not isinstance(body_term, BranchInst) or body_term.is_conditional:
        return None
    if body_term.then_block is not header:
        return None

    preds = fn.compute_predecessors()
    outside_preds = [p for p in preds[header] if p is not body]
    if len(outside_preds) != 1:
        return None
    preheader = outside_preds[0]
    # The exit block must not have other predecessors (keeps phi wiring
    # simple) and must not contain phis fed by the header... it may have
    # phis from the header only; we require single-pred exits.
    if len(preds[exit_block]) != 1:
        return None

    # Identify the induction phi: cond.lhs, incremented by +1 in body.
    index = cond.lhs
    if not isinstance(index, PhiInst) or index.parent is not header:
        return None
    if not index.type.is_int or index.type.width != 64:
        return None
    try:
        inc = index.incoming_for(body)
        init = index.incoming_for(preheader)
    except KeyError:
        return None
    if not (
        isinstance(inc, BinaryInst)
        and inc.opcode == "add"
        and inc.parent is body
        and inc.lhs is index
        and isinstance(inc.rhs, Constant)
        and inc.rhs.value == 1
    ):
        return None
    bound = cond.rhs
    if isinstance(bound, Instruction) and _defined_in(bound, loop.blocks):
        return None

    # All other header phis must be reductions.
    reductions: List[Tuple[PhiInst, BinaryInst]] = []
    for phi in header.phis():
        if phi is index:
            continue
        try:
            nxt = phi.incoming_for(body)
        except KeyError:
            return None
        if not (
            isinstance(nxt, BinaryInst)
            and nxt.parent is body
            and nxt.opcode in _REDUCTION_IDENTITY
            and (nxt.lhs is phi or nxt.rhs is phi)
        ):
            return None
        reductions.append((phi, nxt))
    return _Candidate(
        header=header,
        body=body,
        exit=exit_block,
        preheader=preheader,
        index=index,
        bound=bound,
        cond=cond,
        reductions=reductions,
    )


def _defined_in(value: Value, blocks: Set[BasicBlock]) -> bool:
    return isinstance(value, Instruction) and value.parent in blocks


def _legal_body(cand: _Candidate) -> bool:
    loop_blocks = {cand.header, cand.body}
    reduction_nexts = {id(nxt) for _, nxt in cand.reductions}
    reduction_phis = {id(phi) for phi, _ in cand.reductions}
    store_bases: List[Value] = []
    load_bases: List[Value] = []
    used_by_outside: Set[int] = set()

    fn = cand.header.parent
    for block in fn.blocks:
        if block in loop_blocks:
            continue
        for inst in block.instructions:
            for op in inst.operands:
                used_by_outside.add(id(op))

    # Geps may only feed loads/stores inside the body (they disappear
    # into the vector memory ops).
    gep_users: Dict[int, List[Instruction]] = {}
    for inst in cand.body.instructions:
        for op in inst.operands:
            if isinstance(op, GepInst):
                gep_users.setdefault(id(op), []).append(inst)

    for inst in cand.body.instructions[:-1]:  # skip terminator
        # Values computed in the body must not be used outside the loop
        # (except via reductions).
        if id(inst) in used_by_outside and id(inst) not in reduction_phis:
            return False
        if isinstance(inst, GepInst):
            if inst.index is not cand.index:
                return False
            if _defined_in(inst.ptr, loop_blocks):
                return False
            for user in gep_users.get(id(inst), []):
                if isinstance(user, LoadInst) and user.ptr is inst:
                    continue
                if isinstance(user, StoreInst) and user.ptr is inst:
                    continue
                return False
            if id(inst) in used_by_outside:
                return False
            continue
        if isinstance(inst, LoadInst):
            if not isinstance(inst.ptr, GepInst) or inst.ptr.parent is not cand.body:
                return False
            if not (inst.type.is_scalar and not inst.type.is_pointer):
                return False
            load_bases.append(inst.ptr.ptr)
            continue
        if isinstance(inst, StoreInst):
            if not isinstance(inst.ptr, GepInst) or inst.ptr.parent is not cand.body:
                return False
            vty = inst.value.type
            if not (vty.is_scalar and not vty.is_pointer):
                return False
            store_bases.append(inst.ptr.ptr)
            continue
        if isinstance(inst, (BinaryInst, SelectInst, ICmpInst, FCmpInst)):
            continue
        if isinstance(inst, CastInst) and inst.opcode not in (
            "bitcast", "inttoptr", "ptrtoint"
        ):
            continue
        return False

    # Aliasing: every store base must differ (by object) from every load
    # base and from other store bases (distinct arrays by construction).
    for sb in store_bases:
        for lb in load_bases:
            if sb is lb:
                return False
    if len(set(map(id, store_bases))) != len(store_bases):
        return False
    return True


# --- Transformation ----------------------------------------------------------------


def _transform(fn: Function, cand: _Candidate) -> None:
    b = IRBuilder()
    index_ty = cand.index.type
    lanes_const = Constant(T.vector(index_ty, WIDTH), tuple(range(WIDTH)))

    vec_header = fn.insert_block_after(cand.preheader, fn.next_name("vec.loop"))
    vec_body = fn.insert_block_after(vec_header, fn.next_name("vec.body"))
    middle = fn.insert_block_after(vec_body, fn.next_name("vec.middle"))

    # Redirect the preheader into the vector loop.
    pre_term = cand.preheader.terminator
    pre_term.replace_target(cand.header, vec_header)
    init_index = cand.index.incoming_for(cand.preheader)

    def emit_in_preheader(make) -> Value:
        """Append an instruction to the preheader before its terminator."""
        inst = make()
        inst.name = inst.name or fn.next_name()
        cand.preheader.insert(len(cand.preheader.instructions) - 1, inst)
        return inst

    from ..ir.instructions import BroadcastInst, InsertElementInst

    # Preheader additions: vector bound = bound - (WIDTH - 1).
    vec_bound = emit_in_preheader(
        lambda: BinaryInst("sub", cand.bound, Constant(index_ty, WIDTH - 1))
    )
    vec_bound.name = fn.next_name("vec.bound")
    invariant_cache: Dict[int, Value] = {}

    def splat(value: Value) -> Value:
        """Loop-invariant operand, broadcast in the preheader."""
        if isinstance(value, Constant):
            return Constant(T.vector(value.type, WIDTH), (value.value,) * WIDTH)
        cached = invariant_cache.get(id(value))
        if cached is not None:
            return cached
        vec = emit_in_preheader(lambda: BroadcastInst(value, WIDTH))
        vec.name = fn.next_name("splat")
        invariant_cache[id(value)] = vec
        return vec

    # Vector loop header.
    b.position_at_end(vec_header)
    vi = b.phi(index_ty, name=fn.next_name("vi"))
    vec_phis: Dict[int, PhiInst] = {}
    for phi, nxt in cand.reductions:
        vphi = b.phi(T.vector(phi.type, WIDTH), name=fn.next_name("vred"))
        vec_phis[id(phi)] = vphi
    vcond = b.icmp("slt", vi, vec_bound)
    b.cond_br(vcond, vec_body, middle)

    # Vector body.
    b.position_at_end(vec_body)
    vmap: Dict[int, Value] = dict(vec_phis)
    vec_index_cache: List[Value] = []

    def vec_index() -> Value:
        if not vec_index_cache:
            base = b.broadcast(vi, WIDTH)
            vec_index_cache.append(b.add(base, lanes_const))
        return vec_index_cache[0]

    def vop(value: Value) -> Value:
        if value is cand.index:
            return vec_index()
        mapped = vmap.get(id(value))
        if mapped is not None:
            return mapped
        return splat(value)

    reduction_by_next = {id(nxt): phi for phi, nxt in cand.reductions}
    for inst in cand.body.instructions[:-1]:
        phi = reduction_by_next.get(id(inst))
        if phi is not None:
            other = inst.rhs if inst.lhs is phi else inst.lhs
            acc = vec_phis[id(phi)]
            vmap[id(inst)] = b.binop(inst.opcode, acc, vop(other))
            continue
        if isinstance(inst, GepInst):
            continue  # folded into the memory op below
        if isinstance(inst, LoadInst):
            addr = b.gep(inst.type, vop_base(inst.ptr, b, splat), vi)
            vmap[id(inst)] = b.load(T.vector(inst.type, WIDTH), addr)
            continue
        if isinstance(inst, StoreInst):
            vty = inst.value.type
            addr = b.gep(vty, vop_base(inst.ptr, b, splat), vi)
            b.store(vop(inst.value), addr)
            continue
        if isinstance(inst, BinaryInst):
            vmap[id(inst)] = b.binop(inst.opcode, vop(inst.lhs), vop(inst.rhs))
            continue
        if isinstance(inst, ICmpInst):
            vmap[id(inst)] = b.icmp(inst.pred, vop(inst.lhs), vop(inst.rhs))
            continue
        if isinstance(inst, FCmpInst):
            vmap[id(inst)] = b.fcmp(inst.pred, vop(inst.lhs), vop(inst.rhs))
            continue
        if isinstance(inst, SelectInst):
            vmap[id(inst)] = b.select(
                vop(inst.cond), vop(inst.tval), vop(inst.fval)
            )
            continue
        if isinstance(inst, CastInst):
            to_ty = T.vector(inst.type, WIDTH)
            vmap[id(inst)] = b.cast(inst.opcode, vop(inst.value), to_ty)
            continue
        raise AssertionError(f"legality let through {inst!r}")

    vi_next = b.add(vi, Constant(index_ty, WIDTH))
    b.br(vec_header)
    latch = b.block

    vi.add_incoming(init_index, cand.preheader)
    vi.add_incoming(vi_next, latch)
    for phi, nxt in cand.reductions:
        vphi = vec_phis[id(phi)]
        init = phi.incoming_for(cand.preheader)
        identity = _REDUCTION_IDENTITY[nxt.opcode]
        if phi.type.is_int:
            identity = int(identity) & ((1 << phi.type.width) - 1)
        init_lanes = [identity] * WIDTH
        if isinstance(init, Constant):
            init_lanes[0] = init.value  # lane0 = init (+ identity elsewhere)
            vphi.add_incoming(
                Constant(T.vector(phi.type, WIDTH), tuple(init_lanes)),
                cand.preheader,
            )
        else:
            # Insert the scalar init into lane 0 of the identity vector,
            # in the preheader.
            base = Constant(T.vector(phi.type, WIDTH), tuple(init_lanes))
            injected = emit_in_preheader(
                lambda: InsertElementInst(base, init, IRBuilder.i64(0))
            )
            vphi.add_incoming(injected, cand.preheader)
        vphi.add_incoming(vmap[id(nxt)], latch)

    # Middle block: horizontal reductions, then fall into the scalar loop.
    b.position_at_end(middle)
    reduced: Dict[int, Value] = {}
    for phi, nxt in cand.reductions:
        vphi = vec_phis[id(phi)]
        acc = b.extractelement(vphi, IRBuilder.i64(0))
        for lane in range(1, WIDTH):
            elem = b.extractelement(vphi, IRBuilder.i64(lane))
            acc = b.binop(nxt.opcode, acc, elem)
        reduced[id(phi)] = acc
    b.br(cand.header)

    # Rewire the original (now epilogue) loop's phis: the outside
    # incoming edge now comes from `middle` with the vector results.
    cand.index.replace_incoming_block(cand.preheader, middle)
    for i, inc in enumerate(cand.index.incoming_blocks):
        if inc is middle:
            cand.index.operands[i] = vi
    for phi, _ in cand.reductions:
        phi.replace_incoming_block(cand.preheader, middle)
        for i, inc in enumerate(phi.incoming_blocks):
            if inc is middle:
                phi.operands[i] = reduced[id(phi)]


def vop_base(gep: GepInst, b: IRBuilder, splat) -> Value:
    """The (loop-invariant, scalar) base pointer of a unit-stride gep."""
    return gep.ptr
