"""Shared helpers for IR passes: use maps, replace-all-uses-with, and
instruction erasure."""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..ir.function import Function
from ..ir.instructions import Instruction
from ..ir.values import Value


def build_use_map(fn: Function) -> Dict[int, List[Tuple[Instruction, int]]]:
    """Map id(value) -> [(user instruction, operand index), ...]."""
    uses: Dict[int, List[Tuple[Instruction, int]]] = {}
    for inst in fn.instructions():
        for i, op in enumerate(inst.operands):
            uses.setdefault(id(op), []).append((inst, i))
    return uses


def replace_all_uses(fn: Function, old: Value, new: Value) -> int:
    """Rewrite every operand reference to ``old`` with ``new``; returns
    the number of uses rewritten."""
    count = 0
    for inst in fn.instructions():
        for i, op in enumerate(inst.operands):
            if op is old:
                inst.operands[i] = new
                count += 1
    return count


def erase_instruction(inst: Instruction) -> None:
    block = inst.parent
    if block is not None:
        block.remove(inst)


def has_side_effects(inst: Instruction) -> bool:
    """Conservative: may this instruction affect state beyond its
    result? (Used by DCE to decide what must be kept.)"""
    opcode = inst.opcode
    if opcode in ("store", "call", "br", "ret", "unreachable", "alloca"):
        return True
    # Integer division can trap (SIGFPE) — removing it would change
    # program behaviour on a zero divisor.
    if opcode in ("sdiv", "udiv", "srem", "urem"):
        return True
    # Loads can fault on a bad address.
    if opcode == "load":
        return True
    return False


def remove_unreachable_blocks(fn: Function) -> int:
    """Drop blocks not reachable from the entry; fix phis in survivors.
    Returns the number of blocks removed."""
    reachable = set()
    worklist = [fn.entry]
    while worklist:
        block = worklist.pop()
        if block in reachable:
            continue
        reachable.add(block)
        worklist.extend(block.successors())
    dead = [b for b in fn.blocks if b not in reachable]
    if not dead:
        return 0
    dead_set = set(dead)
    for block in fn.blocks:
        if block in dead_set:
            continue
        for phi in block.phis():
            keep = [
                (v, b)
                for v, b in zip(phi.operands, phi.incoming_blocks)
                if b not in dead_set
            ]
            phi.operands = [v for v, _ in keep]
            phi.incoming_blocks = [b for _, b in keep]
    fn.blocks = [b for b in fn.blocks if b not in dead_set]
    return len(dead)
