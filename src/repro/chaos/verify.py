"""The chaos verifier: judge a chaotic run against its clean twin.

The verdict applies the paper's own standard to the infrastructure:
under any injected fault, recovery must be *exact* — not "roughly the
same counts", bit-identical counts — or the failure must be loud.
Concretely, a chaotic report passes iff:

1. **Completion** — the campaign finished within the phase budget.
2. **Bit-identity** — final outcome counts equal the clean run's, and
   every store row (per-shard n + counts) is byte-for-byte the row the
   clean run wrote. Infrastructure faults may cost re-execution time,
   never results.
3. **At-most-once** — within each run phase no shard index commits
   twice (``shard-completed`` is emitted post-persist, so a double
   event is a double count).
4. **No orphans** — every cluster phase ends with zero active
   coordinator sessions (a leaked session is a leaked lease table).
5. **Evidence** — the injected fault demonstrably fired: a listed
   evidence event appeared, or (driver-crash scenarios) the run took
   more than one phase. A chaos scenario that cannot prove its fault
   happened proves nothing about recovery.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List

from .scenarios import Scenario


@dataclass
class Verdict:
    scenario: str
    seed: int
    ok: bool
    problems: List[str] = field(default_factory=list)
    checks: Dict[str, bool] = field(default_factory=dict)

    def as_dict(self) -> Dict:
        return {"scenario": self.scenario, "seed": self.seed,
                "ok": self.ok, "problems": list(self.problems),
                "checks": dict(self.checks)}


def verify(scenario: Scenario, report: Dict, reference: Dict) -> Verdict:
    problems: List[str] = []
    checks: Dict[str, bool] = {}

    def check(name: str, passed: bool, problem: str) -> None:
        checks[name] = bool(passed)
        if not passed:
            problems.append(problem)

    check("completed", report.get("completed", False),
          f"campaign did not complete within {report.get('phases')} phases")

    if report.get("completed"):
        check("counts-bit-identical",
              report.get("counts") == reference["counts"],
              f"final counts diverged: chaotic {report.get('counts')} "
              f"vs clean {reference['counts']}")
        check("store-rows-bit-identical",
              report.get("rows") == reference["rows"],
              "per-shard store rows diverged from the clean run's")
        check("spec-key-stable",
              report.get("spec_key") == reference["spec_key"],
              f"spec key drifted: {report.get('spec_key')!r} "
              f"vs {reference['spec_key']!r}")

    events = report.get("events", [])
    commits = Counter(
        (e["phase"], e.get("index"))
        for e in events if e["kind"] == "shard-completed"
    )
    doubled = sorted(key for key, n in commits.items() if n > 1)
    check("at-most-once-commits", not doubled,
          f"shard committed more than once within a phase: {doubled}")

    leaks = [e.get("sessions") for e in events
             if e["kind"] == "chaos-sessions-after" and e.get("sessions")]
    check("no-orphaned-sessions", not leaks,
          f"coordinator ended phases with live sessions: {leaks}")

    kinds = {e["kind"] for e in events}
    fired = bool(kinds & set(scenario.evidence)) if scenario.evidence \
        else report.get("phases", 1) > 1
    if scenario.needs_rerun:
        fired = fired and report.get("phases", 1) > 1
    check("fault-evidence", fired,
          f"no evidence the fault fired (wanted "
          f"{'event ' + '|'.join(scenario.evidence) if scenario.evidence else ''}"
          f"{' and ' if scenario.evidence and scenario.needs_rerun else ''}"
          f"{'phases > 1' if scenario.needs_rerun else ''}; "
          f"saw phases={report.get('phases')}, kinds={sorted(kinds)})")

    return Verdict(scenario=scenario.name, seed=int(report.get("seed", 0)),
                   ok=not problems, problems=problems, checks=checks)
