"""The chaos scenario library: named infrastructure-fault campaigns.

Each :class:`Scenario` names one failure mode of the campaign stack
(a worker dying mid-shard, a torn store write, a dropped result frame,
a coordinator restart), says which fabric exhibits it, and compiles —
deterministically, from ``random.Random(f"{name}:{seed}")`` — into the
:class:`~repro.chaos.hooks.ChaosRule` list that injects it. The seed
moves *where* the fault lands (which shard, which frame); the scenario
fixes *what* goes wrong. Same (scenario, seed) -> same rules -> same
injected-fault schedule, which is what makes a chaos finding a
regression test instead of an anecdote.

Every scenario carries its own falsifiability hook: ``evidence`` lists
event kinds at least one of which MUST appear in the chaotic run's
event log (or, for driver-crash scenarios, ``needs_rerun`` requires
more than one run phase). A scenario whose fault demonstrably never
fired is a verifier failure — silently-green chaos is worse than none.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from .hooks import ChaosRule, ChaosSpec

#: Rule compiler: (rng, shard_count) -> rules.
RuleBuilder = Callable[[random.Random, int], List[ChaosRule]]


@dataclass(frozen=True)
class Scenario:
    name: str
    #: "forked" (lab scheduler) or "cluster" (coordinator + agents).
    fabric: str
    description: str
    build: RuleBuilder
    #: Event kinds, at least one of which must appear in the chaotic
    #: run's log — proof the injected fault actually bit.
    evidence: Tuple[str, ...] = ()
    #: The fault kills/interrupts the driver: the chaotic run must take
    #: more than one phase (crash -> operator restarts -> resume).
    needs_rerun: bool = False
    #: Run a clean campaign into the chaotic store first (faults that
    #: only exist against pre-existing state, e.g. a torn golden row).
    warm_store: bool = False
    #: Per-shard wall-clock limit for the forked scheduler (stall
    #: scenarios need one so the supervisor reaps the stalled worker).
    scheduler_timeout: Optional[float] = None
    #: Lease timeout override for cluster scenarios (stall scenarios
    #: need expiry faster than the stall).
    lease_timeout: Optional[float] = None

    def spec(self, seed: int, shard_count: int) -> ChaosSpec:
        """The reproducible fault schedule for this (scenario, seed)."""
        rng = random.Random(f"{self.name}:{seed}")
        return ChaosSpec(scenario=self.name, seed=seed,
                         rules=self.build(rng, shard_count))


def _pick(rng: random.Random, shard_count: int) -> int:
    return rng.randrange(shard_count)


# Forked-fabric scenarios -----------------------------------------------------

def _worker_kill(rng: random.Random, shards: int) -> List[ChaosRule]:
    # attempt 0 only: a forked child inherits a *copy* of the armed
    # controller, so firing bookkeeping never propagates back to the
    # supervisor — pinning attempt 0 is what stops the rule re-firing
    # on the retry (and, after max_retries, killing the in-process
    # degraded run, i.e. the driver itself).
    return [ChaosRule(point="lab.worker.shard", action="crash",
                      match={"index": _pick(rng, shards), "attempt": 0})]


def _worker_stall(rng: random.Random, shards: int) -> List[ChaosRule]:
    return [ChaosRule(point="lab.worker.shard", action="stall",
                      match={"index": _pick(rng, shards), "attempt": 0},
                      seconds=1.5)]


def _store_lost_write(rng: random.Random, shards: int) -> List[ChaosRule]:
    return [ChaosRule(point="lab.store.put-shard", action="lose-write",
                      match={"index": _pick(rng, shards)})]


def _crash_after_write(rng: random.Random, shards: int) -> List[ChaosRule]:
    return [ChaosRule(point="lab.store.put-shard", action="crash-after-write",
                      match={"index": _pick(rng, shards)})]


def _golden_corrupt(rng: random.Random, shards: int) -> List[ChaosRule]:
    return [ChaosRule(point="lab.checkpoint.golden", action="corrupt")]


# Cluster-fabric scenarios ----------------------------------------------------

def _agent_crash(rng: random.Random, shards: int) -> List[ChaosRule]:
    # Crash between execute and commit: the shard's work is done but
    # unreported. Recovery = lease expiry/disconnect requeue; cost = one
    # re-execution, never a double count.
    return [ChaosRule(point="cluster.worker.pre-commit", action="crash",
                      match={"index": _pick(rng, shards), "attempt": 0})]


def _agent_stall(rng: random.Random, shards: int) -> List[ChaosRule]:
    return [ChaosRule(point="cluster.worker.pre-commit", action="stall",
                      match={"index": _pick(rng, shards), "attempt": 0},
                      seconds=2.0)]


def _frame_drop(rng: random.Random, shards: int) -> List[ChaosRule]:
    # Each worker process arms its own copy of this rule, so in the
    # worst case the frame is dropped once per worker before a send
    # gets through; the lease table's attempt budget covers that.
    return [ChaosRule(point="cluster.proto.send", action="drop",
                      match={"kind": "result", "index": _pick(rng, shards)})]


def _frame_dup(rng: random.Random, shards: int) -> List[ChaosRule]:
    # The duplicated result frame is a guaranteed duplicate commit; the
    # coordinator MUST discard the copy. Evidence accepts either the
    # discard event or the wire-level firing announcement: when the
    # duplicate rides the campaign's last commits, coordinator teardown
    # can tear the victim connection down before its reader dispatches
    # the second copy — the announcement (sent ahead of the first copy)
    # is always processed, and the at-most-once + bit-identity checks
    # prove the discard.
    return [ChaosRule(point="cluster.proto.send", action="duplicate",
                      match={"kind": "result", "index": _pick(rng, shards)})]


def _coordinator_restart(rng: random.Random, shards: int) -> List[ChaosRule]:
    # Die mid-commit on the (seeded) nth store write — never the first,
    # so at least one row is banked and phase 2's cold start provably
    # resumes from the store instead of starting over.
    return [ChaosRule(point="cluster.coordinator.commit", action="interrupt",
                      after=1 + rng.randrange(max(1, shards - 2)))]


SCENARIOS: Dict[str, Scenario] = {
    s.name: s for s in [
        Scenario(
            name="worker-kill", fabric="forked",
            description="a forked shard worker dies (power-loss exit) on "
                        "its first attempt; the supervisor retries",
            build=_worker_kill, evidence=("shard-retry",),
        ),
        Scenario(
            name="worker-stall", fabric="forked",
            description="a forked shard worker wedges past the shard "
                        "timeout; the supervisor reaps and retries",
            build=_worker_stall, evidence=("shard-retry",),
            scheduler_timeout=0.5,
        ),
        Scenario(
            name="store-lost-write", fabric="forked",
            description="the driver dies with a completed shard's row "
                        "still unwritten; restart re-executes that shard "
                        "only",
            # No event evidence: the crash may land before any other
            # shard banks a row, so phase count (needs_rerun) is the
            # proof the fault fired.
            build=_store_lost_write, needs_rerun=True,
        ),
        Scenario(
            name="store-crash-after-write", fabric="forked",
            description="the driver dies right after a shard's row "
                        "commits; restart replays it as a store hit",
            build=_crash_after_write, needs_rerun=True,
            evidence=("shard-store-hit",),
        ),
        Scenario(
            name="golden-corrupt", fabric="forked",
            description="the stored golden record reads back torn; the "
                        "cell's banked shards must purge, never replay",
            build=_golden_corrupt, warm_store=True,
            evidence=("store-stale",),
        ),
        Scenario(
            name="agent-crash", fabric="cluster",
            description="a worker agent crashes between executing a shard "
                        "and committing its result",
            build=_agent_crash,
            evidence=("worker-disconnected", "lease-requeued"),
        ),
        Scenario(
            name="agent-stall", fabric="cluster",
            description="a worker agent goes silent past the lease "
                        "timeout with a finished shard, then commits late",
            build=_agent_stall, evidence=("lease-expired",),
            lease_timeout=0.4,
        ),
        Scenario(
            name="frame-drop", fabric="cluster",
            description="a result frame vanishes on the wire; the lease "
                        "expires and the shard re-executes elsewhere",
            build=_frame_drop, evidence=("lease-expired",),
            lease_timeout=0.4,
        ),
        Scenario(
            name="frame-dup", fabric="cluster",
            description="a result frame arrives twice; the at-most-once "
                        "commit must discard the copy",
            build=_frame_dup,
            evidence=("late-commit-discarded", "chaos-fired"),
        ),
        Scenario(
            name="coordinator-restart", fabric="cluster",
            description="the coordinator dies mid-commit; a cold restart "
                        "against the same store resumes from banked rows",
            build=_coordinator_restart, needs_rerun=True,
            evidence=("shard-store-hit",),
        ),
    ]
}


def get_scenario(name: str) -> Scenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise ValueError(f"unknown chaos scenario {name!r} "
                         f"(known: {known})") from None
