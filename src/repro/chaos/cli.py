"""``python -m repro chaos`` — run the injector's own fault drills.

Examples::

    python -m repro chaos list
    python -m repro chaos run --scenario agent-crash --seed 1
    python -m repro chaos matrix --seeds 1,2 --json chaos.json

``run`` executes one (scenario, seed) chaos campaign plus its clean
twin and prints the verifier's verdict; ``matrix`` sweeps scenarios x
seeds sharing one clean reference (the campaign spec is fixed, only
the injected faults move), and additionally proves determinism by
compiling every spec twice and requiring identical rule schedules.
Exit status is 0 only when every verdict passes.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
from typing import Dict, List, Optional

from .runner import SHARD_COUNT, run_chaotic, run_reference
from .scenarios import SCENARIOS, get_scenario
from .verify import verify


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro chaos",
        description="Deterministic infrastructure-chaos campaigns "
                    "against the fault injector's recovery machinery.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list scenarios")

    run = sub.add_parser("run", help="one scenario under one seed")
    run.add_argument("--scenario", required=True, choices=sorted(SCENARIOS))
    run.add_argument("--seed", type=int, default=1)
    run.add_argument("--store", default=None,
                     help="directory for the run's stores "
                          "(default: a temp dir, removed afterwards)")
    run.add_argument("--json", metavar="PATH", default=None,
                     help="write {report, reference, verdict} as JSON")
    run.add_argument("--trace", action="store_true",
                     help="print the chaotic run's event log")

    matrix = sub.add_parser("matrix", help="scenarios x seeds sweep")
    matrix.add_argument("--scenarios", default=None,
                        help="comma-separated subset (default: all)")
    matrix.add_argument("--seeds", default="1,2",
                        help="comma-separated seeds (default: 1,2)")
    matrix.add_argument("--json", metavar="PATH", default=None,
                        help="write every verdict (and rule schedule) "
                             "as JSON")
    return parser


def _print_verdict(verdict) -> None:
    mark = "ok" if verdict.ok else "FAIL"
    print(f"-- {verdict.scenario} seed={verdict.seed}: {mark}")
    for name, passed in verdict.checks.items():
        print(f"   [{'x' if passed else ' '}] {name}")
    for problem in verdict.problems:
        print(f"   !! {problem}")


def _run_one(name: str, seed: int, workdir: str,
             reference: Optional[Dict] = None):
    scenario = get_scenario(name)
    if reference is None:
        reference = run_reference(f"{workdir}/reference.sqlite")
    report = run_chaotic(scenario, seed,
                         f"{workdir}/{name}-s{seed}.sqlite")
    return report, reference, verify(scenario, report, reference)


def _list_main() -> int:
    width = max(len(n) for n in SCENARIOS)
    for name in sorted(SCENARIOS):
        s = SCENARIOS[name]
        print(f"{name:<{width}}  [{s.fabric:>7}]  {s.description}")
    return 0


def _run_main(args: argparse.Namespace) -> int:
    workdir = args.store or tempfile.mkdtemp(prefix="repro-chaos-")
    try:
        report, reference, verdict = _run_one(args.scenario, args.seed,
                                              workdir)
        if args.trace:
            for event in report["events"]:
                print(json.dumps(event, sort_keys=True, default=str))
        print(f"-- fired {len(report['trace'])} driver-side rule(s), "
              f"{report['phases']} phase(s)")
        _print_verdict(verdict)
        if args.json:
            with open(args.json, "w") as fh:
                json.dump({"report": report, "reference": reference,
                           "verdict": verdict.as_dict()},
                          fh, indent=2, sort_keys=True, default=str)
                fh.write("\n")
            print(f"-- wrote {args.json}")
        return 0 if verdict.ok else 1
    finally:
        if args.store is None:
            shutil.rmtree(workdir, ignore_errors=True)


def _matrix_main(args: argparse.Namespace) -> int:
    names = (sorted(SCENARIOS) if args.scenarios is None
             else [n.strip() for n in args.scenarios.split(",") if n.strip()])
    seeds = [int(s) for s in args.seeds.split(",") if s.strip()]
    for name in names:
        get_scenario(name)  # fail fast on typos

    workdir = tempfile.mkdtemp(prefix="repro-chaos-")
    rows: List[Dict] = []
    failed = 0
    try:
        reference = run_reference(f"{workdir}/reference.sqlite")
        for name in names:
            scenario = get_scenario(name)
            for seed in seeds:
                # Determinism gate: compiling the spec twice must give
                # the same rule schedule, or "same seed, same faults"
                # is a lie and every verdict below is unrepeatable.
                once = scenario.spec(seed, SHARD_COUNT).to_wire()
                again = scenario.spec(seed, SHARD_COUNT).to_wire()
                if once != again:
                    print(f"-- {name} seed={seed}: FAIL "
                          f"(non-deterministic rule schedule)")
                    failed += 1
                    rows.append({"scenario": name, "seed": seed,
                                 "fabric": scenario.fabric, "ok": False,
                                 "problems": ["non-deterministic spec"]})
                    continue
                report, _, verdict = _run_one(name, seed, workdir,
                                              reference=reference)
                _print_verdict(verdict)
                failed += 0 if verdict.ok else 1
                rows.append({**verdict.as_dict(), "rules": once["rules"],
                             "fabric": scenario.fabric,
                             "phases": report["phases"]})
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    total = len(names) * len(seeds)
    print(f"-- chaos matrix: {total - failed}/{total} passed")
    if args.json:
        with open(args.json, "w") as fh:
            json.dump({"passed": total - failed, "total": total,
                       "verdicts": rows}, fh, indent=2, sort_keys=True,
                      default=str)
            fh.write("\n")
        print(f"-- wrote {args.json}")
    return 0 if failed == 0 else 1


def main(argv: Optional[List[str]] = None) -> int:
    args = _parser().parse_args(argv)
    if args.command == "list":
        return _list_main()
    if args.command == "run":
        return _run_main(args)
    return _matrix_main(args)


if __name__ == "__main__":
    sys.exit(main())
