"""One retry/timeout/backoff vocabulary for the whole stack.

Before this module, every layer hand-rolled the same three constants:
the lease table computed ``backoff * factor ** attempt`` inline, the
shard scheduler computed it again with different field names, the
worker agent had a single hard-coded connect timeout and no retries at
all, and the service drain loop polled on a bare ``0.05``. Chaos
campaigns (:mod:`repro.chaos`) exercise all of those paths at once, so
they get one shape: a frozen :class:`RetryPolicy` that owns the delay
schedule, and named instances for each consumer.

The delay schedule is exactly the one the lease table has always used
(tests pin its instants): attempt ``k`` (0-based) waits
``backoff * backoff_factor ** k``, multiplied by a bounded jitter
factor uniform in ``[1, 1 + jitter]`` when a jitter RNG is supplied.
Jitter exists to break thundering herds (many leases expired by one
stalled worker must not all requeue at the same instant); it never
affects outcome counts, only timing.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, Optional


@dataclass(frozen=True)
class RetryPolicy:
    """A bounded, exponentially backed-off retry schedule.

    ``max_attempts`` counts total tries, not re-tries: a policy with
    ``max_attempts=3`` runs the operation at most 3 times. ``timeout``
    is the per-attempt operation bound (socket timeout, lease
    deadline), carried here so callers stop scattering their own
    constants; ``None`` means unbounded.
    """

    max_attempts: int = 5
    backoff: float = 0.05
    backoff_factor: float = 2.0
    #: Upper bound on the multiplicative jitter: the delayed instant is
    #: uniform in ``[d, d * (1 + jitter)]``. 0 disables (tests that
    #: assert exact backoff instants rely on that).
    jitter: float = 0.25
    timeout: Optional[float] = None

    def delay(self, attempt: int,
              rng: Optional[random.Random] = None) -> float:
        """Seconds to wait before (0-based) retry ``attempt``."""
        d = self.backoff * (self.backoff_factor ** attempt)
        if self.jitter > 0 and rng is not None:
            d *= 1.0 + rng.random() * self.jitter
        return d

    def attempts(self) -> Iterator[int]:
        """0-based attempt numbers, ``max_attempts`` of them."""
        return iter(range(max(1, self.max_attempts)))


#: Worker agent -> coordinator TCP connect: a dead address must fail
#: the agent in ~a second, not hang it for the kernel's connect
#: timeout; a coordinator that is merely restarting is retried with
#: jittered backoff so a worker fleet does not reconnect in lockstep.
WORKER_CONNECT = RetryPolicy(max_attempts=3, backoff=0.2,
                             backoff_factor=2.0, jitter=0.25, timeout=10.0)

#: Worker agent resending a finished shard's result after the
#: coordinator connection dropped mid-commit (the idempotent-commit
#: retry path; commits are at-most-once on the coordinator side, so
#: resending is always safe).
RESULT_RESEND = RetryPolicy(max_attempts=3, backoff=0.2,
                            backoff_factor=2.0, jitter=0.25, timeout=10.0)

#: Service drain/settle polling cadence (``backoff`` is the poll
#: interval; the loop is unbounded — draining takes as long as the
#: in-flight shards take).
SERVICE_POLL = RetryPolicy(max_attempts=1, backoff=0.05,
                           backoff_factor=1.0, jitter=0.0)
