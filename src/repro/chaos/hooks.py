"""Deterministic chaos injection: named hook points + seeded rules.

The fault injector injects bit-flips into simulated programs; this
module injects *infrastructure* faults into the injector itself —
worker crashes, torn store writes, dropped protocol frames, service
kills — so the crash-recovery machinery is tested by the same
discipline the paper applies to hardened workloads: under any injected
fault, final results must be bit-identical to a clean run, or the
failure must be loud.

Design rules:

- **Hook points are named seams, not sleeps in product code.** Code
  under test calls ``chaos_point("cluster.worker.pre-commit",
  index=3)``; with no controller armed this is one global read and a
  ``None`` return — nothing to configure, nothing to pay for.
- **Rules are data.** A :class:`ChaosRule` says *where* (point name +
  context match), *when* (``after`` skips the first N matching
  occurrences, ``count`` bounds firings), and *what* (an action).
  A :class:`ChaosSpec` is a seed plus a rule list, JSON-serializable so
  it can ride ``$REPRO_CHAOS`` into worker subprocesses.
- **Determinism is the contract.** Rules are built from
  ``random.Random(seed)`` by the scenario library; the controller
  itself draws nothing. Same spec -> same injected-fault schedule, and
  (for driver-side faults) the same recorded trace.

Generic actions (``crash``, ``stall``, ``error``) are performed here;
site-specific actions (``drop``, ``duplicate``, ``lose-write``,
``corrupt``, ``drain``, ``kill``, ``interrupt``, ...) are returned to
the instrumented call site, which knows how to apply them.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: Environment variable carrying a wire-form ChaosSpec into worker
#: subprocesses (cluster agents arm themselves from it on startup;
#: forked lab workers inherit the armed controller directly).
CHAOS_ENV = "REPRO_CHAOS"

#: Exit status of a chaos-crashed process, distinct from the sabotage
#: hook's 17 so traces tell them apart.
CRASH_STATUS = 23


class ChaosCrash(BaseException):
    """A simulated power-loss/crash of the *driver* process, raised at
    a hook point. BaseException (like KeyboardInterrupt) so ordinary
    ``except Exception`` recovery code cannot accidentally swallow the
    "machine died here" signal; the chaos runner catches it at the top
    and restarts the run phase, exactly as an operator would."""


@dataclass
class ChaosRule:
    """One injected fault: fire ``action`` at hook ``point`` on the
    ``after``-th occurrence whose context matches ``match``, at most
    ``count`` times."""

    point: str
    action: str
    #: Context keys that must equal these values for the rule to
    #: consider an occurrence (missing key = no match).
    match: Dict[str, object] = field(default_factory=dict)
    #: Maximum firings (a dropped-frame rule usually wants 1 so the
    #: retried send succeeds).
    count: int = 1
    #: Matching occurrences to skip before the first firing ("fire on
    #: the 2nd commit" = ``after=1``).
    after: int = 0
    #: Stall/delay duration for time-based actions.
    seconds: float = 0.0

    def to_wire(self) -> Dict:
        return {
            "point": self.point, "action": self.action,
            "match": dict(self.match), "count": self.count,
            "after": self.after, "seconds": self.seconds,
        }

    @classmethod
    def from_wire(cls, wire: Dict) -> "ChaosRule":
        return cls(
            point=str(wire["point"]), action=str(wire["action"]),
            match=dict(wire.get("match") or {}),
            count=int(wire.get("count", 1)),
            after=int(wire.get("after", 0)),
            seconds=float(wire.get("seconds", 0.0)),
        )


@dataclass
class ChaosSpec:
    """A named, seeded fault schedule — the reproducible unit a chaos
    campaign runs under. ``seed`` is what the scenario library derived
    ``rules`` from; it rides along so traces are self-describing."""

    scenario: str
    seed: int
    rules: List[ChaosRule] = field(default_factory=list)

    def to_wire(self) -> Dict:
        return {"scenario": self.scenario, "seed": self.seed,
                "rules": [r.to_wire() for r in self.rules]}

    @classmethod
    def from_wire(cls, wire: Dict) -> "ChaosSpec":
        return cls(scenario=str(wire.get("scenario", "")),
                   seed=int(wire.get("seed", 0)),
                   rules=[ChaosRule.from_wire(r)
                          for r in wire.get("rules", [])])

    def to_env(self) -> str:
        return json.dumps(self.to_wire(), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_env(cls, text: str) -> "ChaosSpec":
        return cls.from_wire(json.loads(text))


class ChaosController:
    """Matches hook-point occurrences against one spec's rules and
    records every firing. Thread-safe: hook points fire from the
    coordinator loop thread, service runner threads, and the main
    thread at once."""

    def __init__(self, spec: ChaosSpec):
        self.spec = spec
        self._lock = threading.Lock()
        self._remaining = [max(0, r.count) for r in spec.rules]
        self._skipped = [0] * len(spec.rules)
        self.trace: List[Dict] = []

    def consult(self, point: str, ctx: Dict) -> Optional[ChaosRule]:
        """The rule that fires for this occurrence, or None. Consumes
        ``after`` skips and ``count`` budget; records the firing."""
        with self._lock:
            for i, rule in enumerate(self.spec.rules):
                if rule.point != point or self._remaining[i] <= 0:
                    continue
                if any(ctx.get(k) != v for k, v in rule.match.items()):
                    continue
                if self._skipped[i] < rule.after:
                    self._skipped[i] += 1
                    continue
                self._remaining[i] -= 1
                self.trace.append({
                    "point": point, "action": rule.action,
                    **{k: v for k, v in sorted(ctx.items())
                       if isinstance(v, (bool, int, float, str))},
                })
                return rule
        return None

    def fired(self) -> int:
        with self._lock:
            return len(self.trace)


_active: Optional[ChaosController] = None


def activate(controller: ChaosController) -> ChaosController:
    global _active
    _active = controller
    return controller


def deactivate() -> None:
    global _active
    _active = None


def active() -> Optional[ChaosController]:
    return _active


def activate_from_env(environ=None) -> Optional[ChaosController]:
    """Arm a controller from ``$REPRO_CHAOS`` (worker subprocesses call
    this on startup); None when unset or unparsable — a worker must
    never die because the chaos env was malformed."""
    text = (environ if environ is not None else os.environ).get(CHAOS_ENV)
    if not text:
        return None
    try:
        spec = ChaosSpec.from_env(text)
    except (ValueError, KeyError, TypeError):
        return None
    return activate(ChaosController(spec))


@contextmanager
def chaos_active(spec: ChaosSpec):
    """Arm ``spec`` for the duration of a block (the chaos runner's
    driver-side activation)."""
    controller = activate(ChaosController(spec))
    try:
        yield controller
    finally:
        deactivate()


def perform(rule: ChaosRule) -> Optional[ChaosRule]:
    """Apply a rule's generic action. ``crash`` never returns;
    ``stall`` sleeps then returns the rule (the operation proceeds,
    late); ``error`` raises; anything site-specific is returned for
    the call site to interpret."""
    if rule.action == "crash":
        os._exit(CRASH_STATUS)
    if rule.action == "stall":
        time.sleep(rule.seconds)
    elif rule.action == "error":
        raise RuntimeError(f"chaos: injected error at {rule.point}")
    return rule


def chaos_point(point: str, **ctx) -> Optional[ChaosRule]:
    """Declare a named injection point. Near-free when no controller
    is armed; otherwise consult-and-perform. Returns the fired rule
    (site-specific actions) or None (nothing fired / generic action
    already applied in-line)."""
    controller = _active
    if controller is None:
        return None
    rule = controller.consult(point, ctx)
    if rule is None:
        return None
    return perform(rule)
