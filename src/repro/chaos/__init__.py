"""repro.chaos — deterministic infrastructure chaos for the campaign
stack.

The light core (:mod:`.hooks`, :mod:`.policy`) is imported by product
code and must stay dependency-free; the orchestration layers
(:mod:`.scenarios`, :mod:`.runner`, :mod:`.verify`, :mod:`.cli`) pull
in the whole lab/cluster stack and are imported lazily by the CLI.
See docs/CHAOS.md.
"""

from .hooks import (  # noqa: F401
    CHAOS_ENV,
    ChaosController,
    ChaosCrash,
    ChaosRule,
    ChaosSpec,
    activate,
    activate_from_env,
    active,
    chaos_active,
    chaos_point,
    deactivate,
    perform,
)
from .policy import (  # noqa: F401
    RESULT_RESEND,
    SERVICE_POLL,
    WORKER_CONNECT,
    RetryPolicy,
)
