"""Chaos campaign runner: execute one (scenario, seed) end to end.

A chaos run drives a small, fixed fault-injection campaign (the
``histogram``/``native`` cell at test scale: 40 injections in 4 shards
of 10) through the real stack — forked scheduler or coordinator +
subprocess worker agents — with the scenario's fault schedule armed,
and records everything a verifier needs: the final counts, the store
rows, the event log (phase-tagged), and the controller's firing trace.

Driver "crashes" are simulated, not literal: a
:class:`~repro.chaos.hooks.ChaosCrash` (or a chaos-induced
:class:`~repro.lab.events.CampaignInterrupted`) unwinds the phase
exactly where a power loss would have killed the process, and the
runner starts the next phase the way an operator would restart the
driver — fresh coordinator, same store. Everything a real crash would
lose (in-memory state) is lost; everything it would keep (committed
store rows, rule firings already consumed in the driver) is kept.
"""

from __future__ import annotations

import os
from typing import Dict, List

from ..faults.campaign import CampaignConfig
from ..lab.durable import run_durable_campaign
from ..lab.events import CampaignInterrupted, EventBus
from ..lab.scheduler import SchedulerPolicy
from ..lab.store import ResultStore
from ..toolchain import default_toolchain
from .hooks import CHAOS_ENV, ChaosCrash, ChaosSpec, chaos_active
from .scenarios import Scenario

#: The chaos cell: small enough to run a whole scenario matrix in CI,
#: large enough (4 shards, 2 workers) that shards genuinely race.
WORKLOAD = "histogram"
VERSION = "native"
SCALE = "test"
INJECTIONS = 40
SHARD_SIZE = 10
SHARD_COUNT = INJECTIONS // SHARD_SIZE
WORKERS = 2

#: A crash-rerun scenario that cannot finish in this many phases is
#: failing to recover, not still recovering (one fault = one rerun).
MAX_PHASES = 4


def _config() -> CampaignConfig:
    return CampaignConfig(injections=INJECTIONS, seed=1234, workers=WORKERS)


def _build_cell():
    return default_toolchain().build(WORKLOAD, SCALE, VERSION)


def run_reference(store_path: str) -> Dict:
    """The clean twin: same cell, same campaign config, no chaos, into
    ``store_path``. Fabric is irrelevant by the determinism contract
    (the cluster suite enforces forked == cluster), so the cheap forked
    path serves as the oracle for both."""
    built = _build_cell()
    store = ResultStore(store_path)
    try:
        outcome = run_durable_campaign(
            built.module, built.entry, built.args, WORKLOAD, VERSION,
            _config(), store=store, shard_size=SHARD_SIZE,
        )
        spec_key = outcome.spec.spec_key
        rows = _store_rows(store, spec_key)
    finally:
        store.close()
    return {
        "counts": {o.value: int(n) for o, n in outcome.result.counts.items()},
        "injections_used": outcome.info.injections_used,
        "spec_key": spec_key,
        "rows": rows,
        "store_path": store_path,
    }


def _store_rows(store: ResultStore, spec_key: str) -> Dict[str, Dict]:
    """index -> {n, counts} for one spec, JSON-shaped for reports."""
    return {
        str(index): {"n": n, "counts": {o.value: int(c)
                                        for o, c in counts.items()}}
        for index, (n, counts) in sorted(store.get_shards(spec_key).items())
    }


def run_chaotic(scenario: Scenario, seed: int, store_path: str) -> Dict:
    """One chaos campaign under ``scenario.spec(seed)``; returns the
    report dict :mod:`repro.chaos.verify` judges."""
    spec = scenario.spec(seed, SHARD_COUNT)
    built = _build_cell()
    config = _config()

    events: List[Dict] = []
    phase = [0]
    bus = EventBus()
    bus.subscribe(lambda e: events.append({"phase": phase[0], **e.as_dict()}))

    if scenario.warm_store:
        # Pre-existing state the fault corrupts: a clean campaign banks
        # its golden + shard rows into the chaotic store first.
        warm = ResultStore(store_path)
        try:
            run_durable_campaign(built.module, built.entry, built.args,
                                 WORKLOAD, VERSION, config, store=warm,
                                 shard_size=SHARD_SIZE)
        finally:
            warm.close()

    outcome = None
    with chaos_active(spec) as controller:
        while phase[0] < MAX_PHASES:
            phase[0] += 1
            try:
                if scenario.fabric == "cluster":
                    outcome = _cluster_phase(built, config, scenario, spec,
                                             store_path, bus)
                else:
                    outcome = _forked_phase(built, config, scenario,
                                            store_path, bus)
                break
            except (ChaosCrash, CampaignInterrupted):
                # The simulated power loss: drop everything in memory,
                # restart the phase against the same store.
                continue
        trace = list(controller.trace)

    report = {
        "scenario": scenario.name,
        "fabric": scenario.fabric,
        "seed": seed,
        "phases": phase[0],
        "completed": outcome is not None,
        "rules": [r.to_wire() for r in spec.rules],
        "trace": trace,
        "events": events,
        "store_path": store_path,
    }
    if outcome is not None:
        report["counts"] = {o.value: int(n)
                            for o, n in outcome.result.counts.items()}
        report["injections_used"] = outcome.info.injections_used
        report["spec_key"] = outcome.spec.spec_key
        store = ResultStore(store_path)
        try:
            report["rows"] = _store_rows(store, outcome.spec.spec_key)
        finally:
            store.close()
    return report


def _forked_phase(built, config: CampaignConfig, scenario: Scenario,
                  store_path: str, bus: EventBus):
    policy = SchedulerPolicy(workers=WORKERS,
                             timeout=scenario.scheduler_timeout)
    store = ResultStore(store_path)
    try:
        return run_durable_campaign(
            built.module, built.entry, built.args, WORKLOAD, VERSION,
            config, store=store, shard_size=SHARD_SIZE, events=bus,
            policy=policy,
        )
    finally:
        store.close()


def _cluster_phase(built, config: CampaignConfig, scenario: Scenario,
                   spec: ChaosSpec, store_path: str, bus: EventBus):
    """One coordinator lifetime: cold start, spawn chaos-armed worker
    agents, distribute, tear down. A chaos interrupt unwinds through
    here and the next phase builds a brand-new coordinator — the
    cold-start recovery path under test."""
    from ..cluster.cli import reap_workers, spawn_local_workers
    from ..cluster.coordinator import (
        ClusterCoordinator,
        run_distributed_campaign,
    )
    from ..cluster.lease import LeasePolicy

    lease_policy = LeasePolicy()
    if scenario.lease_timeout is not None:
        lease_policy = LeasePolicy(lease_timeout=scenario.lease_timeout)
    coordinator = ClusterCoordinator(store_path=store_path, events=bus,
                                     policy=lease_policy)
    coordinator.start()
    env = dict(os.environ)
    env[CHAOS_ENV] = spec.to_env()
    procs = spawn_local_workers("127.0.0.1", coordinator.port, WORKERS,
                                env=env)
    store = ResultStore(store_path)
    try:
        outcome = run_distributed_campaign(
            built.module, built.entry, built.args, WORKLOAD, VERSION,
            config, coordinator=coordinator, build_scale=SCALE,
            store=store, events=bus, shard_size=SHARD_SIZE,
        )
        # Leak detector for the verifier: a finished campaign must
        # leave no session (and so no lease) behind.
        bus.emit("chaos-sessions-after",
                 sessions=coordinator.active_sessions)
        return outcome
    finally:
        store.close()
        coordinator.stop()
        reap_workers(procs)
