"""Shard leases: the unit of distribution, with failure semantics.

A lease grants one worker the right to execute one shard of the
campaign's pre-drawn plan list. The table is a pure, synchronous state
machine (the coordinator drives it from its event loop; tests drive it
with a fake clock) that guarantees:

- **Requeue with exponential backoff.** A lease whose worker dies, or
  whose heartbeat lapses past ``lease_timeout``, returns to the queue
  with ``attempt + 1`` and becomes grantable only after
  ``backoff * backoff_factor ** attempt`` seconds — a crashing shard
  cannot hot-loop through the worker pool.
- **At-most-once commit.** The first result committed for a shard
  wins; any later result for the same shard (a worker presumed dead
  that was merely slow, or a re-leased duplicate) is reported as such
  and discarded by the caller. Discarding loses nothing: a shard's
  counts are a pure function of its plans, so every copy is
  bit-identical.
- **Bounded attempts.** A shard that keeps failing (worker-reported
  errors, repeated expiry) exhausts after ``max_attempts`` executions
  and fails the campaign loudly — completed shards are already
  persisted, so a rerun resumes rather than restarts.

Grants are lowest-index-first, which keeps the completed shard
*prefix* growing — the same prefix the adaptive stopping rule and the
resume path are defined over.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..chaos.policy import RetryPolicy


@dataclass
class LeasePolicy:
    #: Seconds without a heartbeat before an in-flight lease expires.
    lease_timeout: float = 30.0
    #: How often workers are asked to heartbeat while executing (the
    #: coordinator forwards this to workers in every lease frame).
    heartbeat_interval: float = 1.0
    #: Total executions of one shard before the campaign fails.
    max_attempts: int = 5
    #: Base requeue delay; grows by ``backoff_factor`` per attempt.
    backoff: float = 0.05
    backoff_factor: float = 2.0
    #: Bounded jitter on every requeue delay: the actual delay is
    #: uniform in ``[d, d * (1 + backoff_jitter)]``. Without it the
    #: backoff schedule is *deterministic*, so the leases of many
    #: campaigns expired by one stalled worker (or one coordinator GC
    #: pause) all become grantable at the same instant and requeue in
    #: a thundering herd; the jitter spreads them out. 0 disables
    #: (tests asserting exact backoff instants do so).
    backoff_jitter: float = 0.25
    #: Bound on commits awaiting the store writer (backpressure: the
    #: coordinator stops reading a worker's socket while full).
    commit_backlog: int = 64

    @property
    def retry(self) -> RetryPolicy:
        """This policy's requeue schedule in the stack-wide
        :class:`~repro.chaos.policy.RetryPolicy` shape (one backoff
        vocabulary for leases, shard retries, and worker connects)."""
        return RetryPolicy(max_attempts=self.max_attempts,
                           backoff=self.backoff,
                           backoff_factor=self.backoff_factor,
                           jitter=self.backoff_jitter,
                           timeout=self.lease_timeout)


@dataclass
class _ShardState:
    index: int
    attempt: int = 0
    not_before: float = 0.0
    holder: Optional[str] = None
    deadline: Optional[float] = None
    committed: bool = False


@dataclass
class Grant:
    index: int
    attempt: int


@dataclass
class Expiry:
    index: int
    worker: str
    attempt: int
    #: "requeued" or "exhausted".
    disposition: str = "requeued"


class ShardExhausted(RuntimeError):
    """A shard failed ``max_attempts`` times; the campaign cannot
    complete. Completed shards are persisted — rerunning resumes."""


class LeaseTable:
    def __init__(self, indices: List[int], policy: Optional[LeasePolicy] = None,
                 rng: Optional[random.Random] = None):
        self.policy = policy or LeasePolicy()
        #: Jitter source; injectable so tests can pin the schedule.
        #: Requeue timing never affects outcome counts (shard plans are
        #: pre-drawn), so an unseeded RNG does not break determinism.
        self._rng = rng if rng is not None else random.Random()
        self._shards: Dict[int, _ShardState] = {
            index: _ShardState(index=index) for index in indices
        }
        #: Shards withdrawn from leasing (adaptive stop reached); they
        #: no longer count toward completion.
        self._cancelled: set = set()

    # Introspection -----------------------------------------------------------

    @property
    def committed(self) -> List[int]:
        return sorted(s.index for s in self._shards.values() if s.committed)

    @property
    def in_flight(self) -> List[int]:
        return sorted(s.index for s in self._shards.values()
                      if s.holder is not None and not s.committed)

    def done(self) -> bool:
        return all(s.committed or s.index in self._cancelled
                   for s in self._shards.values())

    def drained(self) -> bool:
        """True when nothing is in flight (shutdown can proceed
        without abandoning a worker mid-shard)."""
        return not self.in_flight

    def next_wakeup(self, now: float) -> Optional[float]:
        """Soonest instant at which time alone changes the table: a
        lease deadline or a backoff expiry. None when only an external
        event (result, worker) can make progress."""
        wakeups = []
        for s in self._shards.values():
            if s.committed or s.index in self._cancelled:
                continue
            if s.holder is not None and s.deadline is not None:
                wakeups.append(s.deadline)
            elif s.holder is None and s.not_before > now:
                wakeups.append(s.not_before)
        return min(wakeups) if wakeups else None

    def has_grantable(self, now: float) -> bool:
        """True when :meth:`grant` called now would lease a shard —
        or raise :class:`ShardExhausted` (the caller must find out).
        Read-only: the coordinator's fair-share picker uses it to
        choose between sessions without mutating any of them."""
        for s in self._shards.values():
            if (s.committed or s.holder is not None
                    or s.index in self._cancelled or s.not_before > now):
                continue
            return True
        return False

    # Leasing -----------------------------------------------------------------

    def grant(self, worker: str, now: float) -> Optional[Grant]:
        """Lease the lowest-index grantable shard to ``worker``."""
        for index in sorted(self._shards):
            s = self._shards[index]
            if (s.committed or s.holder is not None
                    or index in self._cancelled or s.not_before > now):
                continue
            if s.attempt >= self.policy.max_attempts:
                raise ShardExhausted(
                    f"shard {index} failed {s.attempt} times; giving up"
                )
            s.holder = worker
            s.deadline = now + self.policy.lease_timeout
            grant = Grant(index=index, attempt=s.attempt)
            s.attempt += 1
            return grant
        return None

    def heartbeat(self, index: int, worker: str, now: float) -> bool:
        """Extend the lease deadline; False for a lease ``worker`` no
        longer holds (expired and re-leased — the worker's eventual
        result will be discarded)."""
        s = self._shards.get(index)
        if s is None or s.holder != worker or s.committed:
            return False
        s.deadline = now + self.policy.lease_timeout
        return True

    def _requeue(self, s: _ShardState, now: float) -> None:
        # s.attempt already counts the execution that just failed.
        delay = self.policy.retry.delay(s.attempt - 1, self._rng)
        s.holder = None
        s.deadline = None
        s.not_before = now + delay

    def expire(self, now: float) -> List[Expiry]:
        """Requeue every lease whose heartbeat lapsed."""
        expired = []
        for s in self._shards.values():
            if s.committed or s.holder is None or s.deadline is None:
                continue
            if now >= s.deadline:
                expired.append(Expiry(index=s.index, worker=s.holder,
                                      attempt=s.attempt - 1))
                self._requeue(s, now)
        return expired

    def release_worker(self, worker: str, now: float) -> List[Expiry]:
        """Worker connection gone: requeue its in-flight leases now."""
        released = []
        for s in self._shards.values():
            if s.holder == worker and not s.committed:
                released.append(Expiry(index=s.index, worker=worker,
                                       attempt=s.attempt - 1))
                self._requeue(s, now)
        return released

    def fail(self, index: int, worker: str, now: float) -> str:
        """Worker reported a shard execution error. Returns the
        disposition: "requeued", "exhausted", or "stale" (not the
        holder — some other copy is still running)."""
        s = self._shards.get(index)
        if s is None or s.committed:
            return "stale"
        if s.holder != worker:
            return "stale"
        if s.attempt >= self.policy.max_attempts:
            s.holder = None
            s.deadline = None
            return "exhausted"
        self._requeue(s, now)
        return "requeued"

    # Commit ------------------------------------------------------------------

    def commit(self, index: int, worker: str) -> str:
        """Commit a worker's result for a shard. Returns:

        - ``"ok"`` — first result for this shard; the caller persists
          it. Accepted even from a worker whose lease expired (the
          work is done and deterministic; discarding it would only buy
          a redundant re-execution).
        - ``"duplicate"`` — the shard was already committed; the
          caller discards this copy (at-most-once).
        - ``"unknown"`` — not a shard of this cell (protocol error or
          a frame from a previous cell); discarded.
        """
        s = self._shards.get(index)
        if s is None:
            return "unknown"
        if s.committed:
            return "duplicate"
        s.committed = True
        s.holder = None
        s.deadline = None
        return "ok"

    def cancel_pending(self) -> List[int]:
        """Withdraw every shard that is neither committed nor in
        flight (adaptive stop / drain): they stop blocking ``done()``
        and are never granted. Returns the withdrawn indices."""
        cancelled = []
        for s in self._shards.values():
            if s.committed or s.index in self._cancelled:
                continue
            if s.holder is None:
                self._cancelled.add(s.index)
                cancelled.append(s.index)
        return sorted(cancelled)
