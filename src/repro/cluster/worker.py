"""Cluster worker agent: a synchronous lease-execute-report loop.

One process, one TCP connection, no threads: the worker connects,
handshakes (protocol version + lab schema + toolchain digest), and
then serves whatever
the coordinator sends. For each cell it *prepares* — rebuilds the
module from the cell recipe (:mod:`repro.cluster.cells`), runs the
golden execution through its own cache, and reports content digests so
the coordinator can refuse a drifted checkout before leasing work.
For each lease it executes the shard's fault plans exactly as shipped
(plans are never re-drawn — that is the determinism invariant) and
streams back the outcome counts.

Heartbeats ride inside the injection loop: between injections the
worker checks a monotonic clock and sends a ``heartbeat`` frame every
``heartbeat_interval`` seconds, so liveness costs no extra thread. A
worker that dies mid-shard simply stops heartbeating (or drops the
connection) and the coordinator re-leases the shard elsewhere.

Failure injection goes through :mod:`repro.chaos`: the worker arms a
chaos controller from ``$REPRO_CHAOS`` on startup, and the legacy
``$REPRO_CLUSTER_SABOTAGE`` hook (``exit:INDEX`` hard-kills on lease
of shard INDEX at attempt 0, ``stall:INDEX:SECONDS`` goes silent past
the lease timeout) is kept as a shorthand that compiles to the same
chaos rules. Hook points: ``cluster.worker.lease`` (start of shard
execution), ``cluster.worker.pre-commit`` (between execute and result
send — the agent-crash-before-commit seam), and every outgoing frame
via :func:`repro.cluster.proto.send_message`.
"""

from __future__ import annotations

import os
import random
import socket
import time
from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..chaos import hooks as chaos
from ..chaos.hooks import ChaosRule
from ..chaos.policy import RESULT_RESEND, WORKER_CONNECT, RetryPolicy
from ..faults.campaign import golden_profile, run_plans
from ..faults.models import get_model
from ..lab.checkpoint import golden_digest, module_digest
from ..lab.store import LAB_SCHEMA
from ..toolchain import toolchain_digest
from .cells import CellCache
from .coordinator import model_cache_key_digest
from .proto import (
    PROTO_VERSION,
    counts_to_wire,
    plan_from_wire,
    recv_message,
    send_message,
)

#: Exit status of a sabotage-killed worker (distinct from a chaos
#: ``crash``'s 23, so traces tell the two hooks apart).
SABOTAGE_STATUS = 17


def _parse_sabotage(text: Optional[str]) -> List[ChaosRule]:
    """Compile the legacy ``exit:IDX`` / ``stall:IDX:SECONDS`` hook
    into chaos rules on the ``cluster.worker.lease`` point (attempt 0
    only, fire once — the historical semantics)."""
    if not text:
        return []
    parts = text.split(":")
    if parts[0] == "exit" and len(parts) == 2:
        return [ChaosRule(point="cluster.worker.lease", action="sabotage-exit",
                          match={"index": int(parts[1]), "attempt": 0})]
    if parts[0] == "stall" and len(parts) == 3:
        return [ChaosRule(point="cluster.worker.lease", action="stall",
                          match={"index": int(parts[1]), "attempt": 0},
                          seconds=float(parts[2]))]
    raise ValueError(f"bad REPRO_CLUSTER_SABOTAGE: {text!r}")


@dataclass
class _CellRuntime:
    """One prepared cell: the rebuilt module plus everything
    ``run_plans`` needs, golden run already priced."""

    module: object
    entry: str
    args: tuple
    reference: list
    budget: int
    rtol: float
    engine: str
    #: Lanes per batched golden run; 1 = sequential injection. A
    #: per-worker execution knob (counts are bit-identical for any
    #: value), so it rides the prepare frame, not the store spec.
    batch: int = 1
    fault_model: str = "register-bitflip"


class ClusterWorker:
    """Connect to a coordinator and serve leases until told to stop.

    ``idle_timeout`` bounds how long the worker blocks waiting for the
    next frame; a coordinator that vanishes without closing the
    connection (powered-off machine) ends the worker instead of
    leaking it forever.
    """

    def __init__(self, host: str, port: int, worker_id: Optional[str] = None,
                 idle_timeout: float = 3600.0, quiet: bool = False,
                 connect_policy: Optional[RetryPolicy] = None):
        self.host = host
        self.port = port
        self.worker_id = worker_id or f"{socket.gethostname()}-{os.getpid()}"
        self.idle_timeout = idle_timeout
        self.quiet = quiet
        self.connect_policy = connect_policy or WORKER_CONNECT
        self._cells = CellCache()
        self._runtimes: Dict[str, _CellRuntime] = {}
        self._sock: Optional[socket.socket] = None
        #: Jitter source for connect/resend backoff (timing only —
        #: never outcome-affecting).
        self._rng = random.Random()
        self._arm_chaos()

    def _arm_chaos(self) -> None:
        """Arm a chaos controller from ``$REPRO_CHAOS`` and fold the
        legacy sabotage hook's rules into it."""
        sabotage = _parse_sabotage(os.environ.get("REPRO_CLUSTER_SABOTAGE"))
        controller = chaos.activate_from_env()
        if not sabotage:
            return
        if controller is None:
            controller = chaos.activate(chaos.ChaosController(
                chaos.ChaosSpec(scenario="sabotage", seed=0)))
            # Controllers size their bookkeeping at construction, so
            # append rules by rebuilding rather than mutating.
        spec = controller.spec
        spec.rules = list(spec.rules) + sabotage
        chaos.activate(chaos.ChaosController(spec))

    def _say(self, text: str) -> None:
        if not self.quiet:
            print(f"[worker {self.worker_id}] {text}", flush=True)

    def _connect(self) -> socket.socket:
        """Bounded, jitter-backed-off connect. A dead coordinator
        address fails the agent in about a second instead of hanging
        it on the kernel's connect timeout; a restarting one is
        retried without the whole fleet reconnecting in lockstep."""
        policy = self.connect_policy
        last: Optional[OSError] = None
        for attempt in policy.attempts():
            if attempt:
                time.sleep(policy.delay(attempt - 1, self._rng))
            try:
                return socket.create_connection((self.host, self.port),
                                                timeout=policy.timeout)
            except OSError as exc:
                last = exc
        raise last if last is not None else OSError("connect failed")

    def run(self) -> int:
        try:
            self._sock = self._connect()
        except OSError as exc:
            self._say(f"cannot reach coordinator at "
                      f"{self.host}:{self.port}: {exc}")
            return 1
        self._sock.settimeout(self.idle_timeout)
        try:
            return self._serve()
        except OSError as exc:
            self._say(f"lost coordinator connection: {exc}")
            return 1
        finally:
            try:
                self._sock.close()
            except OSError:
                pass

    def _handshake(self) -> bool:
        """hello/welcome over the current socket; updates worker_id
        (the coordinator may uniquify duplicate names)."""
        send_message(self._sock, {
            "kind": "hello", "proto": PROTO_VERSION, "schema": LAB_SCHEMA,
            "toolchain": toolchain_digest(),
            "worker": self.worker_id, "host": socket.gethostname(),
            "pid": os.getpid(),
        })
        welcome = recv_message(self._sock)
        if welcome is None or welcome.get("kind") == "reject":
            reason = (welcome or {}).get("reason", "connection closed")
            self._say(f"rejected: {reason}")
            return False
        self.worker_id = str(welcome.get("worker", self.worker_id))
        return True

    def _serve(self) -> int:
        if not self._handshake():
            return 1
        self._say(f"connected to {self.host}:{self.port}")
        while True:
            try:
                message = recv_message(self._sock)
            except socket.timeout:
                self._say(f"no frame for {self.idle_timeout:.0f}s; exiting")
                return 1
            if message is None:
                self._say("coordinator closed the connection")
                return 0
            kind = message.get("kind")
            if kind == "shutdown":
                self._say("shutdown requested")
                return 0
            if kind == "mismatch":
                self._say(f"refused by coordinator: {message.get('reason')}")
                return 1
            if kind == "prepare":
                self._prepare(message)
            elif kind == "lease":
                self._execute(message)
            # Unknown kinds are ignored: a newer coordinator may emit
            # informational frames an older worker can safely skip.

    # Cell preparation --------------------------------------------------------

    def _prepare(self, message: Dict) -> None:
        cell_id = str(message["cell"])
        started = time.perf_counter()
        try:
            module, entry, args = self._cells.get(
                str(message["workload"]), str(message["build_scale"]),
                str(message["version"]))
            engine = str(message.get("engine", "decoded"))
            reference, profile = golden_profile(module, entry, args, None,
                                                engine=engine)
            model = get_model(str(message["fault_model"]))
            runtime = _CellRuntime(
                module=module, entry=entry, args=args, reference=reference,
                budget=(int(profile.executed
                            * float(message["hang_factor"])) + 10_000),
                rtol=float(message["rtol"]),
                engine=engine,
                batch=int(message.get("batch", 1)),
                fault_model=str(message["fault_model"]),
            )
        except Exception as exc:
            self._say(f"cannot prepare cell: {exc!r}")
            send_message(self._sock, {
                "kind": "prepare-error", "cell": cell_id,
                "error": repr(exc),
            })
            return
        self._runtimes[cell_id] = runtime
        send_message(self._sock, {
            "kind": "prepared",
            "cell": cell_id,
            "module_digest": module_digest(module),
            "golden_digest": golden_digest(
                reference, profile.eligible, profile.executed,
                profile.mem_accesses, profile.cond_branches,
                profile.checker_sites),
            "population": model.population(profile),
            "model_key": model_cache_key_digest(str(message["fault_model"])),
            "eligible": profile.eligible,
            "executed": profile.executed,
            "golden_seconds": time.perf_counter() - started,
        })
        self._say(f"prepared {message['workload']}/{message['version']} "
                  f"({profile.eligible} eligible sites)")

    # Shard execution ---------------------------------------------------------

    def _chaos(self, point: str, **ctx) -> None:
        """Consult the armed chaos controller at ``point``. A firing is
        announced to the coordinator as a ``chaos-fired`` event frame
        *before* it is performed, so even a crash firing leaves a trace
        in the driver's event log. ``sabotage-exit`` hard-kills with
        :data:`SABOTAGE_STATUS`; ``stall`` goes silent past the lease
        timeout (expiry, re-lease, and the late-commit discard);
        ``crash`` dies like a power loss (exit 23)."""
        controller = chaos.active()
        if controller is None:
            return
        rule = controller.consult(point, ctx)
        if rule is None:
            return
        try:
            send_message(self._sock, {
                "kind": "event", "name": "chaos-fired",
                "data": {"point": point, "action": rule.action, **ctx},
            })
        except OSError:
            pass
        if rule.action == "sabotage-exit":
            os._exit(SABOTAGE_STATUS)
        chaos.perform(rule)

    def _execute(self, lease: Dict) -> None:
        cell_id = str(lease["cell"])
        index = int(lease["index"])
        attempt = int(lease.get("attempt", 0))
        runtime = self._runtimes.get(cell_id)
        if runtime is None:
            send_message(self._sock, {
                "kind": "shard-error", "cell": cell_id, "index": index,
                "error": "lease for a cell this worker never prepared",
            })
            return
        interval = float(lease.get("heartbeat_interval", 1.0))
        plans = [plan_from_wire(p) for p in lease["plans"]]
        self._chaos("cluster.worker.lease", index=index, attempt=attempt)
        started = time.perf_counter()
        last_beat = time.monotonic()

        def beat() -> None:
            # run_plans ticks after every injection (or batch), which
            # keeps the lease alive without a heartbeat thread.
            nonlocal last_beat
            now = time.monotonic()
            if now - last_beat >= interval:
                send_message(self._sock, {
                    "kind": "heartbeat", "cell": cell_id, "index": index,
                })
                last_beat = now

        try:
            counts = Counter(run_plans(
                runtime.module, runtime.entry, runtime.args, plans,
                runtime.reference, runtime.budget, runtime.rtol, None,
                engine=runtime.engine, batch=runtime.batch,
                fault_model=runtime.fault_model, tick=beat,
            ))
        except Exception as exc:
            send_message(self._sock, {
                "kind": "shard-error", "cell": cell_id, "index": index,
                "error": repr(exc),
            })
            return
        # The agent-crash-before-commit seam: work done, result not yet
        # reported. A crash here must cost one re-execution (lease
        # expiry) and nothing else — never a double count.
        self._chaos("cluster.worker.pre-commit", index=index, attempt=attempt)
        self._send_result({
            "kind": "result",
            "cell": cell_id,
            "index": index,
            "n": len(plans),
            "counts": counts_to_wire(counts),
            "seconds": time.perf_counter() - started,
        })

    def _send_result(self, frame: Dict) -> None:
        """Deliver a finished shard's result, reconnecting if the
        connection died while we were executing. Safe to retry: the
        coordinator's commit is at-most-once (first result per shard
        wins, duplicates are discarded), so resending can only turn
        wasted work into a commit — never into a double count."""
        try:
            send_message(self._sock, frame)
            return
        except OSError as exc:
            self._say(f"connection lost with shard {frame['index']} "
                      f"finished: {exc}")
        for attempt in RESULT_RESEND.attempts():
            time.sleep(RESULT_RESEND.delay(attempt, self._rng))
            try:
                sock = self._connect()
            except OSError:
                continue
            old, self._sock = self._sock, sock
            self._sock.settimeout(self.idle_timeout)
            try:
                old.close()
            except OSError:
                pass
            try:
                if not self._handshake():
                    return
                send_message(self._sock, frame)
            except OSError:
                continue
            self._say(f"resent result for shard {frame['index']} "
                      "after reconnect")
            return
        self._say(f"giving up on shard {frame['index']}: coordinator "
                  "unreachable (lease expiry will re-execute it)")
