"""Cluster worker agent: a synchronous lease-execute-report loop.

One process, one TCP connection, no threads: the worker connects,
handshakes (protocol version + lab schema + toolchain digest), and
then serves whatever
the coordinator sends. For each cell it *prepares* — rebuilds the
module from the cell recipe (:mod:`repro.cluster.cells`), runs the
golden execution through its own cache, and reports content digests so
the coordinator can refuse a drifted checkout before leasing work.
For each lease it executes the shard's fault plans exactly as shipped
(plans are never re-drawn — that is the determinism invariant) and
streams back the outcome counts.

Heartbeats ride inside the injection loop: between injections the
worker checks a monotonic clock and sends a ``heartbeat`` frame every
``heartbeat_interval`` seconds, so liveness costs no extra thread. A
worker that dies mid-shard simply stops heartbeating (or drops the
connection) and the coordinator re-leases the shard elsewhere.

``$REPRO_CLUSTER_SABOTAGE`` is a test-only hook (mirroring the lab
scheduler's ``_sabotage``): ``exit:INDEX`` hard-kills the process when
it starts executing shard INDEX on attempt 0; ``stall:INDEX:SECONDS``
stops heartbeating for that long instead. Both exist so the failure
tests can kill a worker *deterministically* mid-shard.
"""

from __future__ import annotations

import os
import socket
import time
from collections import Counter
from dataclasses import dataclass
from typing import Dict, Optional

from ..faults.campaign import golden_profile, run_plans
from ..faults.models import get_model
from ..lab.checkpoint import golden_digest, module_digest
from ..lab.store import LAB_SCHEMA
from ..toolchain import toolchain_digest
from .cells import CellCache
from .coordinator import model_cache_key_digest
from .proto import (
    PROTO_VERSION,
    counts_to_wire,
    plan_from_wire,
    recv_message,
    send_message,
)


def _parse_sabotage(text: Optional[str]):
    """``exit:IDX`` or ``stall:IDX:SECONDS`` -> (mode, index, seconds)."""
    if not text:
        return None
    parts = text.split(":")
    if parts[0] == "exit" and len(parts) == 2:
        return ("exit", int(parts[1]), 0.0)
    if parts[0] == "stall" and len(parts) == 3:
        return ("stall", int(parts[1]), float(parts[2]))
    raise ValueError(f"bad REPRO_CLUSTER_SABOTAGE: {text!r}")


@dataclass
class _CellRuntime:
    """One prepared cell: the rebuilt module plus everything
    ``run_plans`` needs, golden run already priced."""

    module: object
    entry: str
    args: tuple
    reference: list
    budget: int
    rtol: float
    engine: str
    #: Lanes per batched golden run; 1 = sequential injection. A
    #: per-worker execution knob (counts are bit-identical for any
    #: value), so it rides the prepare frame, not the store spec.
    batch: int = 1
    fault_model: str = "register-bitflip"


class ClusterWorker:
    """Connect to a coordinator and serve leases until told to stop.

    ``idle_timeout`` bounds how long the worker blocks waiting for the
    next frame; a coordinator that vanishes without closing the
    connection (powered-off machine) ends the worker instead of
    leaking it forever.
    """

    def __init__(self, host: str, port: int, worker_id: Optional[str] = None,
                 idle_timeout: float = 3600.0, quiet: bool = False):
        self.host = host
        self.port = port
        self.worker_id = worker_id or f"{socket.gethostname()}-{os.getpid()}"
        self.idle_timeout = idle_timeout
        self.quiet = quiet
        self._cells = CellCache()
        self._runtimes: Dict[str, _CellRuntime] = {}
        self._sock: Optional[socket.socket] = None
        self._sabotage = _parse_sabotage(
            os.environ.get("REPRO_CLUSTER_SABOTAGE"))

    def _say(self, text: str) -> None:
        if not self.quiet:
            print(f"[worker {self.worker_id}] {text}", flush=True)

    def run(self) -> int:
        try:
            self._sock = socket.create_connection((self.host, self.port),
                                                  timeout=30.0)
        except OSError as exc:
            self._say(f"cannot reach coordinator at "
                      f"{self.host}:{self.port}: {exc}")
            return 1
        self._sock.settimeout(self.idle_timeout)
        try:
            return self._serve()
        finally:
            try:
                self._sock.close()
            except OSError:
                pass

    def _serve(self) -> int:
        send_message(self._sock, {
            "kind": "hello", "proto": PROTO_VERSION, "schema": LAB_SCHEMA,
            "toolchain": toolchain_digest(),
            "worker": self.worker_id, "host": socket.gethostname(),
            "pid": os.getpid(),
        })
        welcome = recv_message(self._sock)
        if welcome is None or welcome.get("kind") == "reject":
            reason = (welcome or {}).get("reason", "connection closed")
            self._say(f"rejected: {reason}")
            return 1
        # The coordinator may have uniquified our id (duplicate names).
        self.worker_id = str(welcome.get("worker", self.worker_id))
        self._say(f"connected to {self.host}:{self.port}")
        while True:
            try:
                message = recv_message(self._sock)
            except socket.timeout:
                self._say(f"no frame for {self.idle_timeout:.0f}s; exiting")
                return 1
            if message is None:
                self._say("coordinator closed the connection")
                return 0
            kind = message.get("kind")
            if kind == "shutdown":
                self._say("shutdown requested")
                return 0
            if kind == "mismatch":
                self._say(f"refused by coordinator: {message.get('reason')}")
                return 1
            if kind == "prepare":
                self._prepare(message)
            elif kind == "lease":
                self._execute(message)
            # Unknown kinds are ignored: a newer coordinator may emit
            # informational frames an older worker can safely skip.

    # Cell preparation --------------------------------------------------------

    def _prepare(self, message: Dict) -> None:
        cell_id = str(message["cell"])
        started = time.perf_counter()
        try:
            module, entry, args = self._cells.get(
                str(message["workload"]), str(message["build_scale"]),
                str(message["version"]))
            engine = str(message.get("engine", "decoded"))
            reference, profile = golden_profile(module, entry, args, None,
                                                engine=engine)
            model = get_model(str(message["fault_model"]))
            runtime = _CellRuntime(
                module=module, entry=entry, args=args, reference=reference,
                budget=(int(profile.executed
                            * float(message["hang_factor"])) + 10_000),
                rtol=float(message["rtol"]),
                engine=engine,
                batch=int(message.get("batch", 1)),
                fault_model=str(message["fault_model"]),
            )
        except Exception as exc:
            self._say(f"cannot prepare cell: {exc!r}")
            send_message(self._sock, {
                "kind": "prepare-error", "cell": cell_id,
                "error": repr(exc),
            })
            return
        self._runtimes[cell_id] = runtime
        send_message(self._sock, {
            "kind": "prepared",
            "cell": cell_id,
            "module_digest": module_digest(module),
            "golden_digest": golden_digest(
                reference, profile.eligible, profile.executed,
                profile.mem_accesses, profile.cond_branches,
                profile.checker_sites),
            "population": model.population(profile),
            "model_key": model_cache_key_digest(str(message["fault_model"])),
            "eligible": profile.eligible,
            "executed": profile.executed,
            "golden_seconds": time.perf_counter() - started,
        })
        self._say(f"prepared {message['workload']}/{message['version']} "
                  f"({profile.eligible} eligible sites)")

    # Shard execution ---------------------------------------------------------

    def _maybe_sabotage(self, index: int, attempt: int) -> None:
        if self._sabotage is None or attempt != 0:
            return
        mode, target, seconds = self._sabotage
        if index != target:
            return
        if mode == "exit":
            os._exit(17)
        # "stall": go silent past the lease timeout, then resume —
        # exercising expiry, re-lease, AND the late-commit discard.
        time.sleep(seconds)
        self._sabotage = None

    def _execute(self, lease: Dict) -> None:
        cell_id = str(lease["cell"])
        index = int(lease["index"])
        attempt = int(lease.get("attempt", 0))
        runtime = self._runtimes.get(cell_id)
        if runtime is None:
            send_message(self._sock, {
                "kind": "shard-error", "cell": cell_id, "index": index,
                "error": "lease for a cell this worker never prepared",
            })
            return
        interval = float(lease.get("heartbeat_interval", 1.0))
        plans = [plan_from_wire(p) for p in lease["plans"]]
        self._maybe_sabotage(index, attempt)
        started = time.perf_counter()
        last_beat = time.monotonic()

        def beat() -> None:
            # run_plans ticks after every injection (or batch), which
            # keeps the lease alive without a heartbeat thread.
            nonlocal last_beat
            now = time.monotonic()
            if now - last_beat >= interval:
                send_message(self._sock, {
                    "kind": "heartbeat", "cell": cell_id, "index": index,
                })
                last_beat = now

        try:
            counts = Counter(run_plans(
                runtime.module, runtime.entry, runtime.args, plans,
                runtime.reference, runtime.budget, runtime.rtol, None,
                engine=runtime.engine, batch=runtime.batch,
                fault_model=runtime.fault_model, tick=beat,
            ))
        except Exception as exc:
            send_message(self._sock, {
                "kind": "shard-error", "cell": cell_id, "index": index,
                "error": repr(exc),
            })
            return
        send_message(self._sock, {
            "kind": "result",
            "cell": cell_id,
            "index": index,
            "n": len(plans),
            "counts": counts_to_wire(counts),
            "seconds": time.perf_counter() - started,
        })
