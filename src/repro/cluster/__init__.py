"""repro.cluster — distributed fault-injection campaigns.

The paper ran its 2500-injections-per-program study on a 25-machine
cluster driven by ad-hoc scripts (§IV-B/C). :mod:`repro.lab` made
those campaigns durable on one host; this package makes them a
networked system:

- :mod:`repro.cluster.proto` — length-prefixed JSON frames over TCP,
  with version-checked handshakes.
- :mod:`repro.cluster.lease` — shard leases: heartbeats, expiry,
  exponential-backoff requeue, at-most-once commit.
- :mod:`repro.cluster.coordinator` — asyncio coordinator that leases
  :class:`~repro.lab.checkpoint.ShardPlan`s to workers and merges
  results into the content-addressed store through a backpressured
  writer; :func:`run_distributed_campaign` is the cluster twin of
  :func:`repro.lab.durable.run_durable_campaign`.
- :mod:`repro.cluster.worker` — the worker agent: handshake (protocol
  version, IR digest, fault-model ``cache_key``), its own golden-run
  cache, heartbeats between injections.
- :mod:`repro.cluster.cells` — the cell recipe both ends rebuild
  modules from (modules never cross the wire).
- :mod:`repro.cluster.cli` — ``python -m repro cluster
  coordinator|worker``; the one-command local mode is ``python -m
  repro campaign --cluster N``.

The invariant everything rests on: **shard plans are the unit of
distribution and are never re-drawn**, so a campaign's outcome counts
are bit-identical whether its shards run serially, on forked workers,
or scattered across a cluster — and whichever machine a re-leased
shard lands on.
"""

from .cells import VERSIONS, build_cell
from .coordinator import (
    CellJob,
    ClusterCoordinator,
    run_distributed_campaign,
)
from .lease import LeasePolicy, LeaseTable, ShardExhausted
from .proto import (
    MAX_FRAME,
    PROTO_VERSION,
    ProtocolError,
    plan_from_wire,
    plan_to_wire,
    shard_from_wire,
    shard_to_wire,
)
from .worker import ClusterWorker

__all__ = [
    "CellJob",
    "ClusterCoordinator",
    "ClusterWorker",
    "LeasePolicy",
    "LeaseTable",
    "MAX_FRAME",
    "PROTO_VERSION",
    "ProtocolError",
    "ShardExhausted",
    "VERSIONS",
    "build_cell",
    "plan_from_wire",
    "plan_to_wire",
    "run_distributed_campaign",
    "shard_from_wire",
    "shard_to_wire",
]
