"""Cell recipes: how both ends of the wire rebuild a campaign cell.

Modules never cross the network (they are not picklable by design —
the lab's forked workers inherit them, and a remote worker cannot).
Instead a cell travels as a *recipe*: ``(workload, build scale,
version)``. Coordinator and worker each rebuild the module from their
own checkout through the unified toolchain — the canonical §IV-A
pipeline plus the registry variant's hardening transform, identical to
what the harness figures run — and the handshake compares content
digests of the printed IR and of the golden run, so a drifted checkout
is refused before any shard is leased rather than silently producing
different counts.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..ir.module import Module
from ..toolchain import default_toolchain, get_variant, variant_names

#: Version vocabulary for recipes on the wire: every registry variant
#: (and its aliases). Kept as a mapping for backward compatibility —
#: ``sorted(VERSIONS)`` is still the CLI's "what can I ask for" list —
#: but the values are the registry specs, not ad-hoc lambdas.
VERSIONS = {name: get_variant(name) for name in variant_names()}


def build_cell(workload: str, build_scale: str,
               version: str) -> Tuple[Module, str, tuple]:
    """Rebuild one cell's module via the unified toolchain; returns
    (module, entry, args). Raises ``KeyError`` (listing the registry)
    for unknown versions."""
    built = default_toolchain().build(workload, build_scale, version)
    return built.module, built.entry, built.args


class CellCache:
    """Worker-side cache of rebuilt cells keyed by recipe, backed by
    the process-wide toolchain (which itself memoizes builds and
    rehydrates from the on-disk artifact cache). The golden run is
    additionally memoized on the module
    (:func:`repro.faults.campaign.golden_profile`), so a worker serving
    many leases of one cell pays for at most one build and one golden
    run."""

    def __init__(self):
        self._cells: Dict[tuple, Tuple[Module, str, tuple]] = {}

    def get(self, workload: str, build_scale: str,
            version: str) -> Tuple[Module, str, tuple]:
        key = (workload, build_scale, version)
        cell = self._cells.get(key)
        if cell is None:
            cell = build_cell(workload, build_scale, version)
            self._cells[key] = cell
        return cell
