"""Cell recipes: how both ends of the wire rebuild a campaign cell.

Modules never cross the network (they are not picklable by design —
the lab's forked workers inherit them, and a remote worker cannot).
Instead a cell travels as a *recipe*: ``(workload, build scale,
version)``. Coordinator and worker each rebuild the module from their
own checkout — registry workload, ``mem2reg``, then the version's
hardening transform — and the handshake compares content digests of
the printed IR and of the golden run, so a drifted checkout is
refused before any shard is leased rather than silently producing
different counts.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..ir.module import Module
from ..passes.elzar import ElzarOptions, elzar_transform
from ..passes.mem2reg import mem2reg
from ..passes.swiftr import swiftr_transform
from ..workloads.registry import get

#: Version name -> hardening transform over the mem2reg'd base module.
#: Shared by ``python -m repro campaign`` and every cluster worker, so
#: the two cannot disagree about what "elzar-detect" means.
VERSIONS = {
    "native": lambda base: base,
    "elzar": elzar_transform,
    "elzar-detect": lambda base: elzar_transform(
        base, ElzarOptions(fail_stop=True)),
    "swiftr": swiftr_transform,
}


def build_cell(workload: str, build_scale: str,
               version: str) -> Tuple[Module, str, tuple]:
    """Rebuild one cell's module; returns (module, entry, args)."""
    transform = VERSIONS.get(version)
    if transform is None:
        raise KeyError(
            f"unknown version {version!r}; have {sorted(VERSIONS)}"
        )
    built = get(workload).build_at(build_scale)
    base = mem2reg(built.module)
    return transform(base), built.entry, built.args


class CellCache:
    """Worker-side cache of rebuilt cells keyed by recipe. The golden
    run itself is additionally memoized on the module
    (:func:`repro.faults.campaign.golden_profile`), so a worker serving
    many leases of one cell pays for one build and one golden run."""

    def __init__(self):
        self._cells: Dict[tuple, Tuple[Module, str, tuple]] = {}

    def get(self, workload: str, build_scale: str,
            version: str) -> Tuple[Module, str, tuple]:
        key = (workload, build_scale, version)
        cell = self._cells.get(key)
        if cell is None:
            cell = build_cell(workload, build_scale, version)
            self._cells[key] = cell
        return cell
