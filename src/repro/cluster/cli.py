"""``python -m repro cluster`` — distributed campaign fabric.

Two roles::

    # On the machine with the store (and the results):
    python -m repro cluster coordinator --port 7100 --scale test

    # On each worker machine (same checkout — the handshake verifies):
    python -m repro cluster worker --connect coord-host:7100

    # Or everything on one machine, one command:
    python -m repro campaign --cluster 4 --scale test

The coordinator accepts the same campaign flags as ``python -m repro
campaign`` (it *is* that command with the shard scheduler swapped for
network leases) and waits for workers; work starts as soon as the
first worker handshakes and rebalances as others join or die. See
docs/CLUSTER.md for the protocol and failure semantics.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
import time
from typing import List, Optional


def _build_parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro cluster",
        description="Distributed fault-injection campaigns "
                    "(coordinator/worker).",
    )
    sub = parser.add_subparsers(dest="role", required=True)

    coord = sub.add_parser(
        "coordinator",
        help="lease campaign shards to connected workers",
    )
    coord.add_argument("--host", default="0.0.0.0",
                       help="interface to listen on (default: all)")
    coord.add_argument("--port", type=int, default=7100,
                       help="TCP port to listen on (0 = ephemeral)")
    coord.add_argument("--lease-timeout", type=float, default=30.0,
                       help="seconds without a heartbeat before a shard "
                            "is re-leased")

    worker = sub.add_parser(
        "worker",
        help="connect to a coordinator and execute leased shards",
    )
    worker.add_argument("--connect", required=True, metavar="HOST:PORT",
                        help="coordinator address")
    worker.add_argument("--id", default=None,
                        help="worker name (default: hostname-pid)")
    worker.add_argument("--idle-timeout", type=float, default=3600.0,
                        help="exit after this many idle seconds")
    worker.add_argument("--quiet", action="store_true",
                        help="suppress per-lease progress lines")
    return parser, coord


def spawn_local_workers(host: str, port: int, count: int, *,
                        quiet: bool = True,
                        env: Optional[dict] = None) -> List:
    """Start ``count`` worker agents on this machine pointed at
    ``host:port`` (the ``campaign --cluster N`` local mode). The
    child's ``PYTHONPATH`` is pinned to this checkout so the workers
    run the same code whether or not the parent was launched with
    ``PYTHONPATH=src``."""
    import repro

    src_root = os.path.dirname(os.path.dirname(os.path.abspath(
        repro.__file__)))
    child_env = dict(os.environ if env is None else env)
    existing = child_env.get("PYTHONPATH", "")
    child_env["PYTHONPATH"] = (
        src_root + (os.pathsep + existing if existing else "")
    )
    procs = []
    for i in range(count):
        cmd = [sys.executable, "-m", "repro", "cluster", "worker",
               "--connect", f"{host}:{port}", "--id", f"local-{i}"]
        if quiet:
            cmd.append("--quiet")
        procs.append(subprocess.Popen(cmd, env=child_env))
    return procs


def reap_workers(procs: List, timeout: float = 10.0) -> None:
    """Wait for spawned workers to exit (they do, on ``shutdown``);
    kill stragglers so no campaign leaks processes."""
    deadline = time.monotonic() + timeout
    for proc in procs:
        remaining = max(0.1, deadline - time.monotonic())
        try:
            proc.wait(timeout=remaining)
        except subprocess.TimeoutExpired:
            proc.kill()
            try:
                proc.wait(timeout=5.0)
            except subprocess.TimeoutExpired:
                pass


def _worker_main(args: argparse.Namespace) -> int:
    from .worker import ClusterWorker

    host, _, port_text = args.connect.rpartition(":")
    if not host or not port_text.isdigit():
        print(f"--connect wants HOST:PORT, got {args.connect!r}",
              file=sys.stderr)
        return 2
    worker = ClusterWorker(host, int(port_text), worker_id=args.id,
                           idle_timeout=args.idle_timeout, quiet=args.quiet)
    return worker.run()


def _coordinator_main(args: argparse.Namespace,
                      campaign_argv: List[str]) -> int:
    # The coordinator shares the campaign CLI wholesale (flags, resume
    # manifests, reporting); it only swaps the execution fabric.
    from ..lab.cli import main as campaign_main

    return campaign_main([
        "--serve-cluster", f"{args.host}:{args.port}",
        "--lease-timeout", str(args.lease_timeout),
        *campaign_argv,
    ])


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    parser, _ = _build_parser()
    # Campaign flags after "coordinator" pass through to the campaign
    # CLI; parse only the cluster-level ones here.
    args, passthrough = parser.parse_known_args(argv)
    if args.role == "worker":
        if passthrough:
            parser.error(f"unknown worker arguments: {passthrough}")
        return _worker_main(args)
    return _coordinator_main(args, passthrough)
