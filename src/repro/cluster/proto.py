"""Cluster wire protocol: length-prefixed JSON frames over TCP.

Every message is one frame: a 4-byte big-endian payload length
followed by that many bytes of UTF-8 JSON encoding a dict with at
least a ``"kind"`` key. JSON because every value that crosses the wire
is already JSON-shaped (fault plans are flat dataclasses of ints,
outcome counts are ``{outcome value: int}`` maps, everything else is
digests and scalars) and because a human can read a captured frame.

Compatibility is negotiated, never assumed: the worker's ``hello``
carries :data:`PROTO_VERSION` and the lab store schema
(:data:`repro.lab.store.LAB_SCHEMA`); the coordinator rejects a
mismatch before any work is leased. Per-cell compatibility (IR digest,
golden-run digest, fault-model ``cache_key``, target-stream
population) is then verified by the ``prepare``/``prepared`` exchange
— see :mod:`repro.cluster.coordinator`.

Both a blocking-socket codec (worker agents are synchronous) and an
asyncio codec (the coordinator is an asyncio server) live here, so the
two sides cannot drift apart.
"""

from __future__ import annotations

import json
import socket
import struct
from collections import Counter
from dataclasses import asdict
from typing import Dict, Optional

from ..chaos.hooks import chaos_point
from ..cpu.interpreter import FaultPlan
from ..faults.outcomes import Outcome
from ..lab.checkpoint import ShardPlan

#: Bump on any frame-schema change; the handshake refuses a mismatch.
PROTO_VERSION = 1

#: Upper bound on one frame's payload. Generous — the largest real
#: frame is a lease carrying one shard's fault plans (a few KB) — but
#: it keeps a corrupt or hostile length prefix from allocating GBs.
MAX_FRAME = 32 * 1024 * 1024

_HEADER = struct.Struct(">I")


class ProtocolError(Exception):
    """A malformed, oversized, or truncated frame."""


def encode_frame(message: Dict) -> bytes:
    payload = json.dumps(message, separators=(",", ":"),
                         sort_keys=True).encode("utf-8")
    if len(payload) > MAX_FRAME:
        raise ProtocolError(f"frame of {len(payload)} bytes exceeds "
                            f"MAX_FRAME ({MAX_FRAME})")
    return _HEADER.pack(len(payload)) + payload


def _decode_payload(payload: bytes) -> Dict:
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from None
    if not isinstance(message, dict) or "kind" not in message:
        raise ProtocolError("frame is not a dict with a 'kind' key")
    return message


def _parse_header(header: bytes) -> int:
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME:
        raise ProtocolError(f"frame length {length} exceeds MAX_FRAME "
                            f"({MAX_FRAME})")
    return length


# Blocking-socket codec (worker side) -----------------------------------------

def send_message(sock: socket.socket, message: Dict) -> None:
    """Send one frame. The chaos seam models a lossy/degraded network
    on the worker side of the wire: ``drop`` discards the frame (the
    lease expires and the shard is re-executed elsewhere),
    ``duplicate`` sends it twice (the coordinator's at-most-once
    commit must discard the copy), and a generic ``stall`` delays it
    past the lease timeout (a late commit racing a re-lease)."""
    kind = str(message.get("kind"))
    index = int(message.get("index", -1))
    rule = chaos_point("cluster.proto.send", kind=kind, index=index)
    if rule is not None:
        # Announce the firing on the wire *before* performing it: the
        # announcement precedes the (possibly mangled) frame in the TCP
        # stream, so the coordinator logs it before the frame's commit
        # can complete the campaign — deterministic evidence even when
        # the fault rides the campaign's very last frame and teardown
        # races the victim connection's reader.
        try:
            sock.sendall(encode_frame({
                "kind": "event", "name": "chaos-fired",
                "data": {"point": "cluster.proto.send",
                         "action": rule.action, "frame": kind,
                         "index": index},
            }))
        except OSError:
            pass
        if rule.action == "drop":
            return
        if rule.action == "duplicate":
            frame = encode_frame(message)
            sock.sendall(frame)
            sock.sendall(frame)
            return
        # Generic actions (a stall's sleep) were already performed
        # inside chaos_point; the frame then goes out late, below.
    sock.sendall(encode_frame(message))


def _recv_exact(sock: socket.socket, n: int) -> Optional[bytes]:
    """Read exactly ``n`` bytes; None on clean EOF at a frame boundary."""
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if remaining == n:
                return None
            raise ProtocolError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_message(sock: socket.socket) -> Optional[Dict]:
    """Next frame from a blocking socket; None on clean EOF."""
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    payload = _recv_exact(sock, _parse_header(header))
    if payload is None:
        raise ProtocolError("connection closed between header and payload")
    return _decode_payload(payload)


# asyncio codec (coordinator side) --------------------------------------------

async def send_message_async(writer, message: Dict) -> None:
    writer.write(encode_frame(message))
    await writer.drain()


async def recv_message_async(reader) -> Optional[Dict]:
    """Next frame from an asyncio stream; None on clean EOF."""
    import asyncio

    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid-header") from None
    try:
        payload = await reader.readexactly(_parse_header(header))
    except asyncio.IncompleteReadError:
        raise ProtocolError("connection closed mid-frame") from None
    return _decode_payload(payload)


# Wire forms of lab values ----------------------------------------------------

def plan_to_wire(plan: FaultPlan) -> Dict:
    wire = asdict(plan)
    wire["bits"] = list(plan.bits)
    return wire


def plan_from_wire(wire: Dict) -> FaultPlan:
    fields = dict(wire)
    fields["bits"] = tuple(fields.get("bits", ()))
    return FaultPlan(**fields)


def shard_to_wire(shard: ShardPlan) -> Dict:
    return {
        "index": shard.index,
        "start": shard.start,
        "plans": [plan_to_wire(p) for p in shard.plans],
    }


def shard_from_wire(wire: Dict) -> ShardPlan:
    return ShardPlan(
        index=int(wire["index"]),
        start=int(wire["start"]),
        plans=[plan_from_wire(p) for p in wire["plans"]],
    )


def counts_to_wire(counts: Counter) -> Dict[str, int]:
    return {o.value: int(n) for o, n in sorted(counts.items(),
                                               key=lambda kv: kv[0].value)}


def counts_from_wire(wire: Dict[str, int]) -> Counter:
    return Counter({Outcome(k): int(v) for k, v in wire.items()})
