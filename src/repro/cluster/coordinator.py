"""Campaign coordinator: lease shards to networked workers, merge
results into the lab store.

The paper drove its 25-machine fault-injection cluster with ad-hoc
scripts; this module is that layer made a real system. One asyncio TCP
server (running on a background thread so the synchronous campaign
CLI stays synchronous) owns:

- the **worker pool**: each connection handshakes (protocol version,
  lab schema, toolchain digest) and then *prepares* per cell —
  rebuilding the module
  from the cell recipe and echoing back content digests of the IR, the
  golden run, and the fault model's ``cache_key``. A mismatch is
  refused before any shard is leased: a drifted checkout can waste at
  most one handshake, never corrupt a campaign.
- the **lease table** (:mod:`repro.cluster.lease`): heartbeats,
  expiry, exponential-backoff requeue (with bounded jitter),
  at-most-once commit.
- the **store writer**: one task per cell session drains a *bounded*
  commit queue into
  the coordinator's own SQLite connection. The bound is backpressure —
  when workers outpace the writer, connection handlers block in
  ``queue.put`` and stop reading their sockets, so TCP flow control
  pushes the slowdown to the workers instead of buffering results in
  RAM.
- the **event stream**: everything is narrated on the same
  :class:`~repro.lab.events.EventBus` vocabulary the local lab uses
  (plus cluster-specific kinds), so ``python -m repro campaign``
  progress output and ``--events-log`` JSONL traces work unchanged.

Since the always-on service (:mod:`repro.service`) arrived, the
coordinator **multiplexes many concurrent cell sessions over one
worker pool**: every in-flight :class:`CellJob` owns its own lease
table, leases are tagged with the job's campaign id, and idle workers
are steered by a priority-aware fair-share rule — among the sessions
with grantable shards the highest ``priority`` wins, ties broken by
least-recently-granted, with a mild stickiness bonus for the cell a
worker has already prepared (so two workers serving two campaigns
settle into one-each instead of thrashing prepares). A worker switches
cells by re-preparing, which is cheap: builds come from the worker's
cell cache and golden runs are memoized on the module.

:func:`run_distributed_campaign` is the cluster twin of
:func:`repro.lab.durable.run_durable_campaign`: same golden run, same
pre-drawn prefix-stable plans, same store keys, same determinism
contract — shard plans are the unit of distribution and are never
re-drawn, so counts are bit-identical to any forked-worker or serial
run of the same campaign, wherever each shard lands.
"""

from __future__ import annotations

import asyncio
import itertools
import threading
import time
from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..chaos.hooks import chaos_point
from ..faults.campaign import (
    CampaignConfig,
    draw_model_plans,
    golden_profile,
)
from ..faults.models import get_model
from ..faults.outcomes import CampaignResult
from ..ir.module import Module
from ..lab.checkpoint import (
    DEFAULT_SHARD_SIZE,
    build_spec,
    ensure_golden,
    golden_digest,
    load_completed,
    module_digest,
    partition,
)
from ..lab.durable import DurableCampaign, LabRunInfo, _prefix_status
from ..lab.events import EventBus
from ..lab.sampling import AdaptiveStop
from ..lab.store import LAB_SCHEMA, ResultStore, _canonical, digest_of
from ..toolchain import toolchain_digest
from .lease import LeasePolicy, LeaseTable, ShardExhausted
from .proto import (
    PROTO_VERSION,
    ProtocolError,
    counts_from_wire,
    counts_to_wire,
    recv_message_async,
    send_message_async,
    shard_to_wire,
)

#: Uniquifies concurrent sessions of the same campaign spec: two
#: service campaigns may race over one cell recipe, and worker frames
#: are routed by cell id alone.
_SESSION_SEQ = itertools.count()


@dataclass
class CellJob:
    """Everything the loop thread needs to distribute one cell —
    plain data only; modules never cross the thread boundary."""

    cell_id: str
    workload: str
    build_scale: str
    version: str
    hang_factor: float
    rtol: float
    engine: str
    fault_model: str
    #: Per-worker lane count for batched injection (1 = sequential);
    #: an execution knob like ``engine``, so it travels in the prepare
    #: frame but never in store keys.
    batch: int
    #: Expected handshake values, computed from the coordinator's own
    #: build of the cell.
    expected: Dict[str, object]
    #: Store keys, or None for an ephemeral (store-less) cell.
    spec_key: Optional[str]
    cell_key: Optional[str]
    #: Wire form of every *missing* shard (store hits stay local).
    shards: List[Dict]
    #: (index, plan count) of every shard of the campaign, in order —
    #: the adaptive stopping rule is defined over this full sequence.
    all_indices: List[Tuple[int, int]]
    #: Already-loaded counts (store hits), wire-encoded, for prefix
    #: evaluation alongside freshly committed shards.
    loaded: Dict[int, Dict[str, int]]
    ci_target: Optional[float] = None
    min_injections: int = 50
    #: Fair-share inputs: sessions with higher priority are granted
    #: first; the campaign id tags every session-scoped event (and the
    #: leases themselves), which is how the service routes one shared
    #: event stream out to per-campaign feeds.
    priority: int = 0
    campaign: str = ""


@dataclass
class _Ix:
    """Index-only stand-in for a ShardPlan (``_prefix_status`` reads
    nothing else)."""

    index: int


@dataclass
class _WorkerConn:
    worker_id: str
    writer: object
    host: str = ""
    pid: int = 0
    #: cell_id this worker has successfully prepared for.
    prepared: Optional[str] = None
    #: cell_id of an in-flight prepare (sent, not yet acknowledged).
    preparing: Optional[str] = None
    #: (cell_id, shard index) currently leased to this worker, if any.
    lease: Optional[Tuple[str, int]] = None


class _CellSession:
    def __init__(self, job: CellJob, policy: LeasePolicy,
                 loop: asyncio.AbstractEventLoop):
        self.job = job
        self.shards_by_index = {int(s["index"]): s for s in job.shards}
        self.table = LeaseTable(sorted(self.shards_by_index), policy)
        self.commits: asyncio.Queue = asyncio.Queue(
            maxsize=max(1, policy.commit_backlog))
        self.done: asyncio.Future = loop.create_future()
        self.executed: Dict[int, Counter] = {}
        self.seconds: Dict[int, float] = {}
        #: Adaptive stop reached — stop granting, cancel idle shards.
        self.stopped = False
        #: SIGINT drain — stop granting, keep committing in-flight.
        self.draining = False
        #: Global grant sequence number of this session's most recent
        #: lease — the fair-share tiebreaker (lowest goes next).
        self.last_grant = 0
        self.stopper = (AdaptiveStop(ci_target=job.ci_target,
                                     min_injections=job.min_injections)
                        if job.ci_target is not None else None)

    def counts_for_prefix(self) -> Dict[int, Counter]:
        merged = {i: counts_from_wire(w) for i, w in self.job.loaded.items()}
        merged.update(self.executed)
        return merged

    def grantable(self) -> bool:
        return not (self.stopped or self.draining or self.done.done())

    def fail(self, exc: BaseException) -> None:
        if not self.done.done():
            self.done.set_exception(exc)

    def finish(self) -> None:
        if not self.done.done():
            self.done.set_result(dict(self.executed))


class _CellFailure(Exception):
    """Loop-side wrapper for a failed cell. A failure must cross the
    task boundary as a plain Exception: :class:`CampaignInterrupted`
    subclasses KeyboardInterrupt, and a BaseException escaping a task
    propagates out of ``run_forever`` and kills the loop thread. The
    sync facade unwraps ``cause`` for the caller."""

    def __init__(self, cause: BaseException):
        super().__init__(repr(cause))
        self.cause = cause


class ClusterCoordinator:
    """The cluster's brain: owns the server socket, the worker pool,
    and any number of in-flight :class:`CellJob` sessions. Runs its
    asyncio loop on a daemon thread; `run_cell` is the synchronous
    facade campaign drivers call per cell — from one thread (the
    campaign CLI) or many (the service's campaign runners)."""

    def __init__(self, store_path: Optional[str] = None,
                 events: Optional[EventBus] = None,
                 policy: Optional[LeasePolicy] = None,
                 host: str = "127.0.0.1", port: int = 0):
        self.store_path = store_path
        self.events = events or EventBus()
        self.policy = policy or LeasePolicy()
        self._requested = (host, port)
        self.host: Optional[str] = None
        self.port: Optional[int] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._workers: Dict[str, _WorkerConn] = {}
        self._sessions: Dict[str, _CellSession] = {}
        self._store: Optional[ResultStore] = None
        self._ticker_task: Optional[asyncio.Task] = None
        self._grant_seq = 0
        self._draining = False
        self._stopped = False

    # Lifecycle (called from the driver thread) -------------------------------

    def start(self) -> Tuple[str, int]:
        """Start the loop thread and the TCP server; returns the bound
        (host, port) — port 0 in the constructor picks an ephemeral
        one, which is how ``campaign --cluster N`` avoids collisions."""
        ready = threading.Event()
        failure: List[BaseException] = []

        def _run() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            try:
                host, port = self._requested
                self._server = loop.run_until_complete(
                    asyncio.start_server(self._serve, host, port))
                sock = self._server.sockets[0]
                self.host, self.port = sock.getsockname()[:2]
                self._ticker_task = loop.create_task(self._ticker())
            except BaseException as exc:  # bind failure, etc.
                failure.append(exc)
                ready.set()
                return
            ready.set()
            try:
                loop.run_forever()
            finally:
                pending = asyncio.all_tasks(loop)
                for task in pending:
                    task.cancel()
                if pending:
                    loop.run_until_complete(
                        asyncio.gather(*pending, return_exceptions=True))
                loop.run_until_complete(loop.shutdown_asyncgens())
                if self._store is not None:
                    self._store.close()
                loop.close()

        self._thread = threading.Thread(target=_run, daemon=True,
                                        name="repro-cluster-coordinator")
        self._thread.start()
        ready.wait()
        if failure:
            raise failure[0]
        self.events.emit("cluster-listening", host=self.host, port=self.port)
        return self.host, self.port

    def run_cell(self, job: CellJob) -> Dict[int, Counter]:
        """Distribute one cell's missing shards; blocks until every
        one is committed (or the cell fails / is interrupted). Returns
        the freshly executed counts by shard index. Thread-safe: many
        driver threads may each run their own cell concurrently — the
        loop thread interleaves their shard grants fair-share."""
        if self._loop is None:
            raise RuntimeError("coordinator not started")
        future = asyncio.run_coroutine_threadsafe(
            self._run_cell_async(job), self._loop)
        try:
            return future.result()
        except _CellFailure as exc:
            raise exc.cause from None

    def request_drain(self) -> None:
        """Stop granting leases (thread-safe); in-flight shards keep
        committing. The SIGINT/SIGTERM path."""
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._drain_now)

    @property
    def worker_count(self) -> int:
        return len(self._workers)

    @property
    def active_sessions(self) -> int:
        return len(self._sessions)

    def stop(self, drain_timeout: float = 5.0) -> None:
        """Drain (bounded wait for in-flight leases), tell workers to
        shut down, close the server, and join the loop thread.
        Completed shards are already persisted — stopping mid-campaign
        loses at most the in-flight work."""
        if self._loop is None or self._stopped:
            return
        self._stopped = True
        future = asyncio.run_coroutine_threadsafe(
            self._shutdown(drain_timeout), self._loop)
        try:
            future.result(timeout=drain_timeout + 10.0)
        except Exception:
            pass
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10.0)

    # Loop-thread internals ---------------------------------------------------

    def _emit_session(self, session: _CellSession, kind: str, **data) -> None:
        """Session-scoped events carry the campaign tag (when set) so
        one shared bus can be demultiplexed into per-campaign feeds."""
        if session.job.campaign:
            data.setdefault("campaign", session.job.campaign)
        self.events.emit(kind, **data)

    def _drain_now(self) -> None:
        self._draining = True
        for session in self._sessions.values():
            session.draining = True
        if self._sessions:
            self.events.emit("cluster-drain", reason="requested")

    async def _shutdown(self, drain_timeout: float) -> None:
        self._draining = True
        for session in list(self._sessions.values()):
            session.draining = True
        deadline = time.monotonic() + drain_timeout
        while (any(not s.table.drained()
                   for s in self._sessions.values())
               and time.monotonic() < deadline):
            await asyncio.sleep(0.05)
        from ..lab.events import CampaignInterrupted
        for session in list(self._sessions.values()):
            session.fail(CampaignInterrupted("coordinator shut down"))
        for worker in list(self._workers.values()):
            try:
                await send_message_async(worker.writer, {"kind": "shutdown"})
                worker.writer.close()
            except Exception:
                pass
        if self._server is not None:
            self._server.close()
        if self._ticker_task is not None:
            self._ticker_task.cancel()

    def _tick_interval(self) -> float:
        interval = min(self.policy.heartbeat_interval,
                       self.policy.lease_timeout / 4.0)
        return min(1.0, max(0.02, interval))

    async def _ticker(self) -> None:
        """Periodic lease maintenance: expire lapsed heartbeats
        (requeue with backoff) and grant whatever became grantable
        (backoff expiry, newly idle workers) across every session."""
        while True:
            await asyncio.sleep(self._tick_interval())
            if not self._sessions:
                continue
            now = time.monotonic()
            for session in list(self._sessions.values()):
                for expiry in session.table.expire(now):
                    self._emit_session(
                        session, "lease-expired", index=expiry.index,
                        worker=expiry.worker, attempt=expiry.attempt,
                    )
                    holder = self._workers.get(expiry.worker)
                    if (holder is not None and holder.lease ==
                            (session.job.cell_id, expiry.index)):
                        holder.lease = None
                if session.stopped or session.draining:
                    session.table.cancel_pending()
                    self._check_done(session)
            await self._grant_all()

    # Fair-share session picking ----------------------------------------------

    def _pick_session(self, worker: _WorkerConn,
                      now: float) -> Optional[_CellSession]:
        """The session whose shard this idle worker should run next.

        Among sessions with a grantable shard, highest ``priority``
        first, then least-recently-granted (fair-share interleaving).
        Within the winning priority band, stick with the cell the
        worker already prepared *if* some other idle worker is (or is
        becoming) prepared for the front-runner — that keeps a
        multi-worker pool partitioned one-campaign-each instead of
        thrashing prepares, while a lone worker still alternates."""
        candidates = [
            s for s in self._sessions.values()
            if s.grantable() and s.table.has_grantable(now)
        ]
        if not candidates:
            return None
        top = max(s.job.priority for s in candidates)
        band = sorted((s for s in candidates if s.job.priority == top),
                      key=lambda s: s.last_grant)
        front = band[0]
        if worker.prepared is not None and worker.prepared != front.job.cell_id:
            sticky = next((s for s in band
                           if s.job.cell_id == worker.prepared), None)
            if sticky is not None:
                covered = any(
                    w is not worker and w.lease is None
                    and front.job.cell_id in (w.prepared, w.preparing)
                    for w in self._workers.values()
                )
                if covered:
                    return sticky
        return front

    async def _grant_all(self) -> None:
        for worker in list(self._workers.values()):
            await self._maybe_grant(worker)

    async def _maybe_grant(self, worker: _WorkerConn) -> None:
        if worker.lease is not None:
            return
        now = time.monotonic()
        session = self._pick_session(worker, now)
        if session is None:
            return
        job = session.job
        if worker.prepared != job.cell_id:
            if worker.preparing != job.cell_id:
                worker.preparing = job.cell_id
                await self._send_prepare(worker, session)
            return
        try:
            grant = session.table.grant(worker.worker_id, now)
        except ShardExhausted as exc:
            session.fail(exc)
            return
        if grant is None:
            return
        worker.lease = (job.cell_id, grant.index)
        self._grant_seq += 1
        session.last_grant = self._grant_seq
        shard = session.shards_by_index[grant.index]
        self._emit_session(session, "lease-granted", index=grant.index,
                           worker=worker.worker_id, attempt=grant.attempt)
        try:
            await send_message_async(worker.writer, {
                "kind": "lease",
                "cell": job.cell_id,
                "index": grant.index,
                "start": shard["start"],
                "attempt": grant.attempt,
                "plans": shard["plans"],
                "heartbeat_interval": self.policy.heartbeat_interval,
            })
        except (ConnectionError, OSError):
            pass  # the read loop will reap this worker and requeue

    def _check_done(self, session: _CellSession) -> None:
        if session.table.done() and session.commits.empty():
            session.finish()

    async def _run_cell_async(self, job: CellJob) -> Dict[int, Counter]:
        if job.cell_id in self._sessions:
            raise RuntimeError(
                f"cell session {job.cell_id!r} is already being distributed")
        loop = asyncio.get_running_loop()
        session = _CellSession(job, self.policy, loop)
        if self._draining:
            session.draining = True
        self._sessions[job.cell_id] = session
        writer_task = loop.create_task(self._writer_loop(session))
        try:
            if not session.table.done():
                await self._grant_all()
            else:  # nothing missing; degenerate but legal
                session.finish()
            try:
                return await session.done
            except asyncio.CancelledError:
                raise
            except BaseException as exc:
                raise _CellFailure(exc) from None
        finally:
            self._sessions.pop(job.cell_id, None)
            writer_task.cancel()
            for worker in self._workers.values():
                if worker.prepared == job.cell_id:
                    worker.prepared = None
                if worker.preparing == job.cell_id:
                    worker.preparing = None
                if worker.lease is not None and worker.lease[0] == job.cell_id:
                    worker.lease = None
            if self._sessions:
                loop.create_task(self._grant_all())

    async def _writer_loop(self, session: _CellSession) -> None:
        """The store writer: the only consumer of this session's
        bounded commit queue. Persists each shard *before* emitting its
        ``shard-completed`` event — the same interrupt-safety
        discipline as the local lab — then re-evaluates the adaptive
        stopping rule over the completed prefix. Every session's writer
        runs on the one loop thread, so all of them funnel through the
        coordinator's single SQLite connection without locking."""
        job = session.job
        committed = 0
        while True:
            index, wire_counts, n, seconds, worker_id = \
                await session.commits.get()
            # The coordinator-restart seam: "interrupt" kills this
            # session exactly as SIGTERM/power-loss would, with this
            # commit still in the queue. Recovery = a fresh coordinator
            # against the same store resumes from the banked prefix.
            rule = chaos_point("cluster.coordinator.commit",
                               index=index, nth=committed)
            if rule is not None and rule.action == "interrupt":
                from ..lab.events import CampaignInterrupted
                session.fail(CampaignInterrupted(
                    "chaos: coordinator restart mid-commit"))
                return
            committed += 1
            counts = counts_from_wire(wire_counts)
            session.executed[index] = counts
            session.seconds[index] = seconds
            try:
                if job.spec_key is not None and self.store_path is not None:
                    if self._store is None:
                        self._store = ResultStore(self.store_path)
                    self._store.put_shard(job.spec_key, job.cell_key,
                                          index, n, counts, seconds)
                self._emit_session(
                    session, "shard-completed", index=index, n=n,
                    seconds=seconds, workload=job.workload,
                    version=job.version, worker=worker_id,
                    counts=dict(wire_counts),
                )
            except BaseException as exc:
                session.fail(exc)
                return
            if session.stopper is not None and not session.stopped:
                shards = [_Ix(i) for i, _ in job.all_indices]
                stop, _, _ = _prefix_status(
                    shards, session.counts_for_prefix(), session.stopper)
                if stop is not None:
                    session.stopped = True
                    cancelled = session.table.cancel_pending()
                    if cancelled:
                        self._emit_session(session, "leases-cancelled",
                                           count=len(cancelled),
                                           reason="adaptive-stop")
            self._check_done(session)

    # Connection handling -----------------------------------------------------

    def _unique_worker_id(self, requested: str) -> str:
        worker_id, n = requested, 1
        while worker_id in self._workers:
            n += 1
            worker_id = f"{requested}-{n}"
        return worker_id

    async def _serve(self, reader, writer) -> None:
        worker: Optional[_WorkerConn] = None
        try:
            hello = await recv_message_async(reader)
            if hello is None or hello.get("kind") != "hello":
                writer.close()
                return
            if (hello.get("proto") != PROTO_VERSION
                    or hello.get("schema") != LAB_SCHEMA
                    or hello.get("toolchain") != toolchain_digest()):
                await send_message_async(writer, {
                    "kind": "reject",
                    "reason": (f"need proto={PROTO_VERSION} "
                               f"schema={LAB_SCHEMA} "
                               f"toolchain={toolchain_digest()[:12]}, got "
                               f"proto={hello.get('proto')} "
                               f"schema={hello.get('schema')} "
                               f"toolchain="
                               f"{str(hello.get('toolchain'))[:12]}"),
                })
                writer.close()
                return
            worker = _WorkerConn(
                worker_id=self._unique_worker_id(
                    str(hello.get("worker") or "worker")),
                writer=writer,
                host=str(hello.get("host", "")),
                pid=int(hello.get("pid", 0)),
            )
            self._workers[worker.worker_id] = worker
            self.events.emit("worker-connected", worker=worker.worker_id,
                             host=worker.host, pid=worker.pid)
            await send_message_async(writer, {
                "kind": "welcome", "proto": PROTO_VERSION,
                "schema": LAB_SCHEMA, "worker": worker.worker_id,
            })
            await self._maybe_grant(worker)
            while True:
                message = await recv_message_async(reader)
                if message is None:
                    break
                await self._dispatch(worker, message)
        except (ConnectionError, ProtocolError, OSError):
            pass
        finally:
            if worker is not None:
                self._workers.pop(worker.worker_id, None)
                self.events.emit("worker-disconnected",
                                 worker=worker.worker_id)
                now = time.monotonic()
                for session in list(self._sessions.values()):
                    for expiry in session.table.release_worker(
                            worker.worker_id, now):
                        self._emit_session(
                            session, "lease-requeued", index=expiry.index,
                            worker=expiry.worker, attempt=expiry.attempt,
                            reason="worker-disconnected",
                        )
                    if session.stopped or session.draining:
                        session.table.cancel_pending()
                        self._check_done(session)
                await self._grant_all()
            try:
                writer.close()
            except Exception:
                pass

    async def _send_prepare(self, worker: _WorkerConn,
                            session: _CellSession) -> None:
        job = session.job
        try:
            await send_message_async(worker.writer, {
                "kind": "prepare",
                "cell": job.cell_id,
                "workload": job.workload,
                "build_scale": job.build_scale,
                "version": job.version,
                "hang_factor": job.hang_factor,
                "rtol": job.rtol,
                "engine": job.engine,
                "fault_model": job.fault_model,
                "batch": job.batch,
            })
        except (ConnectionError, OSError):
            pass

    async def _dispatch(self, worker: _WorkerConn, message: Dict) -> None:
        kind = message.get("kind")
        if kind == "event":
            data = message.get("data") or {}
            self.events.emit(str(message.get("name", "worker-event")),
                             worker=worker.worker_id, **data)
            return
        session = self._sessions.get(str(message.get("cell")))
        if session is None:
            # Stale frame from a finished/failed cell. A stale *result*
            # is the tail of the at-most-once story — a duplicate (or
            # post-failure) commit whose session already resolved — so
            # its discard is narrated like any other late commit.
            if kind == "result" and "index" in message:
                self.events.emit("late-commit-discarded",
                                 index=int(message["index"]),
                                 worker=worker.worker_id,
                                 reason="session-finished")
            return
        if kind == "prepared":
            if worker.preparing == session.job.cell_id:
                worker.preparing = None
            mismatch = self._verify_prepared(session.job, message)
            if mismatch:
                self._emit_session(session, "worker-mismatch",
                                   worker=worker.worker_id, reason=mismatch)
                try:
                    await send_message_async(worker.writer, {
                        "kind": "mismatch", "reason": mismatch})
                except (ConnectionError, OSError):
                    pass
                return
            worker.prepared = session.job.cell_id
            self._emit_session(
                session, "worker-prepared", worker=worker.worker_id,
                cell=session.job.cell_id,
                seconds=float(message.get("golden_seconds", 0.0)),
            )
            await self._maybe_grant(worker)
        elif kind == "prepare-error":
            if worker.preparing == session.job.cell_id:
                worker.preparing = None
            self._emit_session(session, "worker-mismatch",
                               worker=worker.worker_id,
                               reason=str(message.get("error")))
            try:
                await send_message_async(worker.writer, {
                    "kind": "mismatch", "reason": str(message.get("error"))})
            except (ConnectionError, OSError):
                pass
        elif kind == "heartbeat":
            session.table.heartbeat(int(message["index"]),
                                    worker.worker_id, time.monotonic())
        elif kind == "result":
            index = int(message["index"])
            if worker.lease == (session.job.cell_id, index):
                worker.lease = None
            status = session.table.commit(index, worker.worker_id)
            if status == "ok":
                # Bounded put = backpressure: while this session's
                # store writer is behind, this handler blocks and stops
                # reading the worker's socket.
                await session.commits.put((
                    index, dict(message["counts"]), int(message["n"]),
                    float(message.get("seconds", 0.0)), worker.worker_id,
                ))
            elif status == "duplicate":
                self._emit_session(session, "late-commit-discarded",
                                   index=index, worker=worker.worker_id)
            await self._maybe_grant(worker)
        elif kind == "shard-error":
            index = int(message["index"])
            if worker.lease == (session.job.cell_id, index):
                worker.lease = None
            disposition = session.table.fail(index, worker.worker_id,
                                             time.monotonic())
            self._emit_session(session, "shard-error", index=index,
                               worker=worker.worker_id,
                               error=str(message.get("error")),
                               disposition=disposition)
            if disposition == "exhausted":
                session.fail(ShardExhausted(
                    f"shard {index} failed on every attempt; last error: "
                    f"{message.get('error')}"))
            else:
                await self._maybe_grant(worker)

    @staticmethod
    def _verify_prepared(job: CellJob, message: Dict) -> Optional[str]:
        """None when the worker's build matches ours; else a reason."""
        for key in ("module_digest", "golden_digest", "population",
                    "model_key"):
            ours = job.expected[key]
            theirs = message.get(key)
            if theirs != ours:
                return (f"{key} mismatch: coordinator {ours!r}, "
                        f"worker {theirs!r} — checkouts differ?")
        return None


def model_cache_key_digest(fault_model: str) -> str:
    """Digest of a fault model's ``cache_key`` — the handshake form of
    "we agree what this model does"."""
    return digest_of(_canonical(get_model(fault_model).cache_key))


def run_distributed_campaign(
    module: Module,
    entry: str,
    args: Sequence,
    workload: str = "",
    version: str = "",
    config: Optional[CampaignConfig] = None,
    *,
    coordinator: ClusterCoordinator,
    build_scale: str,
    store: Optional[ResultStore] = None,
    events: Optional[EventBus] = None,
    shard_size: int = DEFAULT_SHARD_SIZE,
    ci_target: Optional[float] = None,
    min_injections: int = 50,
    priority: int = 0,
    campaign: str = "",
) -> DurableCampaign:
    """Run one campaign cell across the coordinator's worker pool.

    Drop-in twin of :func:`repro.lab.durable.run_durable_campaign`
    with the shard scheduler replaced by lease distribution. The store
    handling differs in one mechanical way: the coordinator's loop
    thread writes shards through its own SQLite connection to
    ``coordinator.store_path``, so ``store`` (used here for golden
    bookkeeping and shard loading) must point at the same file.

    ``workload``/``build_scale``/``version`` double as the cell recipe
    workers rebuild the module from, so cells must come from the
    workload registry (which is what every campaign CLI runs);
    ``config.fault_eligible`` predicates cannot travel and are
    rejected.

    ``priority`` and ``campaign`` feed the coordinator's fair-share
    multiplexing when many cells are in flight (the service path):
    higher priority is granted first, and the campaign id tags this
    cell's leases and events.
    """
    config = config or CampaignConfig()
    events = events or EventBus()
    if config.fault_eligible is not None:
        raise ValueError(
            "distributed campaigns cannot ship fault_eligible predicates "
            "to remote workers; filter by hardening the module instead"
        )

    reference, profile = golden_profile(
        module, entry, args, None, engine=config.engine
    )
    if profile.eligible == 0:
        raise ValueError(f"no eligible instructions in @{entry}")
    plans = draw_model_plans(profile, config)
    population = get_model(config.fault_model).population(profile)
    shards = partition(plans, shard_size)

    spec = build_spec(module, entry, args, config, population, shard_size)
    durable = spec is not None and store is not None
    if durable and coordinator.store_path != store.path:
        raise ValueError(
            f"coordinator writes to {coordinator.store_path!r} but the "
            f"campaign store is {store.path!r}; point both at one file"
        )

    loaded: Dict[int, Counter] = {}
    if durable:
        digest = golden_digest(reference, profile.eligible, profile.executed,
                               profile.mem_accesses, profile.cond_branches,
                               profile.checker_sites)
        ensure_golden(store, spec, digest, profile.eligible, profile.executed,
                      events)
        loaded = load_completed(store, spec, shards)

    events.emit(
        "campaign-started", workload=workload, version=version,
        shards=len(shards), injections=len(plans), from_store=len(loaded),
        cluster=True,
        spec_key=spec.spec_key if durable else None,
    )
    for index in sorted(loaded):
        events.emit("shard-store-hit", index=index,
                    n=sum(loaded[index].values()))

    missing = [s for s in shards if s.index not in loaded]
    executed: Dict[int, Counter] = {}
    if missing:
        base = (spec.spec_key if spec is not None
                else digest_of(["ephemeral", workload, version,
                                config.seed, len(plans)]))
        job = CellJob(
            # Uniquified per session: two concurrent campaigns over
            # the same spec must not collide in the coordinator's
            # routing table (their store rows still coincide).
            cell_id=f"{base}.{next(_SESSION_SEQ)}",
            workload=workload,
            build_scale=build_scale,
            version=version,
            hang_factor=config.hang_factor,
            rtol=config.rtol,
            engine=config.engine,
            fault_model=config.fault_model,
            batch=config.batch,
            expected={
                "module_digest": module_digest(module),
                "golden_digest": golden_digest(
                    reference, profile.eligible, profile.executed,
                    profile.mem_accesses, profile.cond_branches,
                    profile.checker_sites),
                "population": population,
                "model_key": model_cache_key_digest(config.fault_model),
            },
            spec_key=spec.spec_key if durable else None,
            cell_key=spec.cell_key if durable else None,
            shards=[shard_to_wire(s) for s in missing],
            all_indices=[(s.index, len(s.plans)) for s in shards],
            loaded={i: counts_to_wire(c) for i, c in loaded.items()},
            ci_target=ci_target,
            min_injections=min_injections,
            priority=priority,
            campaign=campaign,
        )
        executed = coordinator.run_cell(job)

    results: Dict[int, Counter] = dict(loaded)
    results.update(executed)
    stopper = (AdaptiveStop(ci_target=ci_target, min_injections=min_injections)
               if ci_target is not None else None)
    stop_position, prefix_len, cumulative = _prefix_status(
        shards, results, stopper)
    if stop_position is None:
        # A drain left a gap; count the contiguous completed prefix
        # only (the resume path re-executes the rest).
        stop_position = prefix_len - 1
    if stopper is not None and stop_position < len(shards) - 1:
        events.emit(
            "adaptive-stop",
            injections=sum(cumulative.values()),
            halfwidth=stopper.max_halfwidth(cumulative),
            target=stopper.ci_target,
        )

    used = shards[:stop_position + 1]
    result = CampaignResult(workload=workload, version=version,
                            fault_model=config.fault_model)
    for shard in used:
        result.counts.update(results[shard.index])

    used_indices = {s.index for s in used}
    info = LabRunInfo(
        shards_total=len(shards),
        shards_from_store=len(loaded),
        shards_executed=len(executed),
        injections_from_store=sum(
            sum(c.values()) for i, c in loaded.items() if i in used_indices
        ),
        injections_executed=sum(sum(c.values()) for c in executed.values()),
        injections_used=result.total,
        stopped_early=len(used) < len(shards),
        ci_halfwidth=(stopper.max_halfwidth(result.counts)
                      if stopper is not None else None),
        durable=durable,
    )
    events.emit(
        "campaign-finished", workload=workload, version=version,
        injections=result.total, executed=info.injections_executed,
        from_store=info.injections_from_store,
    )
    return DurableCampaign(result=result, info=info, spec=spec)
