"""kmeans (Phoenix): Lloyd iterations over 2-D points.

Assignment phase: per point, distance to every centroid with a
data-dependent minimum (branchy; Table II: 15% branches); update phase:
accumulate per-cluster sums. Distances are floating point, which is why
kmeans is one of the three benchmarks where ELZAR *beats* SWIFT-R
(Figure 14: -9%) — vector FP ops cost the same as scalar ones while
SWIFT-R triplicates them.
"""

from __future__ import annotations

import numpy as np

from ...cpu.intrinsics import rt_print_f64, rt_print_i64
from ...cpu.threads import ScalabilityProfile
from ...ir import types as T
from ...ir.builder import IRBuilder
from ...ir.module import Module
from ..common import BuiltWorkload, Workload, pick, rng

K = 4
ITERS = 3


def build(scale: str) -> BuiltWorkload:
    n = pick(scale, perf=2_500, fi=120, test=60)
    r = rng(17)
    centers = r.uniform(-50, 50, size=(K, 2))
    points = np.concatenate(
        [centers[i] + r.uniform(-8, 8, size=(n // K, 2)) for i in range(K)]
    )
    n = len(points)
    init = points[:K].copy()

    module = Module(f"kmeans.{scale}")
    gpx = module.add_global("px", T.ArrayType(T.F64, n), list(points[:, 0]))
    gpy = module.add_global("py", T.ArrayType(T.F64, n), list(points[:, 1]))
    gcx = module.add_global("cx", T.ArrayType(T.F64, K), list(init[:, 0]))
    gcy = module.add_global("cy", T.ArrayType(T.F64, K), list(init[:, 1]))
    gsx = module.add_global("sumx", T.ArrayType(T.F64, K))
    gsy = module.add_global("sumy", T.ArrayType(T.F64, K))
    gcount = module.add_global("count", T.ArrayType(T.I64, K))
    print_f64 = rt_print_f64(module)
    print_i64 = rt_print_i64(module)

    fn = module.add_function("main", T.FunctionType(T.F64, (T.I64,)), ["n"])
    b = IRBuilder()
    b.position_at_end(fn.append_block("entry"))
    (count,) = fn.args

    outer = b.begin_loop(b.i64(0), b.i64(ITERS), name="iter")

    # Reset accumulators.
    reset = b.begin_loop(b.i64(0), b.i64(K))
    b.store(b.f64(0.0), b.gep(T.F64, gsx, reset.index))
    b.store(b.f64(0.0), b.gep(T.F64, gsy, reset.index))
    b.store(b.i64(0), b.gep(T.I64, gcount, reset.index))
    b.end_loop(reset)

    # Assignment + accumulation.
    pts = b.begin_loop(b.i64(0), count, name="p")
    x = b.load(T.F64, b.gep(T.F64, gpx, pts.index))
    y = b.load(T.F64, b.gep(T.F64, gpy, pts.index))
    ks = b.begin_loop(b.i64(0), b.i64(K), name="k")
    best_d = b.loop_phi(ks, b.f64(1e30), "best_d")
    best_k = b.loop_phi(ks, b.i64(0), "best_k")
    cx = b.load(T.F64, b.gep(T.F64, gcx, ks.index))
    cy = b.load(T.F64, b.gep(T.F64, gcy, ks.index))
    dx = b.fsub(x, cx)
    dy = b.fsub(y, cy)
    dist = b.fadd(b.fmul(dx, dx), b.fmul(dy, dy))
    closer = b.fcmp("olt", dist, best_d)
    b.set_loop_next(ks, best_d, b.select(closer, dist, best_d))
    b.set_loop_next(ks, best_k, b.select(closer, ks.index, best_k))
    b.end_loop(ks)
    sx_slot = b.gep(T.F64, gsx, best_k)
    sy_slot = b.gep(T.F64, gsy, best_k)
    cnt_slot = b.gep(T.I64, gcount, best_k)
    b.store(b.fadd(b.load(T.F64, sx_slot), x), sx_slot)
    b.store(b.fadd(b.load(T.F64, sy_slot), y), sy_slot)
    b.store(b.add(b.load(T.I64, cnt_slot), b.i64(1)), cnt_slot)
    b.end_loop(pts)

    # Recompute centroids (guard empty clusters).
    upd = b.begin_loop(b.i64(0), b.i64(K))
    cnt = b.load(T.I64, b.gep(T.I64, gcount, upd.index))
    nonempty = b.icmp("sgt", cnt, b.i64(0))
    state = b.begin_if(nonempty)
    cntf = b.sitofp(cnt, T.F64)
    newx = b.fdiv(b.load(T.F64, b.gep(T.F64, gsx, upd.index)), cntf)
    newy = b.fdiv(b.load(T.F64, b.gep(T.F64, gsy, upd.index)), cntf)
    b.store(newx, b.gep(T.F64, gcx, upd.index))
    b.store(newy, b.gep(T.F64, gcy, upd.index))
    b.end_if(state)
    b.end_loop(upd)

    b.end_loop(outer)

    total = b.i64(0)
    result = b.f64(0.0)
    out = b.begin_loop(b.i64(0), b.i64(K))
    acc = b.loop_phi(out, b.f64(0.0), "acc")
    cxv = b.load(T.F64, b.gep(T.F64, gcx, out.index))
    cyv = b.load(T.F64, b.gep(T.F64, gcy, out.index))
    b.call(print_f64, [cxv])
    b.call(print_f64, [cyv])
    b.set_loop_next(out, acc, b.fadd(acc, b.fadd(cxv, cyv)))
    b.end_loop(out)
    b.call(print_f64, [acc])
    b.ret(acc)

    expected = _reference(points, init)
    return BuiltWorkload(module, "main", (n,), expected)


def _reference(points: np.ndarray, init: np.ndarray):
    cx = init[:, 0].copy()
    cy = init[:, 1].copy()
    for _ in range(ITERS):
        sx = np.zeros(K)
        sy = np.zeros(K)
        cnt = np.zeros(K, dtype=int)
        for px, py in points:
            d = (px - cx) ** 2 + (py - cy) ** 2
            k = int(np.argmin(d))
            sx[k] += px
            sy[k] += py
            cnt[k] += 1
        for k in range(K):
            if cnt[k] > 0:
                cx[k] = sx[k] / cnt[k]
                cy[k] = sy[k] / cnt[k]
    out = []
    for k in range(K):
        out.extend([cx[k], cy[k]])
    out.append(float(cx.sum() + cy.sum()))
    return out


WORKLOAD = Workload(
    name="kmeans",
    suite="phoenix",
    build=build,
    profile=ScalabilityProfile(parallel_fraction=0.97, sync_fraction=0.01,
                               sync_growth=0.15),
    description="Lloyd k-means on 2-D points; branchy FP distance loops",
    fp_heavy=True,
)
