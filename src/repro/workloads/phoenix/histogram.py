"""histogram (Phoenix): bin a byte image into 256 counters.

Per pixel: one load of the pixel, one load of its bin, one store of the
incremented bin — the most load/store-dominated kernel in the suite
(Table II: 53% loads, 27% stores), which is why it shows both the worst
ELZAR SDC rate (the extracted-address window of vulnerability, §V-C)
and large wrapper overheads (Figure 14: ELZAR +119% vs SWIFT-R).
The indirect bin update is not vectorizable, so Figure 1 shows ~no
native SIMD gain.
"""

from __future__ import annotations

from ...cpu.intrinsics import rt_print_i64
from ...cpu.threads import ScalabilityProfile
from ...ir import types as T
from ...ir.builder import IRBuilder
from ...ir.module import Module
from ..common import BuiltWorkload, Workload, pick, rng

BINS = 256


def build(scale: str) -> BuiltWorkload:
    n = pick(scale, perf=20_000, fi=600, test=800)
    data = rng(11).randint(0, 256, size=n).astype(int)

    module = Module(f"histogram.{scale}")
    image = module.add_global("image", T.ArrayType(T.I8, n), list(data))
    bins = module.add_global("bins", T.ArrayType(T.I64, BINS))
    print_i64 = rt_print_i64(module)

    fn = module.add_function("main", T.FunctionType(T.I64, (T.I64,)), ["n"])
    b = IRBuilder()
    b.position_at_end(fn.append_block("entry"))
    (count,) = fn.args

    loop = b.begin_loop(b.i64(0), count)
    pixel = b.load(T.I8, b.gep(T.I8, image, loop.index))
    bin_index = b.zext(pixel, T.I64)
    slot = b.gep(T.I64, bins, bin_index)
    current = b.load(T.I64, slot)
    b.store(b.add(current, b.i64(1)), slot)
    b.end_loop(loop)

    # Checksum: sum(i * bins[i]) plus total count.
    loop = b.begin_loop(b.i64(0), b.i64(BINS))
    checksum = b.loop_phi(loop, b.i64(0), "checksum")
    total = b.loop_phi(loop, b.i64(0), "total")
    value = b.load(T.I64, b.gep(T.I64, bins, loop.index))
    b.set_loop_next(loop, checksum, b.add(checksum, b.mul(value, loop.index)))
    b.set_loop_next(loop, total, b.add(total, value))
    b.end_loop(loop)
    b.call(print_i64, [checksum])
    b.call(print_i64, [total])
    b.ret(checksum)

    counts = [0] * BINS
    for v in data:
        counts[v] += 1
    expected = [sum(i * c for i, c in enumerate(counts)), n]
    return BuiltWorkload(module, "main", (n,), expected)


WORKLOAD = Workload(
    name="histogram",
    suite="phoenix",
    build=build,
    profile=ScalabilityProfile(parallel_fraction=0.97, sync_fraction=0.01,
                               sync_growth=0.10),
    description="byte-image histogram; load/store dominated",
)
