"""matrix_multiply (Phoenix): naive i64 GEMM, row-major.

The classic i-j-k triple loop walks matrix B down its columns, missing
L1 on 62% of references (Table II) — so execution is dominated by
memory stalls and ELZAR's extra instructions are almost completely
hidden (the paper's best case: ~10% overhead, §V-B). The stride-N inner
accesses also defeat the auto-vectorizer, so Figure 1 shows no native
SIMD gain.
"""

from __future__ import annotations

from ...cpu.intrinsics import rt_print_i64
from ...cpu.threads import ScalabilityProfile
from ...ir import types as T
from ...ir.builder import IRBuilder
from ...ir.module import Module
from ..common import BuiltWorkload, Workload, pick, rng


def build(scale: str) -> BuiltWorkload:
    dim = pick(scale, perf=36, fi=8, test=10)
    r = rng(19)
    a = r.randint(-9, 10, size=(dim, dim)).astype(int)
    bm = r.randint(-9, 10, size=(dim, dim)).astype(int)

    module = Module(f"matrix_multiply.{scale}")
    ga = module.add_global("A", T.ArrayType(T.I64, dim * dim), list(a.flatten()))
    gb = module.add_global("B", T.ArrayType(T.I64, dim * dim), list(bm.flatten()))
    gc = module.add_global("C", T.ArrayType(T.I64, dim * dim))
    print_i64 = rt_print_i64(module)

    fn = module.add_function("main", T.FunctionType(T.I64, (T.I64,)), ["dim"])
    b = IRBuilder()
    b.position_at_end(fn.append_block("entry"))
    (n,) = fn.args

    li = b.begin_loop(b.i64(0), n, name="i")
    row_base = b.mul(li.index, n)
    lj = b.begin_loop(b.i64(0), n, name="j")
    lk = b.begin_loop(b.i64(0), n, name="k")
    acc = b.loop_phi(lk, b.i64(0), "acc")
    av = b.load(T.I64, b.gep(T.I64, ga, b.add(row_base, lk.index)))
    bv = b.load(T.I64, b.gep(T.I64, gb, b.add(b.mul(lk.index, n), lj.index)))
    b.set_loop_next(lk, acc, b.add(acc, b.mul(av, bv)))
    b.end_loop(lk)
    b.store(acc, b.gep(T.I64, gc, b.add(row_base, lj.index)))
    b.end_loop(lj)
    b.end_loop(li)

    # Checksum of C weighted by position.
    total = b.mul(n, n)
    out = b.begin_loop(b.i64(0), total)
    checksum = b.loop_phi(out, b.i64(0), "checksum")
    v = b.load(T.I64, b.gep(T.I64, gc, out.index))
    weighted = b.mul(v, b.add(out.index, b.i64(1)))
    b.set_loop_next(out, checksum, b.add(checksum, weighted))
    b.end_loop(out)
    b.call(print_i64, [checksum])
    b.ret(checksum)

    c = a @ bm
    flat = c.flatten()
    expected = [int(sum(int(v) * (i + 1) for i, v in enumerate(flat)))]
    return BuiltWorkload(module, "main", (dim,), expected)


WORKLOAD = Workload(
    name="matrix_multiply",
    suite="phoenix",
    build=build,
    profile=ScalabilityProfile(parallel_fraction=0.995, sync_fraction=0.002,
                               sync_growth=0.05),
    description="naive integer GEMM; cache-miss dominated",
)
