"""word_count (Phoenix): count word frequencies in a byte stream.

Characters are scanned with data-dependent whitespace branches, each
word is hashed (FNV-style rolling hash), and an open-addressing hash
table of counts is updated — mixing unpredictable branches (Table II:
3.3% branch misses), dependent loads, and stores. Neither phase is
vectorizable.
"""

from __future__ import annotations

from ...cpu.intrinsics import rt_print_i64
from ...cpu.threads import ScalabilityProfile
from ...ir import types as T
from ...ir.builder import IRBuilder
from ...ir.module import Module
from ..common import BuiltWorkload, Workload, pick, rng

TABLE_SIZE = 4096  # power of two, sized for a ~0.35 load factor
FNV_PRIME = 1099511628211
FNV_BASIS = 14695981039346656037


def build(scale: str) -> BuiltWorkload:
    nchars = pick(scale, perf=9_000, fi=700, test=300)
    r = rng(31)
    # Text: lowercase words of length 2-8 separated by single spaces.
    chars = []
    while len(chars) < nchars:
        for _ in range(int(r.randint(2, 9))):
            chars.append(int(r.randint(97, 123)))
        chars.append(32)
    chars = chars[:nchars]
    if chars[-1] != 32:
        chars[-1] = 32  # terminate the final word

    module = Module(f"word_count.{scale}")
    gtext = module.add_global("text", T.ArrayType(T.I8, nchars), chars)
    ghashes = module.add_global("hashes", T.ArrayType(T.I64, TABLE_SIZE))
    gcounts = module.add_global("counts", T.ArrayType(T.I64, TABLE_SIZE))
    print_i64 = rt_print_i64(module)

    fn = module.add_function("main", T.FunctionType(T.I64, (T.I64,)), ["n"])
    b = IRBuilder()
    b.position_at_end(fn.append_block("entry"))
    (count,) = fn.args

    scan = b.begin_loop(b.i64(0), count, name="pos")
    words = b.loop_phi(scan, b.i64(0), "words")
    hash_acc = b.loop_phi(scan, b.i64(FNV_BASIS), "hash")
    ch = b.load(T.I8, b.gep(T.I8, gtext, scan.index))
    is_space = b.icmp("eq", ch, b.i8(32))

    state = b.begin_if(is_space, with_else=True)
    # End of word: insert hash into the table (linear probing).
    probe = b.urem(hash_acc, b.i64(TABLE_SIZE))
    pl = b.begin_loop(b.i64(0), b.i64(TABLE_SIZE), name="probe")
    slot = b.urem(b.add(probe, pl.index), b.i64(TABLE_SIZE))
    stored = b.load(T.I64, b.gep(T.I64, ghashes, slot))
    empty = b.icmp("eq", stored, b.i64(0))
    found = b.icmp("eq", stored, hash_acc)
    stop = b.or_(empty, found)
    inner = b.begin_if(stop)
    b.store(hash_acc, b.gep(T.I64, ghashes, slot))
    cnt_slot = b.gep(T.I64, gcounts, slot)
    b.store(b.add(b.load(T.I64, cnt_slot), b.i64(1)), cnt_slot)
    b.br(state.merge)  # leave the probe loop
    b.position_at_end(inner.merge)
    b.end_loop(pl)
    b.br(state.merge)
    # A direct jump was already emitted; close the then-arm manually.
    b.begin_else(state)
    b.end_if(state)

    # New hash state: reset on space, extend otherwise.
    extended = b.mul(b.xor(hash_acc, b.zext(ch, T.I64)), b.i64(FNV_PRIME))
    next_hash = b.select(is_space, b.i64(FNV_BASIS), extended)
    next_words = b.add(words, b.zext(is_space, T.I64))
    b.set_loop_next(scan, hash_acc, next_hash)
    b.set_loop_next(scan, words, next_words)
    b.end_loop(scan)

    b.call(print_i64, [words])
    out = b.begin_loop(b.i64(0), b.i64(TABLE_SIZE))
    checksum = b.loop_phi(out, b.i64(0), "checksum")
    c = b.load(T.I64, b.gep(T.I64, gcounts, out.index))
    weighted = b.mul(c, b.add(out.index, b.i64(1)))
    b.set_loop_next(out, checksum, b.add(checksum, weighted))
    b.end_loop(out)
    b.call(print_i64, [checksum])
    b.ret(checksum)

    expected = _reference(chars)
    return BuiltWorkload(module, "main", (nchars,), expected)


def _reference(chars):
    mask = (1 << 64) - 1
    hashes = [0] * TABLE_SIZE
    counts = [0] * TABLE_SIZE
    words = 0
    h = FNV_BASIS
    for ch in chars:
        if ch == 32:
            # insert h
            probe = h % TABLE_SIZE
            for i in range(TABLE_SIZE):
                slot = (probe + i) % TABLE_SIZE
                if hashes[slot] == 0 or hashes[slot] == h:
                    hashes[slot] = h
                    counts[slot] += 1
                    break
            words += 1
            h = FNV_BASIS
        else:
            h = ((h ^ ch) * FNV_PRIME) & mask
    checksum = sum(c * (i + 1) for i, c in enumerate(counts))
    return [words, checksum]


WORKLOAD = Workload(
    name="word_count",
    suite="phoenix",
    build=build,
    profile=ScalabilityProfile(parallel_fraction=0.99, sync_fraction=0.0,
                               sync_growth=0.0),
    description="word frequency count; branchy scan + hash table",
)
