"""pca (Phoenix): column means and covariance matrix.

Two phases over an N x D matrix: the mean pass streams columns; the
covariance pass does D*(D+1)/2 dot products over rows. Moderate load
fraction, FP accumulation, decent locality — the paper reports ~12% L1
misses and mid-pack overheads for both schemes.
"""

from __future__ import annotations

import numpy as np

from ...cpu.intrinsics import rt_print_f64
from ...cpu.threads import ScalabilityProfile
from ...ir import types as T
from ...ir.builder import IRBuilder
from ...ir.module import Module
from ..common import BuiltWorkload, Workload, pick, rng

D = 6


def build(scale: str) -> BuiltWorkload:
    n = pick(scale, perf=900, fi=80, test=40)
    r = rng(23)
    data = r.uniform(-10, 10, size=(n, D))

    module = Module(f"pca.{scale}")
    gdata = module.add_global("data", T.ArrayType(T.F64, n * D), list(data.flatten()))
    gmeans = module.add_global("means", T.ArrayType(T.F64, D))
    gcov = module.add_global("cov", T.ArrayType(T.F64, D * D))
    print_f64 = rt_print_f64(module)

    fn = module.add_function("main", T.FunctionType(T.F64, (T.I64,)), ["n"])
    b = IRBuilder()
    b.position_at_end(fn.append_block("entry"))
    (count,) = fn.args
    dims = b.i64(D)

    # Column means.
    lc = b.begin_loop(b.i64(0), dims, name="col")
    lr = b.begin_loop(b.i64(0), count, name="row")
    acc = b.loop_phi(lr, b.f64(0.0), "acc")
    idx = b.add(b.mul(lr.index, dims), lc.index)
    v = b.load(T.F64, b.gep(T.F64, gdata, idx))
    b.set_loop_next(lr, acc, b.fadd(acc, v))
    b.end_loop(lr)
    mean = b.fdiv(acc, b.sitofp(count, T.F64))
    b.store(mean, b.gep(T.F64, gmeans, lc.index))
    b.end_loop(lc)

    # Covariance (upper triangle, mirrored).
    li = b.begin_loop(b.i64(0), dims, name="ci")
    mi = b.load(T.F64, b.gep(T.F64, gmeans, li.index))
    lj = b.begin_loop(li.index, dims, name="cj")
    mj = b.load(T.F64, b.gep(T.F64, gmeans, lj.index))
    lr2 = b.begin_loop(b.i64(0), count, name="row2")
    acc2 = b.loop_phi(lr2, b.f64(0.0), "acc2")
    base = b.mul(lr2.index, dims)
    vi = b.load(T.F64, b.gep(T.F64, gdata, b.add(base, li.index)))
    vj = b.load(T.F64, b.gep(T.F64, gdata, b.add(base, lj.index)))
    prod = b.fmul(b.fsub(vi, mi), b.fsub(vj, mj))
    b.set_loop_next(lr2, acc2, b.fadd(acc2, prod))
    b.end_loop(lr2)
    cov = b.fdiv(acc2, b.sitofp(b.sub(count, b.i64(1)), T.F64))
    b.store(cov, b.gep(T.F64, gcov, b.add(b.mul(li.index, dims), lj.index)))
    b.store(cov, b.gep(T.F64, gcov, b.add(b.mul(lj.index, dims), li.index)))
    b.end_loop(lj)
    b.end_loop(li)

    # Print the trace and the total of the covariance matrix.
    out = b.begin_loop(b.i64(0), dims)
    trace = b.loop_phi(out, b.f64(0.0), "trace")
    diag = b.load(T.F64, b.gep(T.F64, gcov, b.add(b.mul(out.index, dims), out.index)))
    b.set_loop_next(out, trace, b.fadd(trace, diag))
    b.end_loop(out)
    out2 = b.begin_loop(b.i64(0), b.mul(dims, dims))
    total = b.loop_phi(out2, b.f64(0.0), "total")
    cv = b.load(T.F64, b.gep(T.F64, gcov, out2.index))
    b.set_loop_next(out2, total, b.fadd(total, cv))
    b.end_loop(out2)
    b.call(print_f64, [trace])
    b.call(print_f64, [total])
    b.ret(trace)

    expected = _reference(data)
    return BuiltWorkload(module, "main", (n,), expected, rtol=1e-9)


def _reference(data: np.ndarray):
    n = len(data)
    means = [float(sum(data[i][c] for i in range(n))) / n for c in range(D)]
    cov = np.zeros((D, D))
    for i in range(D):
        for j in range(i, D):
            acc = 0.0
            for row in range(n):
                acc += (data[row][i] - means[i]) * (data[row][j] - means[j])
            cov[i][j] = cov[j][i] = acc / (n - 1)
    return [float(np.trace(cov)), float(cov.sum())]


WORKLOAD = Workload(
    name="pca",
    suite="phoenix",
    build=build,
    profile=ScalabilityProfile(parallel_fraction=0.98, sync_fraction=0.005,
                               sync_growth=0.08),
    description="column means + covariance matrix; FP dot products",
    fp_heavy=True,
)
