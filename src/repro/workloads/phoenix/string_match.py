"""string_match (Phoenix): match encrypted keys against a dictionary.

Faithful to the Phoenix kernel's behaviour profile: for every word in
the input list the kernel (1) zeroes a scratch buffer (``bzero`` — the
paper found string_match spends most of its time here, §V-B), (2)
"encrypts" the word into the buffer, and (3) compares it against the
fixed search keys. The byte-granular memset and compare loops are
exactly what made this the paper's extreme case: +60% from native SIMD
(Figure 1) and 15-20x under ELZAR (wrappers + checks on every byte
store, §V-B).
"""

from __future__ import annotations

from ...cpu.intrinsics import rt_print_i64
from ...cpu.threads import ScalabilityProfile
from ...ir import types as T
from ...ir.builder import IRBuilder
from ...ir.module import Module
from ..common import BuiltWorkload, Workload, pick, rng

WORD_LEN = 16
#: The bzero'd scratch buffer is larger than the word (the Phoenix
#: kernel zeroes whole allocation chunks) — this is what makes bzero
#: dominate the profile (§V-B).
SCRATCH_LEN = 256
NKEYS = 4


def _encrypt(byte: int) -> int:
    return (byte ^ 0x2A) & 0xFF


def build(scale: str) -> BuiltWorkload:
    nwords = pick(scale, perf=300, fi=30, test=15)
    r = rng(29)
    words = r.randint(97, 123, size=(nwords, WORD_LEN)).astype(int)
    # Plant the search keys in the stream a few times.
    keys = r.randint(97, 123, size=(NKEYS, WORD_LEN)).astype(int)
    for i in range(0, nwords, 7):
        words[i] = keys[i % NKEYS]

    module = Module(f"string_match.{scale}")
    gwords = module.add_global(
        "words", T.ArrayType(T.I8, nwords * WORD_LEN), list(words.flatten())
    )
    enc_keys = [[_encrypt(int(c)) for c in key] for key in keys]
    gkeys = module.add_global(
        "keys", T.ArrayType(T.I8, NKEYS * WORD_LEN),
        [c for key in enc_keys for c in key],
    )
    gscratch = module.add_global("scratch", T.ArrayType(T.I8, SCRATCH_LEN))
    print_i64 = rt_print_i64(module)

    from ..libc import memset_i8, strcmp_len

    memset = memset_i8(module)
    strcmp = strcmp_len(module)

    fn = module.add_function("main", T.FunctionType(T.I64, (T.I64,)), ["nwords"])
    b = IRBuilder()
    b.position_at_end(fn.append_block("entry"))
    (count,) = fn.args
    wlen = b.i64(WORD_LEN)

    lw = b.begin_loop(b.i64(0), count, name="w")
    matches = b.loop_phi(lw, b.i64(0), "matches")
    # bzero the scratch buffer (the paper's hotspot).
    b.call(memset, [gscratch, b.i64(0), b.i64(SCRATCH_LEN)])
    # Encrypt the word into scratch (unit-stride from a hoisted base, so
    # the native build can vectorize it, like LLVM does).
    word_ptr = b.gep(T.I8, gwords, b.mul(lw.index, wlen))
    enc = b.begin_loop(b.i64(0), wlen, name="c")
    ch = b.load(T.I8, b.gep(T.I8, word_ptr, enc.index))
    encrypted = b.xor(ch, b.i8(0x2A))
    b.store(encrypted, b.gep(T.I8, gscratch, enc.index))
    b.end_loop(enc)
    # Compare against each key.
    lk = b.begin_loop(b.i64(0), b.i64(NKEYS), name="key")
    hits = b.loop_phi(lk, b.i64(0), "hits")
    key_ptr = b.gep(T.I8, gkeys, b.mul(lk.index, wlen))
    matched_len = b.call(strcmp, [gscratch, key_ptr, wlen])
    is_match = b.icmp("eq", matched_len, wlen)
    b.set_loop_next(lk, hits, b.add(hits, b.zext(is_match, T.I64)))
    b.end_loop(lk)
    b.set_loop_next(lw, matches, b.add(matches, hits))
    b.end_loop(lw)

    b.call(print_i64, [matches])
    b.ret(matches)

    expected_matches = 0
    for word in words:
        for key in keys:
            if all(int(a) == int(c) for a, c in zip(word, key)):
                expected_matches += 1
    return BuiltWorkload(module, "main", (nwords,), [expected_matches])


WORKLOAD = Workload(
    name="string_match",
    suite="phoenix",
    build=build,
    profile=ScalabilityProfile(parallel_fraction=0.99, sync_fraction=0.003,
                               sync_growth=0.05),
    description="encrypted key search; bzero + byte-compare loops",
)
