"""linear_regression (Phoenix): least-squares fit over (x, y) points.

One pass accumulating SX, SY, SXX, SYY, SXY — five independent
reduction chains, which is why the paper measures the highest native
ILP of the suite here (Table II/III: ILP 6.51) and why the ELZAR
version, which serializes through wrapper chains, drops to 1.7 and
shows a 5-8x overhead (§V-B).
"""

from __future__ import annotations

from ...cpu.intrinsics import rt_print_f64, rt_print_i64
from ...cpu.threads import ScalabilityProfile
from ...ir import types as T
from ...ir.builder import IRBuilder
from ...ir.module import Module
from ..common import BuiltWorkload, Workload, pick, rng


def build(scale: str) -> BuiltWorkload:
    n = pick(scale, perf=12_000, fi=500, test=250)
    r = rng(13)
    xs = r.randint(0, 100, size=n).astype(int)
    ys = (3 * xs + 7 + r.randint(-10, 11, size=n)).astype(int)

    module = Module(f"linear_regression.{scale}")
    # Phoenix stores points as an array of (x, y) structs; the
    # interleaved layout means the loads are stride-2, which is also why
    # the paper's compiler gets almost no SIMD gain here (Figure 1).
    interleaved = [v for pair in zip(xs, ys) for v in pair]
    gpts = module.add_global("points", T.ArrayType(T.I64, 2 * n), interleaved)
    print_i64 = rt_print_i64(module)
    print_f64 = rt_print_f64(module)

    fn = module.add_function("main", T.FunctionType(T.F64, (T.I64,)), ["n"])
    b = IRBuilder()
    b.position_at_end(fn.append_block("entry"))
    (count,) = fn.args

    loop = b.begin_loop(b.i64(0), count)
    sx = b.loop_phi(loop, b.i64(0), "sx")
    sy = b.loop_phi(loop, b.i64(0), "sy")
    sxx = b.loop_phi(loop, b.i64(0), "sxx")
    syy = b.loop_phi(loop, b.i64(0), "syy")
    sxy = b.loop_phi(loop, b.i64(0), "sxy")
    base = b.shl(loop.index, b.i64(1))
    x = b.load(T.I64, b.gep(T.I64, gpts, base))
    y = b.load(T.I64, b.gep(T.I64, gpts, b.add(base, b.i64(1))))
    b.set_loop_next(loop, sx, b.add(sx, x))
    b.set_loop_next(loop, sy, b.add(sy, y))
    b.set_loop_next(loop, sxx, b.add(sxx, b.mul(x, x)))
    b.set_loop_next(loop, syy, b.add(syy, b.mul(y, y)))
    b.set_loop_next(loop, sxy, b.add(sxy, b.mul(x, y)))
    b.end_loop(loop)

    nf = b.sitofp(count, T.F64)
    fsx = b.sitofp(sx, T.F64)
    fsy = b.sitofp(sy, T.F64)
    fsxx = b.sitofp(sxx, T.F64)
    fsxy = b.sitofp(sxy, T.F64)
    denom = b.fsub(b.fmul(nf, fsxx), b.fmul(fsx, fsx))
    slope = b.fdiv(b.fsub(b.fmul(nf, fsxy), b.fmul(fsx, fsy)), denom)
    intercept = b.fdiv(b.fsub(fsy, b.fmul(slope, fsx)), nf)
    for v in (sx, sy, sxx, syy, sxy):
        b.call(print_i64, [v])
    b.call(print_f64, [slope])
    b.call(print_f64, [intercept])
    b.ret(slope)

    sx_v = int(xs.sum())
    sy_v = int(ys.sum())
    sxx_v = int((xs * xs).sum())
    syy_v = int((ys * ys).sum())
    sxy_v = int((xs * ys).sum())
    denom_v = n * sxx_v - sx_v * sx_v
    slope_v = (n * sxy_v - sx_v * sy_v) / denom_v
    intercept_v = (sy_v - slope_v * sx_v) / n
    expected = [sx_v, sy_v, sxx_v, syy_v, sxy_v, slope_v, intercept_v]
    return BuiltWorkload(module, "main", (n,), expected)


WORKLOAD = Workload(
    name="linear_regression",
    suite="phoenix",
    build=build,
    profile=ScalabilityProfile(parallel_fraction=0.99, sync_fraction=0.003,
                               sync_growth=0.05),
    description="least-squares fit; five parallel reductions, high ILP",
)
