"""Workload framework.

A :class:`Workload` names a benchmark, knows how to build its IR module
at a given *scale*, and carries the metadata the experiment harness
needs (scalability profile for the thread model, suite membership,
FP-heaviness for the §V-B float-only experiment).

Scales control dataset sizes:

- ``perf``: large enough for stable timing statistics (the paper uses
  the largest available datasets for performance, §V-A);
- ``fi``: small, for the thousands of runs of a fault-injection
  campaign (the paper uses the smallest inputs for FI, §V-A);
- ``test``: tiny, for unit tests.

Each built program prints its results via ``rt.print_*`` so the fault
injector can compare outputs against a golden run, and ``expected``
carries an independently computed (numpy/Python) reference for unit
tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..cpu.threads import ScalabilityProfile
from ..ir.module import Module

SCALES = ("perf", "fi", "test")


@dataclass
class BuiltWorkload:
    """A concrete, runnable instance of a workload."""

    module: Module
    entry: str
    args: tuple
    #: Independently computed expected output (floats compared with
    #: tolerance); None entries are skipped in comparisons.
    expected: Optional[List] = None
    #: Relative tolerance for float comparisons against ``expected``.
    rtol: float = 1e-9


@dataclass(frozen=True)
class Workload:
    name: str
    suite: str  # "phoenix" | "parsec" | "micro" | "apps"
    build: Callable[[str], BuiltWorkload]
    profile: ScalabilityProfile
    description: str
    fp_heavy: bool = False

    def build_at(self, scale: str = "test") -> BuiltWorkload:
        if scale not in SCALES:
            raise ValueError(f"unknown scale {scale!r}; expected one of {SCALES}")
        return self.build(scale)


def rng(seed: int) -> np.random.RandomState:
    """Deterministic data source for workload inputs."""
    return np.random.RandomState(seed)


def pick(scale: str, perf, fi, test):
    """Choose a size parameter by scale."""
    return {"perf": perf, "fi": fi, "test": test}[scale]


def outputs_match(actual: Sequence, expected: Sequence, rtol: float = 1e-9) -> bool:
    """Compare program output against a reference; ints exactly, floats
    with relative tolerance; None in expected is a wildcard."""
    if len(actual) != len(expected):
        return False
    for a, e in zip(actual, expected):
        if e is None:
            continue
        if isinstance(e, float) or isinstance(a, float):
            scale = max(abs(float(e)), 1.0)
            if abs(float(a) - float(e)) > rtol * scale:
                return False
        elif a != e:
            return False
    return True
