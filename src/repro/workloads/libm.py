"""A miniature libm written in IR.

Blackscholes, swaptions, kmeans and pca need sqrt/exp/log/erf. Like the
paper (which hardens musl's libm, §IV-A), these are implemented in IR —
Newton iteration for sqrt, range reduction + Taylor polynomial for exp,
atanh-series for log, Abramowitz–Stegun 7.1.26 for erf — so the
hardening passes protect the math along with the application, and the
native and hardened binaries produce bit-identical outputs for the
fault-injection golden-run comparison.

Accuracy is ~1e-12 relative (1e-7 for erf), verified by unit tests
against the host ``math`` module.
"""

from __future__ import annotations

import math

from ..ir import types as T
from ..ir.builder import IRBuilder
from ..ir.function import Function
from ..ir.module import Module
from .libc import _get_or_define

_UNARY = T.FunctionType(T.F64, (T.F64,))


def sqrt_f64(module: Module) -> Function:
    """Newton–Raphson square root seeded by the classic exponent-halving
    bit trick; returns 0.0 for non-positive inputs."""

    def define(fn: Function) -> None:
        b = IRBuilder()
        b.position_at_end(fn.append_block("entry"))
        (x,) = fn.args
        nonpos = b.fcmp("ole", x, b.f64(0.0))
        state = b.begin_if(nonpos)
        b.ret(b.f64(0.0))
        b.position_at_end(state.merge)
        bits = b.bitcast(x, T.I64)
        seeded = b.add(b.lshr(bits, b.i64(1)), b.i64(0x1FF7A3BEA91D9B1B))
        y0 = b.bitcast(seeded, T.F64)
        y = y0
        half = b.f64(0.5)
        for _ in range(5):
            y = b.fmul(half, b.fadd(y, b.fdiv(x, y)))
        b.ret(y)

    return _get_or_define(module, "m.sqrt", _UNARY, define)


def exp_f64(module: Module) -> Function:
    """exp via range reduction (x = k·ln2 + r) and a degree-12 Taylor
    polynomial on r ∈ [-ln2/2, ln2/2]; saturates to 0 / +inf."""

    def define(fn: Function) -> None:
        b = IRBuilder()
        b.position_at_end(fn.append_block("entry"))
        (x,) = fn.args
        too_big = b.fcmp("ogt", x, b.f64(709.0))
        state = b.begin_if(too_big)
        b.ret(b.f64(math.inf))
        b.position_at_end(state.merge)
        too_small = b.fcmp("olt", x, b.f64(-745.0))
        state = b.begin_if(too_small)
        b.ret(b.f64(0.0))
        b.position_at_end(state.merge)

        inv_ln2 = b.f64(1.0 / math.log(2.0))
        scaled = b.fmul(x, inv_ln2)
        # round-to-nearest via +-0.5 then truncation
        neg = b.fcmp("olt", scaled, b.f64(0.0))
        bias = b.select(neg, b.f64(-0.5), b.f64(0.5))
        k = b.fptosi(b.fadd(scaled, bias), T.I64)
        kf = b.sitofp(k, T.F64)
        # r = x - k*ln2 in two pieces for accuracy
        ln2_hi = b.f64(0.6931471803691238)
        ln2_lo = b.f64(1.9082149292705877e-10)
        r = b.fsub(b.fsub(x, b.fmul(kf, ln2_hi)), b.fmul(kf, ln2_lo))

        # Horner evaluation of sum r^i / i!, i = 0..12.
        poly = b.f64(1.0 / math.factorial(12))
        for i in range(11, -1, -1):
            poly = b.fadd(b.fmul(poly, r), b.f64(1.0 / math.factorial(i)))

        # 2^k by exponent construction (k is within [-1074, 1024] here).
        biased = b.add(k, b.i64(1023))
        pow2 = b.bitcast(b.shl(biased, b.i64(52)), T.F64)
        b.ret(b.fmul(poly, pow2))

    return _get_or_define(module, "m.exp", _UNARY, define)


def log_f64(module: Module) -> Function:
    """Natural log via exponent extraction and the atanh series
    log(m) = 2·(s + s³/3 + …), s = (m-1)/(m+1), m ∈ [√½·√2).
    Returns -inf for 0 and NaN-ish large-negative for x < 0 (workloads
    only call it on positive values)."""

    def define(fn: Function) -> None:
        b = IRBuilder()
        b.position_at_end(fn.append_block("entry"))
        (x,) = fn.args
        nonpos = b.fcmp("ole", x, b.f64(0.0))
        state = b.begin_if(nonpos)
        b.ret(b.f64(-math.inf))
        b.position_at_end(state.merge)

        bits = b.bitcast(x, T.I64)
        raw_exp = b.and_(b.lshr(bits, b.i64(52)), b.i64(0x7FF))
        e = b.sub(raw_exp, b.i64(1023))
        mant_bits = b.or_(
            b.and_(bits, b.i64(0x000FFFFFFFFFFFFF)),
            b.i64(1023 << 52),
        )
        m = b.bitcast(mant_bits, T.F64)
        # Normalize m into [1/sqrt2*... ]: if m > sqrt(2), halve m, bump e.
        big = b.fcmp("ogt", m, b.f64(math.sqrt(2.0)))
        m = b.select(big, b.fmul(m, b.f64(0.5)), m)
        e = b.select(big, b.add(e, b.i64(1)), e)

        s = b.fdiv(b.fsub(m, b.f64(1.0)), b.fadd(m, b.f64(1.0)))
        s2 = b.fmul(s, s)
        poly = b.f64(1.0 / 15.0)
        for k in (13, 11, 9, 7, 5, 3, 1):
            poly = b.fadd(b.fmul(poly, s2), b.f64(1.0 / k))
        log_m = b.fmul(b.fmul(b.f64(2.0), s), poly)
        ef = b.sitofp(e, T.F64)
        b.ret(b.fadd(b.fmul(ef, b.f64(math.log(2.0))), log_m))

    return _get_or_define(module, "m.log", _UNARY, define)


def fabs_f64(module: Module) -> Function:
    def define(fn: Function) -> None:
        b = IRBuilder()
        b.position_at_end(fn.append_block("entry"))
        (x,) = fn.args
        bits = b.bitcast(x, T.I64)
        cleared = b.and_(bits, b.i64(0x7FFFFFFFFFFFFFFF))
        b.ret(b.bitcast(cleared, T.F64))

    return _get_or_define(module, "m.fabs", _UNARY, define)


def erf_f64(module: Module) -> Function:
    """Abramowitz–Stegun 7.1.26 (max abs error 1.5e-7)."""

    def define(fn: Function) -> None:
        exp_fn = exp_f64(module)
        b = IRBuilder()
        b.position_at_end(fn.append_block("entry"))
        (x,) = fn.args
        neg = b.fcmp("olt", x, b.f64(0.0))
        ax = b.select(neg, b.fsub(b.f64(0.0), x), x)
        t = b.fdiv(b.f64(1.0), b.fadd(b.f64(1.0), b.fmul(b.f64(0.3275911), ax)))
        poly = b.f64(1.061405429)
        for coeff in (-1.453152027, 1.421413741, -0.284496736, 0.254829592):
            poly = b.fadd(b.fmul(poly, t), b.f64(coeff))
        poly = b.fmul(poly, t)
        neg_sq = b.fsub(b.f64(0.0), b.fmul(ax, ax))
        gauss = b.call(exp_fn, [neg_sq])
        mag = b.fsub(b.f64(1.0), b.fmul(poly, gauss))
        b.ret(b.select(neg, b.fsub(b.f64(0.0), mag), mag))

    return _get_or_define(module, "m.erf", _UNARY, define)


def cndf_f64(module: Module) -> Function:
    """Cumulative standard normal Φ(x) = (1 + erf(x/√2)) / 2 — the
    heart of the Black–Scholes formula."""

    def define(fn: Function) -> None:
        erf_fn = erf_f64(module)
        b = IRBuilder()
        b.position_at_end(fn.append_block("entry"))
        (x,) = fn.args
        scaled = b.fmul(x, b.f64(1.0 / math.sqrt(2.0)))
        e = b.call(erf_fn, [scaled])
        b.ret(b.fmul(b.f64(0.5), b.fadd(b.f64(1.0), e)))

    return _get_or_define(module, "m.cndf", _UNARY, define)


def pow_f64(module: Module) -> Function:
    """x^y = exp(y·log x) for x > 0; returns 0 for x <= 0."""

    def define(fn: Function) -> None:
        exp_fn = exp_f64(module)
        log_fn = log_f64(module)
        b = IRBuilder()
        b.position_at_end(fn.append_block("entry"))
        x, y = fn.args
        nonpos = b.fcmp("ole", x, b.f64(0.0))
        state = b.begin_if(nonpos)
        b.ret(b.f64(0.0))
        b.position_at_end(state.merge)
        b.ret(b.call(exp_fn, [b.fmul(y, b.call(log_fn, [x]))]))

    return _get_or_define(module, "m.pow", T.FunctionType(T.F64, (T.F64, T.F64)), define)
