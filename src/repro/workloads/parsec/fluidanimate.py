"""fluidanimate (PARSEC): SPH-style particle interactions.

For every particle pair within a neighbourhood window, a distance
cutoff branch decides whether to compute the (FP-heavy) interaction —
the cutoff depends on particle positions, giving the suite's worst
branch predictability (Table II: 14.7% misses) with ~32% FP
instructions. One of the three benchmarks where ELZAR beats SWIFT-R
(Figure 14: -24%), and a float-only-protection candidate (§V-B:
10-18% overhead).
"""

from __future__ import annotations

from ...cpu.intrinsics import rt_print_f64
from ...cpu.threads import ScalabilityProfile
from ...ir import types as T
from ...ir.builder import IRBuilder
from ...ir.module import Module
from ..common import BuiltWorkload, Workload, pick, rng
from ..libm import sqrt_f64

WINDOW = 12
CUTOFF = 0.08
DT = 0.001


def build(scale: str) -> BuiltWorkload:
    n = pick(scale, perf=260, fi=36, test=20)
    r = rng(47)
    px = r.uniform(0, 1, size=n)
    py = r.uniform(0, 1, size=n)

    module = Module(f"fluidanimate.{scale}")
    gpx = module.add_global("px", T.ArrayType(T.F64, n), list(px))
    gpy = module.add_global("py", T.ArrayType(T.F64, n), list(py))
    gfx = module.add_global("fx", T.ArrayType(T.F64, n))
    gfy = module.add_global("fy", T.ArrayType(T.F64, n))
    print_f64 = rt_print_f64(module)
    sqrt_fn = sqrt_f64(module)

    fn = module.add_function("main", T.FunctionType(T.F64, (T.I64,)), ["n"])
    b = IRBuilder()
    b.position_at_end(fn.append_block("entry"))
    (count,) = fn.args

    li = b.begin_loop(b.i64(0), count, name="i")
    xi = b.load(T.F64, b.gep(T.F64, gpx, li.index))
    yi = b.load(T.F64, b.gep(T.F64, gpy, li.index))
    # Neighbourhood window [i+1, min(i+1+WINDOW, n)).
    start = b.add(li.index, b.i64(1))
    cap = b.add(start, b.i64(WINDOW))
    over = b.icmp("sgt", cap, count)
    stop = b.select(over, count, cap)
    lj = b.begin_loop(start, stop, name="j")
    xj = b.load(T.F64, b.gep(T.F64, gpx, lj.index))
    yj = b.load(T.F64, b.gep(T.F64, gpy, lj.index))
    dx = b.fsub(xi, xj)
    dy = b.fsub(yi, yj)
    d2 = b.fadd(b.fmul(dx, dx), b.fmul(dy, dy))
    near = b.fcmp("olt", d2, b.f64(CUTOFF * CUTOFF))
    state = b.begin_if(near)
    dist = b.call(sqrt_fn, [d2])
    safe = b.fadd(dist, b.f64(1e-9))
    w = b.fsub(b.f64(CUTOFF), dist)
    mag = b.fdiv(b.fmul(w, w), safe)
    fx_i = b.fmul(mag, dx)
    fy_i = b.fmul(mag, dy)
    slot_fx_i = b.gep(T.F64, gfx, li.index)
    slot_fy_i = b.gep(T.F64, gfy, li.index)
    slot_fx_j = b.gep(T.F64, gfx, lj.index)
    slot_fy_j = b.gep(T.F64, gfy, lj.index)
    b.store(b.fadd(b.load(T.F64, slot_fx_i), fx_i), slot_fx_i)
    b.store(b.fadd(b.load(T.F64, slot_fy_i), fy_i), slot_fy_i)
    b.store(b.fsub(b.load(T.F64, slot_fx_j), fx_i), slot_fx_j)
    b.store(b.fsub(b.load(T.F64, slot_fy_j), fy_i), slot_fy_j)
    b.end_if(state)
    b.end_loop(lj)
    b.end_loop(li)

    # Integrate and print a checksum of positions.
    upd = b.begin_loop(b.i64(0), count)
    checksum = b.loop_phi(upd, b.f64(0.0), "checksum")
    x = b.load(T.F64, b.gep(T.F64, gpx, upd.index))
    y = b.load(T.F64, b.gep(T.F64, gpy, upd.index))
    fx = b.load(T.F64, b.gep(T.F64, gfx, upd.index))
    fy = b.load(T.F64, b.gep(T.F64, gfy, upd.index))
    nx = b.fadd(x, b.fmul(b.f64(DT), fx))
    ny = b.fadd(y, b.fmul(b.f64(DT), fy))
    b.store(nx, b.gep(T.F64, gpx, upd.index))
    b.store(ny, b.gep(T.F64, gpy, upd.index))
    b.set_loop_next(upd, checksum, b.fadd(checksum, b.fadd(nx, ny)))
    b.end_loop(upd)
    b.call(print_f64, [checksum])
    b.ret(checksum)

    expected = [_reference(px.copy(), py.copy())]
    return BuiltWorkload(module, "main", (n,), expected, rtol=1e-6)


def _reference(px, py) -> float:
    n = len(px)
    fx = [0.0] * n
    fy = [0.0] * n
    import math

    for i in range(n):
        for j in range(i + 1, min(i + 1 + WINDOW, n)):
            dx = px[i] - px[j]
            dy = py[i] - py[j]
            d2 = dx * dx + dy * dy
            if d2 < CUTOFF * CUTOFF:
                dist = math.sqrt(d2)
                w = CUTOFF - dist
                mag = (w * w) / (dist + 1e-9)
                fx[i] += mag * dx
                fy[i] += mag * dy
                fx[j] -= mag * dx
                fy[j] -= mag * dy
    checksum = 0.0
    for i in range(n):
        nx = px[i] + DT * fx[i]
        ny = py[i] + DT * fy[i]
        checksum += nx + ny
    return checksum


WORKLOAD = Workload(
    name="fluidanimate",
    suite="parsec",
    build=build,
    profile=ScalabilityProfile(parallel_fraction=0.96, sync_fraction=0.02,
                               sync_growth=0.30),
    description="particle interactions with distance cutoff; branch-miss heavy FP",
    fp_heavy=True,
)
