"""blackscholes (PARSEC): Black–Scholes option pricing.

Per option: log/sqrt/exp/Φ calls and a dozen FP multiplies — 47% FP
instructions, only 12% memory references (Table II / §V-B). This is
ELZAR's best case: vector FP ops cost the same as scalar ones, so the
paper measures just 1.7x instruction increase, ELZAR beating SWIFT-R by
34% (Figure 14), 9-35% overhead in float-only mode (§V-B), and the
lowest SDC rate of the suite (1%, §V-C).
"""

from __future__ import annotations

import math

from ...cpu.intrinsics import rt_print_f64
from ...cpu.threads import ScalabilityProfile
from ...ir import types as T
from ...ir.builder import IRBuilder
from ...ir.module import Module
from ..common import BuiltWorkload, Workload, pick, rng
from ..libm import cndf_f64, exp_f64, log_f64, sqrt_f64


def build(scale: str) -> BuiltWorkload:
    n = pick(scale, perf=600, fi=40, test=20)
    r = rng(37)
    spot = r.uniform(20, 120, size=n)
    strike = r.uniform(20, 120, size=n)
    rate = r.uniform(0.01, 0.08, size=n)
    vol = r.uniform(0.1, 0.6, size=n)
    time = r.uniform(0.2, 2.0, size=n)
    otype = r.randint(0, 2, size=n)  # 0 = call, 1 = put

    module = Module(f"blackscholes.{scale}")
    gs = module.add_global("spot", T.ArrayType(T.F64, n), list(spot))
    gk = module.add_global("strike", T.ArrayType(T.F64, n), list(strike))
    gr = module.add_global("rate", T.ArrayType(T.F64, n), list(rate))
    gv = module.add_global("vol", T.ArrayType(T.F64, n), list(vol))
    gt = module.add_global("time", T.ArrayType(T.F64, n), list(time))
    go = module.add_global("otype", T.ArrayType(T.I64, n), list(otype))
    gout = module.add_global("prices", T.ArrayType(T.F64, n))
    print_f64 = rt_print_f64(module)

    log_fn = log_f64(module)
    sqrt_fn = sqrt_f64(module)
    exp_fn = exp_f64(module)
    cndf_fn = cndf_f64(module)

    fn = module.add_function("main", T.FunctionType(T.F64, (T.I64,)), ["n"])
    b = IRBuilder()
    b.position_at_end(fn.append_block("entry"))
    (count,) = fn.args

    loop = b.begin_loop(b.i64(0), count, name="opt")
    total = b.loop_phi(loop, b.f64(0.0), "total")
    s = b.load(T.F64, b.gep(T.F64, gs, loop.index))
    k = b.load(T.F64, b.gep(T.F64, gk, loop.index))
    rr = b.load(T.F64, b.gep(T.F64, gr, loop.index))
    v = b.load(T.F64, b.gep(T.F64, gv, loop.index))
    t = b.load(T.F64, b.gep(T.F64, gt, loop.index))
    ot = b.load(T.I64, b.gep(T.I64, go, loop.index))

    sqrt_t = b.call(sqrt_fn, [t])
    log_sk = b.call(log_fn, [b.fdiv(s, k)])
    half_v2 = b.fmul(b.f64(0.5), b.fmul(v, v))
    denom = b.fmul(v, sqrt_t)
    d1 = b.fdiv(b.fadd(log_sk, b.fmul(b.fadd(rr, half_v2), t)), denom)
    d2 = b.fsub(d1, denom)
    nd1 = b.call(cndf_fn, [d1])
    nd2 = b.call(cndf_fn, [d2])
    discount = b.fmul(k, b.call(exp_fn, [b.fsub(b.f64(0.0), b.fmul(rr, t))]))
    call_price = b.fsub(b.fmul(s, nd1), b.fmul(discount, nd2))
    # put = K e^{-rt} N(-d2) - S N(-d1) = call - S + K e^{-rt}
    put_price = b.fadd(b.fsub(call_price, s), discount)
    is_put = b.icmp("eq", ot, b.i64(1))
    price = b.select(is_put, put_price, call_price)
    b.store(price, b.gep(T.F64, gout, loop.index))
    b.set_loop_next(loop, total, b.fadd(total, price))
    b.end_loop(loop)

    b.call(print_f64, [total])
    b.ret(total)

    expected = [_reference(spot, strike, rate, vol, time, otype)]
    # The IR libm's erf is an A&S approximation (1.5e-7 abs); the
    # accumulated total needs a correspondingly loose tolerance.
    return BuiltWorkload(module, "main", (n,), expected, rtol=1e-4)


def _reference(spot, strike, rate, vol, time, otype) -> float:
    total = 0.0
    for s, k, r, v, t, o in zip(spot, strike, rate, vol, time, otype):
        d1 = (math.log(s / k) + (r + 0.5 * v * v) * t) / (v * math.sqrt(t))
        d2 = d1 - v * math.sqrt(t)
        nd1 = 0.5 * (1.0 + math.erf(d1 / math.sqrt(2.0)))
        nd2 = 0.5 * (1.0 + math.erf(d2 / math.sqrt(2.0)))
        discount = k * math.exp(-r * t)
        call = s * nd1 - discount * nd2
        total += call if o == 0 else call - s + discount
    return total


WORKLOAD = Workload(
    name="blackscholes",
    suite="parsec",
    build=build,
    profile=ScalabilityProfile(parallel_fraction=0.99, sync_fraction=0.002,
                               sync_growth=0.02),
    description="option pricing; FP-dominated, few memory accesses",
    fp_heavy=True,
)
