"""streamcluster (PARSEC): online k-median clustering of a point stream.

Each streamed point computes distances to the current centers over a
wide feature vector (memory-streaming loads, Table II: 33% loads) and
either joins the cheapest center or opens a new one when the cost
exceeds a threshold. The paper measures the lowest native ILP of the
suite (0.68) and poor thread scaling; like dedup, sub-linear scaling
partially amortizes hardening overhead.
"""

from __future__ import annotations

import numpy as np

from ...cpu.intrinsics import rt_print_f64, rt_print_i64
from ...cpu.threads import ScalabilityProfile
from ...ir import types as T
from ...ir.builder import IRBuilder
from ...ir.module import Module
from ..common import BuiltWorkload, Workload, pick, rng

DIM = 16
MAX_CENTERS = 24
THRESHOLD = 2.0


def build(scale: str) -> BuiltWorkload:
    n = pick(scale, perf=420, fi=40, test=20)
    r = rng(53)
    points = r.uniform(0, 1, size=(n, DIM))

    module = Module(f"streamcluster.{scale}")
    gpts = module.add_global("points", T.ArrayType(T.F64, n * DIM), list(points.flatten()))
    gcenters = module.add_global("centers", T.ArrayType(T.F64, MAX_CENTERS * DIM))
    print_f64 = rt_print_f64(module)
    print_i64 = rt_print_i64(module)

    fn = module.add_function("main", T.FunctionType(T.F64, (T.I64,)), ["n"])
    b = IRBuilder()
    b.position_at_end(fn.append_block("entry"))
    (count,) = fn.args
    dims = b.i64(DIM)

    lp = b.begin_loop(b.i64(0), count, name="p")
    ncenters = b.loop_phi(lp, b.i64(0), "ncenters")
    cost = b.loop_phi(lp, b.f64(0.0), "cost")
    pbase = b.mul(lp.index, dims)

    # Distance to every open center; track the minimum.
    lc = b.begin_loop(b.i64(0), ncenters, name="c")
    best = b.loop_phi(lc, b.f64(1e30), "best")
    cbase = b.mul(lc.index, dims)
    le = b.begin_loop(b.i64(0), dims, name="e")
    acc = b.loop_phi(le, b.f64(0.0), "acc")
    pv = b.load(T.F64, b.gep(T.F64, gpts, b.add(pbase, le.index)))
    cv = b.load(T.F64, b.gep(T.F64, gcenters, b.add(cbase, le.index)))
    diff = b.fsub(pv, cv)
    b.set_loop_next(le, acc, b.fadd(acc, b.fmul(diff, diff)))
    b.end_loop(le)
    closer = b.fcmp("olt", acc, best)
    b.set_loop_next(lc, best, b.select(closer, acc, best))
    b.end_loop(lc)

    # Open a new center when the stream demands it.
    no_centers = b.icmp("eq", ncenters, b.i64(0))
    too_far = b.fcmp("ogt", best, b.f64(THRESHOLD))
    must_open = b.or_(no_centers, too_far)
    has_room = b.icmp("slt", ncenters, b.i64(MAX_CENTERS))
    open_center = b.and_(must_open, has_room)

    state = b.begin_if(open_center)
    dst = b.mul(ncenters, dims)
    cp = b.begin_loop(b.i64(0), dims, name="copy")
    pv2 = b.load(T.F64, b.gep(T.F64, gpts, b.add(pbase, cp.index)))
    b.store(pv2, b.gep(T.F64, gcenters, b.add(dst, cp.index)))
    b.end_loop(cp)
    b.end_if(state)

    next_n = b.select(open_center, b.add(ncenters, b.i64(1)), ncenters)
    contrib = b.select(open_center, b.f64(0.0), best)
    b.set_loop_next(lp, ncenters, next_n)
    b.set_loop_next(lp, cost, b.fadd(cost, contrib))
    b.end_loop(lp)

    b.call(print_i64, [ncenters])
    b.call(print_f64, [cost])
    b.ret(cost)

    expected = _reference(points)
    return BuiltWorkload(module, "main", (n,), expected, rtol=1e-9)


def _reference(points: np.ndarray):
    centers = []
    cost = 0.0
    for p in points:
        best = 1e30
        for c in centers:
            acc = 0.0
            for e in range(DIM):
                diff = p[e] - c[e]
                acc += diff * diff
            if acc < best:
                best = acc
        must_open = (not centers) or best > THRESHOLD
        if must_open and len(centers) < MAX_CENTERS:
            centers.append(list(p))
        else:
            cost += best
    return [len(centers), cost]


WORKLOAD = Workload(
    name="streamcluster",
    suite="parsec",
    build=build,
    profile=ScalabilityProfile(parallel_fraction=0.92, sync_fraction=0.05,
                               sync_growth=0.60),
    description="online k-median; streaming distance loops, poor scaling",
    fp_heavy=True,
)
