"""ferret (PARSEC): content-based similarity search.

For each query feature vector, compute L2 distances against a database
and maintain a top-K list by insertion — the insertion positions depend
on the data, giving the suite's highest branch-miss ratio (Table II:
12.65%). Scales well with threads (pipeline parallelism), so hardening
overhead is flat across thread counts (Figure 11).
"""

from __future__ import annotations

import numpy as np

from ...cpu.intrinsics import rt_print_f64, rt_print_i64
from ...cpu.threads import ScalabilityProfile
from ...ir import types as T
from ...ir.builder import IRBuilder
from ...ir.module import Module
from ..common import BuiltWorkload, Workload, pick, rng

DIM = 8
TOPK = 4


def build(scale: str) -> BuiltWorkload:
    nq, ndb = pick(scale, perf=(40, 220), fi=(4, 24), test=(2, 12))
    r = rng(43)
    queries = r.uniform(0, 1, size=(nq, DIM))
    database = r.uniform(0, 1, size=(ndb, DIM))

    module = Module(f"ferret.{scale}")
    gq = module.add_global("queries", T.ArrayType(T.F64, nq * DIM), list(queries.flatten()))
    gdb = module.add_global("database", T.ArrayType(T.F64, ndb * DIM), list(database.flatten()))
    gtop_d = module.add_global("top_dist", T.ArrayType(T.F64, TOPK))
    gtop_i = module.add_global("top_idx", T.ArrayType(T.I64, TOPK))
    print_i64 = rt_print_i64(module)
    print_f64 = rt_print_f64(module)

    fn = module.add_function("main", T.FunctionType(T.I64, (T.I64, T.I64)), ["nq", "ndb"])
    b = IRBuilder()
    b.position_at_end(fn.append_block("entry"))
    nq_arg, ndb_arg = fn.args
    dims = b.i64(DIM)

    lq = b.begin_loop(b.i64(0), nq_arg, name="q")
    answer = b.loop_phi(lq, b.i64(0), "answer")
    qbase = b.mul(lq.index, dims)

    # Reset the top-K list.
    init = b.begin_loop(b.i64(0), b.i64(TOPK))
    b.store(b.f64(1e30), b.gep(T.F64, gtop_d, init.index))
    b.store(b.i64(-1), b.gep(T.I64, gtop_i, init.index))
    b.end_loop(init)

    ld = b.begin_loop(b.i64(0), ndb_arg, name="db")
    dbase = b.mul(ld.index, dims)
    # L2 distance.
    le = b.begin_loop(b.i64(0), dims, name="e")
    acc = b.loop_phi(le, b.f64(0.0), "acc")
    qv = b.load(T.F64, b.gep(T.F64, gq, b.add(qbase, le.index)))
    dv = b.load(T.F64, b.gep(T.F64, gdb, b.add(dbase, le.index)))
    diff = b.fsub(qv, dv)
    b.set_loop_next(le, acc, b.fadd(acc, b.fmul(diff, diff)))
    b.end_loop(le)

    # Insertion into the top-K list: replace the worst entry, then
    # bubble it toward the front (data-dependent swap branches).
    worst = b.load(T.F64, b.gep(T.F64, gtop_d, b.i64(TOPK - 1)))
    better = b.fcmp("olt", acc, worst)
    outer_if = b.begin_if(better)
    b.store(acc, b.gep(T.F64, gtop_d, b.i64(TOPK - 1)))
    b.store(ld.index, b.gep(T.I64, gtop_i, b.i64(TOPK - 1)))
    sl = b.begin_loop(b.i64(0), b.i64(TOPK - 1), name="bubble")
    pos = b.sub(b.i64(TOPK - 2), sl.index)
    pos1 = b.add(pos, b.i64(1))
    cur = b.load(T.F64, b.gep(T.F64, gtop_d, pos))
    nxt = b.load(T.F64, b.gep(T.F64, gtop_d, pos1))
    out_of_order = b.fcmp("ogt", cur, nxt)
    swap_if = b.begin_if(out_of_order)
    ci = b.load(T.I64, b.gep(T.I64, gtop_i, pos))
    ni = b.load(T.I64, b.gep(T.I64, gtop_i, pos1))
    b.store(nxt, b.gep(T.F64, gtop_d, pos))
    b.store(cur, b.gep(T.F64, gtop_d, pos1))
    b.store(ni, b.gep(T.I64, gtop_i, pos))
    b.store(ci, b.gep(T.I64, gtop_i, pos1))
    b.end_if(swap_if)
    b.end_loop(sl)
    b.end_if(outer_if)
    b.end_loop(ld)

    # Fold the query's best indices into the running answer.
    fold = b.begin_loop(b.i64(0), b.i64(TOPK))
    facc = b.loop_phi(fold, b.i64(0), "facc")
    iv = b.load(T.I64, b.gep(T.I64, gtop_i, fold.index))
    weighted = b.mul(iv, b.add(fold.index, b.i64(1)))
    b.set_loop_next(fold, facc, b.add(facc, weighted))
    b.end_loop(fold)
    b.set_loop_next(lq, answer, b.add(answer, facc))
    b.end_loop(lq)

    b.call(print_i64, [answer])
    b.ret(answer)

    expected = [_reference(queries, database)]
    return BuiltWorkload(module, "main", (nq, ndb), expected)


def _reference(queries: np.ndarray, database: np.ndarray) -> int:
    answer = 0
    for q in queries:
        top = [(1e30, -1)] * TOPK
        for i, d in enumerate(database):
            acc = 0.0
            for e in range(DIM):
                diff = q[e] - d[e]
                acc += diff * diff
            if acc < top[-1][0]:
                top[-1] = (acc, i)
                for pos in range(TOPK - 2, -1, -1):
                    if top[pos][0] > top[pos + 1][0]:
                        top[pos], top[pos + 1] = top[pos + 1], top[pos]
        answer += sum(idx * (k + 1) for k, (_, idx) in enumerate(top))
    return answer


WORKLOAD = Workload(
    name="ferret",
    suite="parsec",
    build=build,
    profile=ScalabilityProfile(parallel_fraction=0.99, sync_fraction=0.004,
                               sync_growth=0.05),
    description="similarity search with top-K insertion; branch-miss heavy",
    fp_heavy=True,
)
