"""dedup (PARSEC): chunk a byte stream, fingerprint, deduplicate.

Fixed-size chunking, an Adler-style rolling checksum per chunk, a
fingerprint hash table, and a memcpy of unique chunks to the output —
30% loads / 14% stores (Table II). dedup is the suite's canonical
poor-scaler (the paper cites [29]); its large synchronization share is
what amortizes hardening overhead at high thread counts (§V-B), which
the scalability profile below encodes.
"""

from __future__ import annotations

from ...cpu.intrinsics import rt_print_i64
from ...cpu.threads import ScalabilityProfile
from ...ir import types as T
from ...ir.builder import IRBuilder
from ...ir.module import Module
from ..common import BuiltWorkload, Workload, pick, rng
from ..libc import memcpy_i8

CHUNK = 64
TABLE_SIZE = 512
MOD = 65521


def build(scale: str) -> BuiltWorkload:
    nchunks = pick(scale, perf=220, fi=12, test=6)
    r = rng(41)
    # Build a stream with substantial duplication: draw chunks from a
    # small pool.
    pool = r.randint(0, 256, size=(nchunks // 3 + 1, CHUNK))
    picks = r.randint(0, len(pool), size=nchunks)
    stream = [int(c) for p in picks for c in pool[p]]
    n = len(stream)

    module = Module(f"dedup.{scale}")
    gin = module.add_global("stream", T.ArrayType(T.I8, n), stream)
    gout = module.add_global("outbuf", T.ArrayType(T.I8, n))
    gtable = module.add_global("fingerprints", T.ArrayType(T.I64, TABLE_SIZE))
    print_i64 = rt_print_i64(module)
    memcpy = memcpy_i8(module)

    fn = module.add_function("main", T.FunctionType(T.I64, (T.I64,)), ["nchunks"])
    b = IRBuilder()
    b.position_at_end(fn.append_block("entry"))
    (count,) = fn.args
    chunk_len = b.i64(CHUNK)

    lc = b.begin_loop(b.i64(0), count, name="chunk")
    dups = b.loop_phi(lc, b.i64(0), "dups")
    out_pos = b.loop_phi(lc, b.i64(0), "out_pos")
    base = b.mul(lc.index, chunk_len)

    #

    # Adler-32-style rolling checksum over the chunk.
    cs = b.begin_loop(b.i64(0), chunk_len, name="byte")
    a = b.loop_phi(cs, b.i64(1), "a")
    s = b.loop_phi(cs, b.i64(0), "s")
    byte = b.load(T.I8, b.gep(T.I8, gin, b.add(base, cs.index)))
    a_next = b.urem(b.add(a, b.zext(byte, T.I64)), b.i64(MOD))
    s_next = b.urem(b.add(s, a_next), b.i64(MOD))
    b.set_loop_next(cs, a, a_next)
    b.set_loop_next(cs, s, s_next)
    b.end_loop(cs)
    fingerprint = b.add(b.or_(b.shl(s, b.i64(16)), a), b.i64(1))  # never 0

    # Probe the fingerprint table.
    probe0 = b.urem(fingerprint, b.i64(TABLE_SIZE))
    # Outcome cell: 0 = unseen, 1 = duplicate.
    seen_slot = b.alloca(T.I64)
    b.store(b.i64(0), seen_slot)
    pl = b.begin_loop(b.i64(0), b.i64(TABLE_SIZE), name="probe")
    slot = b.urem(b.add(probe0, pl.index), b.i64(TABLE_SIZE))
    stored = b.load(T.I64, b.gep(T.I64, gtable, slot))
    hit = b.icmp("eq", stored, fingerprint)
    state = b.begin_if(hit)
    b.store(b.i64(1), seen_slot)
    b.br(pl.exit)
    b.position_at_end(state.merge)
    empty = b.icmp("eq", stored, b.i64(0))
    state2 = b.begin_if(empty)
    b.store(fingerprint, b.gep(T.I64, gtable, slot))
    b.br(pl.exit)
    b.position_at_end(state2.merge)
    b.end_loop(pl)

    seen = b.load(T.I64, seen_slot)
    is_dup = b.icmp("eq", seen, b.i64(1))
    dup_inc = b.zext(is_dup, T.I64)

    # Copy unique chunks to the output buffer.
    state3 = b.begin_if(b.icmp("eq", seen, b.i64(0)))
    src = b.gep(T.I8, gin, base)
    dst = b.gep(T.I8, gout, out_pos)
    b.call(memcpy, [dst, src, chunk_len])
    b.end_if(state3)
    out_next = b.select(is_dup, out_pos, b.add(out_pos, chunk_len))

    b.set_loop_next(lc, dups, b.add(dups, dup_inc))
    b.set_loop_next(lc, out_pos, out_next)
    b.end_loop(lc)

    b.call(print_i64, [dups])
    b.call(print_i64, [out_pos])
    b.ret(dups)

    expected = _reference(stream, nchunks)
    return BuiltWorkload(module, "main", (nchunks,), expected)


def _reference(stream, nchunks):
    table = [0] * TABLE_SIZE
    dups = 0
    out_len = 0
    for c in range(nchunks):
        a, s = 1, 0
        for i in range(CHUNK):
            a = (a + stream[c * CHUNK + i]) % MOD
            s = (s + a) % MOD
        fp = ((s << 16) | a) + 1
        probe = fp % TABLE_SIZE
        seen = 0
        for i in range(TABLE_SIZE):
            slot = (probe + i) % TABLE_SIZE
            if table[slot] == fp:
                seen = 1
                break
            if table[slot] == 0:
                table[slot] = fp
                break
        if seen:
            dups += 1
        else:
            out_len += CHUNK
    return [dups, out_len]


WORKLOAD = Workload(
    name="dedup",
    suite="parsec",
    build=build,
    profile=ScalabilityProfile(parallel_fraction=0.90, sync_fraction=0.06,
                               sync_growth=0.80),
    description="chunking + fingerprint dedup; memory heavy, poor scaling",
)
