"""x264 (PARSEC): motion-estimation SAD search.

For each 8x8 macroblock of the current frame, search candidate offsets
in the reference frame by sum-of-absolute-differences, with x264's
classic early-termination: abandon a candidate as soon as its partial
SAD exceeds the best so far. Byte loads (27% loads) and data-dependent
early-exit branches (21% branches) dominate — a mid-pack benchmark for
both hardening schemes.
"""

from __future__ import annotations

import numpy as np

from ...cpu.intrinsics import rt_print_i64
from ...cpu.threads import ScalabilityProfile
from ...ir import types as T
from ...ir.builder import IRBuilder
from ...ir.module import Module
from ..common import BuiltWorkload, Workload, pick, rng

BLOCK = 8
NCAND = 9  # candidate offsets per block


def build(scale: str) -> BuiltWorkload:
    width = pick(scale, perf=96, fi=24, test=16)
    height = width // 2
    r = rng(61)
    ref = r.randint(0, 256, size=(height + BLOCK, width + BLOCK))
    cur = ref[:height, :width].copy()
    noise = r.randint(-6, 7, size=cur.shape)
    cur = np.clip(cur + noise, 0, 255)

    module = Module(f"x264.{scale}")
    ref_h, ref_w = ref.shape
    gref = module.add_global("ref", T.ArrayType(T.I8, ref_h * ref_w), list(ref.flatten()))
    gcur = module.add_global("cur", T.ArrayType(T.I8, height * width), list(cur.flatten()))
    # Candidate offsets (dy, dx) around the collocated block.
    offsets = [(dy, dx) for dy in (0, 1, 2) for dx in (0, 1, 2)][:NCAND]
    goff = module.add_global(
        "offsets", T.ArrayType(T.I64, NCAND * 2),
        [v for dy, dx in offsets for v in (dy, dx)],
    )
    print_i64 = rt_print_i64(module)

    fn = module.add_function(
        "main", T.FunctionType(T.I64, (T.I64, T.I64)), ["height", "width"]
    )
    b = IRBuilder()
    b.position_at_end(fn.append_block("entry"))
    h_arg, w_arg = fn.args
    refw = b.i64(ref_w)
    blk = b.i64(BLOCK)

    nby = b.sdiv(h_arg, blk)
    nbx = b.sdiv(w_arg, blk)

    lby = b.begin_loop(b.i64(0), nby, name="by")
    total = b.loop_phi(lby, b.i64(0), "total")
    lbx = b.begin_loop(b.i64(0), nbx, name="bx")
    row_total = b.loop_phi(lbx, b.i64(0), "row_total")
    base_y = b.mul(lby.index, blk)
    base_x = b.mul(lbx.index, blk)

    lc = b.begin_loop(b.i64(0), b.i64(NCAND), name="cand")
    best = b.loop_phi(lc, b.i64(1 << 30), "best")
    dy = b.load(T.I64, b.gep(T.I64, goff, b.mul(lc.index, b.i64(2))))
    dx = b.load(T.I64, b.gep(T.I64, goff, b.add(b.mul(lc.index, b.i64(2)), b.i64(1))))

    # SAD with per-row early termination.
    sad_slot = b.alloca(T.I64)
    b.store(b.i64(0), sad_slot)
    ly = b.begin_loop(b.i64(0), blk, name="y")
    cy = b.add(base_y, ly.index)
    ry = b.add(cy, dy)
    lx = b.begin_loop(b.i64(0), blk, name="x")
    row_sad = b.loop_phi(lx, b.i64(0), "row_sad")
    cx = b.add(base_x, lx.index)
    rx = b.add(cx, dx)
    cpix = b.zext(b.load(T.I8, b.gep(T.I8, gcur, b.add(b.mul(cy, w_arg), cx))), T.I64)
    rpix = b.zext(b.load(T.I8, b.gep(T.I8, gref, b.add(b.mul(ry, refw), rx))), T.I64)
    diff = b.sub(cpix, rpix)
    neg = b.icmp("slt", diff, b.i64(0))
    adiff = b.select(neg, b.sub(b.i64(0), diff), diff)
    b.set_loop_next(lx, row_sad, b.add(row_sad, adiff))
    b.end_loop(lx)
    acc = b.add(b.load(T.I64, sad_slot), row_sad)
    b.store(acc, sad_slot)
    # Early termination: candidate already worse than the best.
    worse = b.icmp("sgt", acc, best)
    state = b.begin_if(worse)
    b.br(ly.exit)
    b.position_at_end(state.merge)
    b.end_loop(ly)

    sad = b.load(T.I64, sad_slot)
    better = b.icmp("slt", sad, best)
    b.set_loop_next(lc, best, b.select(better, sad, best))
    b.end_loop(lc)

    b.set_loop_next(lbx, row_total, b.add(row_total, best))
    b.end_loop(lbx)
    b.set_loop_next(lby, total, b.add(total, row_total))
    b.end_loop(lby)

    b.call(print_i64, [total])
    b.ret(total)

    expected = [_reference(cur, ref, offsets)]
    return BuiltWorkload(module, "main", (height, width), expected)


def _reference(cur: np.ndarray, ref: np.ndarray, offsets) -> int:
    height, width = cur.shape
    total = 0
    for by in range(height // BLOCK):
        for bx in range(width // BLOCK):
            best = 1 << 30
            for dy, dx in offsets:
                sad = 0
                for y in range(BLOCK):
                    for x in range(BLOCK):
                        cy, cx = by * BLOCK + y, bx * BLOCK + x
                        sad += abs(int(cur[cy][cx]) - int(ref[cy + dy][cx + dx]))
                    if sad > best:
                        break
                if sad < best:
                    best = sad
            total += best
    return total


WORKLOAD = Workload(
    name="x264",
    suite="parsec",
    build=build,
    profile=ScalabilityProfile(parallel_fraction=0.97, sync_fraction=0.01,
                               sync_growth=0.20),
    description="SAD motion estimation with early termination",
)
