"""swaptions (PARSEC): Monte-Carlo swaption pricing.

Per swaption, simulate interest-rate paths driven by pseudo-random
normals (LCG + Irwin–Hall sum of 12 uniforms — all in hardened IR so
native and hardened runs draw identical streams) and discount the
payoff. ~34% FP instructions, moderate loads; the paper reports 40-60%
overhead under float-only protection (§V-B) and a small win for
SWIFT-R over ELZAR (Figure 14: +5% for ELZAR).
"""

from __future__ import annotations

import math

from ...cpu.intrinsics import rt_print_f64
from ...cpu.threads import ScalabilityProfile
from ...ir import types as T
from ...ir.builder import IRBuilder
from ...ir.module import Module
from ..common import BuiltWorkload, Workload, pick, rng
from ..libc import lcg_next, lcg_to_unit_f64
from ..libm import exp_f64

NSWAPTIONS = 4
STEPS = 8
LCG_A = 6364136223846793005
LCG_C = 1442695040888963407
MASK = (1 << 64) - 1


def build(scale: str) -> BuiltWorkload:
    trials = pick(scale, perf=120, fi=10, test=6)
    r = rng(59)
    strikes = r.uniform(0.02, 0.08, size=NSWAPTIONS)
    vols = r.uniform(0.1, 0.4, size=NSWAPTIONS)
    r0 = 0.05

    module = Module(f"swaptions.{scale}")
    gstrike = module.add_global("strike", T.ArrayType(T.F64, NSWAPTIONS), list(strikes))
    gvol = module.add_global("vol", T.ArrayType(T.F64, NSWAPTIONS), list(vols))
    print_f64 = rt_print_f64(module)
    lcg = lcg_next(module)
    to_unit = lcg_to_unit_f64(module)
    exp_fn = exp_f64(module)

    fn = module.add_function("main", T.FunctionType(T.F64, (T.I64,)), ["trials"])
    b = IRBuilder()
    b.position_at_end(fn.append_block("entry"))
    (ntrials,) = fn.args

    ls = b.begin_loop(b.i64(0), b.i64(NSWAPTIONS), name="s")
    grand = b.loop_phi(ls, b.f64(0.0), "grand")
    seed0 = b.add(b.mul(ls.index, b.i64(0x9E3779B97F4A7C15)), b.i64(12345))
    strike = b.load(T.F64, b.gep(T.F64, gstrike, ls.index))
    vol = b.load(T.F64, b.gep(T.F64, gvol, ls.index))

    lt = b.begin_loop(b.i64(0), ntrials, name="trial")
    payoff_sum = b.loop_phi(lt, b.f64(0.0), "payoff_sum")
    seed = b.loop_phi(lt, seed0, "seed")

    lstep = b.begin_loop(b.i64(0), b.i64(STEPS), name="step")
    rate = b.loop_phi(lstep, b.f64(r0), "rate")
    state = b.loop_phi(lstep, seed, "state")
    # Irwin-Hall normal: sum of 12 uniforms - 6.
    lu = b.begin_loop(b.i64(0), b.i64(12), name="u")
    usum = b.loop_phi(lu, b.f64(-6.0), "usum")
    st = b.loop_phi(lu, state, "st")
    nst = b.call(lcg, [st])
    uval = b.call(to_unit, [nst])
    b.set_loop_next(lu, usum, b.fadd(usum, uval))
    b.set_loop_next(lu, st, nst)
    b.end_loop(lu)
    # dr = vol * sqrt(dt) * z, dt = 1/STEPS; mean-revert toward r0 a bit.
    dt_sqrt = math.sqrt(1.0 / STEPS)
    shock = b.fmul(b.fmul(vol, b.f64(dt_sqrt * 0.01)), usum)
    revert = b.fmul(b.f64(0.1 / STEPS), b.fsub(b.f64(r0), rate))
    new_rate = b.fadd(rate, b.fadd(shock, revert))
    b.set_loop_next(lstep, rate, new_rate)
    b.set_loop_next(lstep, state, st)
    b.end_loop(lstep)

    # Payoff: max(rate - strike, 0), discounted at the terminal rate.
    diff = b.fsub(rate, strike)
    pos = b.fcmp("ogt", diff, b.f64(0.0))
    payoff = b.select(pos, diff, b.f64(0.0))
    discount = b.call(exp_fn, [b.fsub(b.f64(0.0), rate)])
    value = b.fmul(payoff, discount)
    b.set_loop_next(lt, payoff_sum, b.fadd(payoff_sum, value))
    b.set_loop_next(lt, seed, state)
    b.end_loop(lt)

    mean = b.fdiv(payoff_sum, b.sitofp(ntrials, T.F64))
    b.call(print_f64, [mean])
    b.set_loop_next(ls, grand, b.fadd(grand, mean))
    b.end_loop(ls)
    b.call(print_f64, [grand])
    b.ret(grand)

    expected = _reference(strikes, vols, trials)
    return BuiltWorkload(module, "main", (trials,), expected, rtol=1e-9)


def _reference(strikes, vols, trials):
    out = []
    grand = 0.0
    for s in range(NSWAPTIONS):
        seed = (s * 0x9E3779B97F4A7C15 + 12345) & MASK
        payoff_sum = 0.0
        for _ in range(trials):
            rate = 0.05
            state = seed
            for _ in range(STEPS):
                usum = -6.0
                for _ in range(12):
                    state = (state * LCG_A + LCG_C) & MASK
                    usum += (state >> 12) * (1.0 / (1 << 52)) + 1e-18
                shock = vols[s] * (math.sqrt(1.0 / STEPS) * 0.01) * usum
                revert = (0.1 / STEPS) * (0.05 - rate)
                rate = rate + (shock + revert)
            seed = state
            diff = rate - strikes[s]
            payoff = diff if diff > 0.0 else 0.0
            payoff_sum += payoff * math.exp(-rate)
        mean = payoff_sum / trials
        out.append(mean)
        grand += mean
    out.append(grand)
    return out


WORKLOAD = Workload(
    name="swaptions",
    suite="parsec",
    build=build,
    profile=ScalabilityProfile(parallel_fraction=0.99, sync_fraction=0.002,
                               sync_growth=0.02),
    description="Monte-Carlo swaption pricing; LCG randoms + FP paths",
    fp_heavy=True,
)
