"""repro.workloads — Phoenix/PARSEC-like benchmark kernels, the IR
libc/libm they share, and the Table IV microbenchmarks."""

from .common import BuiltWorkload, Workload, outputs_match, pick, rng
from .registry import (
    ALL,
    BENCHMARKS,
    FI_BENCHMARKS,
    FP_ONLY_BENCHMARKS,
    MICRO_WORKLOADS,
    PARSEC,
    PHOENIX,
    SHORT_NAMES,
    get,
)

__all__ = [
    "ALL",
    "BENCHMARKS",
    "BuiltWorkload",
    "FI_BENCHMARKS",
    "FP_ONLY_BENCHMARKS",
    "MICRO_WORKLOADS",
    "PARSEC",
    "PHOENIX",
    "SHORT_NAMES",
    "Workload",
    "get",
    "outputs_match",
    "pick",
    "rng",
]
