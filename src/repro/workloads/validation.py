"""Validation of workload profiles against the paper's Table II.

The figures depend on the workloads only through their instruction
mixes; this module encodes the paper's measured native statistics and
provides rank-correlation checks that our kernels preserve the
*orderings* that drive every result (which benchmark is most
load-heavy, most branch-missy, most cache-missy, ...).
"""

from __future__ import annotations

from typing import Dict

#: Table II of the paper: native runtime statistics with 16 threads
#: (percent). Keys are the paper's row labels.
PAPER_TABLE2: Dict[str, Dict[str, float]] = {
    "hist":     {"l1_miss": 0.66,  "br_miss": 0.01,  "loads": 53.21, "stores": 26.67, "branches": 9.56},
    "km":       {"l1_miss": 1.48,  "br_miss": 0.33,  "loads": 20.83, "stores": 0.48,  "branches": 14.96},
    "linreg":   {"l1_miss": 2.05,  "br_miss": 0.01,  "loads": 18.02, "stores": 0.21,  "branches": 3.82},
    "mmul":     {"l1_miss": 62.39, "br_miss": 0.14,  "loads": 40.16, "stores": 0.07,  "branches": 10.10},
    "pca":      {"l1_miss": 12.19, "br_miss": 0.27,  "loads": 14.21, "stores": 0.21,  "branches": 3.79},
    "smatch":   {"l1_miss": 0.12,  "br_miss": 0.70,  "loads": 11.61, "stores": 14.35, "branches": 22.40},
    "wc":       {"l1_miss": 10.94, "br_miss": 3.31,  "loads": 29.75, "stores": 23.63, "branches": 13.67},
    "black":    {"l1_miss": 0.40,  "br_miss": 1.21,  "loads": 9.38,  "stores": 2.84,  "branches": 15.63},
    "dedup":    {"l1_miss": 4.30,  "br_miss": 3.80,  "loads": 30.08, "stores": 13.55, "branches": 12.01},
    "ferret":   {"l1_miss": 4.69,  "br_miss": 12.65, "loads": 14.47, "stores": 2.28,  "branches": 17.42},
    "fluid":    {"l1_miss": 1.17,  "br_miss": 14.70, "loads": 11.77, "stores": 2.58,  "branches": 14.29},
    "scluster": {"l1_miss": 4.17,  "br_miss": 1.47,  "loads": 32.60, "stores": 0.43,  "branches": 9.33},
    "swap":     {"l1_miss": 0.82,  "br_miss": 0.97,  "loads": 30.98, "stores": 4.80,  "branches": 11.05},
    "x264":     {"l1_miss": 0.34,  "br_miss": 0.31,  "loads": 26.83, "stores": 8.32,  "branches": 21.00},
}

#: Table III's paper values, for the same rank-consistency checks.
PAPER_TABLE3_ILP_NATIVE: Dict[str, float] = {
    "hist": 1.59, "km": 3.48, "linreg": 6.51, "mmul": 0.22, "pca": 2.61,
    "smatch": 2.38, "wc": 1.31, "black": 1.83, "dedup": 1.04,
    "ferret": 1.11, "fluid": 1.22, "scluster": 0.68, "swap": 1.97,
    "x264": 2.11,
}

PAPER_TABLE3_INCR_ELZAR: Dict[str, float] = {
    "hist": 8.56, "km": 6.37, "linreg": 10.49, "mmul": 4.47, "pca": 6.82,
    "smatch": 32.72, "wc": 6.14, "black": 1.70, "dedup": 4.64,
    "ferret": 4.32, "fluid": 2.43, "scluster": 3.77, "swap": 3.50,
    "x264": 3.26,
}


def ranks(values: Dict[str, float]) -> Dict[str, float]:
    """Average ranks (ties averaged), smallest value -> rank 1."""
    ordered = sorted(values, key=lambda k: values[k])
    out: Dict[str, float] = {}
    i = 0
    while i < len(ordered):
        j = i
        while (j + 1 < len(ordered)
               and values[ordered[j + 1]] == values[ordered[i]]):
            j += 1
        avg = (i + j) / 2 + 1
        for k in range(i, j + 1):
            out[ordered[k]] = avg
        i = j + 1
    return out


def spearman(a: Dict[str, float], b: Dict[str, float]) -> float:
    """Spearman rank correlation over the keys both dicts share."""
    keys = sorted(set(a) & set(b))
    if len(keys) < 3:
        raise ValueError("need at least 3 common keys")
    ra = ranks({k: a[k] for k in keys})
    rb = ranks({k: b[k] for k in keys})
    n = len(keys)
    mean = (n + 1) / 2
    cov = sum((ra[k] - mean) * (rb[k] - mean) for k in keys)
    var_a = sum((ra[k] - mean) ** 2 for k in keys)
    var_b = sum((rb[k] - mean) ** 2 for k in keys)
    if var_a == 0 or var_b == 0:
        return 0.0
    return cov / (var_a * var_b) ** 0.5


def paper_column(metric: str) -> Dict[str, float]:
    """One Table II column as {benchmark: value}."""
    return {name: row[metric] for name, row in PAPER_TABLE2.items()}
