"""A miniature libc written in IR.

The paper hardens a significant part of musl libc along with the
application (§IV-A "Libraries support") because Phoenix/PARSEC lean on
memset/memcpy/strcmp heavily — string_match's 15-20x worst case comes
precisely from hardened ``bzero`` (§V-B). These routines are therefore
built with the IR builder so the hardening passes transform them like
any application code.

All functions are added to an existing module on demand and cached by
name. Sizes are in *elements* of the stated type.
"""

from __future__ import annotations

from ..ir import types as T
from ..ir.builder import IRBuilder
from ..ir.function import Function
from ..ir.module import Module


def _get_or_define(module: Module, name: str, ftype: T.FunctionType, define) -> Function:
    existing = module.functions.get(name)
    if existing is not None and not existing.is_declaration:
        return existing
    if existing is None:
        existing = module.add_function(name, ftype)
    define(existing)
    return existing


def memset_i8(module: Module) -> Function:
    """``memset(ptr, value, n)``: byte-fill; the paper's bzero analogue."""

    def define(fn: Function) -> None:
        b = IRBuilder()
        b.position_at_end(fn.append_block("entry"))
        ptr, value, n = fn.args
        byte = b.trunc(value, T.I8)
        loop = b.begin_loop(b.i64(0), n)
        b.store(byte, b.gep(T.I8, ptr, loop.index))
        b.end_loop(loop)
        b.ret_void()

    return _get_or_define(
        module, "memset_i8", T.FunctionType(T.VOID, (T.PTR, T.I64, T.I64)), define
    )


def memcpy_i8(module: Module) -> Function:
    def define(fn: Function) -> None:
        b = IRBuilder()
        b.position_at_end(fn.append_block("entry"))
        dst, src, n = fn.args
        loop = b.begin_loop(b.i64(0), n)
        byte = b.load(T.I8, b.gep(T.I8, src, loop.index))
        b.store(byte, b.gep(T.I8, dst, loop.index))
        b.end_loop(loop)
        b.ret_void()

    return _get_or_define(
        module, "memcpy_i8", T.FunctionType(T.VOID, (T.PTR, T.PTR, T.I64)), define
    )


def memcmp_i8(module: Module) -> Function:
    """Returns 0 if equal, 1 otherwise (order is not reported)."""

    def define(fn: Function) -> None:
        b = IRBuilder()
        b.position_at_end(fn.append_block("entry"))
        p1, p2, n = fn.args
        loop = b.begin_loop(b.i64(0), n)
        a = b.load(T.I8, b.gep(T.I8, p1, loop.index))
        c = b.load(T.I8, b.gep(T.I8, p2, loop.index))
        ne = b.icmp("ne", a, c)
        state = b.begin_if(ne)
        b.ret(b.i64(1))
        # then-block returned; close the region.
        b.position_at_end(state.merge)
        b.end_loop(loop)
        b.ret(b.i64(0))

    return _get_or_define(
        module, "memcmp_i8", T.FunctionType(T.I64, (T.PTR, T.PTR, T.I64)), define
    )


def strcmp_len(module: Module) -> Function:
    """Compare two length-``n`` byte strings; returns the index of the
    first mismatch, or ``n`` if equal (string_match's inner loop)."""

    def define(fn: Function) -> None:
        b = IRBuilder()
        b.position_at_end(fn.append_block("entry"))
        p1, p2, n = fn.args
        loop = b.begin_loop(b.i64(0), n)
        a = b.load(T.I8, b.gep(T.I8, p1, loop.index))
        c = b.load(T.I8, b.gep(T.I8, p2, loop.index))
        ne = b.icmp("ne", a, c)
        state = b.begin_if(ne)
        b.ret(loop.index)
        b.position_at_end(state.merge)
        b.end_loop(loop)
        b.ret(n)

    return _get_or_define(
        module, "strcmp_len", T.FunctionType(T.I64, (T.PTR, T.PTR, T.I64)), define
    )


def lcg_next(module: Module) -> Function:
    """Deterministic 64-bit LCG (Knuth MMIX constants): the random
    source for Monte-Carlo workloads (swaptions) — hardened IR, so
    native and hardened runs see identical streams."""

    def define(fn: Function) -> None:
        b = IRBuilder()
        b.position_at_end(fn.append_block("entry"))
        (state,) = fn.args
        a = b.i64(6364136223846793005)
        c = b.i64(1442695040888963407)
        b.ret(b.add(b.mul(state, a), c))

    return _get_or_define(
        module, "lcg_next", T.FunctionType(T.I64, (T.I64,)), define
    )


def lcg_to_unit_f64(module: Module) -> Function:
    """Map an LCG state to a double in (0, 1): take the top 52 bits."""

    def define(fn: Function) -> None:
        b = IRBuilder()
        b.position_at_end(fn.append_block("entry"))
        (state,) = fn.args
        mantissa = b.lshr(state, b.i64(12))
        as_float = b.sitofp(mantissa, T.F64)
        scale = b.f64(1.0 / float(1 << 52))
        value = b.fmul(as_float, scale)
        # Avoid exact zero for log() consumers.
        tiny = b.f64(1e-18)
        b.ret(b.fadd(value, tiny))

    return _get_or_define(
        module, "lcg_to_unit_f64", T.FunctionType(T.F64, (T.I64,)), define
    )
