"""Workload registry: every benchmark the paper evaluates, by name."""

from __future__ import annotations

from typing import Dict, List

from .common import Workload
from .micro import MICRO_WORKLOADS
from .parsec.blackscholes import WORKLOAD as _blackscholes
from .parsec.dedup import WORKLOAD as _dedup
from .parsec.ferret import WORKLOAD as _ferret
from .parsec.fluidanimate import WORKLOAD as _fluidanimate
from .parsec.streamcluster import WORKLOAD as _streamcluster
from .parsec.swaptions import WORKLOAD as _swaptions
from .parsec.x264 import WORKLOAD as _x264
from .phoenix.histogram import WORKLOAD as _histogram
from .phoenix.kmeans import WORKLOAD as _kmeans
from .phoenix.linear_regression import WORKLOAD as _linear_regression
from .phoenix.matrix_multiply import WORKLOAD as _matrix_multiply
from .phoenix.pca import WORKLOAD as _pca
from .phoenix.string_match import WORKLOAD as _string_match
from .phoenix.word_count import WORKLOAD as _word_count

PHOENIX: List[Workload] = [
    _histogram,
    _kmeans,
    _linear_regression,
    _matrix_multiply,
    _pca,
    _string_match,
    _word_count,
]

PARSEC: List[Workload] = [
    _blackscholes,
    _dedup,
    _ferret,
    _fluidanimate,
    _streamcluster,
    _swaptions,
    _x264,
]

#: The 14 benchmarks of Figures 11/12/14/17 and Tables II/III, in the
#: paper's presentation order.
BENCHMARKS: List[Workload] = PHOENIX + PARSEC

ALL: Dict[str, Workload] = {w.name: w for w in BENCHMARKS + MICRO_WORKLOADS}

#: Paper abbreviations (used as row labels in the figures).
SHORT_NAMES = {
    "histogram": "hist",
    "kmeans": "km",
    "linear_regression": "linreg",
    "matrix_multiply": "mmul",
    "pca": "pca",
    "string_match": "smatch",
    "word_count": "wc",
    "blackscholes": "black",
    "dedup": "dedup",
    "ferret": "ferret",
    "fluidanimate": "fluid",
    "streamcluster": "scluster",
    "swaptions": "swap",
    "x264": "x264",
}

#: Benchmarks excluded from the paper's fault-injection experiment
#: (Figure 13 drops mmul and fluidanimate).
FI_BENCHMARKS: List[Workload] = [
    w for w in BENCHMARKS if w.name not in ("matrix_multiply", "fluidanimate")
]

#: FP-heavy benchmarks used in the float-only protection study (§V-B).
FP_ONLY_BENCHMARKS: List[Workload] = [
    w for w in BENCHMARKS
    if w.name in ("blackscholes", "fluidanimate", "swaptions")
]


def get(name: str) -> Workload:
    wl = ALL.get(name)
    if wl is None:
        short_to_full = {v: k for k, v in SHORT_NAMES.items()}
        full = short_to_full.get(name)
        if full is not None:
            return ALL[full]
        raise KeyError(f"unknown workload {name!r}; have {sorted(ALL)}")
    return wl
