"""Microbenchmarks for the bottleneck analysis (Table IV, §VII-A).

The paper isolates the three ELZAR bottlenecks with microbenchmarks
that saturate one instruction class each, in an average-case
(independent operations, throughput-bound) and a worst-case (dependent
chain, latency-bound) variant, plus a truncation kernel for the missing
AVX instructions (§VII-A reports ~8x for truncations). Each kernel is
compared native vs ELZAR *with all checks disabled*, exposing pure
wrapper cost.
"""

from __future__ import annotations

from ..cpu.intrinsics import rt_print_i64
from ..cpu.threads import ScalabilityProfile
from ..ir import types as T
from ..ir.builder import IRBuilder
from ..ir.module import Module
from .common import BuiltWorkload, Workload, pick, rng

_PROFILE = ScalabilityProfile(parallel_fraction=1.0)


def _finish(module, b, value, print_i64):
    b.call(print_i64, [value])
    b.ret(value)


def _prelude(scale: str, name: str, array_len: int, seed: int):
    n = pick(scale, perf=6000, fi=400, test=200)
    module = Module(f"{name}.{scale}")
    data = [int(x) for x in rng(seed).randint(0, array_len, size=array_len)]
    gdata = module.add_global("data", T.ArrayType(T.I64, array_len), data)
    gout = module.add_global("out", T.ArrayType(T.I64, array_len))
    print_i64 = rt_print_i64(module)
    fn = module.add_function("main", T.FunctionType(T.I64, (T.I64,)), ["n"])
    b = IRBuilder()
    b.position_at_end(fn.append_block("entry"))
    return n, module, gdata, gout, print_i64, fn, b, data


ARRAY = 256


def build_loads_avg(scale: str) -> BuiltWorkload:
    """Four independent load streams per iteration (throughput-bound)."""
    n, module, gdata, gout, print_i64, fn, b, data = _prelude(
        scale, "micro_loads_avg", ARRAY, 71
    )
    (count,) = fn.args
    loop = b.begin_loop(b.i64(0), count)
    acc = b.loop_phi(loop, b.i64(0), "acc")
    base = b.and_(loop.index, b.i64(ARRAY - 8))
    v = acc
    for k in range(4):
        x = b.load(T.I64, b.gep(T.I64, gdata, b.add(base, b.i64(k))))
        v = b.add(v, x)
    b.set_loop_next(loop, acc, v)
    b.end_loop(loop)
    _finish(module, b, acc, print_i64)
    expected_acc = 0
    for i in range(n):
        base = i & (ARRAY - 8)
        for k in range(4):
            expected_acc += data[base + k]
    return BuiltWorkload(module, "main", (n,), [expected_acc])


def build_loads_worst(scale: str) -> BuiltWorkload:
    """Pointer-chase: every load's address depends on the previous load
    (latency-bound; wrapper latency lands on the critical path)."""
    n, module, gdata, gout, print_i64, fn, b, data = _prelude(
        scale, "micro_loads_worst", ARRAY, 73
    )
    (count,) = fn.args
    loop = b.begin_loop(b.i64(0), count)
    cursor = b.loop_phi(loop, b.i64(0), "cursor")
    x = b.load(T.I64, b.gep(T.I64, gdata, cursor))
    nxt = b.and_(x, b.i64(ARRAY - 1))
    b.set_loop_next(loop, cursor, nxt)
    b.end_loop(loop)
    _finish(module, b, cursor, print_i64)
    cursor = 0
    for _ in range(n):
        cursor = data[cursor] & (ARRAY - 1)
    return BuiltWorkload(module, "main", (n,), [cursor])


def build_stores_avg(scale: str) -> BuiltWorkload:
    """Eight independent constant stores per iteration: the single
    store-data port is the bottleneck natively too, so the AVX wrappers
    hide behind it (Table IV: ~1.0x)."""
    n, module, gdata, gout, print_i64, fn, b, data = _prelude(
        scale, "micro_stores_avg", ARRAY, 79
    )
    (count,) = fn.args
    loop = b.begin_loop(b.i64(0), count)
    base = b.and_(loop.index, b.i64(ARRAY - 8))
    for k in range(8):
        b.store(b.i64(7), b.gep(T.I64, gout, b.add(base, b.i64(k % 8))))
    b.end_loop(loop)
    final = b.load(T.I64, b.gep(T.I64, gout, b.i64(0)))
    _finish(module, b, final, print_i64)
    return BuiltWorkload(module, "main", (n,), [7 if n > 0 else 0])


def build_stores_worst(scale: str) -> BuiltWorkload:
    """Stores whose base address comes off a serial integer chain: the
    chain's vector-multiply latency peeks past the store-port bound."""
    n, module, gdata, gout, print_i64, fn, b, data = _prelude(
        scale, "micro_stores_worst", ARRAY, 83
    )
    (count,) = fn.args
    loop = b.begin_loop(b.i64(0), count)
    idx = b.loop_phi(loop, b.i64(0), "idx")
    for k in range(8):
        b.store(b.i64(9), b.gep(T.I64, gout, b.add(idx, b.i64(k))))
    nxt = b.and_(b.add(b.mul(idx, b.i64(5)), b.i64(7)), b.i64(ARRAY - 8))
    b.set_loop_next(loop, idx, nxt)
    b.end_loop(loop)
    final = b.load(T.I64, b.gep(T.I64, gout, b.i64(7)))
    _finish(module, b, final, print_i64)
    out = [0] * ARRAY
    idx = 0
    for _ in range(n):
        for k in range(8):
            out[idx + k] = 9
        idx = (idx * 5 + 7) & (ARRAY - 8)
    return BuiltWorkload(module, "main", (n,), [out[7]])


def _branch_body(b, loop, acc, cond_values):
    """Four data-dependent ifs per iteration with one-add bodies."""
    from ..ir import types as T

    current = acc
    for cond in cond_values:
        state = b.begin_if(cond, with_else=True)
        then_val = b.add(current, b.i64(3))
        b.begin_else(state)
        else_val = b.add(current, b.i64(1))
        b.end_if(state)
        merged = b.phi(T.I64, "merged")
        merged.add_incoming(then_val, state.then_end)
        merged.add_incoming(else_val, state.else_block)
        current = merged
    return current


def build_branches_avg(scale: str) -> BuiltWorkload:
    """Four predictable branches per iteration: prediction is near
    perfect, so the overhead is the pure cmpeq+ptest wrapper cost
    (Table IV: ~1.86x)."""
    n, module, gdata, gout, print_i64, fn, b, data = _prelude(
        scale, "micro_branches_avg", ARRAY, 89
    )
    (count,) = fn.args
    loop = b.begin_loop(b.i64(0), count)
    acc = b.loop_phi(loop, b.i64(0), "acc")
    conds = [
        b.icmp("eq", b.and_(loop.index, b.i64(15)), b.i64(15 - k))
        for k in range(4)
    ]
    final = _branch_body(b, loop, acc, conds)
    b.set_loop_next(loop, acc, final)
    b.end_loop(loop)
    _finish(module, b, acc, print_i64)
    acc_v = 0
    for i in range(n):
        for k in range(4):
            acc_v += 3 if (i & 15) == 15 - k else 1
    return BuiltWorkload(module, "main", (n,), [acc_v])


def build_branches_worst(scale: str) -> BuiltWorkload:
    """Four random branches per iteration (mispredict-heavy: the ptest
    also lengthens the resolution latency)."""
    n, module, gdata, gout, print_i64, fn, b, data = _prelude(
        scale, "micro_branches_worst", ARRAY, 97
    )
    (count,) = fn.args
    loop = b.begin_loop(b.i64(0), count)
    acc = b.loop_phi(loop, b.i64(0), "acc")
    x = b.load(T.I64, b.gep(T.I64, gdata, b.and_(loop.index, b.i64(ARRAY - 1))))
    conds = [
        b.icmp("eq", b.and_(b.lshr(x, b.i64(k)), b.i64(1)), b.i64(1))
        for k in range(4)
    ]
    final = _branch_body(b, loop, acc, conds)
    b.set_loop_next(loop, acc, final)
    b.end_loop(loop)
    _finish(module, b, acc, print_i64)
    acc_v = 0
    for i in range(n):
        x = data[i & (ARRAY - 1)]
        for k in range(4):
            acc_v += 3 if (x >> k) & 1 else 1
    return BuiltWorkload(module, "main", (n,), [acc_v])


def build_truncation(scale: str) -> BuiltWorkload:
    """Chains of trunc/zext: AVX2 lacks truncation instructions, so the
    ELZAR version pays long emulation sequences (§VII-A: ~8x)."""
    n, module, gdata, gout, print_i64, fn, b, data = _prelude(
        scale, "micro_truncation", ARRAY, 101
    )
    (count,) = fn.args
    loop = b.begin_loop(b.i64(0), count)
    acc = b.loop_phi(loop, b.i64(0), "acc")
    v = b.add(loop.index, acc)
    for _ in range(4):
        t32 = b.trunc(v, T.I32)
        t16 = b.trunc(t32, T.I16)
        v = b.add(b.zext(t16, T.I64), b.i64(1))
    b.set_loop_next(loop, acc, v)
    b.end_loop(loop)
    _finish(module, b, acc, print_i64)
    acc_v = 0
    for i in range(n):
        v = (i + acc_v) & ((1 << 64) - 1)
        for _ in range(4):
            v = ((v & 0xFFFF) + 1) & ((1 << 64) - 1)
        acc_v = v
    signed = acc_v if acc_v < (1 << 63) else acc_v - (1 << 64)
    return BuiltWorkload(module, "main", (n,), [signed])


def _mk(name: str, build, description: str) -> Workload:
    return Workload(
        name=name, suite="micro", build=build, profile=_PROFILE,
        description=description,
    )


MICRO_WORKLOADS = [
    _mk("micro_loads_avg", build_loads_avg, "independent loads (Table IV avg)"),
    _mk("micro_loads_worst", build_loads_worst, "pointer chase (Table IV worst)"),
    _mk("micro_stores_avg", build_stores_avg, "independent stores (Table IV avg)"),
    _mk("micro_stores_worst", build_stores_worst, "dependent stores (Table IV worst)"),
    _mk("micro_branches_avg", build_branches_avg, "predictable branches (Table IV avg)"),
    _mk("micro_branches_worst", build_branches_worst, "random branches (Table IV worst)"),
    _mk("micro_truncation", build_truncation, "trunc/zext chains (§VII-A)"),
]
