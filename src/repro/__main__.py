"""Command-line driver: regenerate paper tables/figures.

Usage::

    python -m repro list
    python -m repro fig11 [--scale test|perf]
    python -m repro fig13 [--injections N] [--workers N]
    python -m repro all [--scale test|perf] [--injections N]
    python -m repro bench [--suite engine|batch|snap|all] [--json PATH]
    python -m repro campaign [--resume] [--workers N] [--ci-target F]
    python -m repro chaos run --scenario S --seed N
    python -m repro cluster coordinator|worker ...
    python -m repro serve [--port P] [--cluster N]
    python -m repro snap build|ls|stats
    python -m repro submit --workload W --version V [--wait]
    python -m repro variants [--workloads W1,W2|all] [--scale S] [--gc]
"""

from __future__ import annotations

import argparse
import sys
import time

from .harness import (
    AppSession,
    Session,
    compute_scorecard,
    fault_model_matrix,
    fig01_simd_speedup,
    fig11_overhead,
    fig12_checks_breakdown,
    fig13_fault_injection,
    fig14_swiftr_comparison,
    fig15_case_studies,
    fig17_proposed_avx,
    fp_only_overhead,
    table2_native_stats,
    table3_ilp,
    table4_micro,
)

_EXPERIMENTS = {
    "fig1": lambda s, a, n, w: fig01_simd_speedup(s, a),
    "fig11": lambda s, a, n, w: fig11_overhead(s),
    "fig12": lambda s, a, n, w: fig12_checks_breakdown(s),
    "fig13": lambda s, a, n, w: fig13_fault_injection(
        injections=n, scale="fi" if s.scale == "perf" else "test", workers=w
    ),
    "fault-models": lambda s, a, n, w: fault_model_matrix(
        injections=n, scale="fi" if s.scale == "perf" else "test", workers=w
    ),
    "fig14": lambda s, a, n, w: fig14_swiftr_comparison(s),
    "fig15": lambda s, a, n, w: fig15_case_studies(a),
    "fig17": lambda s, a, n, w: fig17_proposed_avx(s),
    "table2": lambda s, a, n, w: table2_native_stats(s),
    "table3": lambda s, a, n, w: table3_ilp(s),
    "table4": lambda s, a, n, w: table4_micro(s),
    "fp-only": lambda s, a, n, w: fp_only_overhead(s),
}


def main(argv=None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "campaign":
        # The durable campaign runner has its own flag set (resume,
        # adaptive sampling, store location); see repro.lab.cli.
        from .lab.cli import main as campaign_main

        return campaign_main(argv[1:])
    if argv and argv[0] == "cluster":
        # Distributed campaigns (coordinator/worker); see repro.cluster.
        from .cluster.cli import main as cluster_main

        return cluster_main(argv[1:])
    if argv and argv[0] == "serve":
        # The always-on campaign service (HTTP API, tenant quotas);
        # see repro.service and docs/SERVICE.md.
        from .service.cli import serve_main

        return serve_main(argv[1:])
    if argv and argv[0] == "submit":
        # Client side of the campaign service.
        from .service.cli import submit_main

        return submit_main(argv[1:])
    if argv and argv[0] == "chaos":
        # Deterministic infrastructure-chaos campaigns against the
        # injector's own recovery machinery; see repro.chaos and
        # docs/CHAOS.md.
        from .chaos.cli import main as chaos_main

        return chaos_main(argv[1:])
    if argv and argv[0] == "variants":
        # The toolchain variant registry + per-cell IR digests; see
        # repro.toolchain.cli.
        from .toolchain.cli import main as variants_main

        return variants_main(argv[1:])
    if argv and argv[0] == "snap":
        # Mid-run checkpoint sets for O(tail) fault injection; see
        # repro.snap and docs/CHECKPOINT.md.
        from .snap.cli import main as snap_main

        return snap_main(argv[1:])

    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate tables/figures of the ELZAR paper.",
    )
    parser.add_argument(
        "experiment",
        help="experiment id (see `list`), or 'all', or 'list'",
    )
    parser.add_argument("--scale", default="perf", choices=("perf", "test"))
    parser.add_argument("--injections", type=int, default=150,
                        help="SEUs per program for fig13 (paper: 2500)")
    parser.add_argument("--workers", type=int, default=1,
                        help="campaign worker processes for fig13 "
                             "(0 = all CPUs)")
    parser.add_argument("--csv", metavar="DIR", default=None,
                        help="also write each experiment as DIR/<id>.csv")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="for 'bench': also write results as JSON")
    parser.add_argument("--suite", default="engine",
                        choices=("engine", "batch", "snap", "all"),
                        help="for 'bench': which benchmark suite(s) to "
                             "run (engine throughput, batched injection, "
                             "checkpointed injection, or all three)")
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for name in _EXPERIMENTS:
            print(name)
        print("scorecard")
        print("bench")
        print("campaign")
        print("chaos")
        print("cluster")
        print("serve")
        print("snap")
        print("submit")
        print("variants")
        return 0

    if args.experiment == "bench":
        from .bench import run_suites

        # Same scale convention as fig13: full measurement runs at the
        # fault-injection scale, --scale test is the fast smoke pass.
        return run_suites(
            args.suite,
            scale="fi" if args.scale == "perf" else "test",
            json_path=args.json,
        )

    if args.experiment == "scorecard":
        session = Session(args.scale)
        apps = AppSession(args.scale)
        card = compute_scorecard(session, apps, fi_injections=0)
        print(card.render())
        return 0 if card.failed == 0 else 1

    names = list(_EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    unknown = [n for n in names if n not in _EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {unknown}; try 'list'", file=sys.stderr)
        return 2

    session = Session(args.scale)
    apps = AppSession(args.scale)
    start = time.time()
    for name in names:
        experiment = _EXPERIMENTS[name](session, apps, args.injections,
                                        args.workers)
        print(experiment.render())
        if args.csv:
            import os

            os.makedirs(args.csv, exist_ok=True)
            path = os.path.join(args.csv, f"{experiment.id}.csv")
            experiment.save(path)
            print(f"-- wrote {path}")
        print(f"-- elapsed {time.time() - start:.0f}s\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
