"""The variant registry: every hardening configuration, declaratively.

One :class:`VariantSpec` per variant — name, hardening kind, transform
options, cost profile — in the paper's presentation order. This table
is the *single* source of truth: ``harness.Session``, the campaign CLI
(``python -m repro campaign --versions``), lab cells and cluster
workers all resolve variant names here, so the same name always means
the same transform in every subsystem.

Variant vocabulary (docstrings quote the paper):

- ``native``      — mem2reg + auto-vectorization (the paper's baseline:
  "native version with all AVX optimizations enabled", §V-A);
- ``noavx``       — the O3 base, no SIMD (Figure 1, smatch-na);
- ``elzar``       — full ELZAR (vectorization disabled first, §IV-A);
- ``elzar_noload`` / ``elzar_nostore`` / ``elzar_nobranch`` /
  ``elzar_nochecks`` — Figure 12's cumulative check ablation;
- ``elzar_float`` — float-only protection (§V-B);
- ``elzar_proposed`` — ELZAR costed with the proposed-AVX ISA (Fig 17);
- ``elzar_detect`` — detection-only ELZAR (fail-stop checks; the
  campaign matrix's ``elzar-detect``);
- ``swiftr``      — SWIFT-R instruction triplication (Figure 14);
- ``swift``       — SWIFT DMR (ablation extra).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..avx.costs import HASWELL, PROPOSED_AVX, CostModel
from ..ir.module import Module
from ..passes.clone import clone_module
from ..passes.elzar import ElzarOptions, elzar_transform
from ..passes.swiftr import SwiftOptions, swift_transform, swiftr_transform
from ..passes.vectorize import vectorize

#: Cost-profile name -> cost model (the registry stores the name so a
#: spec stays a plain, digestable value).
COST_PROFILES: Dict[str, CostModel] = {
    "HASWELL": HASWELL,
    "PROPOSED_AVX": PROPOSED_AVX,
}


@dataclass(frozen=True)
class VariantSpec:
    """One variant of the paper's evaluation matrix, declaratively.

    ``kind`` selects the hardening transform applied to the O3 base
    module (see :data:`_KINDS`); ``options`` parameterizes it
    (``ElzarOptions`` for ``elzar``, ``SwiftOptions`` or None for the
    SWIFT kinds, unused otherwise). ``cost_profile`` names the cost
    model runs are priced under (Figure 17's proposed-AVX variant is
    the full ELZAR transform under a different cost model).
    """

    name: str
    kind: str  # "identity" | "vectorize" | "elzar" | "swiftr" | "swift"
    options: Optional[object] = None
    cost_profile: str = "HASWELL"
    aliases: Tuple[str, ...] = ()
    description: str = ""

    def __post_init__(self):
        if self.kind not in _KINDS:
            raise ValueError(
                f"unknown variant kind {self.kind!r}; have {sorted(_KINDS)}"
            )
        if self.cost_profile not in COST_PROFILES:
            raise ValueError(
                f"unknown cost profile {self.cost_profile!r}; "
                f"have {sorted(COST_PROFILES)}"
            )

    # Behaviour ---------------------------------------------------------------

    @property
    def cost_model(self) -> CostModel:
        return COST_PROFILES[self.cost_profile]

    def transform(self, base: Module,
                  exclude: frozenset = frozenset()) -> Module:
        """Apply this variant's hardening to an O3 base module.

        ``exclude`` names functions copied verbatim instead of
        hardened/vectorized (third-party code, §IV-A/§VI); the base
        module is never mutated except for ``identity``, which returns
        it unchanged.
        """
        return _KINDS[self.kind](self, base, exclude)

    # Content addressing ------------------------------------------------------

    def cache_key(self) -> list:
        """Canonical value form of everything that determines this
        variant's transform output and pricing — the artifact-cache and
        handshake salt. Equal specs must produce equal keys in every
        process."""
        options = self.options
        if dataclasses.is_dataclass(options):
            encoded = {
                f.name: _canonical_field(getattr(options, f.name))
                for f in dataclasses.fields(options)
            }
            options_key = [type(options).__name__, encoded]
        else:
            options_key = _canonical_field(options)
        return ["variant", self.name, self.kind, options_key,
                self.cost_profile]


def _canonical_field(value):
    if isinstance(value, (set, frozenset)):
        return sorted(str(v) for v in value)
    if isinstance(value, tuple):
        return list(value)
    return value


# Hardening kinds -------------------------------------------------------------

def _identity(spec: VariantSpec, base: Module, exclude: frozenset) -> Module:
    return base


def _vectorize(spec: VariantSpec, base: Module, exclude: frozenset) -> Module:
    return vectorize(clone_module(base, f"{base.name}.simd"), exclude=exclude)


def _elzar(spec: VariantSpec, base: Module, exclude: frozenset) -> Module:
    options = spec.options or ElzarOptions()
    if exclude:
        options = dataclasses.replace(options, exclude=exclude)
    return elzar_transform(base, options)


def _swiftr(spec: VariantSpec, base: Module, exclude: frozenset) -> Module:
    options = spec.options
    if exclude:
        options = dataclasses.replace(options or SwiftOptions(copies=3),
                                      exclude=exclude)
    return swiftr_transform(base, options)


def _swift(spec: VariantSpec, base: Module, exclude: frozenset) -> Module:
    options = spec.options
    if exclude:
        options = dataclasses.replace(options or SwiftOptions(copies=2),
                                      exclude=exclude)
    return swift_transform(base, options)


_KINDS = {
    "identity": _identity,
    "vectorize": _vectorize,
    "elzar": _elzar,
    "swiftr": _swiftr,
    "swift": _swift,
}


# The registry ----------------------------------------------------------------

REGISTRY: Dict[str, VariantSpec] = {}
_ALIASES: Dict[str, str] = {}


def register_variant(spec: VariantSpec) -> VariantSpec:
    """Add a variant to the registry (extension point: one entry here
    surfaces the variant in the harness, the campaign CLI, lab cells
    and cluster workers at once)."""
    if spec.name in REGISTRY or spec.name in _ALIASES:
        raise ValueError(f"variant {spec.name!r} already registered")
    for alias in spec.aliases:
        if alias in REGISTRY or alias in _ALIASES:
            raise ValueError(f"variant alias {alias!r} already registered")
    REGISTRY[spec.name] = spec
    for alias in spec.aliases:
        _ALIASES[alias] = spec.name
    return spec


def get_variant(name: str) -> VariantSpec:
    """Resolve a variant name (or alias) to its spec."""
    spec = REGISTRY.get(name)
    if spec is None:
        canonical = _ALIASES.get(name)
        if canonical is not None:
            return REGISTRY[canonical]
        raise KeyError(
            f"unknown variant {name!r}; registry has {sorted(REGISTRY)} "
            f"(aliases: {sorted(_ALIASES)})"
        )
    return spec


def variant_names() -> Tuple[str, ...]:
    """Canonical variant names, registry (= presentation) order."""
    return tuple(REGISTRY)


for _spec in (
    VariantSpec(
        "native", "vectorize",
        description="mem2reg + auto-vectorization (paper baseline, §V-A)",
    ),
    VariantSpec(
        "noavx", "identity",
        description="the O3 base with SIMD disabled (Figure 1, smatch-na)",
    ),
    VariantSpec(
        "elzar", "elzar", ElzarOptions(),
        description="full ELZAR: 4-lane TMR, all checks (§III)",
    ),
    VariantSpec(
        "elzar_noload", "elzar", ElzarOptions(check_loads=False),
        description="Figure 12 ablation: load checks off",
    ),
    VariantSpec(
        "elzar_nostore", "elzar",
        ElzarOptions(check_loads=False, check_stores=False),
        description="Figure 12 ablation: + store checks off",
    ),
    VariantSpec(
        "elzar_nobranch", "elzar",
        ElzarOptions(check_loads=False, check_stores=False,
                     check_branches=False),
        description="Figure 12 ablation: + branch checks off",
    ),
    VariantSpec(
        "elzar_nochecks", "elzar", ElzarOptions.no_checks(),
        description="Figure 12 ablation: all checks off (wrapping only)",
    ),
    VariantSpec(
        "elzar_float", "elzar", ElzarOptions(float_only=True),
        description="float-only protection (§V-B)",
    ),
    VariantSpec(
        "elzar_proposed", "elzar", ElzarOptions(),
        cost_profile="PROPOSED_AVX",
        description="full ELZAR priced under the proposed AVX ISA (Fig 17)",
    ),
    VariantSpec(
        "elzar_detect", "elzar", ElzarOptions(fail_stop=True),
        aliases=("elzar-detect", "elzar-failstop"),
        description="detection-only ELZAR: checks fail-stop (§II-A)",
    ),
    VariantSpec(
        "swiftr", "swiftr",
        description="SWIFT-R scalar instruction triplication (Figure 14)",
    ),
    VariantSpec(
        "swift", "swift",
        description="SWIFT DMR: duplication, fail-stop (ablation extra)",
    ),
):
    register_variant(_spec)
del _spec

#: Canonical variant names (kept as the public tuple ``harness.VARIANTS``
#: used to re-export).
VARIANTS: Tuple[str, ...] = variant_names()
