"""``python -m repro variants`` — inspect the variant registry.

The debugging tool for cross-checkout drift: the cluster handshake can
only say "digest mismatch"; this command shows *which* (workload,
variant) cell disagrees. Run it on both machines and diff the output::

    python -m repro variants                       # registry table
    python -m repro variants --workloads histogram # + IR digest matrix
    python -m repro variants --workloads all --scale fi --json out.json
"""

from __future__ import annotations

import argparse
import dataclasses
import json
from typing import List, Optional

from ..workloads.registry import ALL
from .build import (
    TOOLCHAIN_VERSION,
    Toolchain,
    pipeline_digest,
    toolchain_digest,
)
from .digest import digest_of
from .registry import REGISTRY


def _options_text(spec) -> str:
    options = spec.options
    if options is None:
        return "-"
    defaults = type(options)()
    parts = [
        f"{f.name}={getattr(options, f.name)!r}"
        for f in dataclasses.fields(options)
        if getattr(options, f.name) != getattr(defaults, f.name)
    ]
    return ", ".join(parts) if parts else "defaults"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro variants",
        description="List the toolchain variant registry (and, with "
                    "--workloads, per-cell IR digests for drift debugging).",
    )
    parser.add_argument("--workloads", default=None, metavar="W1,W2|all",
                        help="also print the IR digest of every listed "
                             "workload x variant cell")
    parser.add_argument("--scale", default="test",
                        choices=("test", "fi", "perf"),
                        help="build scale for the digest matrix "
                             "(default: test)")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write the report as JSON")
    parser.add_argument("--gc", action="store_true",
                        help="LRU-evict the on-disk artifact cache (build "
                             "artifacts and checkpoint sets) down to "
                             "--gc-max-mb")
    parser.add_argument("--gc-max-mb", type=int, default=512,
                        metavar="MB",
                        help="cache size budget for --gc (default: 512)")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)

    print(f"toolchain v{TOOLCHAIN_VERSION}  "
          f"pipeline {pipeline_digest()[:12]}  "
          f"toolchain {toolchain_digest()[:12]}")
    print()
    rows = []
    for spec in REGISTRY.values():
        rows.append((spec.name, spec.kind, spec.cost_profile,
                     digest_of(spec.cache_key())[:12], _options_text(spec)))
    name_w = max(len(r[0]) for r in rows)
    kind_w = max(len(r[1]) for r in rows)
    cost_w = max(len(r[2]) for r in rows)
    header = (f"{'variant':<{name_w}}  {'kind':<{kind_w}}  "
              f"{'cost':<{cost_w}}  {'digest':<12}  options")
    print(header)
    print("-" * len(header))
    for name, kind, cost, dig, options in rows:
        print(f"{name:<{name_w}}  {kind:<{kind_w}}  {cost:<{cost_w}}  "
              f"{dig:<12}  {options}")
    aliased = [(s.name, s.aliases) for s in REGISTRY.values() if s.aliases]
    if aliased:
        print()
        for name, aliases in aliased:
            print(f"aliases: {', '.join(aliases)} -> {name}")

    report = {
        "toolchain_version": TOOLCHAIN_VERSION,
        "pipeline_digest": pipeline_digest(),
        "toolchain_digest": toolchain_digest(),
        "variants": [
            {
                "name": spec.name,
                "kind": spec.kind,
                "cost_profile": spec.cost_profile,
                "aliases": list(spec.aliases),
                "digest": digest_of(spec.cache_key()),
                "options": _options_text(spec),
                "description": spec.description,
            }
            for spec in REGISTRY.values()
        ],
    }

    if args.workloads:
        if args.workloads.strip() == "all":
            names = sorted(ALL)
        else:
            names = [w.strip() for w in args.workloads.split(",") if w.strip()]
        unknown = [n for n in names if n not in ALL]
        if unknown:
            print(f"unknown workload(s): {unknown}; have {sorted(ALL)}")
            return 2
        toolchain = Toolchain()
        print()
        print(f"IR digests at scale {args.scale!r} "
              "(compare across checkouts to localize drift):")
        matrix = {}
        for workload in names:
            matrix[workload] = {}
            for spec in REGISTRY.values():
                digest = toolchain.ir_digest(workload, args.scale, spec)
                matrix[workload][spec.name] = digest
                print(f"  {workload:<18} {spec.name:<16} {digest[:16]}")
        stats = toolchain.cache.stats
        print(f"  artifact cache: {stats.hits} hits, {stats.misses} misses, "
              f"{stats.stores} stores")
        report["scale"] = args.scale
        report["ir_digests"] = matrix
        report["cache"] = {
            "enabled": toolchain.cache.enabled,
            "hits": stats.hits,
            "misses": stats.misses,
            "stores": stats.stores,
        }

    if args.gc:
        from .cache import ArtifactCache

        cache = ArtifactCache()
        if not cache.enabled:
            print("cache gc: artifact cache disabled, nothing to collect")
            report["gc"] = None
        else:
            gc_stats = cache.gc(args.gc_max_mb * 1024 * 1024)
            print()
            print(gc_stats.render())
            report["gc"] = gc_stats.as_dict()

    if args.json:
        with open(args.json, "w") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
        print(f"-- wrote {args.json}")
    return 0
