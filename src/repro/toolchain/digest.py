"""Canonical content digesting shared by the toolchain artifact cache,
the lab result store, and the cluster handshake.

Lived in :mod:`repro.lab.store` originally; it moved here so the
toolchain (which the lab depends on) can address artifacts without a
circular import. :mod:`repro.lab.store` re-exports both names, so
existing imports keep working.
"""

from __future__ import annotations

import hashlib
import json


def _canonical(obj):
    """JSON-stable form of a key component: sets are sorted, tuples
    become lists, exotic objects fall back to ``repr``. Equal logical
    keys must canonicalize identically across processes (``frozenset``
    iteration order is not stable, ``repr`` of floats is)."""
    if obj is None or isinstance(obj, (str, int, float, bool)):
        return obj
    if isinstance(obj, (list, tuple)):
        return [_canonical(x) for x in obj]
    if isinstance(obj, (set, frozenset)):
        return sorted((_canonical(x) for x in obj), key=repr)
    if isinstance(obj, dict):
        return {str(k): _canonical(v) for k, v in
                sorted(obj.items(), key=lambda kv: str(kv[0]))}
    return repr(obj)


def digest_of(obj) -> str:
    """Content digest of an arbitrary (canonicalizable) key object."""
    text = json.dumps(_canonical(obj), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()
