"""Persistent content-addressed build-artifact cache.

A built variant is stored as one JSON file holding its *printed IR*
(the round-trippable textual form — the same text whose digest the
cluster handshake compares) plus the run metadata a consumer needs
without re-running ``build_at`` (entry, args, expected output, rtol).
Artifacts are addressed by a content key digested from (workload,
scale, variant-spec digest, toolchain pipeline digest), so:

- a variant-spec change (different options, new lanes default) or a
  pipeline change (``TOOLCHAIN_VERSION`` bump) degrades every old
  artifact to a miss, never to a wrong module;
- two processes on the same checkout share artifacts; writes are
  atomic (write-to-temp + rename), so concurrent builders race
  benignly — last writer wins with identical bytes.

An artifact is only trusted after rehydration re-digests the parsed
module and matches the recorded IR digest; mismatches (truncated file,
hand-edited artifact) are treated as misses and rebuilt.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from typing import Dict, Optional

from ..ir.module import Module
from ..ir.parser import ParseError, parse_module
from ..ir.printer import format_module


def default_cache_path() -> str:
    """``$REPRO_TOOLCHAIN_CACHE`` if set, else a per-user cache dir
    (sibling of the lab result store)."""
    env = os.environ.get("REPRO_TOOLCHAIN_CACHE")
    if env:
        return env
    cache_root = os.environ.get(
        "XDG_CACHE_HOME", os.path.join(os.path.expanduser("~"), ".cache")
    )
    return os.path.join(cache_root, "repro-lab", "toolchain")


def cache_disabled() -> bool:
    """``$REPRO_TOOLCHAIN_CACHE`` set to ``0``/``off`` disables the
    on-disk cache entirely (cold builds every process)."""
    return os.environ.get("REPRO_TOOLCHAIN_CACHE", "").lower() in ("0", "off")


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    stores: int = 0
    #: Artifacts that existed but failed validation (parse error or
    #: digest mismatch) and were discarded.
    invalid: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "stores": self.stores, "invalid": self.invalid}


@dataclass
class GCStats:
    """One :meth:`ArtifactCache.gc` sweep."""

    scanned_files: int = 0
    scanned_bytes: int = 0
    evicted_files: int = 0
    evicted_bytes: int = 0

    @property
    def kept_bytes(self) -> int:
        return self.scanned_bytes - self.evicted_bytes

    def as_dict(self) -> Dict[str, int]:
        return {"scanned_files": self.scanned_files,
                "scanned_bytes": self.scanned_bytes,
                "evicted_files": self.evicted_files,
                "evicted_bytes": self.evicted_bytes,
                "kept_bytes": self.kept_bytes}

    def render(self) -> str:
        return (f"cache gc: scanned {self.scanned_files} files "
                f"({self.scanned_bytes / 1e6:.1f} MB), evicted "
                f"{self.evicted_files} ({self.evicted_bytes / 1e6:.1f} MB), "
                f"kept {self.kept_bytes / 1e6:.1f} MB")


@dataclass
class Artifact:
    """One rehydrated cache entry."""

    module: Module
    meta: Dict


class ArtifactCache:
    """Content-addressed on-disk store of built variants.

    ``root=None`` resolves :func:`default_cache_path` (honouring the
    ``$REPRO_TOOLCHAIN_CACHE`` off switch); pass an explicit directory
    to pin one (tests), or construct with ``root=False`` semantics via
    :meth:`disabled` for a no-op cache.
    """

    def __init__(self, root: Optional[str] = None):
        if root is None:
            self._root = None if cache_disabled() else default_cache_path()
        else:
            self._root = root
        self.stats = CacheStats()

    @classmethod
    def disabled(cls) -> "ArtifactCache":
        cache = cls(root="")
        cache._root = None
        return cache

    @property
    def root(self) -> Optional[str]:
        return self._root

    @property
    def enabled(self) -> bool:
        return self._root is not None

    def _path(self, key: str) -> str:
        # Two-level fanout keeps directories small at 14 workloads x
        # 12 variants x scales but scales to thousands of artifacts.
        return os.path.join(self._root, key[:2], f"{key}.json")

    # Lookup ------------------------------------------------------------------

    def load(self, key: str, ir_digest) -> Optional[Artifact]:
        """Rehydrate the artifact at ``key``, or None on miss.

        ``ir_digest`` is the digest function (text -> digest) used to
        validate the parsed module against the recorded digest — the
        cache never returns a module whose IR does not re-print to the
        bytes it was stored under.
        """
        if not self.enabled:
            return None
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
            module = parse_module(payload["ir"])
        except (OSError, ValueError, KeyError, ParseError):
            self.stats.misses += 1
            if os.path.exists(path):
                self.stats.invalid += 1
                _quietly_remove(path)
            return None
        meta = payload.get("meta", {})
        if ir_digest(format_module(module)) != meta.get("ir_digest"):
            # Printed form drifted (printer changed without a pipeline
            # bump, or the file was tampered with): rebuild.
            self.stats.misses += 1
            self.stats.invalid += 1
            _quietly_remove(path)
            return None
        self.stats.hits += 1
        _touch(path)
        return Artifact(module=module, meta=meta)

    # Store -------------------------------------------------------------------

    def store(self, key: str, module: Module, meta: Dict) -> bool:
        """Persist a built variant; returns False when disabled or the
        artifact cannot be written (read-only cache dir is non-fatal —
        the build simply stays cold)."""
        if not self.enabled:
            return False
        path = self._path(key)
        payload = {"meta": meta, "ir": format_module(module)}
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=os.path.dirname(path), suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as fh:
                    json.dump(payload, fh)
                os.replace(tmp, path)
            except BaseException:
                _quietly_remove(tmp)
                raise
        except OSError:
            return False
        self.stats.stores += 1
        return True

    # Garbage collection ------------------------------------------------------

    def gc(self, max_bytes: int) -> GCStats:
        """Evict least-recently-used entries until the cache fits in
        ``max_bytes``. Covers every regular file under the root —
        build artifacts *and* the checkpoint blobs :mod:`repro.snap`
        keys beside them — using mtime as the LRU clock (:meth:`load`
        and ``SnapStore.load`` touch on hit). Safe to run concurrently
        with readers: eviction is plain unlink, and a reader that
        loses the race just sees a miss and rebuilds."""
        stats = GCStats()
        if not self.enabled or not os.path.isdir(self._root):
            return stats
        entries = []
        for dirpath, _dirnames, filenames in os.walk(self._root):
            for name in filenames:
                path = os.path.join(dirpath, name)
                try:
                    st = os.stat(path)
                except OSError:
                    continue
                entries.append((st.st_mtime, st.st_size, path))
        stats.scanned_files = len(entries)
        stats.scanned_bytes = sum(size for _, size, _ in entries)
        excess = stats.scanned_bytes - max(0, max_bytes)
        if excess <= 0:
            return stats
        entries.sort()  # oldest mtime first
        for _mtime, size, path in entries:
            if stats.evicted_bytes >= excess:
                break
            try:
                os.remove(path)
            except OSError:
                continue
            stats.evicted_files += 1
            stats.evicted_bytes += size
            parent = os.path.dirname(path)
            try:  # drop empty fanout dirs, best-effort
                os.rmdir(parent)
            except OSError:
                pass
        return stats


def _touch(path: str) -> None:
    """Best-effort mtime bump — the LRU clock for :meth:`gc`."""
    try:
        os.utime(path, None)
    except OSError:
        pass


def _quietly_remove(path: str) -> None:
    try:
        os.remove(path)
    except OSError:
        pass
