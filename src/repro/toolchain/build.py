"""The canonical ``build(workload, scale, variant)`` pipeline.

Exactly the paper's §IV-A recipe, applied identically wherever a
module is needed (harness sessions, campaign cells, cluster workers):

1. ``build_at``  — construct the workload's IR at the given scale;
2. ``mem2reg`` → ``inline`` → ``mem2reg`` — the "-O3-equivalent"
   pipeline the paper runs before hardening (promote stack slots,
   inline the hot helpers/libm, promote again);
3. the variant's hardening transform (:class:`VariantSpec.transform`:
   vectorize for ``native``, ELZAR/SWIFT hardening for the rest,
   nothing for ``noavx``);
4. ``verify_module`` — structural verification of the result.

Steps 1–3 are skipped entirely when the artifact cache holds the
variant (content-addressed on workload, scale, variant digest and
:func:`pipeline_digest`): the printed IR is rehydrated through the
round-trippable parser, re-digested, and verified. A rehydrated module
is *digest-identical* to a freshly built one — the fixed-point
property pinned by ``tests/toolchain/test_roundtrip.py`` — so golden
runs, campaign store keys and cluster handshakes cannot tell the two
apart.
"""

from __future__ import annotations

import numbers
from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Union

from ..ir.module import Module
from ..ir.parser import parse_module
from ..ir.printer import format_module
from ..ir.verifier import verify_module
from ..passes.inline import inline_module
from ..passes.mem2reg import mem2reg
from ..workloads.common import BuiltWorkload
from ..workloads.registry import get
from .cache import ArtifactCache
from .digest import digest_of
from .registry import VariantSpec, get_variant

#: Bump when the meaning of the pipeline changes (pass semantics, stage
#: order, printer format): every artifact-cache key and lab store key
#: is salted with it, so old artifacts/shards degrade to misses.
TOOLCHAIN_VERSION = 1

#: The canonical stage sequence, part of the pipeline digest.
PIPELINE: Tuple[str, ...] = (
    "build_at", "mem2reg", "inline", "mem2reg", "harden", "verify",
)

_PIPELINE_DIGEST: Optional[str] = None


def pipeline_digest() -> str:
    """Content digest of the pipeline identity (version + stages)."""
    global _PIPELINE_DIGEST
    if _PIPELINE_DIGEST is None:
        _PIPELINE_DIGEST = digest_of(
            ["toolchain-pipeline", TOOLCHAIN_VERSION, list(PIPELINE)]
        )
    return _PIPELINE_DIGEST


def toolchain_digest() -> str:
    """The digest that salts lab store keys (LAB_SCHEMA 3) and the
    cluster handshake: two checkouts agreeing on it agree on how
    modules are built."""
    return pipeline_digest()


def module_digest(module: Module) -> str:
    """Content digest of a module's printed IR (globals and their
    initializers included — the printer is round-trippable, so the text
    determines execution). Memoized against the module's version stamp.

    This is *the* module identity everywhere: lab store cell keys,
    cluster handshakes, artifact-cache validation, and ``python -m
    repro variants`` all print/compare this digest.
    """
    cached = getattr(module, "_lab_digest", None)
    if cached is not None and cached[0] == module.version:
        return cached[1]
    digest = digest_of(["module-ir", format_module(module)])
    module._lab_digest = (module.version, digest)
    return digest


def _ir_text_digest(text: str) -> str:
    return digest_of(["module-ir", text])


@dataclass
class BuiltVariant:
    """One (workload, scale, variant) cell, ready to run."""

    workload: str
    scale: str
    spec: VariantSpec
    module: Module
    entry: str
    args: tuple
    expected: Optional[list]
    rtol: float
    #: True when the module was rehydrated from the artifact cache
    #: (no build_at, no passes, no hardening ran in this process).
    from_cache: bool

    @property
    def ir_digest(self) -> str:
        return module_digest(self.module)


def _jsonable_run_meta(built) -> Optional[Dict]:
    """Entry/args/expected/rtol as exact JSON values, or None when a
    component cannot round-trip (the artifact is then not stored and
    the cell simply stays cold)."""
    args = []
    for value in built.args:
        if isinstance(value, bool) or not isinstance(
                value, (numbers.Integral, numbers.Real)):
            return None
        args.append(int(value) if isinstance(value, numbers.Integral)
                    else float(value))
    expected = built.expected
    if expected is not None:
        encoded = []
        for value in expected:
            if value is None:
                encoded.append(None)
            elif isinstance(value, bool):
                return None
            elif isinstance(value, numbers.Integral):
                encoded.append(int(value))
            elif isinstance(value, numbers.Real):
                encoded.append(float(value))
            else:
                return None
        expected = encoded
    return {"entry": built.entry, "args": args, "expected": expected,
            "rtol": float(built.rtol)}


class Toolchain:
    """Builds (and memoizes, and persistently caches) variant modules.

    One instance per logical consumer (a harness ``Session``, a
    campaign invocation, a cluster worker); all instances share the
    same on-disk artifact cache by default, so any of them warm-starts
    from builds done by any other process on the same checkout.
    """

    def __init__(self, cache: Optional[ArtifactCache] = None):
        self.cache = cache if cache is not None else ArtifactCache()
        self._bases: Dict[Tuple[str, str], BuiltWorkload] = {}
        self._bases_from_cache: set = set()
        self._variants: Dict[Tuple[str, str, str], BuiltVariant] = {}

    # Keys --------------------------------------------------------------------

    @staticmethod
    def artifact_key(workload: str, scale: str, spec: VariantSpec) -> str:
        return digest_of(["artifact", workload, scale,
                          digest_of(spec.cache_key()), pipeline_digest()])

    # Base (the "O3" module) --------------------------------------------------

    def base(self, workload: str, scale: str) -> BuiltWorkload:
        """The workload's O3 base: ``build_at`` + mem2reg → inline →
        mem2reg, memoized per (workload, scale). The base *is* the
        ``noavx`` variant, so a stored ``noavx`` artifact rehydrates it
        without running ``build_at`` at all."""
        key = (workload, scale)
        cached = self._bases.get(key)
        if cached is not None:
            return cached
        noavx = get_variant("noavx")
        art = self.cache.load(self.artifact_key(workload, scale, noavx),
                              _ir_text_digest)
        base: Optional[BuiltWorkload] = None
        if art is not None:
            base = self._rehydrated_base(art)
        if base is not None:
            self._bases_from_cache.add(key)
        else:
            base = get(workload).build_at(scale)
            mem2reg(base.module)
            inline_module(base.module)
            mem2reg(base.module)
            # Canonicalize through print -> parse before hardening.
            # Printing uniquifies any duplicate value names, so after
            # this round trip the in-memory module is bit-identical to
            # a cache-rehydrated one — and every variant hardened from
            # it gets the same IR digest whether its base was fresh or
            # rehydrated, on this machine or a cluster peer's.
            base.module = parse_module(format_module(base.module))
            self._store_artifact(workload, scale, noavx, base.module, base)
        self._bases[key] = base
        return base

    @staticmethod
    def _rehydrated_base(art) -> Optional[BuiltWorkload]:
        meta = art.meta
        if meta.get("args") is None:
            return None
        return BuiltWorkload(
            module=art.module,
            entry=str(meta["entry"]),
            args=tuple(meta["args"]),
            expected=meta.get("expected"),
            rtol=float(meta.get("rtol", 1e-9)),
        )

    # Variants ----------------------------------------------------------------

    def build(self, workload: str, scale: str,
              variant: Union[str, VariantSpec]) -> BuiltVariant:
        """The canonical pipeline. Memoized per (workload, scale,
        variant); served from the artifact cache when possible."""
        spec = (variant if isinstance(variant, VariantSpec)
                else get_variant(variant))
        memo_key = (workload, scale, spec.name)
        cached = self._variants.get(memo_key)
        if cached is not None:
            return cached

        built: Optional[BuiltVariant] = None
        if spec.kind == "identity":
            # The base IS this variant (shares its artifact).
            base = self.base(workload, scale)
            built = BuiltVariant(
                workload=workload, scale=scale, spec=spec,
                module=base.module, entry=base.entry, args=base.args,
                expected=base.expected, rtol=base.rtol,
                from_cache=(workload, scale) in self._bases_from_cache,
            )
        else:
            art = self.cache.load(self.artifact_key(workload, scale, spec),
                                  _ir_text_digest)
            if art is not None and art.meta.get("args") is not None:
                try:
                    verify_module(art.module)
                except Exception:
                    art = None
            if art is not None and art.meta.get("args") is not None:
                meta = art.meta
                built = BuiltVariant(
                    workload=workload, scale=scale, spec=spec,
                    module=art.module, entry=str(meta["entry"]),
                    args=tuple(meta["args"]), expected=meta.get("expected"),
                    rtol=float(meta.get("rtol", 1e-9)), from_cache=True,
                )
            else:
                base = self.base(workload, scale)
                module = spec.transform(base.module)
                verify_module(module)
                built = BuiltVariant(
                    workload=workload, scale=scale, spec=spec,
                    module=module, entry=base.entry, args=base.args,
                    expected=base.expected, rtol=base.rtol, from_cache=False,
                )
                self._store_artifact(workload, scale, spec, module, base)
        self._variants[memo_key] = built
        return built

    def module(self, workload: str, scale: str,
               variant: Union[str, VariantSpec]) -> Module:
        return self.build(workload, scale, variant).module

    def ir_digest(self, workload: str, scale: str,
                  variant: Union[str, VariantSpec]) -> str:
        """The content digest of the built variant's printed IR — the
        value the cluster handshake compares across machines and
        ``python -m repro variants`` prints for drift debugging."""
        return self.build(workload, scale, variant).ir_digest

    # Artifact plumbing -------------------------------------------------------

    def _store_artifact(self, workload: str, scale: str, spec: VariantSpec,
                        module: Module, built) -> None:
        run_meta = _jsonable_run_meta(built)
        if run_meta is None:
            return
        meta = dict(run_meta)
        meta.update({
            "workload": workload,
            "scale": scale,
            "variant": spec.name,
            "variant_digest": digest_of(spec.cache_key()),
            "pipeline_digest": pipeline_digest(),
            "ir_digest": module_digest(module),
        })
        self.cache.store(self.artifact_key(workload, scale, spec),
                         module, meta)


_DEFAULT_TOOLCHAIN: Optional[Toolchain] = None


def default_toolchain() -> Toolchain:
    """Process-wide shared toolchain (repeated figure regeneration and
    campaign cells in one process share built modules)."""
    global _DEFAULT_TOOLCHAIN
    if _DEFAULT_TOOLCHAIN is None:
        _DEFAULT_TOOLCHAIN = Toolchain()
    return _DEFAULT_TOOLCHAIN


def build(workload: str, scale: str,
          variant: Union[str, VariantSpec]) -> BuiltVariant:
    """Module-level convenience over :func:`default_toolchain`."""
    return default_toolchain().build(workload, scale, variant)
