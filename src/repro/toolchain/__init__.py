"""repro.toolchain — the one compilation pipeline every subsystem runs.

The paper's evaluation (§IV–V) compiles each workload exactly once per
variant: ``-O3``, then harden. This package is that pipeline made a
single importable layer:

- :mod:`repro.toolchain.registry` — the declarative
  :class:`VariantSpec` registry, the *only* variant→options table in
  the repository. ``harness.Session``, ``python -m repro campaign``,
  lab cells and cluster workers all read it, so a variant added here
  appears in every subsystem at once.
- :mod:`repro.toolchain.build` — :class:`Toolchain` and the canonical
  ``build(workload, scale, variant)`` pipeline (``build_at`` →
  ``mem2reg`` → ``inline`` → ``mem2reg`` → harden/vectorize →
  verify). Harness sessions, ``faults.campaign`` cells and cluster
  workers build modules through it, so the same (workload, scale,
  variant) names the same IR everywhere — the property the cluster
  handshake checks across machines, now enforced across subsystems.
- :mod:`repro.toolchain.cache` — the persistent content-addressed
  artifact cache. Built variants are stored as printed IR keyed on
  (workload, scale, variant digest, pipeline digest) and rehydrated
  through the round-trippable parser, so a second scorecard, bench
  run or cluster worker on the same checkout skips build+harden
  entirely. See docs/TOOLCHAIN.md for keys and invalidation rules.
"""

from .build import (
    BuiltVariant,
    PIPELINE,
    TOOLCHAIN_VERSION,
    Toolchain,
    build,
    default_toolchain,
    pipeline_digest,
    toolchain_digest,
)
from .cache import ArtifactCache, CacheStats, default_cache_path
from .registry import (
    REGISTRY,
    VARIANTS,
    VariantSpec,
    get_variant,
    register_variant,
    variant_names,
)

__all__ = [
    "ArtifactCache",
    "BuiltVariant",
    "CacheStats",
    "PIPELINE",
    "REGISTRY",
    "TOOLCHAIN_VERSION",
    "Toolchain",
    "VARIANTS",
    "VariantSpec",
    "build",
    "default_cache_path",
    "default_toolchain",
    "get_variant",
    "pipeline_digest",
    "register_variant",
    "toolchain_digest",
    "variant_names",
]
