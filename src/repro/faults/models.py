"""Pluggable fault models (the campaign's fault-shape taxonomy).

The paper's campaign (§IV-B) injects one fault shape: a single bit flip
in the output register of a random eligible dynamic instruction. The
claims it cannot probe are exactly the ones about ELZAR's *window of
vulnerability* (§V-C): corrupted effective addresses after the check →
extract sequence, wrong-path branches after the ptest sync point, and
upsets inside the inserted check/wrapper instructions themselves. Each
:class:`FaultModel` here targets one of those shapes; a campaign picks
one by name (``CampaignConfig.fault_model`` /
``python -m repro campaign --fault-model``).

Contract every model obeys:

- **Deterministic plans.** ``draw_plans(profile, config)`` derives the
  whole plan list from ``random.Random(config.seed)`` with a *fixed
  number of RNG draws per plan*, so the list for a larger injection cap
  extends (never reshuffles) the list for a smaller one — the prefix
  property :mod:`repro.lab` relies on to reuse stored shards.
- **A stable** ``cache_key`` that flows into the golden-run cache and
  the durable store's spec key, so campaigns under different models
  never share shard rows.
- **Engine neutrality.** Plans are applied by shared
  :class:`~repro.cpu.interpreter.Machine` helpers, so the reference
  interpreter and the pre-decoded engine classify identical outcomes
  for every plan (enforced by ``tests/cpu/test_engine_differential``).

Populations come from a :class:`StreamProfile` measured by the golden
run: every model's target stream (eligible results, dynamic memory
accesses, dynamic conditional branches, checker sites) is counted in
the same count-only pass, so one golden run prices every model.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..cpu.interpreter import FaultPlan

#: Lanes per YMM register (the paper's AVX configuration).
_LANES = 4


@dataclass(frozen=True)
class StreamProfile:
    """Per-stream dynamic event counts from one golden run."""

    #: Value-producing eligible dynamic instructions (the classic pool).
    eligible: int
    #: Total dynamic instructions (for the hang budget).
    executed: int
    #: Dynamic loads + stores inside eligible functions.
    mem_accesses: int
    #: Dynamic conditional branches inside eligible functions.
    cond_branches: int
    #: Dynamic hardening-inserted check/wrapper sites (0 for native).
    checker_sites: int


class FaultModel:
    """Base class: subclasses set ``name``, ``population_stream`` and
    implement ``population()`` / ``draw()``."""

    #: Registry name (also the CLI spelling).
    name: str = ""
    #: Human description of the stream ``population()`` counts.
    population_stream: str = "eligible instructions"

    @property
    def cache_key(self):
        """Key component for golden caches and durable store specs."""
        return ("fault-model", self.name)

    def population(self, profile: StreamProfile) -> int:
        raise NotImplementedError

    def draw(self, rng: random.Random, population: int) -> FaultPlan:
        """One plan. Must consume a fixed number of RNG draws."""
        raise NotImplementedError

    def sort_for_batching(self, plans: Sequence[FaultPlan]) -> List[int]:
        """Execution order — a permutation of ``range(len(plans))`` —
        for the batched engine (:mod:`repro.cpu.batch`): ascending
        fault site, ties in draw order. Lanes grouped into one batch
        then share the longest possible golden prefix, and each batch's
        golden run aborts at its *latest* site — which, with sorted
        sites, sits near a quantile of the run instead of its end, so
        total golden re-execution across batches halves. Pure
        scheduling: the runner scatters outcomes back to draw order, so
        results are unaffected (the differential matrix pins it)."""
        return sorted(range(len(plans)),
                      key=lambda i: (plans[i].target_index, i))

    def draw_plans(self, profile: StreamProfile, config) -> List[FaultPlan]:
        """The campaign's full plan list, in the serial draw order (the
        prefix property: a longer campaign's list extends a shorter
        one's). ``config`` needs ``seed`` and ``injections``."""
        population = self.population(profile)
        if population <= 0:
            raise ValueError(
                f"fault model {self.name!r} has no targets: the golden run "
                f"observed zero {self.population_stream} (is the workload "
                "hardened?)"
            )
        rng = random.Random(config.seed)
        return [self.draw(rng, population) for _ in range(config.injections)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FaultModel {self.name}>"


class RegisterBitFlip(FaultModel):
    """The paper's §IV-B default: one bit of one result register (one
    YMM lane for vectors). Draw order is byte-identical to the original
    ``draw_plans`` — stored campaigns keep replaying."""

    name = "register-bitflip"

    def population(self, profile: StreamProfile) -> int:
        return profile.eligible

    def draw(self, rng: random.Random, population: int) -> FaultPlan:
        return FaultPlan(
            target_index=rng.randrange(population),
            bit=rng.randrange(64),
            lane=rng.randrange(_LANES),
        )


class MultiBitFlip(FaultModel):
    """2–3 distinct bits of one result (one lane): the multi-bit upsets
    that defeat parity-style detection. Bits are made distinct by
    construction (offset draws), with a fixed draw count per plan."""

    name = "multi-bitflip"

    def population(self, profile: StreamProfile) -> int:
        return profile.eligible

    def draw(self, rng: random.Random, population: int) -> FaultPlan:
        target = rng.randrange(population)
        lane = rng.randrange(_LANES)
        nbits = 2 + rng.randrange(2)  # 2 or 3
        b1 = rng.randrange(64)
        b2 = (b1 + 1 + rng.randrange(63)) % 64
        # Third draw always consumed (fixed-arity), used only for nbits=3:
        # index into the 62 bits distinct from b1 and b2.
        r3 = rng.randrange(62)
        extras = (b2,)
        if nbits == 3:
            b3 = r3
            for taken in sorted((b1, b2)):
                if b3 >= taken:
                    b3 += 1
            extras = (b2, b3 % 64)
        return FaultPlan(target_index=target, bit=b1, lane=lane,
                         kind="multi", bits=extras)


class AddressBitFlip(FaultModel):
    """Corrupt the effective address of one dynamic load/store — after
    any hardening check on the address value, before the access. This is
    the paper's post-check window on extracted scalar addresses: no
    replication scheme that checks the *register* value can see it."""

    name = "address-bitflip"
    population_stream = "dynamic loads/stores in eligible functions"

    def population(self, profile: StreamProfile) -> int:
        return profile.mem_accesses

    def draw(self, rng: random.Random, population: int) -> FaultPlan:
        return FaultPlan(
            target_index=rng.randrange(population),
            bit=rng.randrange(64),
            kind="addr",
        )


class MemoryBitFlip(FaultModel):
    """Flip one bit of a random live heap byte, timed at a random
    eligible instruction. Deliberately violates the paper's fault-model
    assumption that memory is ECC-protected (§II) — it measures how much
    of the residual SDC rate that assumption absorbs. Heap-only: stack
    layouts differ per scheme, the heap is the comparable state."""

    name = "memory-bitflip"
    population_stream = "eligible instructions"

    def population(self, profile: StreamProfile) -> int:
        return profile.eligible

    def draw(self, rng: random.Random, population: int) -> FaultPlan:
        return FaultPlan(
            target_index=rng.randrange(population),
            bit=rng.randrange(8),
            kind="mem",
            offset=rng.randrange(1 << 30),
        )


class BranchFlip(FaultModel):
    """Invert one dynamic conditional-branch decision — a control-flow
    fault *after* the ptest/branch synchronisation point, i.e. inside
    ELZAR's branch window of vulnerability (§III-C)."""

    name = "branch-flip"
    population_stream = "dynamic conditional branches in eligible functions"

    def population(self, profile: StreamProfile) -> int:
        return profile.cond_branches

    def draw(self, rng: random.Random, population: int) -> FaultPlan:
        return FaultPlan(target_index=rng.randrange(population), bit=0,
                         kind="branch")


class InstructionSkip(FaultModel):
    """Replace one eligible instruction's result with a type-appropriate
    zero — the standard skip approximation (the destination register
    reads as never written). Side effects that already happened (stores,
    output) are not undone; a true pre-execution skip is not modelled."""

    name = "instruction-skip"

    def population(self, profile: StreamProfile) -> int:
        return profile.eligible

    def draw(self, rng: random.Random, population: int) -> FaultPlan:
        return FaultPlan(target_index=rng.randrange(population), bit=0,
                         kind="skip")


class CheckerFault(FaultModel):
    """Single bit flip restricted to hardening-inserted wrapper/check
    sites (check/vote/branch-sync intrinsic results, the extract of
    every to-scalar wrapper, the broadcast of every from-scalar
    wrapper): a direct measurement of the window of vulnerability. The
    population is zero for unhardened code — the campaign raises a
    ``ValueError`` instead of silently injecting nothing."""

    name = "checker-fault"
    population_stream = "hardening-inserted checker sites"

    def population(self, profile: StreamProfile) -> int:
        return profile.checker_sites

    def draw(self, rng: random.Random, population: int) -> FaultPlan:
        return FaultPlan(
            target_index=rng.randrange(population),
            bit=rng.randrange(64),
            lane=rng.randrange(_LANES),
            kind="checker",
        )


# --- Registry ----------------------------------------------------------------

DEFAULT_MODEL = RegisterBitFlip.name

_REGISTRY: Dict[str, FaultModel] = {}


def register_model(model: FaultModel) -> FaultModel:
    """Add a model instance to the registry (name must be unique)."""
    if not model.name:
        raise ValueError(f"fault model {model!r} has no name")
    if model.name in _REGISTRY:
        raise ValueError(f"fault model {model.name!r} already registered")
    _REGISTRY[model.name] = model
    return model


def get_model(name: str) -> FaultModel:
    model = _REGISTRY.get(name)
    if model is None:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(f"unknown fault model {name!r}; have: {known}")
    return model


def model_names() -> List[str]:
    """Registered model names, default first, rest sorted."""
    rest = sorted(n for n in _REGISTRY if n != DEFAULT_MODEL)
    return [DEFAULT_MODEL] + rest


for _cls in (RegisterBitFlip, MultiBitFlip, AddressBitFlip, MemoryBitFlip,
             BranchFlip, InstructionSkip, CheckerFault):
    register_model(_cls())
