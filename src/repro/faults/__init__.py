"""repro.faults — single-event-upset injection and outcome
classification (paper §IV-B, Table I, Figure 13)."""

from .campaign import (
    CampaignConfig,
    InjectionSession,
    draw_model_plans,
    draw_plans,
    golden_profile,
    golden_run,
    inject_once,
    resolve_workers,
    run_campaign,
    run_plans,
    trap_outcome,
)
from .models import (
    DEFAULT_MODEL,
    FaultModel,
    StreamProfile,
    get_model,
    model_names,
    register_model,
)
from .outcomes import CampaignResult, Outcome
from .trace import TraceSummary, collect_trace, functions_only, hardened_only

__all__ = [
    "CampaignConfig",
    "CampaignResult",
    "DEFAULT_MODEL",
    "FaultModel",
    "Outcome",
    "StreamProfile",
    "TraceSummary",
    "collect_trace",
    "draw_model_plans",
    "draw_plans",
    "functions_only",
    "get_model",
    "golden_profile",
    "golden_run",
    "hardened_only",
    "inject_once",
    "InjectionSession",
    "model_names",
    "register_model",
    "resolve_workers",
    "run_plans",
    "run_campaign",
    "trap_outcome",
]
