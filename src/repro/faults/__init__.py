"""repro.faults — single-event-upset injection and outcome
classification (paper §IV-B, Table I, Figure 13)."""

from .campaign import CampaignConfig, golden_run, inject_once, run_campaign
from .outcomes import CampaignResult, Outcome
from .trace import TraceSummary, collect_trace, functions_only, hardened_only

__all__ = [
    "CampaignConfig",
    "CampaignResult",
    "Outcome",
    "TraceSummary",
    "collect_trace",
    "functions_only",
    "golden_run",
    "hardened_only",
    "inject_once",
    "run_campaign",
]
