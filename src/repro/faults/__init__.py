"""repro.faults — single-event-upset injection and outcome
classification (paper §IV-B, Table I, Figure 13)."""

from .campaign import (
    CampaignConfig,
    draw_plans,
    golden_run,
    inject_once,
    resolve_workers,
    run_campaign,
)
from .outcomes import CampaignResult, Outcome
from .trace import TraceSummary, collect_trace, functions_only, hardened_only

__all__ = [
    "CampaignConfig",
    "CampaignResult",
    "Outcome",
    "TraceSummary",
    "collect_trace",
    "draw_plans",
    "functions_only",
    "golden_run",
    "hardened_only",
    "inject_once",
    "resolve_workers",
    "run_campaign",
]
