"""Dynamic instruction tracing and fault-region demarcation.

The paper's campaign begins by collecting an instruction trace with
Intel SDE's debugtrace tool "to automatically find and demarcate the
boundaries of the hardened part of the program" so faults are only
injected there (§IV-B — they do not inject into unhardened external
libraries). This module is that step for the simulator: collect a
per-function dynamic profile of *fault-eligible* (value-producing)
instructions and build eligibility predicates for restricted
campaigns.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Sequence

from ..cpu.interpreter import FaultPlan, Machine, MachineConfig
from ..ir.function import Function
from ..ir.module import Module


@dataclass
class TraceSummary:
    """Dynamic profile of one fault-free run."""

    #: Eligible (value-producing, non-intrinsic) instructions per function.
    per_function: Dict[str, int] = field(default_factory=dict)
    #: Dynamic opcode histogram over eligible instructions.
    opcodes: Counter = field(default_factory=Counter)

    @property
    def total(self) -> int:
        return sum(self.per_function.values())

    def fraction(self, fn_name: str) -> float:
        if self.total == 0:
            return 0.0
        return self.per_function.get(fn_name, 0) / self.total

    def hottest(self, n: int = 5):
        return sorted(
            self.per_function.items(), key=lambda kv: -kv[1]
        )[:n]


def collect_trace(module: Module, entry: str, args: Sequence) -> TraceSummary:
    """Run once, fault-free, recording where eligible instructions
    execute (the paper's preparatory debugtrace run)."""
    summary = TraceSummary()

    def record(inst, fn):
        summary.per_function[fn.name] = summary.per_function.get(fn.name, 0) + 1
        summary.opcodes[inst.opcode] += 1

    machine = Machine(module, MachineConfig(collect_timing=False))
    machine.arm_fault(FaultPlan(target_index=-1, bit=0))
    machine.trace_eligible = record
    machine.run(entry, args)
    return summary


def hardened_only(module: Module) -> Callable[[Function], bool]:
    """Eligibility predicate: inject only into functions a hardening
    pass transformed (the paper's default region)."""
    return lambda fn: bool(fn.hardened) and not fn.is_intrinsic


def functions_only(names: FrozenSet[str]) -> Callable[[Function], bool]:
    """Eligibility predicate restricted to the named functions."""
    name_set = frozenset(names)
    return lambda fn: fn.name in name_set and not fn.is_intrinsic
