"""Dynamic instruction tracing and fault-region demarcation.

The paper's campaign begins by collecting an instruction trace with
Intel SDE's debugtrace tool "to automatically find and demarcate the
boundaries of the hardened part of the program" so faults are only
injected there (§IV-B — they do not inject into unhardened external
libraries). This module is that step for the simulator: collect a
per-function dynamic profile of *fault-eligible* (value-producing)
instructions and build eligibility predicates for restricted
campaigns.

The predicates are small classes rather than lambdas so they (a)
survive ``fork``/pickle into campaign worker processes and (b) carry a
``cache_key`` the golden-run cache can key on (see
:func:`repro.faults.campaign.golden_run`).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Sequence

from ..cpu.interpreter import Machine, MachineConfig
from ..ir.function import Function
from ..ir.module import Module


@dataclass
class TraceSummary:
    """Dynamic profile of one fault-free run."""

    #: Eligible (value-producing, non-intrinsic) instructions per function.
    per_function: Dict[str, int] = field(default_factory=dict)
    #: Dynamic opcode histogram over eligible instructions.
    opcodes: Counter = field(default_factory=Counter)

    @property
    def total(self) -> int:
        return sum(self.per_function.values())

    def fraction(self, fn_name: str) -> float:
        if self.total == 0:
            return 0.0
        return self.per_function.get(fn_name, 0) / self.total

    def hottest(self, n: int = 5):
        return sorted(
            self.per_function.items(), key=lambda kv: -kv[1]
        )[:n]


def collect_trace(module: Module, entry: str, args: Sequence) -> TraceSummary:
    """Run once, fault-free, recording where eligible instructions
    execute (the paper's preparatory debugtrace run)."""
    summary = TraceSummary()

    def record(inst, fn):
        summary.per_function[fn.name] = summary.per_function.get(fn.name, 0) + 1
        summary.opcodes[inst.opcode] += 1

    machine = Machine(module, MachineConfig(collect_timing=False))
    machine.count_only = True
    machine.trace_eligible = record
    machine.run(entry, args)
    return summary


class HardenedOnly:
    """Eligibility predicate: inject only into functions a hardening
    pass transformed (the paper's default region)."""

    cache_key = ("hardened_only",)

    def __call__(self, fn: Function) -> bool:
        return bool(fn.hardened) and not fn.is_intrinsic

    def __eq__(self, other) -> bool:
        return isinstance(other, HardenedOnly)

    def __hash__(self) -> int:
        return hash(self.cache_key)


class FunctionsOnly:
    """Eligibility predicate restricted to the named functions."""

    def __init__(self, names: FrozenSet[str]):
        self.names = frozenset(names)
        self.cache_key = ("functions_only", self.names)

    def __call__(self, fn: Function) -> bool:
        return fn.name in self.names and not fn.is_intrinsic

    def __eq__(self, other) -> bool:
        return isinstance(other, FunctionsOnly) and self.names == other.names

    def __hash__(self) -> int:
        return hash(self.cache_key)


def hardened_only(module: Module) -> HardenedOnly:
    """Eligibility predicate: inject only into functions a hardening
    pass transformed (the paper's default region)."""
    return HardenedOnly()


def functions_only(names: FrozenSet[str]) -> FunctionsOnly:
    """Eligibility predicate restricted to the named functions."""
    return FunctionsOnly(names)
