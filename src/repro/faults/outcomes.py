"""Fault-injection outcome taxonomy (paper Table I).

| FI outcome       | Description                              | System    |
|------------------|------------------------------------------|-----------|
| Hang             | Program became unresponsive              | Crashed   |
| OS-detected      | OS terminated program (SIGSEGV/SIGFPE)   | Crashed   |
| ELZAR-detected   | Hardening stopped the program (no majority / DMR fail-stop) | Crashed |
| ELZAR-corrected  | Hardening detected and corrected fault   | Correct   |
| Masked           | Fault did not affect output              | Correct   |
| SDC              | Silent data corruption in output         | Corrupted |

The paper folds detection-triggered stops into the crashed system
state; we keep them distinguishable for the ablation experiments.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict


class Outcome(Enum):
    HANG = "hang"
    OS_DETECTED = "os-detected"
    DETECTED = "hardening-detected"
    CORRECTED = "corrected"
    MASKED = "masked"
    SDC = "sdc"

    @property
    def system_state(self) -> str:
        if self in (Outcome.HANG, Outcome.OS_DETECTED, Outcome.DETECTED):
            return "crashed"
        if self in (Outcome.CORRECTED, Outcome.MASKED):
            return "correct"
        return "corrupted"


@dataclass
class CampaignResult:
    """Aggregated outcomes of one fault-injection campaign."""

    workload: str
    version: str  # "native" | "elzar" | ...
    counts: Counter = field(default_factory=Counter)
    #: Fault-model name the plans were drawn from (see
    #: :mod:`repro.faults.models`); empty for hand-built results.
    fault_model: str = ""

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def rate(self, outcome: Outcome) -> float:
        if self.total == 0:
            return 0.0
        return 100.0 * self.counts[outcome] / self.total

    def state_rate(self, state: str) -> float:
        """Percentage of runs ending in a given system state
        ('crashed' / 'correct' / 'corrupted')."""
        if self.total == 0:
            return 0.0
        n = sum(c for o, c in self.counts.items() if o.system_state == state)
        return 100.0 * n / self.total

    @property
    def sdc_rate(self) -> float:
        return self.rate(Outcome.SDC)

    @property
    def crash_rate(self) -> float:
        return self.state_rate("crashed")

    @property
    def correct_rate(self) -> float:
        return self.state_rate("correct")

    def as_dict(self) -> Dict[str, float]:
        return {o.value: self.rate(o) for o in Outcome}
