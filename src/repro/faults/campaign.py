"""Fault-injection campaign runner (paper §IV-B).

The paper's campaign per program: collect an instruction trace to
demarcate the hardened region, run a "golden" fault-free execution to
capture the reference output, then repeatedly re-execute the program
injecting exactly one single-event upset per run — a bit flip in the
output register of a randomly chosen dynamic instruction (one SIMD lane
for YMM results) — and classify each run's outcome per Table I.

Our trace step is the golden run itself: it counts the *eligible*
dynamic instructions (value-producing, inside hardenable functions —
intrinsics and runtime services are excluded, like the paper excludes
unhardened libraries).

Two performance layers (the paper amortized this cost across a
25-machine cluster, §IV-B):

- **Golden-run cache**: fault-free runs are memoized on the module,
  keyed by ``(module.version, entry, args, eligibility)``, so figure
  scripts and ablations stop repeating identical golden executions.
- **Parallel injections**: ``run_campaign(..., workers=N)`` shards the
  injection loop across forked worker processes. All fault plans are
  pre-drawn from one seeded RNG in the serial draw order, so the
  outcome counts are bit-identical for every worker count (and to the
  serial path); platforms without ``fork`` fall back to serial.
"""

from __future__ import annotations

import multiprocessing
import os
import random
import warnings
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from ..cpu.errors import (
    AbortError,
    ArithmeticFault,
    DetectedError,
    HangError,
    MemoryFault,
    Trap,
)
from ..cpu.interpreter import FaultPlan, Machine, MachineConfig
from ..ir.module import Module
from ..workloads.common import outputs_match
from .outcomes import CampaignResult, Outcome


@dataclass
class CampaignConfig:
    injections: int = 150
    seed: int = 1234
    #: Hang threshold as a multiple of the golden run's instructions.
    hang_factor: float = 4.0
    rtol: float = 1e-9
    #: Optional fault-region predicate (paper §IV-B demarcation): which
    #: functions injections may target. See :mod:`repro.faults.trace`.
    fault_eligible: Optional[Callable] = None
    #: Worker processes for the injection loop. 1 = serial; N > 1
    #: forks N workers (outcome counts are identical either way);
    #: 0 = use every CPU (``os.cpu_count()``).
    workers: int = 1


def resolve_workers(workers: int) -> int:
    """Resolve a worker-count setting: 0 means "all CPUs"."""
    if workers == 0:
        return os.cpu_count() or 1
    return workers


def _fresh_machine(module: Module, max_instructions: Optional[int] = None,
                   fault_eligible: Optional[Callable] = None) -> Machine:
    config = MachineConfig(collect_timing=False)
    if max_instructions is not None:
        config.max_instructions = max_instructions
    if fault_eligible is not None:
        config.fault_eligible = fault_eligible
    return Machine(module, config)


_warned_unkeyed_predicate = False


def _eligibility_key(fault_eligible: Optional[Callable]):
    """Cache-key component for an eligibility predicate.

    The ``cache_key`` protocol: a predicate that wants golden-run
    memoization (and durable shard reuse, see :mod:`repro.lab`) must
    expose a ``cache_key`` attribute — a hashable, order-stable value
    that uniquely identifies its decision function, e.g.
    ``("functions_only", frozenset_of_names)``. Two predicates with
    equal ``cache_key`` must classify every function identically; a
    predicate whose behaviour changes must change its key. The
    predicate classes in :mod:`repro.faults.trace` implement this.

    Returns ``()`` for "no predicate", the predicate's ``cache_key``
    when present, and ``None`` for an unkeyable predicate — caching is
    skipped then, and a one-time :class:`RuntimeWarning` says so
    (previously the cache was bypassed silently, which made every
    golden run quietly repeat).
    """
    global _warned_unkeyed_predicate
    if fault_eligible is None:
        return ()
    key = getattr(fault_eligible, "cache_key", None)
    if key is None and not _warned_unkeyed_predicate:
        _warned_unkeyed_predicate = True
        warnings.warn(
            f"fault-eligibility predicate {fault_eligible!r} has no "
            "cache_key attribute; golden-run caching and durable shard "
            "reuse are disabled for campaigns using it (see the cache_key "
            "protocol in repro.faults.campaign._eligibility_key)",
            RuntimeWarning,
            stacklevel=3,
        )
    return key


def _args_key(args: Sequence):
    try:
        key = tuple(args)
        hash(key)
        return key
    except TypeError:
        return repr(tuple(args))


def golden_run(module: Module, entry: str, args: Sequence,
               fault_eligible: Optional[Callable] = None):
    """Fault-free execution; returns (output, eligible_instructions,
    total_instructions).

    Runs the machine in ``count_only`` mode (eligible-instruction
    profiling without arming any fault). Results are cached on the
    module, invalidated by its version stamp.
    """
    ekey = _eligibility_key(fault_eligible)
    key = None
    if ekey is not None:
        key = (module.version, entry, _args_key(args), ekey)
        cached = module._golden_cache.get(key)
        if cached is not None:
            output, eligible, executed = cached
            return list(output), eligible, executed
    machine = _fresh_machine(module, fault_eligible=fault_eligible)
    machine.count_only = True
    result = machine.run(entry, args)
    if key is not None:
        module._golden_cache[key] = (
            tuple(result.output), machine.eligible_executed,
            result.counters.instructions,
        )
    return list(result.output), machine.eligible_executed, \
        result.counters.instructions


def draw_plans(eligible: int, config: CampaignConfig) -> List[FaultPlan]:
    """All fault plans for a campaign, in the serial draw order — the
    plan list (hence the outcome multiset) is a pure function of
    (eligible, seed, injections), independent of worker count. Plans
    are drawn sequentially, so the list for a larger ``injections`` cap
    extends (never reshuffles) the list for a smaller one — the prefix
    property :mod:`repro.lab` exploits to reuse stored shards when a
    campaign is scaled up."""
    rng = random.Random(config.seed)
    return [
        FaultPlan(
            target_index=rng.randrange(eligible),
            bit=rng.randrange(64),
            lane=rng.randrange(4),
        )
        for _ in range(config.injections)
    ]


#: Backwards-compatible alias (pre-lab internal name).
_draw_plans = draw_plans


# Fork-inherited campaign context: (module, entry, args, reference,
# budget, rtol, fault_eligible). Set in the parent right before the
# pool forks; never pickled, so modules and predicates need not be
# picklable.
_FORK_CONTEXT = None


def _run_shard(plans: List[FaultPlan]) -> List[Outcome]:
    module, entry, args, reference, budget, rtol, fault_eligible = _FORK_CONTEXT
    return [
        inject_once(module, entry, args, plan, reference, budget, rtol,
                    fault_eligible)
        for plan in plans
    ]


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


def run_campaign(
    module: Module,
    entry: str,
    args: Sequence,
    workload: str = "",
    version: str = "",
    config: Optional[CampaignConfig] = None,
    workers: Optional[int] = None,
) -> CampaignResult:
    """Inject ``config.injections`` single faults into fresh executions
    of ``entry`` and classify every outcome.

    ``workers`` (or ``config.workers``) > 1 shards the injections over
    forked processes; counts are bit-identical to the serial run.
    """
    global _FORK_CONTEXT
    config = config or CampaignConfig()
    if workers is None:
        workers = config.workers
    workers = resolve_workers(workers)
    reference, eligible, executed = golden_run(
        module, entry, args, config.fault_eligible
    )
    if eligible == 0:
        raise ValueError(f"no eligible instructions in @{entry}")
    budget = int(executed * config.hang_factor) + 10_000
    plans = draw_plans(eligible, config)
    result = CampaignResult(workload=workload, version=version)

    workers = max(1, min(workers, len(plans) or 1))
    if workers > 1 and _fork_available():
        shards = [plans[i::workers] for i in range(workers)]
        _FORK_CONTEXT = (module, entry, args, reference, budget,
                         config.rtol, config.fault_eligible)
        try:
            ctx = multiprocessing.get_context("fork")
            with ctx.Pool(processes=workers) as pool:
                for outcomes in pool.map(_run_shard, shards):
                    for outcome in outcomes:
                        result.counts[outcome] += 1
        finally:
            _FORK_CONTEXT = None
        return result

    for plan in plans:
        outcome = inject_once(module, entry, args, plan, reference,
                              budget, config.rtol, config.fault_eligible)
        result.counts[outcome] += 1
    return result


def inject_once(
    module: Module,
    entry: str,
    args: Sequence,
    plan: FaultPlan,
    reference: Sequence,
    budget: int,
    rtol: float = 1e-9,
    fault_eligible: Optional[Callable] = None,
) -> Outcome:
    """One fault-injection run, classified per Table I."""
    machine = _fresh_machine(module, max_instructions=budget,
                             fault_eligible=fault_eligible)
    machine.arm_fault(plan)
    try:
        result = machine.run(entry, args)
    except HangError:
        return Outcome.HANG
    except DetectedError:
        return Outcome.DETECTED
    except (MemoryFault, ArithmeticFault, AbortError):
        return Outcome.OS_DETECTED
    except Trap:
        return Outcome.OS_DETECTED

    if not outputs_match(result.output, list(reference), rtol):
        return Outcome.SDC
    if machine.counters.corrections > 0:
        return Outcome.CORRECTED
    return Outcome.MASKED
