"""Fault-injection campaign runner (paper §IV-B).

The paper's campaign per program: collect an instruction trace to
demarcate the hardened region, run a "golden" fault-free execution to
capture the reference output, then repeatedly re-execute the program
injecting exactly one single-event upset per run — a bit flip in the
output register of a randomly chosen dynamic instruction (one SIMD lane
for YMM results) — and classify each run's outcome per Table I.

Our trace step is the golden run itself: it counts the *eligible*
dynamic instructions (value-producing, inside hardenable functions —
intrinsics and runtime services are excluded, like the paper excludes
unhardened libraries).

Two performance layers (the paper amortized this cost across a
25-machine cluster, §IV-B):

- **Golden-run cache**: fault-free runs are memoized on the module,
  keyed by ``(module.version, entry, args, eligibility)``, so figure
  scripts and ablations stop repeating identical golden executions.
- **Parallel injections**: ``run_campaign(..., workers=N)`` shards the
  injection loop across forked worker processes. All fault plans are
  pre-drawn from one seeded RNG in the serial draw order, so the
  outcome counts are bit-identical for every worker count (and to the
  serial path); platforms without ``fork`` fall back to serial.
"""

from __future__ import annotations

import multiprocessing
import os
import random
import threading
import warnings
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from ..cpu.errors import DetectedError, HangError, Trap
from ..cpu.interpreter import FaultPlan, Machine, MachineConfig
from ..ir.module import Module
from ..workloads.common import outputs_match
from .models import DEFAULT_MODEL, StreamProfile, get_model
from .outcomes import CampaignResult, Outcome


@dataclass
class CampaignConfig:
    injections: int = 150
    seed: int = 1234
    #: Hang threshold as a multiple of the golden run's instructions.
    hang_factor: float = 4.0
    rtol: float = 1e-9
    #: Optional fault-region predicate (paper §IV-B demarcation): which
    #: functions injections may target. See :mod:`repro.faults.trace`.
    fault_eligible: Optional[Callable] = None
    #: Worker processes for the injection loop. 1 = serial; N > 1
    #: forks N workers (outcome counts are identical either way);
    #: 0 = use every CPU (``os.cpu_count()``).
    workers: int = 1
    #: Registered fault-model name (see :mod:`repro.faults.models`).
    #: The default reproduces the paper's single register bit flip.
    fault_model: str = DEFAULT_MODEL
    #: Execution engine for every run of the campaign ("decoded" or
    #: "reference"). Outcome counts are bit-identical either way (the
    #: differential tests enforce it); the knob exists so CI can prove
    #: that end to end. Excluded from durable store keys.
    engine: str = "compiled"
    #: Injections executed per batched lane group (see
    #: :mod:`repro.cpu.batch`): 1 runs the classic sequential loop;
    #: K > 1 shares each batch's golden prefix across K forked lanes.
    #: Per-plan outcomes are bit-identical to sequential injection, so
    #: — like ``engine`` and ``workers`` — ``batch`` is a pure
    #: execution knob, excluded from durable store keys. Batching is
    #: per *worker*: with forked or distributed workers each worker
    #: batches its own shards. Requires the decoded engine and
    #: ``os.fork``; anything else falls back to sequential injection.
    batch: int = 1
    #: Mid-run checkpointing (see :mod:`repro.snap`): resolve each
    #: plan's fault site to the nearest checkpoint at or before it and
    #: execute only the tail. Per-plan outcomes are bit-identical with
    #: and without it (the differential tests and CI pin that), so —
    #: like ``engine``, ``workers`` and ``batch`` — a pure execution
    #: knob, excluded from durable store keys. Decoded engine only;
    #: cells with unkeyable eligibility predicates or golden runs
    #: shorter than :data:`repro.snap.MIN_ELIGIBLE` skip it silently.
    snap: bool = True


def resolve_workers(workers: int) -> int:
    """Resolve a worker-count setting: 0 means "all CPUs"."""
    if workers == 0:
        return os.cpu_count() or 1
    return workers


def _fresh_machine(module: Module, max_instructions: Optional[int] = None,
                   fault_eligible: Optional[Callable] = None,
                   engine: str = "compiled") -> Machine:
    config = MachineConfig(collect_timing=False, engine=engine)
    if max_instructions is not None:
        config.max_instructions = max_instructions
    if fault_eligible is not None:
        config.fault_eligible = fault_eligible
    return Machine(module, config)


#: Predicate identities (``id()``) already warned about. Per-identity —
#: not one global boolean — so each distinct unkeyable predicate gets
#: its own (single) warning, and forked lab workers inherit the parent's
#: set instead of re-warning.
_warned_unkeyed_predicates: set = set()


def _eligibility_key(fault_eligible: Optional[Callable]):
    """Cache-key component for an eligibility predicate.

    The ``cache_key`` protocol: a predicate that wants golden-run
    memoization (and durable shard reuse, see :mod:`repro.lab`) must
    expose a ``cache_key`` attribute — a hashable, order-stable value
    that uniquely identifies its decision function, e.g.
    ``("functions_only", frozenset_of_names)``. Two predicates with
    equal ``cache_key`` must classify every function identically; a
    predicate whose behaviour changes must change its key. The
    predicate classes in :mod:`repro.faults.trace` implement this.

    Returns ``()`` for "no predicate", the predicate's ``cache_key``
    when present, and ``None`` for an unkeyable predicate — caching is
    skipped then, and a :class:`RuntimeWarning` says so, once per
    distinct predicate identity (previously the cache was bypassed
    silently, which made every golden run quietly repeat). Forked lab
    workers never emit the warning — only the parent process does, so a
    ``--workers N`` campaign warns once, not N+1 times.
    """
    if fault_eligible is None:
        return ()
    key = getattr(fault_eligible, "cache_key", None)
    if key is None:
        ident = id(fault_eligible)
        if (ident not in _warned_unkeyed_predicates
                and multiprocessing.parent_process() is None):
            _warned_unkeyed_predicates.add(ident)
            warnings.warn(
                f"fault-eligibility predicate {fault_eligible!r} has no "
                "cache_key attribute; golden-run caching and durable shard "
                "reuse are disabled for campaigns using it (see the "
                "cache_key protocol in "
                "repro.faults.campaign._eligibility_key)",
                RuntimeWarning,
                stacklevel=3,
            )
    return key


def _args_key(args: Sequence):
    try:
        key = tuple(args)
        hash(key)
        return key
    except TypeError:
        return repr(tuple(args))


def golden_profile(module: Module, entry: str, args: Sequence,
                   fault_eligible: Optional[Callable] = None,
                   engine: str = "compiled"):
    """Fault-free execution; returns ``(output, StreamProfile)``.

    Runs the machine in ``count_only`` mode, which profiles *every*
    targeting stream in one pass — eligible results, dynamic memory
    accesses, conditional branches, and checker sites — so one golden
    run prices every fault model. Results are cached on the module,
    invalidated by its version stamp. The cache key excludes ``engine``
    (both engines are bit-identical, golden outputs included).
    """
    ekey = _eligibility_key(fault_eligible)
    key = None
    if ekey is not None:
        key = (module.version, entry, _args_key(args), ekey)
        cached = module._golden_cache.get(key)
        if cached is not None:
            output, profile = cached
            return list(output), profile
    machine = _fresh_machine(module, fault_eligible=fault_eligible,
                             engine=engine)
    machine.count_only = True
    result = machine.run(entry, args)
    profile = StreamProfile(
        eligible=machine.eligible_executed,
        executed=result.counters.instructions,
        mem_accesses=machine.mem_accesses_eligible,
        cond_branches=machine.cond_branches_eligible,
        checker_sites=machine.checker_sites_executed,
    )
    if key is not None:
        module._golden_cache[key] = (tuple(result.output), profile)
    return list(result.output), profile


def golden_run(module: Module, entry: str, args: Sequence,
               fault_eligible: Optional[Callable] = None):
    """Fault-free execution; returns (output, eligible_instructions,
    total_instructions). Compatibility wrapper over
    :func:`golden_profile` (same cache)."""
    output, profile = golden_profile(module, entry, args, fault_eligible)
    return output, profile.eligible, profile.executed


def draw_plans(eligible: int, config: CampaignConfig) -> List[FaultPlan]:
    """All fault plans for the *default* (register bit flip) model, in
    the serial draw order — the plan list (hence the outcome multiset)
    is a pure function of (eligible, seed, injections), independent of
    worker count. Plans are drawn sequentially, so the list for a larger
    ``injections`` cap extends (never reshuffles) the list for a smaller
    one — the prefix property :mod:`repro.lab` exploits to reuse stored
    shards when a campaign is scaled up.

    Kept as the historical entry point (its draw order is baked into
    stored campaign keys); other fault models draw through
    :func:`draw_model_plans`."""
    rng = random.Random(config.seed)
    return [
        FaultPlan(
            target_index=rng.randrange(eligible),
            bit=rng.randrange(64),
            lane=rng.randrange(4),
        )
        for _ in range(config.injections)
    ]


def draw_model_plans(profile: StreamProfile,
                     config: CampaignConfig) -> List[FaultPlan]:
    """Plan list for ``config.fault_model``, with the same serial-order
    prefix property as :func:`draw_plans`. Raises ``ValueError`` when
    the model's target stream is empty (e.g. ``checker-fault`` against
    unhardened code)."""
    return get_model(config.fault_model).draw_plans(profile, config)


#: Backwards-compatible alias (pre-lab internal name).
_draw_plans = draw_plans


# Fork-inherited campaign context: (module, entry, args, reference,
# budget, rtol, fault_eligible, engine, batch, fault_model, snap). Set
# in the parent right before the pool forks; never pickled, so modules
# and predicates need not be picklable.
_FORK_CONTEXT = None


def _run_shard(plans: List[FaultPlan]) -> List[Outcome]:
    (module, entry, args, reference, budget, rtol, fault_eligible,
     engine, batch, fault_model, snap) = _FORK_CONTEXT
    return run_plans(module, entry, args, plans, reference, budget, rtol,
                     fault_eligible, engine=engine, batch=batch,
                     fault_model=fault_model, snap=snap)


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


def run_campaign(
    module: Module,
    entry: str,
    args: Sequence,
    workload: str = "",
    version: str = "",
    config: Optional[CampaignConfig] = None,
    workers: Optional[int] = None,
) -> CampaignResult:
    """Inject ``config.injections`` single faults into fresh executions
    of ``entry`` and classify every outcome.

    ``workers`` (or ``config.workers``) > 1 shards the injections over
    forked processes; counts are bit-identical to the serial run.
    """
    global _FORK_CONTEXT
    config = config or CampaignConfig()
    if workers is None:
        workers = config.workers
    workers = resolve_workers(workers)
    reference, profile = golden_profile(
        module, entry, args, config.fault_eligible, engine=config.engine
    )
    if profile.eligible == 0:
        raise ValueError(f"no eligible instructions in @{entry}")
    budget = int(profile.executed * config.hang_factor) + 10_000
    plans = draw_model_plans(profile, config)
    result = CampaignResult(workload=workload, version=version,
                            fault_model=config.fault_model)

    workers = max(1, min(workers, len(plans) or 1))
    if workers > 1 and _fork_available():
        # Warm the cell's checkpoint set in the parent so every forked
        # worker inherits it through the module cache (copy-on-write)
        # instead of each re-loading or re-capturing it.
        _cell_checkpoints(module, entry, args, budget, config.fault_eligible,
                          config.fault_model, config.engine, config.snap)
        shards = [plans[i::workers] for i in range(workers)]
        _FORK_CONTEXT = (module, entry, args, reference, budget,
                         config.rtol, config.fault_eligible, config.engine,
                         config.batch, config.fault_model, config.snap)
        try:
            ctx = multiprocessing.get_context("fork")
            with ctx.Pool(processes=workers) as pool:
                for outcomes in pool.map(_run_shard, shards):
                    for outcome in outcomes:
                        result.counts[outcome] += 1
        finally:
            _FORK_CONTEXT = None
        return result

    for outcome in run_plans(module, entry, args, plans, reference, budget,
                             config.rtol, config.fault_eligible,
                             engine=config.engine, batch=config.batch,
                             fault_model=config.fault_model,
                             snap=config.snap):
        result.counts[outcome] += 1
    return result


def trap_outcome(trap: Trap) -> Outcome:
    """Table-I outcome for a trapped run. Exhaustive over the
    :mod:`repro.cpu.errors` hierarchy: hangs are the paper's watchdog
    timeouts, hardening detections are their own class, and every other
    trap (memory fault, arithmetic fault, abort, or a bare ``Trap``) is
    an OS/runtime-detected crash."""
    if isinstance(trap, HangError):
        return Outcome.HANG
    if isinstance(trap, DetectedError):
        return Outcome.DETECTED
    return Outcome.OS_DETECTED


def inject_once(
    module: Module,
    entry: str,
    args: Sequence,
    plan: FaultPlan,
    reference: Sequence,
    budget: int,
    rtol: float = 1e-9,
    fault_eligible: Optional[Callable] = None,
    engine: str = "compiled",
) -> Outcome:
    """One fault-injection run, classified per Table I."""
    machine = _fresh_machine(module, max_instructions=budget,
                             fault_eligible=fault_eligible, engine=engine)
    machine.arm_fault(plan)
    try:
        result = machine.run(entry, args)
    except Trap as exc:
        return trap_outcome(exc)

    if not outputs_match(result.output, list(reference), rtol):
        return Outcome.SDC
    if machine.counters.corrections > 0:
        return Outcome.CORRECTED
    return Outcome.MASKED


class InjectionSession:
    """Per-cell injection scaffolding, hoisted out of the per-plan loop.

    :func:`inject_once` rebuilds the whole machine for every injection —
    a fresh multi-megabyte memory image, global layout, and (first time
    through) the decoded module. A session builds the machine once,
    warms the decode, snapshots the golden start state, and turns each
    injection into restore → arm → run → classify. Classification is
    the same code path as :func:`inject_once`, and the differential
    tests pin per-plan outcome identity between the two.

    The session machine/snapshot pair doubles as the execution substrate
    for the batched engine (:mod:`repro.cpu.batch`).
    """

    def __init__(self, module: Module, entry: str, args: Sequence,
                 reference: Sequence, budget: int, rtol: float = 1e-9,
                 fault_eligible: Optional[Callable] = None,
                 engine: str = "compiled"):
        self.module = module
        self.entry = entry
        self.args = list(args)
        self.reference = list(reference)
        self.budget = budget
        self.rtol = rtol
        self.engine = engine
        self.machine = _fresh_machine(module, max_instructions=budget,
                                      fault_eligible=fault_eligible,
                                      engine=engine)
        if engine in ("decoded", "compiled"):
            # Decode (and for "compiled", compile segments) up front so
            # the first injection's timing is not an outlier (both are
            # cached on the module either way).
            from ..cpu.engine import decoded_module

            dmod = decoded_module(
                module, self.machine.config.cost_model,
                self.machine.globals_addr,
            )
            dmod.function(module.get_function(entry))
            if engine == "compiled":
                from ..cpu.compiled import ensure_compiled

                ensure_compiled(
                    dmod, 0 if self.machine.timing is not None else 1
                )
        self.snapshot = self.machine.snapshot()
        self._trace = None  # lockstep trace, built on first batched use
        self._checkpoints = None  # CheckpointSet, attached per run_plans

    def attach_checkpoints(self, cset) -> None:
        """Resume injections from ``cset``'s mid-run checkpoints (a
        :class:`repro.snap.CheckpointSet`); None reverts to whole-run
        restore. Attached per :func:`run_plans` call because the set is
        per fault model while the session is shared across models."""
        self._checkpoints = cset

    def inject(self, plan: FaultPlan) -> Outcome:
        """One injection on the reused machine, classified per Table I.

        With checkpoints attached, restores the latest checkpoint at or
        before the plan's fault site and executes only the tail; plans
        whose site precedes every checkpoint run from scratch. Either
        way the outcome is bit-identical (tests/snap pins it)."""
        machine = self.machine
        state = (self._checkpoints.nearest(plan)
                 if self._checkpoints is not None else None)
        try:
            if state is not None:
                from ..cpu.resumable import resume_run

                result = resume_run(machine, state, (plan,))
            else:
                machine.restore(self.snapshot)
                machine.arm_fault(plan)
                result = machine.run(self.entry, self.args)
        except Trap as exc:
            return trap_outcome(exc)
        if not outputs_match(result.output, list(self.reference), self.rtol):
            return Outcome.SDC
        if machine.counters.corrections > 0:
            return Outcome.CORRECTED
        return Outcome.MASKED


#: The one live injection session, as ``(module, key, session)``. A
#: single slot across ALL modules, not one per module: every session
#: pins a Machine whose heap/stack arenas are tens of MB, and a
#: multi-cell campaign (or benchmark sweep) that kept one per module
#: would accumulate an arena per cell ever run. Beyond parent RSS,
#: that bloat taxes every ``os.fork()`` the batched engine makes —
#: page-table size and copy-on-write faults scale with the parent's
#: resident footprint, which measurably halves late cells' speedup.
#: Campaigns iterate cells one at a time, so one slot hits for every
#: shard of the current cell and retires the previous cell's arena.
#:
#: The slot is *per thread*: a Machine is deeply stateful during a run
#: (frame stack, fault arming, memory image), so two campaign threads
#: sharing one session corrupt each other — the service runs campaigns
#: on a thread pool, and each runner thread must pin its own arena.
#: Single-threaded drivers (the CLI) see the exact historical
#: one-slot-per-process behaviour.
_SESSION_TLS = threading.local()


def _get_session(module: Module, entry: str, args: Sequence,
                 reference: Sequence, budget: int, rtol: float,
                 fault_eligible: Optional[Callable],
                 engine: str) -> InjectionSession:
    """Fetch (or build) this thread's cached injection session for the
    cell."""
    ekey = _eligibility_key(fault_eligible)
    key = None
    if ekey is not None:
        key = (module.version, entry, _args_key(args), budget, rtol, ekey,
               engine)
        slot = getattr(_SESSION_TLS, "slot", None)
        if slot is not None and slot[0] is module and slot[1] == key:
            return slot[2]
    session = InjectionSession(module, entry, args, reference, budget, rtol,
                               fault_eligible, engine)
    if key is not None:
        _SESSION_TLS.slot = (module, key, session)
    return session


def _lockstep_trace(module: Module, session: InjectionSession,
                    fault_eligible: Optional[Callable],
                    profile: StreamProfile):
    """Golden checkpoint trace for batched execution, collected once per
    cell and cached both on the session and (when keyable) in the
    module's golden cache — forked lab workers inherit the parent's
    entry instead of re-tracing per shard."""
    if session._trace is not None:
        return session._trace
    from ..cpu.batch import collect_lockstep_trace, default_interval

    interval = default_interval(profile.eligible)
    ekey = _eligibility_key(fault_eligible)
    key = None
    if ekey is not None:
        key = ("lockstep-trace", module.version, session.entry,
               _args_key(session.args), session.budget, ekey, interval)
        cached = module._golden_cache.get(key)
        if cached is not None:
            session._trace = cached
            return cached
    trace = collect_lockstep_trace(session.machine, session.snapshot,
                                   session.entry, session.args, profile,
                                   interval)
    if key is not None:
        module._golden_cache[key] = trace
    session._trace = trace
    return trace


def _cell_checkpoints(module: Module, entry: str, args: Sequence,
                      budget: int, fault_eligible: Optional[Callable],
                      fault_model: str, engine: str, snap: bool):
    """The cell's :class:`repro.snap.CheckpointSet`, or None when
    checkpointing is off (disabled, reference engine, unkeyable
    predicate, or a golden run too short to profit). Cached through
    the module's golden cache, so shards and forked workers share one
    set per (cell, model)."""
    if not snap or engine not in ("decoded", "compiled"):
        return None
    from ..snap.build import build_checkpoints

    _, profile = golden_profile(module, entry, args, fault_eligible,
                                engine=engine)
    return build_checkpoints(module, entry, args, budget=budget,
                             fault_eligible=fault_eligible,
                             model=fault_model, eligible=profile.eligible)


def run_plans(
    module: Module,
    entry: str,
    args: Sequence,
    plans: Sequence[FaultPlan],
    reference: Sequence,
    budget: int,
    rtol: float = 1e-9,
    fault_eligible: Optional[Callable] = None,
    engine: str = "compiled",
    batch: int = 1,
    fault_model: str = DEFAULT_MODEL,
    tick: Optional[Callable] = None,
    snap: bool = True,
    events=None,
    stats: Optional[dict] = None,
) -> List[Outcome]:
    """Classify a list of fault plans; the shard-level entry point every
    fabric (inline, forked, durable, distributed) runs.

    Returns outcomes in plan order. With ``batch > 1`` on the decoded
    or compiled engine (and ``os.fork`` available), plans are
    re-ordered by the
    model's ``sort_for_batching`` hook, grouped into batches of
    ``batch``, and dispatched to :func:`repro.cpu.batch.run_batch`;
    results are scattered back to plan order, so the outcome *list* —
    not just its counts — is bit-identical to sequential injection.
    Everything else (reference engine, no fork, ``batch=1``) runs the
    sequential loop on a reused :class:`InjectionSession`. ``tick``,
    when given, is called after every injection or batch (cluster
    workers heartbeat there).

    ``snap`` resumes each injection (or batch group) from the nearest
    mid-run checkpoint at or before its fault site (:mod:`repro.snap`)
    — a pure execution-speed knob, bit-identical outcomes either way.
    ``events`` (an :class:`repro.lab.events.EventBus`) receives a
    ``batch-lane-degraded`` event for every batched lane that died
    unreported and had to be reclassified sequentially; ``stats``, when
    given, accumulates ``lanes_degraded`` / ``forked`` / ``converged``
    counters for campaign manifests. Both only see lanes run by *this*
    process: a forked lab worker's degradations stay in the worker
    (the shard pipe carries outcome counts only)."""
    session = _get_session(module, entry, args, reference, budget, rtol,
                           fault_eligible, engine)
    plans = list(plans)
    cset = None
    if plans:
        cset = _cell_checkpoints(module, entry, args, budget,
                                 fault_eligible, fault_model, engine, snap)
    session.attach_checkpoints(cset)
    batched = (batch > 1 and len(plans) > 1
               and engine in ("decoded", "compiled")
               and hasattr(os, "fork"))
    if not batched:
        outcomes = []
        for plan in plans:
            outcomes.append(session.inject(plan))
            if tick is not None:
                tick()
        return outcomes

    from ..cpu.batch import run_batch

    _, profile = golden_profile(module, entry, args, fault_eligible,
                                engine=engine)
    trace = _lockstep_trace(module, session, fault_eligible, profile)
    order = get_model(fault_model).sort_for_batching(plans)
    outcomes: List[Optional[Outcome]] = [None] * len(plans)
    # Convergence is a pure scheduling win (it truncates lane tails,
    # never changes an outcome), so probe it: if a full batch forks a
    # whole lane-worth of plans and not one reconverges — typical of
    # float workloads whose faulted state drifts within rtol forever —
    # stop installing the comparator for the rest of the cell.
    bstats = {"forked": 0, "converged": 0}
    degraded = 0
    for start in range(0, len(order), batch):
        group = [(i, plans[i]) for i in order[start:start + batch]]
        if len(group) == 1:
            index, plan = group[0]
            outcomes[index] = session.inject(plan)
        else:
            converge = bstats["converged"] > 0 or bstats["forked"] < batch
            resume = (cset.nearest_for_all([p for _, p in group])
                      if cset is not None else None)
            got = run_batch(session.machine, session.snapshot, entry,
                            session.args, group, session.reference,
                            budget, rtol, trace, converge=converge,
                            stats=bstats, resume_from=resume)
            for index, plan in group:
                outcome = got.get(index)
                if outcome is None:
                    # Lane died unreported: classify sequentially — and
                    # say so, because each such lane costs a full extra
                    # run (previously this fallback was silent).
                    degraded += 1
                    if events is not None:
                        events.emit(
                            "batch-lane-degraded", index=index,
                            plan_kind=getattr(plan, "kind", "reg"),
                            target=getattr(plan, "target_index", None),
                        )
                    outcome = session.inject(plan)
                outcomes[index] = outcome
        if tick is not None:
            tick()
    if stats is not None:
        stats["lanes_degraded"] = stats.get("lanes_degraded", 0) + degraded
        stats["forked"] = stats.get("forked", 0) + bstats["forked"]
        stats["converged"] = (stats.get("converged", 0)
                              + bstats["converged"])
    return outcomes
