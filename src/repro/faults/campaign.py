"""Fault-injection campaign runner (paper §IV-B).

The paper's campaign per program: collect an instruction trace to
demarcate the hardened region, run a "golden" fault-free execution to
capture the reference output, then repeatedly re-execute the program
injecting exactly one single-event upset per run — a bit flip in the
output register of a randomly chosen dynamic instruction (one SIMD lane
for YMM results) — and classify each run's outcome per Table I.

Our trace step is the golden run itself: it counts the *eligible*
dynamic instructions (value-producing, inside hardenable functions —
intrinsics and runtime services are excluded, like the paper excludes
unhardened libraries).

Two performance layers (the paper amortized this cost across a
25-machine cluster, §IV-B):

- **Golden-run cache**: fault-free runs are memoized on the module,
  keyed by ``(module.version, entry, args, eligibility)``, so figure
  scripts and ablations stop repeating identical golden executions.
- **Parallel injections**: ``run_campaign(..., workers=N)`` shards the
  injection loop across forked worker processes. All fault plans are
  pre-drawn from one seeded RNG in the serial draw order, so the
  outcome counts are bit-identical for every worker count (and to the
  serial path); platforms without ``fork`` fall back to serial.
"""

from __future__ import annotations

import multiprocessing
import os
import random
import warnings
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from ..cpu.errors import DetectedError, HangError, Trap
from ..cpu.interpreter import FaultPlan, Machine, MachineConfig
from ..ir.module import Module
from ..workloads.common import outputs_match
from .models import DEFAULT_MODEL, StreamProfile, get_model
from .outcomes import CampaignResult, Outcome


@dataclass
class CampaignConfig:
    injections: int = 150
    seed: int = 1234
    #: Hang threshold as a multiple of the golden run's instructions.
    hang_factor: float = 4.0
    rtol: float = 1e-9
    #: Optional fault-region predicate (paper §IV-B demarcation): which
    #: functions injections may target. See :mod:`repro.faults.trace`.
    fault_eligible: Optional[Callable] = None
    #: Worker processes for the injection loop. 1 = serial; N > 1
    #: forks N workers (outcome counts are identical either way);
    #: 0 = use every CPU (``os.cpu_count()``).
    workers: int = 1
    #: Registered fault-model name (see :mod:`repro.faults.models`).
    #: The default reproduces the paper's single register bit flip.
    fault_model: str = DEFAULT_MODEL
    #: Execution engine for every run of the campaign ("decoded" or
    #: "reference"). Outcome counts are bit-identical either way (the
    #: differential tests enforce it); the knob exists so CI can prove
    #: that end to end. Excluded from durable store keys.
    engine: str = "decoded"


def resolve_workers(workers: int) -> int:
    """Resolve a worker-count setting: 0 means "all CPUs"."""
    if workers == 0:
        return os.cpu_count() or 1
    return workers


def _fresh_machine(module: Module, max_instructions: Optional[int] = None,
                   fault_eligible: Optional[Callable] = None,
                   engine: str = "decoded") -> Machine:
    config = MachineConfig(collect_timing=False, engine=engine)
    if max_instructions is not None:
        config.max_instructions = max_instructions
    if fault_eligible is not None:
        config.fault_eligible = fault_eligible
    return Machine(module, config)


#: Predicate identities (``id()``) already warned about. Per-identity —
#: not one global boolean — so each distinct unkeyable predicate gets
#: its own (single) warning, and forked lab workers inherit the parent's
#: set instead of re-warning.
_warned_unkeyed_predicates: set = set()


def _eligibility_key(fault_eligible: Optional[Callable]):
    """Cache-key component for an eligibility predicate.

    The ``cache_key`` protocol: a predicate that wants golden-run
    memoization (and durable shard reuse, see :mod:`repro.lab`) must
    expose a ``cache_key`` attribute — a hashable, order-stable value
    that uniquely identifies its decision function, e.g.
    ``("functions_only", frozenset_of_names)``. Two predicates with
    equal ``cache_key`` must classify every function identically; a
    predicate whose behaviour changes must change its key. The
    predicate classes in :mod:`repro.faults.trace` implement this.

    Returns ``()`` for "no predicate", the predicate's ``cache_key``
    when present, and ``None`` for an unkeyable predicate — caching is
    skipped then, and a :class:`RuntimeWarning` says so, once per
    distinct predicate identity (previously the cache was bypassed
    silently, which made every golden run quietly repeat). Forked lab
    workers never emit the warning — only the parent process does, so a
    ``--workers N`` campaign warns once, not N+1 times.
    """
    if fault_eligible is None:
        return ()
    key = getattr(fault_eligible, "cache_key", None)
    if key is None:
        ident = id(fault_eligible)
        if (ident not in _warned_unkeyed_predicates
                and multiprocessing.parent_process() is None):
            _warned_unkeyed_predicates.add(ident)
            warnings.warn(
                f"fault-eligibility predicate {fault_eligible!r} has no "
                "cache_key attribute; golden-run caching and durable shard "
                "reuse are disabled for campaigns using it (see the "
                "cache_key protocol in "
                "repro.faults.campaign._eligibility_key)",
                RuntimeWarning,
                stacklevel=3,
            )
    return key


def _args_key(args: Sequence):
    try:
        key = tuple(args)
        hash(key)
        return key
    except TypeError:
        return repr(tuple(args))


def golden_profile(module: Module, entry: str, args: Sequence,
                   fault_eligible: Optional[Callable] = None,
                   engine: str = "decoded"):
    """Fault-free execution; returns ``(output, StreamProfile)``.

    Runs the machine in ``count_only`` mode, which profiles *every*
    targeting stream in one pass — eligible results, dynamic memory
    accesses, conditional branches, and checker sites — so one golden
    run prices every fault model. Results are cached on the module,
    invalidated by its version stamp. The cache key excludes ``engine``
    (both engines are bit-identical, golden outputs included).
    """
    ekey = _eligibility_key(fault_eligible)
    key = None
    if ekey is not None:
        key = (module.version, entry, _args_key(args), ekey)
        cached = module._golden_cache.get(key)
        if cached is not None:
            output, profile = cached
            return list(output), profile
    machine = _fresh_machine(module, fault_eligible=fault_eligible,
                             engine=engine)
    machine.count_only = True
    result = machine.run(entry, args)
    profile = StreamProfile(
        eligible=machine.eligible_executed,
        executed=result.counters.instructions,
        mem_accesses=machine.mem_accesses_eligible,
        cond_branches=machine.cond_branches_eligible,
        checker_sites=machine.checker_sites_executed,
    )
    if key is not None:
        module._golden_cache[key] = (tuple(result.output), profile)
    return list(result.output), profile


def golden_run(module: Module, entry: str, args: Sequence,
               fault_eligible: Optional[Callable] = None):
    """Fault-free execution; returns (output, eligible_instructions,
    total_instructions). Compatibility wrapper over
    :func:`golden_profile` (same cache)."""
    output, profile = golden_profile(module, entry, args, fault_eligible)
    return output, profile.eligible, profile.executed


def draw_plans(eligible: int, config: CampaignConfig) -> List[FaultPlan]:
    """All fault plans for the *default* (register bit flip) model, in
    the serial draw order — the plan list (hence the outcome multiset)
    is a pure function of (eligible, seed, injections), independent of
    worker count. Plans are drawn sequentially, so the list for a larger
    ``injections`` cap extends (never reshuffles) the list for a smaller
    one — the prefix property :mod:`repro.lab` exploits to reuse stored
    shards when a campaign is scaled up.

    Kept as the historical entry point (its draw order is baked into
    stored campaign keys); other fault models draw through
    :func:`draw_model_plans`."""
    rng = random.Random(config.seed)
    return [
        FaultPlan(
            target_index=rng.randrange(eligible),
            bit=rng.randrange(64),
            lane=rng.randrange(4),
        )
        for _ in range(config.injections)
    ]


def draw_model_plans(profile: StreamProfile,
                     config: CampaignConfig) -> List[FaultPlan]:
    """Plan list for ``config.fault_model``, with the same serial-order
    prefix property as :func:`draw_plans`. Raises ``ValueError`` when
    the model's target stream is empty (e.g. ``checker-fault`` against
    unhardened code)."""
    return get_model(config.fault_model).draw_plans(profile, config)


#: Backwards-compatible alias (pre-lab internal name).
_draw_plans = draw_plans


# Fork-inherited campaign context: (module, entry, args, reference,
# budget, rtol, fault_eligible, engine). Set in the parent right before
# the pool forks; never pickled, so modules and predicates need not be
# picklable.
_FORK_CONTEXT = None


def _run_shard(plans: List[FaultPlan]) -> List[Outcome]:
    (module, entry, args, reference, budget, rtol, fault_eligible,
     engine) = _FORK_CONTEXT
    return [
        inject_once(module, entry, args, plan, reference, budget, rtol,
                    fault_eligible, engine=engine)
        for plan in plans
    ]


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


def run_campaign(
    module: Module,
    entry: str,
    args: Sequence,
    workload: str = "",
    version: str = "",
    config: Optional[CampaignConfig] = None,
    workers: Optional[int] = None,
) -> CampaignResult:
    """Inject ``config.injections`` single faults into fresh executions
    of ``entry`` and classify every outcome.

    ``workers`` (or ``config.workers``) > 1 shards the injections over
    forked processes; counts are bit-identical to the serial run.
    """
    global _FORK_CONTEXT
    config = config or CampaignConfig()
    if workers is None:
        workers = config.workers
    workers = resolve_workers(workers)
    reference, profile = golden_profile(
        module, entry, args, config.fault_eligible, engine=config.engine
    )
    if profile.eligible == 0:
        raise ValueError(f"no eligible instructions in @{entry}")
    budget = int(profile.executed * config.hang_factor) + 10_000
    plans = draw_model_plans(profile, config)
    result = CampaignResult(workload=workload, version=version,
                            fault_model=config.fault_model)

    workers = max(1, min(workers, len(plans) or 1))
    if workers > 1 and _fork_available():
        shards = [plans[i::workers] for i in range(workers)]
        _FORK_CONTEXT = (module, entry, args, reference, budget,
                         config.rtol, config.fault_eligible, config.engine)
        try:
            ctx = multiprocessing.get_context("fork")
            with ctx.Pool(processes=workers) as pool:
                for outcomes in pool.map(_run_shard, shards):
                    for outcome in outcomes:
                        result.counts[outcome] += 1
        finally:
            _FORK_CONTEXT = None
        return result

    for plan in plans:
        outcome = inject_once(module, entry, args, plan, reference,
                              budget, config.rtol, config.fault_eligible,
                              engine=config.engine)
        result.counts[outcome] += 1
    return result


def trap_outcome(trap: Trap) -> Outcome:
    """Table-I outcome for a trapped run. Exhaustive over the
    :mod:`repro.cpu.errors` hierarchy: hangs are the paper's watchdog
    timeouts, hardening detections are their own class, and every other
    trap (memory fault, arithmetic fault, abort, or a bare ``Trap``) is
    an OS/runtime-detected crash."""
    if isinstance(trap, HangError):
        return Outcome.HANG
    if isinstance(trap, DetectedError):
        return Outcome.DETECTED
    return Outcome.OS_DETECTED


def inject_once(
    module: Module,
    entry: str,
    args: Sequence,
    plan: FaultPlan,
    reference: Sequence,
    budget: int,
    rtol: float = 1e-9,
    fault_eligible: Optional[Callable] = None,
    engine: str = "decoded",
) -> Outcome:
    """One fault-injection run, classified per Table I."""
    machine = _fresh_machine(module, max_instructions=budget,
                             fault_eligible=fault_eligible, engine=engine)
    machine.arm_fault(plan)
    try:
        result = machine.run(entry, args)
    except Trap as exc:
        return trap_outcome(exc)

    if not outputs_match(result.output, list(reference), rtol):
        return Outcome.SDC
    if machine.counters.corrections > 0:
        return Outcome.CORRECTED
    return Outcome.MASKED
