"""Fault-injection campaign runner (paper §IV-B).

The paper's campaign per program: collect an instruction trace to
demarcate the hardened region, run a "golden" fault-free execution to
capture the reference output, then repeatedly re-execute the program
injecting exactly one single-event upset per run — a bit flip in the
output register of a randomly chosen dynamic instruction (one SIMD lane
for YMM results) — and classify each run's outcome per Table I.

Our trace step is the golden run itself: it counts the *eligible*
dynamic instructions (value-producing, inside hardenable functions —
intrinsics and runtime services are excluded, like the paper excludes
unhardened libraries).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from ..cpu.errors import (
    AbortError,
    ArithmeticFault,
    DetectedError,
    HangError,
    MemoryFault,
    Trap,
)
from ..cpu.interpreter import FaultPlan, Machine, MachineConfig
from ..ir.module import Module
from ..workloads.common import outputs_match
from .outcomes import CampaignResult, Outcome


@dataclass
class CampaignConfig:
    injections: int = 150
    seed: int = 1234
    #: Hang threshold as a multiple of the golden run's instructions.
    hang_factor: float = 4.0
    rtol: float = 1e-9
    #: Optional fault-region predicate (paper §IV-B demarcation): which
    #: functions injections may target. See :mod:`repro.faults.trace`.
    fault_eligible: Optional[Callable] = None


def _fresh_machine(module: Module, max_instructions: Optional[int] = None,
                   fault_eligible: Optional[Callable] = None) -> Machine:
    config = MachineConfig(collect_timing=False)
    if max_instructions is not None:
        config.max_instructions = max_instructions
    if fault_eligible is not None:
        config.fault_eligible = fault_eligible
    return Machine(module, config)


def golden_run(module: Module, entry: str, args: Sequence,
               fault_eligible: Optional[Callable] = None):
    """Fault-free execution; returns (output, eligible_instructions,
    total_instructions)."""
    machine = _fresh_machine(module, fault_eligible=fault_eligible)
    machine.arm_fault(FaultPlan(target_index=-1, bit=0))  # count eligibles only
    result = machine.run(entry, args)
    return result.output, machine.eligible_executed, result.counters.instructions


def run_campaign(
    module: Module,
    entry: str,
    args: Sequence,
    workload: str = "",
    version: str = "",
    config: Optional[CampaignConfig] = None,
) -> CampaignResult:
    """Inject ``config.injections`` single faults into fresh executions
    of ``entry`` and classify every outcome."""
    config = config or CampaignConfig()
    reference, eligible, executed = golden_run(
        module, entry, args, config.fault_eligible
    )
    if eligible == 0:
        raise ValueError(f"no eligible instructions in @{entry}")
    budget = int(executed * config.hang_factor) + 10_000
    rng = random.Random(config.seed)
    result = CampaignResult(workload=workload, version=version)

    for _ in range(config.injections):
        plan = FaultPlan(
            target_index=rng.randrange(eligible),
            bit=rng.randrange(64),
            lane=rng.randrange(4),
        )
        outcome = inject_once(module, entry, args, plan, reference,
                              budget, config.rtol, config.fault_eligible)
        result.counts[outcome] += 1
    return result


def inject_once(
    module: Module,
    entry: str,
    args: Sequence,
    plan: FaultPlan,
    reference: Sequence,
    budget: int,
    rtol: float = 1e-9,
    fault_eligible: Optional[Callable] = None,
) -> Outcome:
    """One fault-injection run, classified per Table I."""
    machine = _fresh_machine(module, max_instructions=budget,
                             fault_eligible=fault_eligible)
    machine.arm_fault(plan)
    try:
        result = machine.run(entry, args)
    except HangError:
        return Outcome.HANG
    except DetectedError:
        return Outcome.DETECTED
    except (MemoryFault, ArithmeticFault, AbortError):
        return Outcome.OS_DETECTED
    except Trap:
        return Outcome.OS_DETECTED

    if not outputs_match(result.output, list(reference), rtol):
        return Outcome.SDC
    if machine.counters.corrections > 0:
        return Outcome.CORRECTED
    return Outcome.MASKED
