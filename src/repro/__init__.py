"""repro — a reproduction of "ELZAR: Triple Modular Redundancy Using
Intel AVX" (Kuvaiskii et al., DSN 2016).

Public surface:

- :mod:`repro.ir` — the typed SSA IR and builder;
- :mod:`repro.passes` — optimizations, the auto-vectorizer, and the
  ELZAR / SWIFT-R / SWIFT hardening transformations;
- :mod:`repro.cpu` — the simulated machine (interpreter, caches,
  branch predictor, Haswell-like timing, thread-scalability model);
- :mod:`repro.avx` — AVX lane semantics and cost tables;
- :mod:`repro.faults` — single-event-upset injection campaigns;
- :mod:`repro.workloads` — Phoenix/PARSEC-like kernels + IR libc/libm;
- :mod:`repro.apps` — the Memcached/SQLite3/Apache case studies;
- :mod:`repro.harness` — one entry point per paper table/figure;
- :mod:`repro.toolchain` — the unified variant registry and the
  content-addressed build/artifact cache every subsystem builds
  through (see ``python -m repro variants``).

Quick start::

    from repro import harden, Machine
    from repro.workloads import get

    built = get("histogram").build_at("test")
    hardened = harden(built.module)          # ELZAR TMR
    result = Machine(hardened).run(built.entry, built.args)
"""

from .avx import HASWELL, PROPOSED_AVX
from .cpu import FaultPlan, Machine, MachineConfig, RunResult
from .faults import CampaignConfig, Outcome, run_campaign
from .ir import IRBuilder, Module, format_module, parse_module, verify_module
from .passes import (
    ElzarOptions,
    SwiftOptions,
    elzar_transform,
    inline_module,
    mem2reg,
    swift_transform,
    swiftr_transform,
)
from .passes.vectorize import vectorize

__version__ = "1.0.0"


def harden(module, scheme: str = "elzar", **options):
    """Harden every defined function of ``module``.

    ``scheme`` is one of ``"elzar"`` (AVX-style TMR, the paper's
    contribution), ``"swiftr"`` (instruction-triplication TMR baseline),
    or ``"swift"`` (DMR detection only). Keyword options are forwarded
    to the scheme's options dataclass (e.g. ``check_loads=False``,
    ``float_only=True``, ``exclude=frozenset({...})``).

    Returns a new module; the input is left untouched. Run ``mem2reg``
    (and ideally ``inline_module``) first so data lives in registers,
    where replication can protect it.
    """
    if scheme == "elzar":
        return elzar_transform(module, ElzarOptions(**options))
    if scheme == "swiftr":
        return swiftr_transform(module, SwiftOptions(copies=3, **options))
    if scheme == "swift":
        return swift_transform(module, SwiftOptions(copies=2, **options))
    raise ValueError(
        f"unknown scheme {scheme!r}; expected elzar, swiftr, or swift"
    )


__all__ = [
    "CampaignConfig",
    "ElzarOptions",
    "FaultPlan",
    "HASWELL",
    "IRBuilder",
    "Machine",
    "MachineConfig",
    "Module",
    "Outcome",
    "PROPOSED_AVX",
    "RunResult",
    "SwiftOptions",
    "elzar_transform",
    "format_module",
    "harden",
    "inline_module",
    "mem2reg",
    "parse_module",
    "run_campaign",
    "swift_transform",
    "swiftr_transform",
    "vectorize",
    "verify_module",
]
