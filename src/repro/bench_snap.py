"""Checkpointed fault-injection benchmark: ``repro.snap`` vs scratch.

Late-site injections are the checkpoint subsystem's target case. A
fault plan whose site lands in the last quartile of the eligible
stream makes a from-scratch run replay >= 75% of the golden prefix
before the fault even arms; a checkpointed run restores the nearest
mid-run state at or before the site and executes only the tail —
O(tail) instead of O(run). This benchmark draws all plans from the
last quartile, times the sequential from-scratch session loop
(``run_plans(..., snap=False)``) against the checkpointed path, and
reports two checkpointed timings per cell:

* ``first`` — includes acquiring the checkpoint set (a capture run on
  the resumable trampoline, or a content-addressed store load when a
  previous process built it);
* ``warm`` — the steady state every later shard of a campaign sees,
  with the set already in the module cache. The headline ``speedup``
  is scalar/warm.

Correctness is asserted, not assumed: the outcome *list* of every
checkpointed run must be bit-identical to the from-scratch baseline,
or the benchmark fails instead of reporting a speedup for a different
campaign.

``benchmarks/bench_checkpoint_injection.py`` drives this module and
persists the numbers to ``BENCH_snap.json``.
"""

from __future__ import annotations

import json
import random
import time
from typing import Dict, List, Optional, Sequence

from .cpu.interpreter import FaultPlan
from .faults.campaign import golden_profile, run_plans
from .faults.models import DEFAULT_MODEL
from .toolchain import default_toolchain
from .workloads.registry import FI_BENCHMARKS

#: Fault sites are drawn uniformly from the last (1 - this) of the
#: eligible stream — the late-site regime checkpointing exists for.
LATE_FRACTION = 0.75

#: Injections per cell; matches the batched benchmark's default so the
#: two reports are comparable.
DEFAULT_INJECTIONS = 64


def _reset_campaign_state(module) -> None:
    """Forget cached sessions/goldens/checkpoint sets so a timed run
    pays the same one-time costs a fresh campaign cell pays."""
    from .faults import campaign as _campaign
    _campaign._SESSION_TLS.slot = None
    module._golden_cache.clear()


def draw_late_plans(profile, injections: int, seed: int) -> List[FaultPlan]:
    """Register bit flips whose dynamic sites all land in the last
    quartile of the eligible stream."""
    rng = random.Random(seed)
    lo = min(int(profile.eligible * LATE_FRACTION), profile.eligible - 1)
    return [
        FaultPlan(
            target_index=rng.randrange(lo, profile.eligible),
            bit=rng.randrange(64),
            lane=rng.randrange(4),
        )
        for _ in range(injections)
    ]


def bench_cell(name: str, version: str, scale: str = "fi",
               injections: int = DEFAULT_INJECTIONS,
               seed: int = 7) -> Dict:
    """One workload x version cell: from-scratch baseline, then the
    checkpointed path first-run and warm."""
    built = default_toolchain().build(name, scale, version)
    module, entry, args = built.module, built.entry, built.args
    reference, profile = golden_profile(module, entry, args)
    budget = int(profile.executed * 4.0) + 10_000
    plans = draw_late_plans(profile, injections, seed)

    _reset_campaign_state(module)
    start = time.perf_counter()
    baseline = run_plans(module, entry, args, plans, reference, budget,
                         snap=False)
    scalar_seconds = time.perf_counter() - start

    # First checkpointed run: pays for the set (capture run or store
    # load) plus the tails.
    _reset_campaign_state(module)
    start = time.perf_counter()
    first = run_plans(module, entry, args, plans, reference, budget,
                      snap=True)
    first_seconds = time.perf_counter() - start
    if first != baseline:
        raise AssertionError(
            f"{name}/{version}: checkpointed outcomes diverge from "
            f"scratch — checkpointing must be bit-identical")

    # Warm: the set is in the module cache — every later shard of the
    # campaign runs at this rate.
    start = time.perf_counter()
    warm = run_plans(module, entry, args, plans, reference, budget,
                     snap=True)
    warm_seconds = time.perf_counter() - start
    if warm != baseline:
        raise AssertionError(
            f"{name}/{version}: warm checkpointed outcomes diverge from "
            f"scratch")

    return {
        "workload": name,
        "version": version,
        "scale": scale,
        "injections": injections,
        "fault_model": DEFAULT_MODEL,
        "late_fraction": LATE_FRACTION,
        "eligible": profile.eligible,
        "scalar_seconds": scalar_seconds,
        "scalar_ips": injections / scalar_seconds,
        "first_seconds": first_seconds,
        "first_speedup": scalar_seconds / first_seconds,
        "warm_seconds": warm_seconds,
        "warm_ips": injections / warm_seconds,
        "speedup": scalar_seconds / warm_seconds,
    }


def bench_checkpoint_injection(scale: str = "fi",
                               injections: int = DEFAULT_INJECTIONS,
                               workloads: Optional[Sequence[str]] = None,
                               verbose: bool = True) -> List[Dict]:
    """The Figure-13 grid (both versions of every FI benchmark)."""
    names = list(workloads) if workloads else [w.name for w in FI_BENCHMARKS]
    rows = []
    for name in names:
        for version in ("native", "elzar"):
            row = bench_cell(name, version, scale, injections)
            rows.append(row)
            if verbose:
                print(f"{name:<18} {version:<7} "
                      f"scalar {row['scalar_ips']:6.1f} inj/s  "
                      f"first {row['first_speedup']:5.2f}x  "
                      f"warm {row['speedup']:5.2f}x")
    if verbose and rows:
        print(f"{'geomean warm speedup':<26} {geomean_speedup(rows):.2f}x "
              f"(late-{int((1 - LATE_FRACTION) * 100)}% sites)")
    return rows


def geomean_speedup(rows: List[Dict]) -> Optional[float]:
    if not rows:
        return None
    product = 1.0
    for row in rows:
        product *= row["speedup"]
    return product ** (1.0 / len(rows))


def write_report(rows: List[Dict], path: str = "BENCH_snap.json") -> None:
    report = {
        "benchmark": "checkpoint_injection",
        "unit": "injections per second",
        "late_fraction": LATE_FRACTION,
        "geomean_speedup": geomean_speedup(rows),
        "rows": rows,
    }
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
