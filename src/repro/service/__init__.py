"""repro.service — fault injection as a service.

A long-running, multi-tenant HTTP front end over the durable campaign
machinery: submissions are validated against the same registries the
CLI uses, admitted under per-tenant quotas, scheduled fair-share over
the local forked fabric or a cluster worker pool, and answered from
the content-addressed result store whenever the work already exists.

Start one with ``python -m repro serve``; talk to it with ``python -m
repro submit`` or :class:`~repro.service.client.ServiceClient`. The
wire API and tenancy model are documented in docs/SERVICE.md.
"""

from .admission import AdmissionController, QuotaExceeded, TenantQuotas
from .app import ReproService
from .client import ServiceClient, ServiceError
from .runner import CampaignRunner
from .spec import CampaignRequest, SpecError, parse_request

__all__ = [
    "AdmissionController",
    "CampaignRequest",
    "CampaignRunner",
    "QuotaExceeded",
    "ReproService",
    "ServiceClient",
    "ServiceError",
    "SpecError",
    "TenantQuotas",
    "parse_request",
]
