"""Admission control: per-tenant quotas at the service front door.

Tenancy is declared, not authenticated: the ``X-Repro-Tenant`` header
names the tenant (absent = ``"anonymous"``), and every submission is
checked against that tenant's quotas *before* a campaign record is
created. A violation is a structured 429-style rejection — code,
limit, current usage — never a silent queue.

Three quotas, all enforced on *admitted-and-unfinished* campaigns:

- ``max_concurrent``: campaigns a tenant may have queued or running;
- ``max_injections``: the injection budget of any single campaign;
- ``max_active_injections``: the summed budget of a tenant's
  unfinished campaigns (so many small campaigns cannot add up to one
  giant one).

The controller is plain synchronous state driven from the service's
event loop thread; releases are routed back to that thread by the
campaign lifecycle, so no locking is needed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


@dataclass(frozen=True)
class TenantQuotas:
    max_concurrent: int = 4
    max_injections: int = 100_000
    max_active_injections: int = 250_000


class QuotaExceeded(Exception):
    """A submission would exceed a tenant quota; maps to HTTP 429."""

    def __init__(self, tenant: str, quota: str, limit: int, current: int,
                 requested: int):
        super().__init__(
            f"tenant {tenant!r} exceeds {quota}: limit {limit}, "
            f"current {current}, requested {requested}"
        )
        self.tenant = tenant
        self.quota = quota
        self.limit = limit
        self.current = current
        self.requested = requested

    def as_dict(self) -> Dict:
        return {
            "code": "quota-exceeded",
            "tenant": self.tenant,
            "quota": self.quota,
            "limit": self.limit,
            "current": self.current,
            "requested": self.requested,
        }


@dataclass
class _TenantUsage:
    campaigns: int = 0
    injections: int = 0


class AdmissionController:
    def __init__(self, quotas: Optional[TenantQuotas] = None,
                 overrides: Optional[Dict[str, TenantQuotas]] = None):
        self.default_quotas = quotas or TenantQuotas()
        self.overrides = dict(overrides or {})
        self._usage: Dict[str, _TenantUsage] = {}

    def quotas_for(self, tenant: str) -> TenantQuotas:
        return self.overrides.get(tenant, self.default_quotas)

    def usage_for(self, tenant: str) -> _TenantUsage:
        return self._usage.setdefault(tenant, _TenantUsage())

    def admit(self, tenant: str, injections: int) -> None:
        """Charge ``tenant`` for a campaign of ``injections`` budget,
        or raise :class:`QuotaExceeded` (charging nothing)."""
        quotas = self.quotas_for(tenant)
        usage = self.usage_for(tenant)
        if injections > quotas.max_injections:
            raise QuotaExceeded(tenant, "max_injections",
                                quotas.max_injections, 0, injections)
        if usage.campaigns + 1 > quotas.max_concurrent:
            raise QuotaExceeded(tenant, "max_concurrent",
                                quotas.max_concurrent, usage.campaigns, 1)
        if usage.injections + injections > quotas.max_active_injections:
            raise QuotaExceeded(tenant, "max_active_injections",
                                quotas.max_active_injections,
                                usage.injections, injections)
        usage.campaigns += 1
        usage.injections += injections

    def release(self, tenant: str, injections: int) -> None:
        usage = self.usage_for(tenant)
        usage.campaigns = max(0, usage.campaigns - 1)
        usage.injections = max(0, usage.injections - injections)

    def snapshot(self) -> Dict[str, Dict[str, int]]:
        return {
            tenant: {"campaigns": u.campaigns, "injections": u.injections}
            for tenant, u in sorted(self._usage.items()) if u.campaigns
        }
