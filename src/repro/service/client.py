"""Stdlib client for the campaign service.

Wraps :mod:`http.client` so scripts, tests, and ``python -m repro
submit`` all speak the API through the same code. The service closes
each connection after its response (NDJSON streams are delimited by
that close), so every call opens a fresh connection — which is exactly
the shape ``http.client`` handles without help.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Dict, Iterator, Optional


class ServiceError(Exception):
    """Non-2xx response; carries the structured error body."""

    def __init__(self, status: int, payload: Dict):
        super().__init__(f"HTTP {status}: {json.dumps(payload)}")
        self.status = status
        self.payload = payload


class ServiceClient:
    def __init__(self, host: str, port: int,
                 tenant: Optional[str] = None, timeout: float = 60.0):
        self.host = host
        self.port = port
        self.tenant = tenant
        self.timeout = timeout

    def _headers(self) -> Dict[str, str]:
        headers = {"Accept": "application/json"}
        if self.tenant:
            headers["X-Repro-Tenant"] = self.tenant
        return headers

    def _request(self, method: str, path: str,
                 body: Optional[Dict] = None) -> Dict:
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            payload = None
            headers = self._headers()
            if body is not None:
                payload = json.dumps(body).encode("utf-8")
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            data = json.loads(response.read().decode("utf-8"))
            if response.status >= 400:
                raise ServiceError(response.status,
                                   data.get("error", data))
            return data
        finally:
            conn.close()

    # API ---------------------------------------------------------------------

    def submit(self, spec: Dict) -> Dict:
        """POST /campaigns; returns {id, status, digest, coalesced_with}."""
        return self._request("POST", "/campaigns", body=spec)

    def campaign(self, campaign_id: str) -> Dict:
        return self._request("GET", f"/campaigns/{campaign_id}")

    def campaigns(self) -> Dict:
        return self._request("GET", "/campaigns")

    def results(self, campaign_id: str) -> Dict:
        return self._request("GET", f"/campaigns/{campaign_id}/results")

    def status(self) -> Dict:
        return self._request("GET", "/status")

    def wait(self, campaign_id: str, timeout: float = 600.0,
             poll: float = 0.2) -> Dict:
        """Poll until the campaign reaches a terminal state; returns
        its final record."""
        deadline = time.monotonic() + timeout
        while True:
            record = self.campaign(campaign_id)
            if record["status"] in ("succeeded", "failed", "interrupted"):
                return record
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"campaign {campaign_id} still {record['status']} "
                    f"after {timeout}s")
            time.sleep(poll)

    def stream_events(self, campaign_id: str) -> Iterator[Dict]:
        """GET /campaigns/{id}/events — yields events until the
        campaign settles and the service closes the stream."""
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            conn.request("GET", f"/campaigns/{campaign_id}/events",
                         headers=self._headers())
            response = conn.getresponse()
            if response.status >= 400:
                data = json.loads(response.read().decode("utf-8"))
                raise ServiceError(response.status,
                                   data.get("error", data))
            for raw in response:
                line = raw.strip()
                if line:
                    yield json.loads(line.decode("utf-8"))
        finally:
            conn.close()
