"""CampaignRunner: one embeddable executor for campaign cells.

Before the service existed there were two parallel cell-execution
paths — ``repro.lab.cli`` inlined a closure around
:func:`~repro.lab.durable.run_durable_campaign` (forked workers) and
another around
:func:`~repro.cluster.coordinator.run_distributed_campaign` (leased
workers). The service needs the same pair, callable from many threads
at once, so the pattern is promoted to a class both drivers share:

- **fabric selection**: construct with ``coordinator=None`` for the
  local forked/serial scheduler, or with a running
  :class:`~repro.cluster.coordinator.ClusterCoordinator` to lease
  shards over its worker pool. Outcome counts are bit-identical either
  way (the cluster test suite enforces it), so callers choose purely
  on deployment shape.
- **thread safety**: each ``run_*`` call opens its own SQLite
  connection to ``store_path`` unless the caller passes a ``store``
  (the CLI does — it reuses one connection for a whole run). Builds
  and golden runs are serialized behind one lock: they are memoized
  process-wide (toolchain build cache, per-module golden cache), so
  serializing them deduplicates work when concurrent campaigns share a
  cell, and it keeps module construction single-threaded.
"""

from __future__ import annotations

import threading
from typing import Optional, Sequence

from ..faults.campaign import CampaignConfig, golden_profile
from ..ir.module import Module
from ..lab.checkpoint import DEFAULT_SHARD_SIZE
from ..lab.durable import DurableCampaign, run_durable_campaign
from ..lab.events import EventBus
from ..lab.store import ResultStore
from ..toolchain import default_toolchain
from .spec import CampaignRequest


class CampaignRunner:
    """Run campaign cells against one store over a chosen fabric."""

    def __init__(self, store_path: Optional[str],
                 coordinator=None):
        self.store_path = store_path
        self.coordinator = coordinator
        self._prep_lock = threading.Lock()
        if coordinator is not None and store_path is not None \
                and coordinator.store_path != store_path:
            raise ValueError(
                f"coordinator writes to {coordinator.store_path!r} but the "
                f"runner's store is {store_path!r}; point both at one file"
            )

    # Cell-level entry point (the CLI's path) ---------------------------------

    def run_cell(
        self,
        module: Module,
        entry: str,
        args: Sequence,
        workload: str,
        version: str,
        config: CampaignConfig,
        *,
        build_scale: str,
        shard_size: int = DEFAULT_SHARD_SIZE,
        ci_target: Optional[float] = None,
        events: Optional[EventBus] = None,
        store: Optional[ResultStore] = None,
        campaign_id: str = "",
        priority: int = 0,
    ) -> DurableCampaign:
        """Run one already-built cell on this runner's fabric."""
        own_store = None
        if store is None and self.store_path is not None:
            own_store = store = ResultStore(self.store_path)
        try:
            if self.coordinator is not None:
                from ..cluster.coordinator import run_distributed_campaign

                return run_distributed_campaign(
                    module, entry, args, workload, version, config,
                    coordinator=self.coordinator, build_scale=build_scale,
                    store=store, events=events, shard_size=shard_size,
                    ci_target=ci_target, priority=priority,
                    campaign=campaign_id,
                )
            return run_durable_campaign(
                module, entry, args, workload, version, config,
                store=store if store is not None else False,
                events=events, shard_size=shard_size, ci_target=ci_target,
            )
        finally:
            if own_store is not None:
                own_store.close()

    # Request-level entry point (the service's path) --------------------------

    def run_request(
        self,
        request: CampaignRequest,
        *,
        events: Optional[EventBus] = None,
        campaign_id: str = "",
    ) -> DurableCampaign:
        """Build the requested cell through the toolchain and run it.

        Safe to call from many threads concurrently: the build and the
        golden run are primed under the prep lock (both memoized, so
        concurrent campaigns over one cell pay for them once), then the
        injection work proceeds in parallel on the fabric.
        """
        config = request.config()
        with self._prep_lock:
            built = default_toolchain().build(
                request.workload, request.build_scale, request.version)
            # Prime the per-module golden cache so the parallel phase
            # (and any concurrent campaign sharing this cell) replays
            # it instead of racing to recompute it.
            golden_profile(built.module, built.entry, built.args, None,
                           engine=config.engine)
        return self.run_cell(
            built.module, built.entry, built.args,
            request.workload, request.version, config,
            build_scale=request.build_scale,
            shard_size=request.shard_size,
            ci_target=request.ci_target,
            events=events,
            campaign_id=campaign_id,
            priority=request.priority,
        )
