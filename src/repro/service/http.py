"""Minimal HTTP/1.1 framing over asyncio streams (stdlib only).

The repo takes no dependencies, so the service speaks just enough HTTP
for its own API: request line + headers + ``Content-Length`` body in,
status + JSON body out, one request per connection
(``Connection: close``). That last restriction is a feature, not a
shortcut — the ``/events`` endpoint streams NDJSON of unknown length,
and closing the connection is the standard stdlib-parseable way to
delimit it (``http.client`` reads to EOF).

The layer is transport only: :class:`HttpRequest` in, a handler
coroutine out. Routing, admission, and campaign semantics live in
:mod:`repro.service.app`.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Dict, Optional

#: Guard rails against garbage/hostile peers, far above any legal use.
MAX_HEADER_BYTES = 32 * 1024
MAX_BODY_BYTES = 1024 * 1024

_REASONS = {
    200: "OK", 201: "Created", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """Abort request handling with a structured JSON error body."""

    def __init__(self, status: int, payload: Dict):
        super().__init__(f"HTTP {status}: {payload}")
        self.status = status
        self.payload = payload


@dataclass
class HttpRequest:
    method: str
    path: str
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> object:
        if not self.body:
            raise HttpError(400, {"code": "invalid-json",
                                  "message": "empty body"})
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise HttpError(400, {"code": "invalid-json",
                                  "message": str(exc)}) from None

    @property
    def tenant(self) -> str:
        return self.headers.get("x-repro-tenant", "").strip() or "anonymous"


async def read_request(reader: asyncio.StreamReader
                       ) -> Optional[HttpRequest]:
    """Parse one request; None on a clean EOF before any bytes."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise HttpError(400, {"code": "bad-request",
                              "message": "truncated request head"})
    except asyncio.LimitOverrunError:
        raise HttpError(413, {"code": "bad-request",
                              "message": "request head too large"})
    if len(head) > MAX_HEADER_BYTES:
        raise HttpError(413, {"code": "bad-request",
                              "message": "request head too large"})

    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, {"code": "bad-request",
                              "message": f"malformed request line "
                                         f"{lines[0]!r}"})
    method, target = parts[0].upper(), parts[1]

    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, {"code": "bad-request",
                                  "message": f"malformed header {line!r}"})
        headers[name.strip().lower()] = value.strip()

    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise HttpError(400, {"code": "bad-request",
                                  "message": "bad Content-Length"})
        if length > MAX_BODY_BYTES:
            raise HttpError(413, {"code": "bad-request",
                                  "message": "body too large"})
        body = await reader.readexactly(length)
    elif headers.get("transfer-encoding"):
        raise HttpError(400, {"code": "bad-request",
                              "message": "chunked requests unsupported"})

    # Strip any query string: the API routes on the path alone.
    path = target.split("?", 1)[0]
    return HttpRequest(method=method, path=path, headers=headers, body=body)


def _head(status: int, content_type: str,
          length: Optional[int]) -> bytes:
    reason = _REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}",
             f"Content-Type: {content_type}",
             "Connection: close"]
    if length is not None:
        lines.append(f"Content-Length: {length}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


async def send_json(writer: asyncio.StreamWriter, status: int,
                    payload: Dict) -> None:
    body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
    writer.write(_head(status, "application/json", len(body)))
    writer.write(body)
    await writer.drain()


async def start_ndjson(writer: asyncio.StreamWriter,
                       status: int = 200) -> None:
    """Open a close-delimited ``application/x-ndjson`` stream; follow
    with :func:`send_ndjson_line` per event, then close the writer."""
    writer.write(_head(status, "application/x-ndjson", None))
    await writer.drain()


async def send_ndjson_line(writer: asyncio.StreamWriter,
                           payload: Dict) -> None:
    writer.write((json.dumps(payload, sort_keys=True) + "\n").encode("utf-8"))
    await writer.drain()
